// image_pipeline: a three-stage camera -> rotate -> sink graph using SFM
// messages end to end — the domain the paper's applicability study drew its
// first failure case from (image_rotate, Fig. 19).
//
// The rotate stage shows the remediated pattern: the output frame_id is
// decided BEFORE the message's strings are assigned, so every string is
// written exactly once and the One-Shot String Assignment Assumption holds.
//
//   $ ./image_pipeline
#include <atomic>
#include <cstdio>

#include "common/clock.h"
#include "common/stats.h"
#include "ros/ros.h"
#include "sensor_msgs/sfm/Image.h"
#include "sfm/sfm.h"

namespace {

using Image = sensor_msgs::sfm::Image;

/// 180-degree rotation of an rgb8 image (the affine transform of Fig. 19,
/// simplified to stay dependency-free).
void RotatePixels(const uint8_t* in, uint8_t* out, size_t pixels) {
  for (size_t i = 0; i < pixels; ++i) {
    const size_t j = pixels - 1 - i;
    out[j * 3 + 0] = in[i * 3 + 0];
    out[j * 3 + 1] = in[i * 3 + 1];
    out[j * 3 + 2] = in[i * 3 + 2];
  }
}

}  // namespace

int main() {
  rsf::SetLogLevel(rsf::LogLevel::kError);
  constexpr uint32_t kWidth = 640;
  constexpr uint32_t kHeight = 480;
  constexpr int kFrames = 30;

  // ---- sink node: verifies rotation and records end-to-end latency ----
  ros::NodeHandle sink_nh("display");
  std::atomic<int> received{0};
  rsf::LatencyRecorder latency;
  ros::SubscribeOptions inline_opts;
  inline_opts.inline_dispatch = true;
  auto sink = sink_nh.subscribe<Image>(
      "/image_rotated", 10,
      [&](const Image::ConstPtr& msg) {
        latency.AddNanos(rsf::ElapsedSince(msg->header.stamp));
        received.fetch_add(1);
      },
      inline_opts);

  // ---- rotate node: the remediated Fig. 19 pattern ----
  ros::NodeHandle rotate_nh("image_rotate");
  ros::Publisher rotated_pub = rotate_nh.advertise<Image>("/image_rotated", 10);
  auto rotate_sub = rotate_nh.subscribe<Image>(
      "/image_raw", 10,
      [&](const Image::ConstPtr& msg) {
        auto out = sfm::make_message<Image>();
        // All metadata decided up front: each string assigned exactly once.
        out->header.stamp = msg->header.stamp;
        out->header.seq = msg->header.seq;
        out->header.frame_id = "camera_rotated";  // NOT patched afterwards
        out->height = msg->height;
        out->width = msg->width;
        out->encoding = "rgb8";
        out->step = msg->step;
        out->data.resize(msg->data.size());
        RotatePixels(msg->data.data(), out->data.data(),
                     static_cast<size_t>(msg->width) * msg->height);
        rotated_pub.publish(*out);
      },
      inline_opts);

  // ---- camera node ----
  ros::NodeHandle camera_nh("camera");
  ros::Publisher camera_pub = camera_nh.advertise<Image>("/image_raw", 10);
  while (camera_pub.getNumSubscribers() == 0 ||
         rotated_pub.getNumSubscribers() == 0) {
    rsf::SleepForNanos(1'000'000);
  }

  rsf::Rate rate(30.0);
  for (int frame = 0; frame < kFrames; ++frame) {
    auto img = sfm::make_message<Image>();
    img->header.stamp = rsf::Time::Now();
    img->header.seq = static_cast<uint32_t>(frame);
    img->header.frame_id = "camera";
    img->height = kHeight;
    img->width = kWidth;
    img->encoding = "rgb8";
    img->step = kWidth * 3;
    img->data.resize(static_cast<size_t>(kWidth) * kHeight * 3);
    img->data[0] = static_cast<uint8_t>(frame);
    camera_pub.publish(*img);
    rate.Sleep();
  }
  while (received.load() < kFrames) rsf::SleepForNanos(1'000'000);

  std::printf("image_pipeline: %d frames camera -> rotate -> display, all "
              "serialization-free\n",
              received.load());
  std::printf("end-to-end latency (two hops + rotation): %s\n",
              latency.Summary().c_str());
  std::printf("live SFM arenas at exit (before teardown): %zu\n",
              sfm::gmm().LiveCount());
  return 0;
}
