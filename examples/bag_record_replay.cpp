// bag_record_replay: records a short serialization-free camera session into
// a bag file, then replays it into a fresh subscriber — the rosbag workflow
// on SFM topics.  Because SFM messages travel as their arena bytes, the bag
// stores them verbatim: recording adds zero serialization work, and replay
// feeds subscribers the exact bytes the original publisher produced.
//
//   $ ./bag_record_replay [frames]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/clock.h"
#include "ros/bag.h"
#include "ros/ros.h"
#include "sensor_msgs/sfm/Image.h"
#include "sfm/sfm.h"

using Image = sensor_msgs::sfm::Image;

int main(int argc, char** argv) {
  rsf::SetLogLevel(rsf::LogLevel::kError);
  const int frames = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::string path = "session.bag";

  // ---- record ----
  {
    auto writer = ros::BagWriter::Open(path);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    ros::TopicRecorder recorder("/camera/image", &*writer);

    ros::NodeHandle camera("camera");
    auto pub = camera.advertise<Image>("/camera/image", 10);
    while (pub.getNumSubscribers() == 0) rsf::SleepForNanos(1'000'000);

    rsf::Rate rate(30.0);
    for (int i = 0; i < frames; ++i) {
      auto img = sfm::make_message<Image>();
      img->header.stamp = rsf::Time::Now();
      img->header.seq = static_cast<uint32_t>(i);
      img->header.frame_id = "camera";
      img->height = 120;
      img->width = 160;
      img->encoding = "rgb8";
      img->step = 160 * 3;
      img->data.resize(160 * 120 * 3);
      img->data[0] = static_cast<uint8_t>(i);
      pub.publish(*img);
      rate.Sleep();
    }
    while (recorder.recorded() < static_cast<uint64_t>(frames)) {
      rsf::SleepForNanos(1'000'000);
    }
    recorder.Shutdown();
    (void)writer->Close();
    std::printf("recorded %llu frames into %s (%ju bytes)\n",
                static_cast<unsigned long long>(recorder.recorded()),
                path.c_str(),
                static_cast<uintmax_t>(std::filesystem::file_size(path)));
    ros::master().Reset();
  }

  // ---- replay ----
  {
    ros::NodeHandle viewer("viewer");
    std::atomic<int> got{0};
    std::atomic<uint8_t> last_marker{0};
    ros::SubscribeOptions options;
    options.inline_dispatch = true;
    auto sub = viewer.subscribe<Image>(
        "/camera/image", 50,
        [&](const Image::ConstPtr& img) {
          last_marker.store(img->data[0]);
          got.fetch_add(1);
        },
        options);

    const auto published = ros::PlayBag(path, /*rate=*/4.0);  // 4x speed
    if (!published.ok()) {
      std::fprintf(stderr, "%s\n", published.status().ToString().c_str());
      return 1;
    }
    const uint64_t deadline = rsf::MonotonicNanos() + 5'000'000'000ull;
    while (got.load() < frames && rsf::MonotonicNanos() < deadline) {
      rsf::SleepForNanos(1'000'000);
    }
    std::printf("replayed %llu records; viewer saw %d frames "
                "(last marker %u, expected %u)\n",
                static_cast<unsigned long long>(*published), got.load(),
                last_marker.load(), static_cast<unsigned>(frames - 1));
  }
  std::filesystem::remove(path);
  return 0;
}
