// converter_demo: runs the ROS-SF Converter over a source file — the
// §4.3.2 workflow.  Prints the assumption-check report and, when the file
// declares messages on the stack, the Fig. 11 heap rewrite.
//
//   $ ./converter_demo [file.cpp]        (defaults to a built-in sample)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "converter/analyzer.h"
#include "converter/rewriter.h"
#include "idl/registry.h"

namespace {

const char kSample[] = R"cpp(
#include "sensor_msgs/Image.h"

void camera_capture(ros::Publisher& pub, int h, int w) {
  sensor_msgs::Image img;
  img.header.frame_id = "camera";
  img.encoding = "rgb8";
  img.height = h;
  img.width = w;
  img.data.resize(h * w * 3);
  pub.publish(img);
}

void patch_frame(const sensor_msgs::Image::ConstPtr& msg,
                 ros::Publisher& pub) {
  sensor_msgs::Image::Ptr out = convert(msg).toImageMsg();
  out->header.frame_id = "patched";  // second write to an assigned string!
  pub.publish(out);
}
)cpp";

std::string FindDir(const char* name) {
  namespace fs = std::filesystem;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    const std::string candidate = std::string(prefix) + name;
    std::error_code ec;
    if (fs::is_directory(candidate, ec)) return candidate;
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsf::conv;

  rsf::idl::SpecRegistry registry;
  const auto status = registry.LoadDirectory(FindDir("msgs"));
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load message IDL: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const TypeTable types = TypeTable::FromRegistry(registry);

  std::string source = kSample;
  std::string origin = "<built-in sample>";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    source = text.str();
    origin = argv[1];
  }

  const FileReport report = AnalyzeSource(source, types);

  std::printf("== ROS-SF Converter report for %s ==\n\n", origin.c_str());
  std::printf("message classes used:\n");
  for (const auto& message_class : report.classes_used) {
    std::printf("  %s (%s)\n", message_class.c_str(),
                report.Applicable(message_class) ? "applicable"
                                                 : "needs attention");
  }

  if (report.findings.empty()) {
    std::printf("\nno assumption violations: ROS-SF applies transparently.\n");
  } else {
    std::printf("\nassumption violations (fix before enabling ROS-SF):\n");
    for (const auto& finding : report.findings) {
      std::printf("  line %3d  %-22s %s\n           %s\n", finding.line,
                  FindingKindName(finding.kind), finding.path.c_str(),
                  finding.note.c_str());
    }
  }

  const auto rewrite = RewriteStackDeclarations(source, report);
  if (rewrite.rewritten > 0) {
    std::printf("\n== Fig. 11 rewrite: %zu stack declaration(s) converted to "
                "heap ==\n%s",
                rewrite.rewritten, rewrite.source.c_str());
  } else {
    std::printf("\nno stack message declarations to rewrite.\n");
  }
  return 0;
}
