// Quickstart: the paper's Fig. 3 program pattern, verbatim — then the same
// code again with the serialization-free message variant.  The only change
// between the two halves is the type alias: that is the transparency claim.
//
//   $ ./quickstart
#include <cstdio>

#include "common/clock.h"
#include "ros/ros.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/sfm/Image.h"

namespace {

/// The Fig. 3 pattern, templated only on the message type.
template <typename Image>
void RunFig3Pattern(const char* label) {
  ros::master().Reset();

  // ---- Subscriber side ----
  ros::NodeHandle sub_nh("listener");
  auto callback = [](const typename Image::ConstPtr& img) {
    std::printf("  Height: %u\n", img->height);
    std::printf("  Width:  %u\n", img->width);
    std::printf("  Encoding: %s\n", img->encoding.c_str());
    std::printf("  First/last pixel: %u / %u\n", img->data[0],
                img->data[img->data.size() - 1]);
  };
  ros::Subscriber sub = sub_nh.subscribe<Image>("/image", 10, callback);

  // ---- Publisher side ----
  ros::NodeHandle nh("talker");
  ros::Publisher pub = nh.advertise<Image>("/image", 10);
  while (pub.getNumSubscribers() == 0) rsf::SleepForNanos(1'000'000);

  // `Image img;` on the stack is what unconverted ROS code writes; the
  // ROS-SF Converter rewrites it to heap allocation (Fig. 11).  Here we
  // write the converted form directly.
  std::shared_ptr<Image> ptmp_img(new Image);
  Image& img = *ptmp_img;
  img.encoding = "rgb8";
  img.height = 10;
  img.width = 10;
  img.data.resize(10 * 10 * 3);
  for (size_t i = 0; i < img.data.size(); ++i) {
    img.data[i] = static_cast<uint8_t>(i);
  }
  pub.publish(img);

  std::printf("%s published a 10x10 rgb8 image:\n", label);
  while (sub.receivedCount() == 0) rsf::SleepForNanos(1'000'000);
  sub_nh.spinOnceFor(1'000'000'000ull);
  ros::master().Reset();
}

}  // namespace

int main() {
  std::printf("== regular ROS messages (serialized on publish) ==\n");
  RunFig3Pattern<sensor_msgs::Image>("ROS");

  std::printf("\n== SFM messages (serialization-free, same code) ==\n");
  RunFig3Pattern<sensor_msgs::sfm::Image>("ROS-SF");

  std::printf("\nBoth halves ran the same source; only the message type "
              "alias changed.\n");
  return 0;
}
