// slam_pipeline: the paper's §5.3 application case study as a runnable
// example — the full pub_tum -> orb_slam -> {pose, pointcloud, debug_image}
// graph on serialization-free messages, printing the tracked trajectory and
// the per-output latencies.
//
//   $ ./slam_pipeline [frames]
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "ros/ros.h"
#include "slam/nodes.h"

int main(int argc, char** argv) {
  rsf::SetLogLevel(rsf::LogLevel::kError);
  const int frames = argc > 1 ? std::atoi(argv[1]) : 30;
  using Msgs = rsf::slam::SfmMsgs;

  rsf::slam::SlamNode<Msgs> slam;
  rsf::slam::LatencySinkNode<Msgs::PoseStamped> pose_sink("pose_sink",
                                                          "/pose");
  rsf::slam::LatencySinkNode<Msgs::PointCloud2> cloud_sink("cloud_sink",
                                                           "/pointcloud");
  rsf::slam::LatencySinkNode<Msgs::Image> debug_sink("debug_sink",
                                                     "/debug_image");

  // A pose printer alongside the latency sink, like rviz would subscribe.
  ros::NodeHandle viz("trajectory_printer");
  ros::SubscribeOptions inline_opts;
  inline_opts.inline_dispatch = true;
  auto trajectory = viz.subscribe<Msgs::PoseStamped>(
      "/pose", 10,
      [](const Msgs::PoseStamped::ConstPtr& pose) {
        if (pose->header.seq % 10 == 0) {
          std::printf("  frame %3u: camera at (%.3f, %.3f)\n",
                      pose->header.seq, pose->pose.position.x,
                      pose->pose.position.y);
        }
      },
      inline_opts);

  rsf::slam::TumPublisherNode<Msgs> source(640, 480);
  while (source.NumSubscribers() == 0) rsf::SleepForNanos(1'000'000);

  std::printf("tracking %d synthetic TUM-like frames...\n", frames);
  rsf::Rate rate(10.0);
  for (int i = 0; i < frames; ++i) {
    source.PublishOne();
    const uint64_t deadline = rsf::MonotonicNanos() + 10'000'000'000ull;
    while (debug_sink.count() < static_cast<uint64_t>(i + 1) &&
           rsf::MonotonicNanos() < deadline) {
      rsf::SleepForNanos(500'000);
    }
    rate.Sleep();
  }

  std::printf("\nprocessed %llu frames; SLAM compute last frame: %.1f ms\n",
              static_cast<unsigned long long>(slam.frames()),
              slam.last_compute_millis());
  std::printf("overall latency (input creation -> output received):\n");
  std::printf("  pose:        %s\n", pose_sink.snapshot().Summary().c_str());
  std::printf("  point cloud: %s\n", cloud_sink.snapshot().Summary().c_str());
  std::printf("  debug image: %s\n", debug_sink.snapshot().Summary().c_str());
  return 0;
}
