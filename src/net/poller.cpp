#include "net/poller.h"

#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "common/log.h"

namespace rsf::net {
namespace {

size_t ReactorPoolSize() {
  if (const char* env = std::getenv("RSF_REACTOR_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) {
      RSF_INFO("reactor: pool size %ld (RSF_REACTOR_THREADS)", parsed);
      return static_cast<size_t>(parsed);
    }
    RSF_WARN("reactor: ignoring invalid RSF_REACTOR_THREADS=%s", env);
  }
  // A loop thread is mostly waiting + memcpy; a quarter of the cores
  // saturates typical pub/sub fanouts without starving application
  // callbacks, floored at 2 so one stalled callback can't idle the whole
  // transport and capped at 8 — past that, links per loop is already low
  // enough that more loops just cost idle wakeups.
  const size_t cores = std::thread::hardware_concurrency();
  const size_t pool = std::clamp<size_t>(cores / 4, 2, 8);
  RSF_INFO("reactor: pool size %zu (from %zu hardware threads)", pool, cores);
  return pool;
}

// The thread-per-connection transport was deleted in PR 4; the env knob
// that selected it is honored only as a no-op with a warning so existing
// launch scripts keep working.
void WarnIfLegacyTransportRequested() {
  if (const char* env = std::getenv("RSF_TRANSPORT")) {
    if (std::strcmp(env, "threads") == 0) {
      RSF_WARN(
          "RSF_TRANSPORT=threads is deprecated: the thread-per-connection "
          "transport was removed; using the reactor transport");
    }
  }
}

}  // namespace

EventLoop::EventLoop() : EventLoop(ResolveIoBackendKind()) {}

EventLoop::EventLoop(IoBackendKind kind) {
  backend_ = MakeIoBackend(kind);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SFM_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  SFM_CHECK_MSG(timer_fd_ >= 0, "timerfd_create failed");
  // Registered directly with the backend, not through Add: the wake and
  // timer fds are loop plumbing, dispatched by fd compare in Run, and
  // must not count toward NumHandlers.
  SFM_CHECK(backend_->Add(wake_fd_, kEventReadable));
  SFM_CHECK(backend_->Add(timer_fd_, kEventReadable));
}

EventLoop::~EventLoop() {
  Stop();
  ::close(timer_fd_);
  ::close(wake_fd_);
}

void EventLoop::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    accepting_ = true;
  }
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    // Refuse new tasks first: everything accepted before this point is
    // guaranteed to run (below, or in the loop's own final drain), which is
    // what lets RunSync wait without a timeout.
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    accepting_ = false;
  }
  stop_.store(true, std::memory_order_release);
  Wakeup();
  if (thread_.joinable()) thread_.join();
  // Thread joined: no concurrency remains.  Run tasks the loop missed.
  std::vector<Task> leftovers;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    leftovers.swap(tasks_);
  }
  for (auto& task : leftovers) task();
  running_.store(false, std::memory_order_release);
  handlers_.clear();
  timers_.clear();
}

bool EventLoop::InLoopThread() const noexcept {
  return thread_.get_id() == std::this_thread::get_id();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR just means the loop
  // is already due to wake; ignore short writes.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    if (!accepting_) return false;
    tasks_.push_back(std::move(task));
  }
  Wakeup();
  return true;
}

void EventLoop::RunInLoop(Task task) {
  if (InLoopThread() || !Post(task)) task();
}

void EventLoop::RunSync(Task task) {
  if (InLoopThread()) {
    // Already serialized with every handler — run inline (also the path a
    // teardown takes when the last reference dies inside a callback).
    task();
    return;
  }
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  const bool posted = Post([&] {
    task();
    std::lock_guard<std::mutex> lock(mutex);
    done = true;
    done_cv.notify_one();
  });
  if (!posted) {
    // Loop stopped (or never started): no concurrent handler execution is
    // left to wait out — run inline on this thread.
    task();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return done; });
}

bool EventLoop::RunAfter(uint64_t delay_nanos, Task task) {
  const uint64_t deadline = MonotonicNanos() + delay_nanos;
  if (InLoopThread()) {
    AddTimerOnLoop(deadline, std::move(task));
    return true;
  }
  return Post([this, deadline, task = std::move(task)]() mutable {
    AddTimerOnLoop(deadline, std::move(task));
  });
}

void EventLoop::AddTimerOnLoop(uint64_t deadline_nanos, Task task) {
  const bool is_earliest =
      timers_.empty() || deadline_nanos < timers_.begin()->first;
  timers_.emplace(deadline_nanos, std::move(task));
  if (is_earliest) ArmTimerFd(MonotonicNanos());
}

void EventLoop::ArmTimerFd(uint64_t now_nanos) {
  itimerspec spec{};
  if (!timers_.empty()) {
    const uint64_t deadline = timers_.begin()->first;
    // Relative arming against the same MonotonicNanos clock the deadlines
    // were computed from; a due-or-past deadline still needs a nonzero
    // value (it_value == 0 would disarm), so round up to 1ns.
    const uint64_t delta = deadline > now_nanos ? deadline - now_nanos : 1;
    spec.it_value.tv_sec = static_cast<time_t>(delta / 1'000'000'000ull);
    spec.it_value.tv_nsec = static_cast<long>(delta % 1'000'000'000ull);
  }
  if (::timerfd_settime(timer_fd_, 0, &spec, nullptr) != 0) {
    RSF_WARN("timerfd_settime failed: %s", std::strerror(errno));
  }
}

void EventLoop::FireDueTimers() {
  uint64_t expirations;
  while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
  }
  // Collect due tasks before running any: a task that re-schedules itself
  // (pacing loops) must not be fired again in the same drain.
  const uint64_t now = MonotonicNanos();
  std::vector<Task> due;
  auto it = timers_.begin();
  while (it != timers_.end() && it->first <= now) {
    due.push_back(std::move(it->second));
    it = timers_.erase(it);
  }
  ArmTimerFd(now);
  for (auto& task : due) task();
}

void EventLoop::Add(int fd, uint32_t interest, EventCallback callback) {
  auto handler = std::make_shared<Handler>();
  handler->interest = interest;
  handler->callback = std::move(callback);
  if (!backend_->Add(fd, interest)) return;
  handlers_[fd] = std::move(handler);
}

void EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  if (it->second->interest == interest) return;
  backend_->Mod(fd, interest);
  it->second->interest = interest;
}

void EventLoop::Remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  backend_->Del(fd);
  handlers_.erase(it);
}

size_t EventLoop::NumHandlers() const {
  // Tests call this through RunSync, so no lock is needed.
  return handlers_.size();
}

size_t EventLoop::NumTimers() const {
  // Tests call this through RunSync, so no lock is needed.
  return timers_.size();
}

void EventLoop::Run() {
  std::vector<ReadyEvent> events;
  std::vector<Task> ready;
  while (!stop_.load(std::memory_order_acquire)) {
    events.clear();
    // One backend turn: under uring this is where every staged SQE (all
    // links' sends and recvs, poll re-arms) hits the kernel in a single
    // enter, and where completion callbacks run.
    if (!backend_->Wait(&events)) break;
    for (const ReadyEvent& event : events) {
      const int fd = event.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == timer_fd_) {
        FireDueTimers();
        continue;
      }
      // Look up per event, not per batch: an earlier callback in this batch
      // may have removed this fd.  (A removed-and-immediately-reused fd
      // number can still receive one stale readiness bit; handlers drain
      // nonblocking sockets until EAGAIN, so a spurious event is a no-op.)
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      auto handler = it->second;  // keeps the callback alive across Remove
      uint32_t ready_bits = event.events & (kEventReadable | kEventWritable);
      if (event.events & kEventError) {
        // Deliver the error through whatever direction is armed so the next
        // read/write syscall surfaces the errno, and flag it explicitly for
        // handlers that must drain the error queue (zerocopy completions).
        ready_bits |= handler->interest & (kEventReadable | kEventWritable);
        ready_bits |= kEventError;
        if ((ready_bits & ~kEventError) == 0) ready_bits |= kEventReadable;
      }
      if (ready_bits != 0) handler->callback(ready_bits);
    }
    ready.clear();
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      ready.swap(tasks_);
    }
    for (auto& task : ready) task();
  }
  // Drain tasks one last time so RunSync callers posted before Stop never
  // hang waiting for a loop that already decided to exit.
  ready.clear();
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    ready.swap(tasks_);
  }
  for (auto& task : ready) task();
}

Reactor::Reactor() {
  WarnIfLegacyTransportRequested();
  const size_t pool = ReactorPoolSize();
  loops_.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    loops_.back()->Start();
  }
}

Reactor::~Reactor() {
  for (auto& loop : loops_) loop->Stop();
}

Reactor& Reactor::Get() {
  static Reactor reactor;
  return reactor;
}

EventLoop* Reactor::NextLoop() {
  // Least-loaded by live-link count; the rotating start index breaks ties
  // so an idle pool still spreads assignments.
  const size_t start = next_.fetch_add(1, std::memory_order_relaxed);
  EventLoop* best = nullptr;
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < loops_.size(); ++i) {
    EventLoop* loop = loops_[(start + i) % loops_.size()].get();
    const size_t load = loop->LiveLinks();
    if (load < best_load) {
      best = loop;
      best_load = load;
    }
  }
  return best;
}

}  // namespace rsf::net
