// The one transport lifecycle: a loop-confined state machine that owns a
// connected (or connecting) socket, its resumable framing, its stats, and
// its teardown — shared by every TCP-backed link in the middleware
// (publication fan-out, subscription receive, shaped SimLink delivery, bag
// record/replay).  Publication and Subscription are policy over this class:
// they decide which tier a peer lands on (intra zero-copy / intra
// whole-copy / TCP) and what the frames mean; Link owns how bytes move.
//
//   Connecting ──connect completes──▶ Handshaking ──accepted──▶ Established
//        │                                │    │                     │
//        │ SO_ERROR / timeout             │    └──rejected──▶ Draining│
//        ▼                                ▼                      │    ▼
//      Closed ◀──────────────────────── error ◀──reply flushed──┘  Closed
//
// Every state transition, every callback, and all reader-side state run on
// ONE EventLoop thread; the only cross-thread entry points are
// EnqueueFrame (mutex-guarded writer queue — producers never touch the
// socket) and CloseSync (RunSync teardown: after it returns, no callback
// will run again, which is what lets owners destroy captured state).
//
// The handshake is pluggable: Link moves handshake *frames*; the owner
// supplies encode/validate callbacks (TCPROS connection headers live in
// src/ros/, the net layer stays protocol-agnostic).  A dial
// (`Link::Dial`) never blocks the calling thread — the nonblocking
// connect(2) is initiated inline (EINPROGRESS), completion arrives as an
// EPOLLOUT event on the loop, and a timer closes the link if the peer
// never answers.  This is what takes the master-notify thread out of the
// connect path entirely.
#pragma once

#include <sys/socket.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/framing.h"
#include "net/poller.h"
#include "net/socket.h"

namespace rsf::net {

/// Largest accepted handshake frame (connection headers are < 1 KiB; the
/// cap guards the pre-validation allocator against hostile lengths).
inline constexpr uint32_t kMaxHandshakeFrame = 1u * 1024u * 1024u;

/// Default for Options::write_timeout_nanos on data-bearing publisher
/// links (RSF_WRITE_TIMEOUT_MS env, default 30000; 0 disables).  Re-read
/// on every call so tests and benches can shrink it per run.
uint64_t WriteTimeoutNanos() noexcept;

/// A finalized outgoing frame: the shared payload holder plus the raw
/// (possibly tag-carrying) length prefix.  Built once per publish and
/// enqueued onto any number of links — fan-out shares the holder, it never
/// re-encodes (ros/transport_lane.h builds these).
struct OutFrame {
  std::shared_ptr<const uint8_t[]> payload;
  uint32_t raw = 0;  // length prefix as it goes on the wire (tag | length)

  [[nodiscard]] bool valid() const noexcept { return payload != nullptr; }
};

class Link : public std::enable_shared_from_this<Link> {
 public:
  enum class State : uint8_t {
    kConnecting,    // dial in flight (EINPROGRESS), waiting for EPOLLOUT
    kHandshaking,   // exchanging handshake frames
    kEstablished,   // app frames flow
    kDraining,      // handshake rejected: flushing the error reply, then close
    kClosed,
  };

  struct Options {
    /// Drop-oldest bound for the outgoing frame queue (0 = unbounded).
    size_t max_pending_frames = 0;
    /// A dial still in kConnecting after this long is closed.
    uint64_t connect_timeout_nanos = 10ull * 1'000'000'000ull;
    /// MSG_ZEROCOPY payload threshold for this link's send path; 0 (the
    /// default) keeps the tier off.  Data-bearing owners pass
    /// ZeroCopyThresholdBytes() so the env knob applies per link at
    /// creation time; handshake-and-receive links (subscription dials)
    /// leave it off.
    size_t zerocopy_threshold = 0;
    /// SO_EE_CODE_ZEROCOPY_COPIED completions tolerated before the tier
    /// auto-disables (0 = never); owners pass ZeroCopyCopiedLimit().
    uint64_t zerocopy_copied_limit = 0;
    /// Write-progress deadline: with frames queued and the kernel
    /// accepting zero bytes across one full period, the link closes and
    /// the queued frames count as stranded — a peer that stops reading
    /// must not pin zerocopy holders and queue memory forever.  0 (the
    /// default) disables the deadline.  Detection latency is within
    /// [period, 2·period): the timer snapshots BytesWritten and fires one
    /// period later.
    uint64_t write_timeout_nanos = 0;
  };

  /// All callbacks run on the link's loop thread.  They are released (on
  /// the loop) once the link closes, so owners may capture shared_ptrs to
  /// themselves without leaking: the Link ⇄ owner cycle is broken at close.
  struct Callbacks {
    /// Server role: validate the peer's handshake request and fill the
    /// reply frame.  Return false to reject — the reply (an error header)
    /// is still flushed before the link closes (kDraining).
    std::function<bool(const uint8_t* data, uint32_t length,
                       std::vector<uint8_t>* reply)>
        on_handshake_request;
    /// Client role: the handshake request frame to send once connected.
    std::function<std::vector<uint8_t>()> make_handshake_request;
    /// Client role: validate the server's reply.  Return false to close.
    std::function<bool(const uint8_t* data, uint32_t length)>
        on_handshake_reply;
    /// Established receive path: where payload bytes land (the SFM
    /// arena-direct hook) and what to do when a frame completes.  When
    /// on_frame is absent the link drains and discards inbound bytes,
    /// watching only for EOF — the publisher side of a TCPROS link.
    FrameAllocator alloc;
    std::function<void(uint32_t length)> on_frame;
    /// Fired once on the transition into kEstablished.  Receives the link
    /// so owners can file it without racing the factory's return value
    /// (a dial may establish before Dial() even returns to the caller).
    std::function<void(const std::shared_ptr<Link>&)> on_established;
    /// Fired when the LINK decides to close (peer hangup, socket error,
    /// handshake rejection, connect failure/timeout) — NOT on
    /// owner-initiated CloseNow/CloseSync, so owners never re-enter their
    /// own teardown.
    std::function<void(const std::shared_ptr<Link>&)> on_closed;
  };

  /// Wraps an accepted connection (server role, starts handshaking).
  /// Callable from any thread; the link activates on `loop`.
  static std::shared_ptr<Link> Accepted(TcpConnection conn, EventLoop* loop,
                                        Options options, Callbacks callbacks);

  /// Starts a nonblocking dial (client role).  Never blocks: the connect
  /// is initiated inline and completes (or fails, or times out) on `loop`.
  /// Always returns a link — a dial that can never succeed surfaces as
  /// on_closed, keeping the caller's error handling in one place.
  static std::shared_ptr<Link> Dial(const std::string& host, uint16_t port,
                                    EventLoop* loop, Options options,
                                    Callbacks callbacks);

  /// Use the factories; public only for std::make_shared.
  Link(EventLoop* loop, Options options, Callbacks callbacks);
  ~Link();
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Queues one outgoing frame (thread-safe; producers call this).  Returns
  /// true when the frame will never reach the wire — an older frame was
  /// evicted (drop-oldest at max_pending_frames) or the link is already
  /// closed — so callers can count drops.  Frames do not start moving until
  /// someone kicks FlushOnLoop (publication coalesces one kick per burst).
  bool EnqueueFrame(std::shared_ptr<const uint8_t[]> payload, uint32_t size);
  bool EnqueueFrame(const OutFrame& frame) {
    return EnqueueFrame(frame.payload, frame.raw);
  }

  /// Flushes the writer queue as far as the socket allows and re-arms
  /// interest.  Loop-thread-only (RunInLoop a kick from producers).
  void FlushOnLoop();

  /// Stops delivering frames: read interest is dropped until
  /// ResumeReading.  The pause lands between frames (never mid-frame), and
  /// unread bytes back up into the kernel buffer — TCP flow control then
  /// pushes back on the sender, exactly like the blocking reader the
  /// shaped path used to run.  Loop-thread-only.
  void PauseReading();
  /// Re-arms read interest (no-op unless kEstablished); level-triggered
  /// epoll re-reports any bytes that arrived while paused.
  /// Loop-thread-only.
  void ResumeReading();

  /// Owner-initiated close, loop-thread-only.  Does not fire on_closed.
  void CloseNow();
  /// Owner-initiated close from any thread; returns after the loop has
  /// torn the link down — no callback runs after this.  The teardown
  /// primitive for Publication/Subscription destructors.
  void CloseSync();

  [[nodiscard]] State state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool established() const noexcept {
    return state() == State::kEstablished;
  }

  struct Stats {
    uint64_t frames_enqueued = 0;
    uint64_t frames_evicted = 0;  // drop-oldest + enqueue-after-close
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
    uint64_t frames_stranded = 0;  // queued but unsent when the link closed
    uint64_t zerocopy_frames = 0;  // frames whose payload went out pinned
    uint64_t zerocopy_copied = 0;  // completions the kernel copied anyway
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Payload holders pinned awaiting kernel zerocopy completions
  /// (thread-safe; tests assert release ordering).
  [[nodiscard]] size_t PendingZeroCopyHolders();
  /// Whether the writer's zerocopy tier is currently on (thread-safe;
  /// tests observe the copied-fallback auto-disable).
  [[nodiscard]] bool ZeroCopyActive();

  [[nodiscard]] int fd() const noexcept { return conn_.fd(); }
  [[nodiscard]] EventLoop* loop() const noexcept { return loop_; }

 private:
  enum class Role : uint8_t { kServer, kClient };

  void StartServerOnLoop();
  void StartClientOnLoop(bool in_progress);
  void SetupZeroCopy();
  bool DrainErrorQueue();
  void MaybeArmWriteDeadline();
  void OnWriteDeadline(uint64_t bytes_snapshot);
  void Register();
  void UpdateInterest();
  [[nodiscard]] uint32_t CurrentInterest();
  void OnEvent(uint32_t events);
  void ResolveConnect();
  void EnterClientHandshake();
  void HandshakeReadable();
  void EnterEstablished();
  void ReadEstablished();
  void DrainDiscard();
  void PeekForEof();
  void FlushWriter();
  void CloseOnLoop(bool notify);

  // Completion-mode drivers (submission backends, net/io_backend.h):
  // instead of readiness events, one recv SQE and one send submission are
  // outstanding per link; their CQE callbacks land here on the loop
  // thread.  Connect and handshake stay readiness-driven on both backends.
  void ArmReceive();
  void OnRecvCqe(int32_t res);
  void PumpSend();
  void OnSendCqe(int32_t res);
  void OnSendZcCqe(int32_t res, uint32_t flags);

  /// Decrements the loop's live-link count exactly once (close or
  /// destruction, whichever comes first).
  void ReleaseLoopSlot() noexcept;

  EventLoop* const loop_;
  const Options options_;
  Callbacks callbacks_;
  Role role_ = Role::kServer;
  TcpConnection conn_;
  std::atomic<State> state_{State::kClosed};

  // True when the loop's backend carries I/O by submission (io_uring):
  // established-state receives and all sends travel as SQEs with
  // completion callbacks instead of readiness events + syscalls.
  const bool submit_mode_;

  // Loop-confined.
  bool registered_ = false;
  bool paused_ = false;
  bool write_deadline_armed_ = false;
  bool recv_armed_ = false;     // one outstanding recv SQE at a time
  bool send_inflight_ = false;  // one outstanding send submission at a time
  msghdr send_hdr_{};  // stable storage while a SENDMSG SQE is in flight
  std::vector<uint8_t> discard_buf_;  // submit-mode drain-and-discard window
  FrameReader reader_;
  std::vector<uint8_t> handshake_buf_;

  std::atomic<bool> loop_slot_held_{false};

  std::mutex write_mutex_;
  FrameWriter writer_;  // guarded by write_mutex_

  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> stranded_{0};
  std::atomic<uint64_t> zerocopy_frames_{0};
  std::atomic<uint64_t> zerocopy_copied_{0};
};

}  // namespace rsf::net
