// The I/O backend seam: the narrow interface EventLoop (net/poller.h)
// drives its platform I/O through.  Two implementations exist:
//
//   EpollBackend (net/epoll_backend.h) — the portable default.  Readiness
//   only: epoll_ctl registration, one epoll_wait per loop turn, and the
//   callers issue their own recv/sendmsg syscalls per link.
//
//   UringBackend (net/uring_backend.h) — io_uring over raw syscalls (no
//   liburing).  Implements the same readiness surface (level-style
//   POLL_ADD, re-armed per turn) PLUS a submission tier: links stage recv
//   and gathered-send operations as SQEs, and ONE io_uring_enter per loop
//   turn submits every staged operation across every link and reaps every
//   completion — the syscall count per delivered message collapses from
//   ~4-5 (sendmsg + recv×2-3 + an epoll_wait share) to a fraction of one
//   enter (see DESIGN.md §10 for the full inventory).
//
// Timer arming and cross-thread wakeup ride the readiness surface on both
// backends: EventLoop owns a timerfd and an eventfd and registers them
// like any other descriptor, so the backend never needs to know about
// timers — an io_uring_enter parked in GETEVENTS wakes on the eventfd's
// poll completion exactly as epoll_wait wakes on EPOLLIN.
//
// Selection: RSF_IO_BACKEND=epoll|uring|auto.  `epoll` is the default
// (portable everywhere); `uring` and `auto` probe io_uring_setup once at
// startup and fall back to epoll when the kernel or a seccomp policy
// refuses (EPERM/ENOSYS) — sandboxed hosts keep working, and the choice
// is logged once.
#pragma once

#include <sys/socket.h>
#include <sys/uio.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rsf::net {

/// Readiness bits passed to an fd's event callback (shared by EventLoop
/// and the backends; re-exported by net/poller.h).
inline constexpr uint32_t kEventReadable = 1u << 0;
inline constexpr uint32_t kEventWritable = 1u << 1;
/// Error/hangup fired.  Always delivered alongside the folded read/write
/// bits — most handlers ignore it and let the next syscall surface the
/// errno, but epoll-mode zerocopy links must see it explicitly: a socket
/// with MSG_ZEROCOPY completions pending raises EPOLLERR (level-triggered,
/// unmaskable) until the error queue is drained.
inline constexpr uint32_t kEventError = 1u << 2;

/// Flags passed to a submission's CompletionFn (backend-neutral
/// translation of the io_uring CQE flags the transport cares about).
inline constexpr uint32_t kCompletionMore = 1u << 0;   // more CQEs follow
inline constexpr uint32_t kCompletionNotif = 1u << 1;  // SEND_ZC buffer release
inline constexpr uint32_t kCompletionZcCopied = 1u << 2;  // kernel copied anyway

/// One readiness event out of IoBackend::Wait.  `events` carries raw
/// kEvent* bits; EventLoop folds error into the armed directions exactly
/// as the pre-seam epoll loop did.
struct ReadyEvent {
  int fd = -1;
  uint32_t events = 0;
};

/// Per-backend-instance (i.e. per-loop) syscall/submission counters, plus
/// the process-wide aggregate below.  Tests and the connection-scaling
/// bench divide deltas of these by delivered-message counts to PROVE the
/// uring backend batches syscalls instead of inferring it from latency.
struct IoBackendCounters {
  uint64_t enter_calls = 0;     // io_uring_enter syscalls
  uint64_t sqes_submitted = 0;  // SQEs handed to the kernel
  uint64_t cqes_reaped = 0;     // CQEs consumed from the ring
  uint64_t epoll_waits = 0;     // epoll_wait syscalls
  uint64_t epoll_ctls = 0;      // epoll_ctl syscalls
};

/// The backend interface.  All methods except the thread-safety-noted ones
/// are loop-thread-only (EventLoop construction, before Start, counts as
/// loop-thread: no concurrency exists yet).
class IoBackend {
 public:
  using CompletionFn = std::function<void(int32_t res, uint32_t flags)>;

  virtual ~IoBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Registers `fd` for the given kEvent* interest bits.  False on
  /// registration failure (the caller then drops the handler).
  virtual bool Add(int fd, uint32_t interest) = 0;
  /// Replaces the interest bits.  Interest 0 parks the fd.
  virtual void Mod(int fd, uint32_t interest) = 0;
  /// Unregisters `fd` and cancels every submission targeting it; any
  /// not-yet-invoked completion callback for the fd is dropped.  Must be
  /// called BEFORE the fd is closed (in-flight uring operations hold a
  /// file reference that would otherwise keep the socket alive past
  /// close(2)).
  virtual void Del(int fd) = 0;

  /// One loop turn: submits everything staged since the last call, waits
  /// for activity, invokes completion callbacks for finished submissions,
  /// and appends readiness events to `*ready`.  The uring backend does the
  /// submit AND the wait in a single io_uring_enter.  Returns false on a
  /// fatal backend error (the loop exits).
  virtual bool Wait(std::vector<ReadyEvent>* ready) = 0;

  /// Per-instance counter snapshot (thread-safe).
  [[nodiscard]] virtual IoBackendCounters counters() const noexcept = 0;

  // ---- submission tier ----
  // Epoll keeps the defaults: no submission support, callers fall back to
  // readiness + per-link syscalls.

  [[nodiscard]] virtual bool SupportsSubmission() const noexcept {
    return false;
  }
  /// Whether SubmitSendZc is usable (kernel op probe).
  [[nodiscard]] virtual bool SupportsZeroCopySend() const noexcept {
    return false;
  }

  /// Stages a recv of up to `len` bytes into `buf` (which must stay valid
  /// until the completion fires or Del(fd) runs).  `flags` are recv(2)
  /// flags (MSG_WAITALL makes the kernel retry short reads internally).
  /// The callback gets the byte count, 0 on EOF, or -errno.
  virtual bool SubmitRecv(int fd, void* buf, size_t len, int flags,
                          CompletionFn cb) {
    (void)fd; (void)buf; (void)len; (void)flags; (void)cb;
    return false;
  }

  /// Stages one gathered send.  `hdr` (and the iovec array and buffers it
  /// points at) must stay valid until the completion fires or Del(fd)
  /// runs.  MSG_NOSIGNAL is always added.  Short sends complete with the
  /// partial count; the caller restages the remainder.
  virtual bool SubmitSendMsg(int fd, msghdr* hdr, CompletionFn cb) {
    (void)fd; (void)hdr; (void)cb;
    return false;
  }

  /// Stages one zero-copy send of a single buffer (the pinned-payload
  /// tier).  The callback fires twice: once with the byte count and
  /// kCompletionMore (data accepted, buffer still pinned), then with
  /// kCompletionNotif (and kCompletionZcCopied when the kernel copied
  /// after all) once the pinned pages are released.  On an error result
  /// without kCompletionMore no notification follows.  The caller keeps
  /// the buffer alive until the notification (capture the holder in `cb`).
  virtual bool SubmitSendZc(int fd, const void* buf, size_t len,
                            CompletionFn cb) {
    (void)fd; (void)buf; (void)len; (void)cb;
    return false;
  }
};

/// Which backend to build a loop on.
enum class IoBackendKind : uint8_t { kEpoll, kUring };

[[nodiscard]] const char* IoBackendKindName(IoBackendKind kind) noexcept;

/// Resolves RSF_IO_BACKEND (epoll|uring|auto; default epoll).  `uring`
/// and `auto` return kUring only when the setup probe succeeds; the
/// resolved choice is logged once per process.
IoBackendKind ResolveIoBackendKind();

/// Whether io_uring_setup succeeds on this host (cached probe).
/// RSF_URING_FORCE_UNAVAILABLE=1 forces false — the test hook for the
/// auto-fallback path on hosts where the real probe would succeed.
bool UringAvailable();

/// Builds a backend of `kind`; a uring request falls back to epoll (with
/// a logged reason) when the probe or ring setup fails, so construction
/// never fails.
std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind);

/// Process-wide syscall counters for the transport data path: the
/// backend aggregates (every loop) plus the socket-layer sendmsg/recv
/// shims.  The connection bench and the batching tests difference this
/// around a run and divide by deliveries.
struct IoSyscallCounters {
  uint64_t enter_calls = 0;
  uint64_t sqes_submitted = 0;
  uint64_t cqes_reaped = 0;
  uint64_t epoll_waits = 0;
  uint64_t epoll_ctls = 0;
  uint64_t sendmsg_calls = 0;  // socket.cpp WriteSyscallCount
  uint64_t recv_calls = 0;     // socket.cpp RecvSyscallCount

  /// Transport syscalls: what a delivery actually pays the kernel.
  [[nodiscard]] uint64_t TotalSyscalls() const noexcept {
    return enter_calls + epoll_waits + epoll_ctls + sendmsg_calls +
           recv_calls;
  }
};
IoSyscallCounters GlobalIoCounters() noexcept;

// Process-wide counter hooks for the backends (relaxed telemetry).
namespace backend_counters {
void AddEnter(uint64_t n) noexcept;
void AddSqes(uint64_t n) noexcept;
void AddCqes(uint64_t n) noexcept;
void AddEpollWaits(uint64_t n) noexcept;
void AddEpollCtls(uint64_t n) noexcept;
}  // namespace backend_counters

}  // namespace rsf::net
