// The io_uring backend, written against the raw io_uring_setup /
// io_uring_enter / io_uring_register syscalls (no liburing).
//
// Shape of a loop turn (Wait):
//   1. Re-arm single-shot POLL_ADD SQEs for every registered fd whose
//      poll fired last turn (POLL_ADD does an initial level check, so an
//      fd that is *already* ready completes immediately — this gives the
//      level-triggered semantics EventLoop's handlers were written
//      against, with the re-arms batched into the same enter as
//      everything else).
//   2. ONE io_uring_enter submits every SQE staged since the last turn —
//      all links' sends, recvs, poll re-arms — and, when the completion
//      queue is empty, parks in GETEVENTS until something lands.  When
//      CQEs are already queued and nothing is staged, the turn costs
//      zero syscalls.
//   3. Reap CQEs: completion callbacks (link send/recv) run inline;
//      poll completions are translated to ReadyEvents for EventLoop's
//      dispatch.
//
// Removal protocol: in-flight SQEs hold a reference to the file, so
// close(2) alone would neither cancel them nor send FIN.  Del(fd)
// therefore stages IORING_OP_ASYNC_CANCEL with
// IORING_ASYNC_CANCEL_FD|ALL and submits it synchronously before
// returning — the one place the backend spends an extra enter — and
// drops the fd's completion callbacks so late CQEs (-ECANCELED included)
// are ignored.
//
// Deliberate deviations from the "obvious" io_uring idioms, and why
// (DESIGN.md §10 discusses both):
//   - No multishot RECV with provided buffer rings: provided buffers are
//     kernel-picked, so frames would land in ring buffers and need a
//     copy into the SFM arena — silently breaking PR 3's one-copy
//     kernel→arena property.  Instead each link keeps one outstanding
//     RECV SQE aimed directly at its FrameReader window (header bytes,
//     then the ArenaPool block itself), MSG_WAITALL so the kernel
//     retries short reads without extra round-trips.
//   - No IORING_REGISTER_BUFFERS over the arena pool: arenas are pooled
//     per size class and churn with traffic; re-registering per block
//     costs more syscalls than it saves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/io_backend.h"

struct io_uring_sqe;
struct io_uring_cqe;

namespace rsf::net {

class UringBackend final : public IoBackend {
 public:
  /// Whether io_uring_setup succeeds on this host (uncached raw probe —
  /// callers cache via net::UringAvailable).
  static bool ProbeSetup();

  /// Builds a ring; nullptr when setup, mmap, or the op probe shows the
  /// kernel can't run the readiness surface (the factory then falls back
  /// to epoll).
  static std::unique_ptr<UringBackend> Create();
  ~UringBackend() override;

  [[nodiscard]] const char* name() const noexcept override { return "uring"; }

  bool Add(int fd, uint32_t interest) override;
  void Mod(int fd, uint32_t interest) override;
  void Del(int fd) override;
  bool Wait(std::vector<ReadyEvent>* ready) override;
  [[nodiscard]] IoBackendCounters counters() const noexcept override;

  [[nodiscard]] bool SupportsSubmission() const noexcept override {
    return supports_submission_;
  }
  [[nodiscard]] bool SupportsZeroCopySend() const noexcept override {
    return supports_send_zc_;
  }
  bool SubmitRecv(int fd, void* buf, size_t len, int flags,
                  CompletionFn cb) override;
  bool SubmitSendMsg(int fd, msghdr* hdr, CompletionFn cb) override;
  bool SubmitSendZc(int fd, const void* buf, size_t len,
                    CompletionFn cb) override;

 private:
  struct FdState {
    uint32_t interest = 0;
    uint64_t armed_poll_id = 0;  // 0 = no poll SQE outstanding
  };
  struct Pending {
    int fd = -1;
    bool is_poll = false;
    CompletionFn cb;  // completion submissions only
  };

  UringBackend() = default;
  bool SetupRing();
  void ProbeOps();
  /// R_DISABLED rings are enabled lazily from the first submitting thread
  /// (the loop thread), which is what binds SINGLE_ISSUER to it.
  void EnsureEnabled();

  io_uring_sqe* GetSqe();
  /// Flushes staged SQEs without waiting (SQ pressure, Del).
  void SubmitNow();
  void ArmPendingPolls();
  void ReapCqes(std::vector<ReadyEvent>* ready);
  void HandleCqe(uint64_t user_data, int32_t res, uint32_t flags,
                 std::vector<ReadyEvent>* ready);
  [[nodiscard]] unsigned CqReadyCount() const noexcept;
  uint64_t StagePoll(int fd, uint32_t interest);

  int ring_fd_ = -1;
  // SQ ring mapping.
  void* sq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  // CQ ring mapping (same mapping as SQ under FEAT_SINGLE_MMAP).
  void* cq_ring_ptr_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  unsigned to_submit_ = 0;  // staged but not yet handed to the kernel
  bool needs_enable_ = false;  // ring created R_DISABLED, not yet enabled

  bool supports_submission_ = false;
  bool supports_send_zc_ = false;

  uint64_t next_id_ = 1;
  std::unordered_map<int, FdState> fds_;
  std::unordered_map<uint64_t, Pending> pending_;
  std::vector<int> rearm_;  // fds whose poll needs (re-)arming next turn

  std::atomic<uint64_t> enter_calls_{0};
  std::atomic<uint64_t> sqes_submitted_{0};
  std::atomic<uint64_t> cqes_reaped_{0};
};

}  // namespace rsf::net
