#include "net/uring_backend.h"

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace rsf::net {
namespace {

// Raw syscall shims — the whole point of this backend is that there is no
// liburing in the container, and the syscall surface is tiny anyway.
int SysUringSetup(unsigned entries, io_uring_params* params) {
#ifdef __NR_io_uring_setup
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
#else
  errno = ENOSYS;
  return -1;
#endif
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
#ifdef __NR_io_uring_enter
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
#else
  errno = ENOSYS;
  return -1;
#endif
}

int SysUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
#ifdef __NR_io_uring_register
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
#else
  errno = ENOSYS;
  return -1;
#endif
}

// Ring-shared memory accessors.  The kernel is the other party, so plain
// loads/stores are not enough: tail publication needs release, peer-index
// reads need acquire.  __atomic builtins let us do this on the mmap'd
// unsigned words without UB gymnastics.
unsigned LoadAcquire(const unsigned* p) noexcept {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(unsigned* p, unsigned v) noexcept {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

constexpr unsigned kSqEntries = 1024;
constexpr unsigned kCqEntries = 4096;

// Setup flags newer than some container headers; values are kernel ABI.
#ifndef IORING_SETUP_COOP_TASKRUN
#define IORING_SETUP_COOP_TASKRUN (1U << 8)
#endif
#ifndef IORING_SETUP_SINGLE_ISSUER
#define IORING_SETUP_SINGLE_ISSUER (1U << 12)
#endif
#ifndef IORING_SETUP_DEFER_TASKRUN
#define IORING_SETUP_DEFER_TASKRUN (1U << 13)
#endif
#ifndef IORING_SETUP_R_DISABLED
#define IORING_SETUP_R_DISABLED (1U << 6)
#endif
#ifndef IORING_REGISTER_ENABLE_RINGS
#define IORING_REGISTER_ENABLE_RINGS 12
#endif

uint32_t PollMaskFor(uint32_t interest) noexcept {
  uint32_t mask = 0;
  if (interest & kEventReadable) mask |= POLLIN | POLLRDHUP | POLLPRI;
  if (interest & kEventWritable) mask |= POLLOUT;
  return mask;
}

}  // namespace

bool UringBackend::ProbeSetup() {
  io_uring_params params{};
  const int fd = SysUringSetup(8, &params);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::unique_ptr<UringBackend> UringBackend::Create() {
  std::unique_ptr<UringBackend> backend(new UringBackend());
  if (!backend->SetupRing()) return nullptr;
  backend->ProbeOps();
  return backend;
}

bool UringBackend::SetupRing() {
  // The per-op cost of io_uring on a busy loop is dominated by task_work
  // scheduling: by default completions interrupt the submitter (IPI-style
  // TWA_SIGNAL), which on a loop that is ABOUT to call enter anyway is
  // pure overhead.  COOP_TASKRUN (5.19) defers the interrupt to the next
  // kernel/user transition; DEFER_TASKRUN (6.1, requires SINGLE_ISSUER)
  // runs completion work only inside our own GETEVENTS enter — the
  // cheapest possible arrangement for a single-threaded loop.
  // SINGLE_ISSUER binds the ring to the enabling task, so the ring starts
  // R_DISABLED and the loop thread enables it on first use.  Older
  // kernels reject unknown flags with EINVAL; degrade tier by tier.
  constexpr unsigned kBase = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
  const unsigned flag_tiers[] = {
      kBase | IORING_SETUP_COOP_TASKRUN | IORING_SETUP_SINGLE_ISSUER |
          IORING_SETUP_DEFER_TASKRUN | IORING_SETUP_R_DISABLED,
      kBase | IORING_SETUP_COOP_TASKRUN,
      kBase,
  };
  io_uring_params params{};
  for (const unsigned flags : flag_tiers) {
    params = io_uring_params{};
    params.flags = flags;
    params.cq_entries = kCqEntries;
    ring_fd_ = SysUringSetup(kSqEntries, &params);
    if (ring_fd_ >= 0) {
      needs_enable_ = (flags & IORING_SETUP_R_DISABLED) != 0;
      break;
    }
    if (errno != EINVAL) break;  // EINVAL = unknown flag, try the next tier
  }
  if (ring_fd_ < 0) {
    RSF_WARN("io_uring_setup failed: %s", std::strerror(errno));
    return false;
  }

  sq_entries_ = params.sq_entries;
  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }

  sq_ring_ptr_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ptr_ == MAP_FAILED) {
    RSF_WARN("io_uring sq mmap failed: %s", std::strerror(errno));
    sq_ring_ptr_ = nullptr;
    return false;
  }
  if (single_mmap) {
    cq_ring_ptr_ = sq_ring_ptr_;
  } else {
    cq_ring_ptr_ =
        ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ptr_ == MAP_FAILED) {
      RSF_WARN("io_uring cq mmap failed: %s", std::strerror(errno));
      cq_ring_ptr_ = nullptr;
      return false;
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    RSF_WARN("io_uring sqe mmap failed: %s", std::strerror(errno));
    return false;
  }
  sqes_ = static_cast<io_uring_sqe*>(sqes);

  auto* sq_base = static_cast<uint8_t*>(sq_ring_ptr_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);

  auto* cq_base = static_cast<uint8_t*>(cq_ring_ptr_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
  return true;
}

void UringBackend::ProbeOps() {
  // IORING_REGISTER_PROBE tells us which opcodes this kernel implements.
  // POLL_ADD (5.1) is the floor; the submission tier additionally needs
  // RECV/SENDMSG/ASYNC_CANCEL (5.6), and the zerocopy tier SEND_ZC (6.0).
  // A failed probe (pre-5.6 kernel) leaves the backend readiness-only.
  //
  // The probe runs against a tiny throwaway ring: the real ring may be
  // R_DISABLED (registration is refused until enable), and enabling it
  // here would bind SINGLE_ISSUER to the constructing thread instead of
  // the loop thread.  Opcode support is a kernel property, not a ring
  // property.
  io_uring_params probe_params{};
  const int probe_fd = SysUringSetup(8, &probe_params);
  if (probe_fd < 0) {
    RSF_WARN("io_uring probe-ring setup failed (%s): submission tier "
             "disabled", std::strerror(errno));
    return;
  }
  constexpr unsigned kProbeOps = 256;
  std::vector<uint8_t> buf(
      sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op), 0);
  auto* probe = reinterpret_cast<io_uring_probe*>(buf.data());
  const int probe_ret =
      SysUringRegister(probe_fd, IORING_REGISTER_PROBE, probe, kProbeOps);
  ::close(probe_fd);
  if (probe_ret != 0) {
    RSF_WARN("io_uring op probe failed (%s): submission tier disabled",
             std::strerror(errno));
    return;
  }
  auto supported = [probe](unsigned op) {
    return op <= probe->last_op &&
           (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
  };
  supports_submission_ = supported(IORING_OP_RECV) &&
                         supported(IORING_OP_SENDMSG) &&
                         supported(IORING_OP_ASYNC_CANCEL);
  supports_send_zc_ = supports_submission_ && supported(IORING_OP_SEND_ZC);
}

UringBackend::~UringBackend() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != sq_ring_ptr_) {
    ::munmap(cq_ring_ptr_, cq_ring_bytes_);
  }
  if (sq_ring_ptr_ != nullptr) ::munmap(sq_ring_ptr_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

io_uring_sqe* UringBackend::GetSqe() {
  unsigned tail = *sq_tail_;  // we are the only producer
  if (tail - LoadAcquire(sq_head_) >= sq_entries_) {
    SubmitNow();
    if (tail - LoadAcquire(sq_head_) >= sq_entries_) {
      // Kernel refused to drain the SQ (fatal-ish); callers treat a null
      // SQE as a failed submission.
      return nullptr;
    }
  }
  const unsigned idx = tail & sq_mask_;
  io_uring_sqe* sqe = &sqes_[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  StoreRelease(sq_tail_, tail + 1);
  ++to_submit_;
  return sqe;
}

void UringBackend::EnsureEnabled() {
  if (!needs_enable_) return;
  needs_enable_ = false;
  // First submission, necessarily from the loop thread — enabling here is
  // what binds SINGLE_ISSUER to it.
  if (SysUringRegister(ring_fd_, IORING_REGISTER_ENABLE_RINGS, nullptr, 0) !=
      0) {
    RSF_WARN("io_uring enable_rings failed: %s", std::strerror(errno));
  }
}

void UringBackend::SubmitNow() {
  EnsureEnabled();
  while (to_submit_ > 0) {
    enter_calls_.fetch_add(1, std::memory_order_relaxed);
    backend_counters::AddEnter(1);
    const int ret = SysUringEnter(ring_fd_, to_submit_, 0, 0);
    if (ret < 0) {
      if (errno == EINTR) continue;
      RSF_WARN("io_uring_enter(submit) failed: %s", std::strerror(errno));
      break;
    }
    sqes_submitted_.fetch_add(static_cast<uint64_t>(ret),
                              std::memory_order_relaxed);
    backend_counters::AddSqes(static_cast<uint64_t>(ret));
    to_submit_ -= static_cast<unsigned>(ret);
    if (ret == 0) break;
  }
}

uint64_t UringBackend::StagePoll(int fd, uint32_t interest) {
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return 0;
  const uint64_t id = next_id_++;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = PollMaskFor(interest);
  sqe->user_data = id;
  pending_[id] = Pending{fd, /*is_poll=*/true, nullptr};
  return id;
}

bool UringBackend::Add(int fd, uint32_t interest) {
  FdState& state = fds_[fd];
  state.interest = interest;
  if (interest != 0) rearm_.push_back(fd);
  return true;
}

void UringBackend::Mod(int fd, uint32_t interest) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  if (it->second.armed_poll_id != 0) {
    // Retire the stale poll: cancel by user_data and forget it, so its
    // -ECANCELED (or an already-queued completion for the old mask) is
    // dropped on arrival.  The cancel rides the next batched enter.
    io_uring_sqe* sqe = GetSqe();
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->fd = -1;
      sqe->addr = it->second.armed_poll_id;
      sqe->user_data = next_id_++;  // no pending entry: CQE dropped
    }
    pending_.erase(it->second.armed_poll_id);
    it->second.armed_poll_id = 0;
  }
  if (interest != 0) rearm_.push_back(fd);
}

void UringBackend::Del(int fd) {
  bool had_ops = false;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.fd == fd) {
      had_ops = true;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  fds_.erase(fd);
  if (!had_ops) return;
  // In-flight SQEs hold a file reference: the caller is about to close the
  // fd and needs the kernel side gone FIRST (a parked send would otherwise
  // keep the socket open past close, and no FIN would go out).  This is
  // the one removal-path enter the batching design pays for.
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = fd;
  sqe->cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
  sqe->user_data = next_id_++;  // no pending entry: CQE dropped
  SubmitNow();
}

void UringBackend::ArmPendingPolls() {
  for (const int fd : rearm_) {
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;           // removed since queued
    if (it->second.interest == 0) continue;   // parked since queued
    if (it->second.armed_poll_id != 0) continue;  // already armed
    it->second.armed_poll_id = StagePoll(fd, it->second.interest);
  }
  rearm_.clear();
}

unsigned UringBackend::CqReadyCount() const noexcept {
  return LoadAcquire(cq_tail_) - *cq_head_;
}

bool UringBackend::Wait(std::vector<ReadyEvent>* ready) {
  EnsureEnabled();
  ArmPendingPolls();
  if (CqReadyCount() == 0) {
    // The batched turn: one enter submits everything staged since the
    // last turn and parks until at least one completion lands.
    int ret;
    do {
      enter_calls_.fetch_add(1, std::memory_order_relaxed);
      backend_counters::AddEnter(1);
      ret = SysUringEnter(ring_fd_, to_submit_, 1, IORING_ENTER_GETEVENTS);
    } while (ret < 0 && (errno == EINTR || errno == EBUSY));
    if (ret < 0) {
      RSF_ERROR("io_uring_enter failed: %s", std::strerror(errno));
      return false;
    }
    sqes_submitted_.fetch_add(static_cast<uint64_t>(ret),
                              std::memory_order_relaxed);
    backend_counters::AddSqes(static_cast<uint64_t>(ret));
    to_submit_ -= static_cast<unsigned>(ret);
  } else if (to_submit_ > 0) {
    SubmitNow();
  }
  // else: completions already queued and nothing staged — a free turn.
  ReapCqes(ready);
  return true;
}

void UringBackend::ReapCqes(std::vector<ReadyEvent>* ready) {
  unsigned head = *cq_head_;
  while (head != LoadAcquire(cq_tail_)) {
    const io_uring_cqe& slot = cqes_[head & cq_mask_];
    // Copy out, then publish the head BEFORE dispatch: a callback may call
    // Del → SubmitNow, and the kernel must see the slot as consumed.
    const uint64_t user_data = slot.user_data;
    const int32_t res = slot.res;
    const uint32_t flags = slot.flags;
    ++head;
    StoreRelease(cq_head_, head);
    cqes_reaped_.fetch_add(1, std::memory_order_relaxed);
    backend_counters::AddCqes(1);
    HandleCqe(user_data, res, flags, ready);
  }
}

void UringBackend::HandleCqe(uint64_t user_data, int32_t res, uint32_t flags,
                             std::vector<ReadyEvent>* ready) {
  auto it = pending_.find(user_data);
  if (it == pending_.end()) return;  // cancelled or unknown: drop
  if (it->second.is_poll) {
    const int fd = it->second.fd;
    pending_.erase(it);
    auto fit = fds_.find(fd);
    if (fit == fds_.end()) return;
    fit->second.armed_poll_id = 0;
    uint32_t bits = 0;
    if (res < 0) {
      // A poll that itself failed: surface as an error so the handler's
      // next syscall reports the errno.
      bits = kEventReadable | kEventError;
    } else {
      const auto revents = static_cast<uint32_t>(res);
      if (revents & (POLLIN | POLLRDHUP | POLLPRI)) bits |= kEventReadable;
      if (revents & POLLOUT) bits |= kEventWritable;
      if (revents & (POLLERR | POLLHUP)) bits |= kEventError;
    }
    if (bits != 0) ready->push_back({fd, bits});
    // Single-shot poll consumed; queue the re-arm for the next turn.  The
    // re-armed POLL_ADD level-checks on submit, so un-drained readiness
    // fires again immediately — epoll level-triggered semantics.
    if (fit->second.interest != 0) rearm_.push_back(fd);
    return;
  }
  // Submission completion.  SEND_ZC delivers two CQEs under one
  // user_data: data (F_MORE, keep the entry) then the buffer-release
  // notification (F_NOTIF, entry retired).
  uint32_t out_flags = 0;
  int32_t out_res = res;
  if (flags & IORING_CQE_F_MORE) out_flags |= kCompletionMore;
  if (flags & IORING_CQE_F_NOTIF) {
    out_flags |= kCompletionNotif;
    if (static_cast<uint32_t>(res) & IORING_NOTIF_USAGE_ZC_COPIED) {
      out_flags |= kCompletionZcCopied;
    }
    out_res = 0;
  }
  CompletionFn cb = it->second.cb;
  if ((flags & IORING_CQE_F_MORE) == 0) pending_.erase(it);
  cb(out_res, out_flags);
}

bool UringBackend::SubmitRecv(int fd, void* buf, size_t len, int flags,
                              CompletionFn cb) {
  if (!supports_submission_) return false;
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return false;
  const uint64_t id = next_id_++;
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->msg_flags = static_cast<uint32_t>(flags);
  sqe->user_data = id;
  pending_[id] = Pending{fd, /*is_poll=*/false, std::move(cb)};
  return true;
}

bool UringBackend::SubmitSendMsg(int fd, msghdr* hdr, CompletionFn cb) {
  if (!supports_submission_) return false;
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return false;
  const uint64_t id = next_id_++;
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(hdr);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = id;
  pending_[id] = Pending{fd, /*is_poll=*/false, std::move(cb)};
  return true;
}

bool UringBackend::SubmitSendZc(int fd, const void* buf, size_t len,
                                CompletionFn cb) {
  if (!supports_send_zc_) return false;
  io_uring_sqe* sqe = GetSqe();
  if (sqe == nullptr) return false;
  const uint64_t id = next_id_++;
  sqe->opcode = IORING_OP_SEND_ZC;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->msg_flags = MSG_NOSIGNAL;
  // REPORT_USAGE makes the notification CQE say whether the kernel fell
  // back to copying — feeds the same copied-completion auto-disable the
  // errqueue path uses.
  sqe->ioprio = IORING_SEND_ZC_REPORT_USAGE;
  sqe->user_data = id;
  pending_[id] = Pending{fd, /*is_poll=*/false, std::move(cb)};
  return true;
}

IoBackendCounters UringBackend::counters() const noexcept {
  IoBackendCounters out;
  out.enter_calls = enter_calls_.load(std::memory_order_relaxed);
  out.sqes_submitted = sqes_submitted_.load(std::memory_order_relaxed);
  out.cqes_reaped = cqes_reaped_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace rsf::net
