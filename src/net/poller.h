// The event-driven I/O core: a reactor that carries every transport link
// in the process, built on a pluggable I/O backend (net/io_backend.h).
//
// One `EventLoop` owns one IoBackend instance and one thread; every
// descriptor registered with it is serviced by that thread alone, so
// per-connection state machines (net/link.h, net/framing.h) never need
// their own synchronization.  The backend is epoll by default; with
// RSF_IO_BACKEND=uring (or auto, on capable hosts) it is an io_uring
// ring, where one io_uring_enter per loop turn submits every link's
// staged send/recv SQEs and reaps every completion — the syscall-
// batching optimization this layer exists to enable (DESIGN.md §10).
// A small fixed pool of loops (`Reactor`, sized from the host's core
// count) carries every TCP publication and subscription link in the
// process — total transport threads stay constant no matter how many
// links exist, which is what lets node/topic counts scale past the point
// where one thread per link exhausts the scheduler (HPRM/DORA make the
// same argument; see DESIGN.md §8).
//
// Cross-thread arming goes through an eventfd wakeup: `Post` enqueues a
// task and kicks the eventfd, `RunInLoop` runs inline when already on the
// loop thread, and `RunSync` blocks until the loop has executed the task —
// the teardown primitive that lets Publication/Subscription destructors
// guarantee no callback touches freed state.  `RunAfter` schedules delayed
// tasks on a per-loop timerfd — the facility that lets SimLink-shaped
// deliveries pace themselves on the loop instead of sleeping a dedicated
// reader thread.  Both descriptors are registered with the backend like
// any other fd, so timers and wakeups need no backend-specific plumbing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/io_backend.h"

namespace rsf::net {

/// One I/O backend instance + one servicing thread.  Registration (`Add`,
/// `SetInterest`, `Remove`) is loop-thread-only: call through RunInLoop /
/// Post from other threads.  Callbacks run on the loop thread.
class EventLoop {
 public:
  using EventCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  /// Builds on the process-selected backend (RSF_IO_BACKEND).
  EventLoop();
  /// Builds on a specific backend kind (tests, the bench).  A uring
  /// request still falls back to epoll when the host can't run it.
  explicit EventLoop(IoBackendKind kind);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the servicing thread.  Idempotent.
  void Start();
  /// Stops the loop and joins the thread.  Idempotent; safe to call with
  /// handlers still registered (they are dropped, closing nothing — fd
  /// ownership stays with the handler's captures).  Pending timers are
  /// DISCARDED (unlike accepted Post tasks, which are guaranteed to run):
  /// a delayed task firing after its loop died has no state left to pace.
  void Stop();

  [[nodiscard]] bool InLoopThread() const noexcept;
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Queues `task` for the loop thread and wakes it.  Returns false (task
  /// not queued) once Stop has begun; every accepted task is guaranteed to
  /// run — by the loop, or by Stop's post-join drain.
  bool Post(Task task);
  /// Runs `task` inline when on the loop thread, else Post.
  void RunInLoop(Task task);
  /// Runs `task` on the loop thread and waits for completion.  Inline when
  /// already on the loop thread; also inline when the loop is not running
  /// (teardown after Stop — there is no concurrent access left to race).
  void RunSync(Task task);

  /// Schedules `task` to run on the loop thread once `delay_nanos` have
  /// elapsed (timerfd precision; delay 0 fires on the next loop turn).
  /// Callable from any thread.  Tasks with equal deadlines run in
  /// scheduling order.  Returns false once Stop has begun; pending timers
  /// are discarded at Stop.  There is no cancellation — capture weak
  /// pointers and let a stale firing no-op.
  bool RunAfter(uint64_t delay_nanos, Task task);

  /// Registers `fd` with the given interest bits.  The callback receives
  /// the ready bits; error/hangup conditions are folded into readability
  /// (and writability, when armed) so the next syscall surfaces the errno.
  /// Loop-thread-only.
  void Add(int fd, uint32_t interest, EventCallback callback);
  /// Replaces the interest bits of a registered fd.  Interest 0 parks the
  /// fd (no events delivered until re-armed) — the shaped-delivery pause.
  /// Loop-thread-only.
  void SetInterest(int fd, uint32_t interest);
  /// Unregisters `fd`; no-op if unknown (removal paths may race benignly).
  /// Cancels any submissions targeting the fd — call BEFORE closing it.
  /// Safe to call from inside the fd's own callback.  Loop-thread-only.
  void Remove(int fd);

  /// The backend carrying this loop's I/O.  Links use it directly for the
  /// submission tier (SubmitRecv/SubmitSendMsg/SubmitSendZc); completion
  /// callbacks run on the loop thread, inside the Wait that reaped them.
  [[nodiscard]] IoBackend* io_backend() noexcept { return backend_.get(); }
  [[nodiscard]] const char* backend_name() const noexcept {
    return backend_->name();
  }

  /// Live-link accounting for least-loaded loop assignment
  /// (Reactor::NextLoop).  Incremented when a Link binds to this loop,
  /// decremented exactly once when it closes.  Any thread.
  void NoteLinkBound() noexcept {
    live_links_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteLinkClosed() noexcept {
    live_links_.fetch_sub(1, std::memory_order_relaxed);
  }
  [[nodiscard]] size_t LiveLinks() const noexcept {
    return live_links_.load(std::memory_order_relaxed);
  }

  /// Registered descriptor count (tests; loop-confined — read via RunSync).
  [[nodiscard]] size_t NumHandlers() const;
  /// Armed (not yet fired) timer count (tests; loop-confined — read via
  /// RunSync).
  [[nodiscard]] size_t NumTimers() const;

 private:
  struct Handler {
    uint32_t interest = 0;
    EventCallback callback;
  };

  void Run();
  void Wakeup();
  void AddTimerOnLoop(uint64_t deadline_nanos, Task task);
  void ArmTimerFd(uint64_t now_nanos);
  void FireDueTimers();

  std::unique_ptr<IoBackend> backend_;
  int wake_fd_ = -1;
  int timer_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  // Loop-thread-only.  Values are shared_ptr so Remove() can erase the map
  // entry while the handler's own callback is still executing (the dispatch
  // loop keeps the Handler alive through its local reference).
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;

  // Loop-thread-only: deadline → task, FIFO-stable for equal deadlines
  // (multimap inserts equivalent keys at the upper bound).
  std::multimap<uint64_t, Task> timers_;

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;
  bool accepting_ = false;  // guarded by tasks_mutex_

  std::atomic<size_t> live_links_{0};
};

/// The process-wide loop pool.  Lazily started on first use; each link
/// binds to the least-loaded loop at assignment time.
class Reactor {
 public:
  /// Pool size: RSF_REACTOR_THREADS env override (1-64), else sized from
  /// the host — clamp(hardware_concurrency() / 4, 2, 8).  The chosen size
  /// is logged once at startup.
  static Reactor& Get();

  /// The loop carrying the fewest live links right now (ties broken
  /// round-robin, so idle pools still rotate).  Blind round-robin strands
  /// hot topics on one loop at small pool sizes — a subscription fan-in
  /// that lands N links on loop 0 while loop 1 idles; counting live links
  /// (incremented at Link construction, decremented on close) spreads by
  /// actual occupancy instead.
  EventLoop* NextLoop();
  [[nodiscard]] size_t NumLoops() const noexcept { return loops_.size(); }

 private:
  Reactor();
  ~Reactor();

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_{0};
};

}  // namespace rsf::net
