// The event-driven I/O core: an epoll-based reactor that carries every
// transport link in the process.
//
// One `EventLoop` owns one epoll instance and one thread; every descriptor
// registered with it is serviced by that thread alone, so per-connection
// state machines (net/link.h, net/framing.h) never need their own
// synchronization.  A small fixed pool of loops (`Reactor`, sized from the
// host's core count) carries every TCP publication and subscription link in
// the process — total transport threads stay constant no matter how many
// links exist, which is what lets node/topic counts scale past the point
// where one thread per link exhausts the scheduler (HPRM/DORA make the same
// argument; see DESIGN.md §8).
//
// Cross-thread arming goes through an eventfd wakeup: `Post` enqueues a
// task and kicks the eventfd, `RunInLoop` runs inline when already on the
// loop thread, and `RunSync` blocks until the loop has executed the task —
// the teardown primitive that lets Publication/Subscription destructors
// guarantee no callback touches freed state.  `RunAfter` schedules delayed
// tasks on a per-loop timerfd — the facility that lets SimLink-shaped
// deliveries pace themselves on the loop instead of sleeping a dedicated
// reader thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace rsf::net {

/// Readiness bits passed to an fd's event callback.
inline constexpr uint32_t kEventReadable = 1u << 0;
inline constexpr uint32_t kEventWritable = 1u << 1;
/// EPOLLERR/EPOLLHUP fired.  Always delivered alongside the folded
/// read/write bits — most handlers ignore it and let the next syscall
/// surface the errno, but zerocopy links must see it explicitly: a socket
/// with MSG_ZEROCOPY completions pending raises EPOLLERR (level-triggered,
/// unmaskable) until the error queue is drained, and draining it is the
/// only way to learn which pinned buffers the kernel has released.
inline constexpr uint32_t kEventError = 1u << 2;

/// One epoll instance + one servicing thread.  Registration (`Add`,
/// `SetInterest`, `Remove`) is loop-thread-only: call through RunInLoop /
/// Post from other threads.  Callbacks run on the loop thread.
class EventLoop {
 public:
  using EventCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the servicing thread.  Idempotent.
  void Start();
  /// Stops the loop and joins the thread.  Idempotent; safe to call with
  /// handlers still registered (they are dropped, closing nothing — fd
  /// ownership stays with the handler's captures).  Pending timers are
  /// DISCARDED (unlike accepted Post tasks, which are guaranteed to run):
  /// a delayed task firing after its loop died has no state left to pace.
  void Stop();

  [[nodiscard]] bool InLoopThread() const noexcept;
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Queues `task` for the loop thread and wakes it.  Returns false (task
  /// not queued) once Stop has begun; every accepted task is guaranteed to
  /// run — by the loop, or by Stop's post-join drain.
  bool Post(Task task);
  /// Runs `task` inline when on the loop thread, else Post.
  void RunInLoop(Task task);
  /// Runs `task` on the loop thread and waits for completion.  Inline when
  /// already on the loop thread; also inline when the loop is not running
  /// (teardown after Stop — there is no concurrent access left to race).
  void RunSync(Task task);

  /// Schedules `task` to run on the loop thread once `delay_nanos` have
  /// elapsed (timerfd precision; delay 0 fires on the next loop turn).
  /// Callable from any thread.  Tasks with equal deadlines run in
  /// scheduling order.  Returns false once Stop has begun; pending timers
  /// are discarded at Stop.  There is no cancellation — capture weak
  /// pointers and let a stale firing no-op.
  bool RunAfter(uint64_t delay_nanos, Task task);

  /// Registers `fd` with the given interest bits.  The callback receives
  /// the ready bits; error/hangup conditions are folded into readability
  /// (and writability, when armed) so the next syscall surfaces the errno.
  /// Loop-thread-only.
  void Add(int fd, uint32_t interest, EventCallback callback);
  /// Replaces the interest bits of a registered fd.  Interest 0 parks the
  /// fd (no events delivered until re-armed) — the shaped-delivery pause.
  /// Loop-thread-only.
  void SetInterest(int fd, uint32_t interest);
  /// Unregisters `fd`; no-op if unknown (removal paths may race benignly).
  /// Safe to call from inside the fd's own callback.  Loop-thread-only.
  void Remove(int fd);

  /// Registered descriptor count (tests; loop-confined — read via RunSync).
  [[nodiscard]] size_t NumHandlers() const;
  /// Armed (not yet fired) timer count (tests; loop-confined — read via
  /// RunSync).
  [[nodiscard]] size_t NumTimers() const;

 private:
  struct Handler {
    uint32_t interest = 0;
    EventCallback callback;
  };

  void Run();
  void Wakeup();
  void AddTimerOnLoop(uint64_t deadline_nanos, Task task);
  void ArmTimerFd(uint64_t now_nanos);
  void FireDueTimers();
  static uint32_t ToEpollMask(uint32_t interest) noexcept;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  // Loop-thread-only.  Values are shared_ptr so Remove() can erase the map
  // entry while the handler's own callback is still executing (the dispatch
  // loop keeps the Handler alive through its local reference).
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;

  // Loop-thread-only: deadline → task, FIFO-stable for equal deadlines
  // (multimap inserts equivalent keys at the upper bound).
  std::multimap<uint64_t, Task> timers_;

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;
  bool accepting_ = false;  // guarded by tasks_mutex_
};

/// The process-wide loop pool.  Lazily started on first use; loops are
/// handed out round-robin so links spread across the pool.
class Reactor {
 public:
  /// Pool size: RSF_REACTOR_THREADS env override (1-64), else sized from
  /// the host — clamp(hardware_concurrency() / 4, 2, 8).  The chosen size
  /// is logged once at startup.
  static Reactor& Get();

  EventLoop* NextLoop();
  [[nodiscard]] size_t NumLoops() const noexcept { return loops_.size(); }

 private:
  Reactor();
  ~Reactor();

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_{0};
};

}  // namespace rsf::net
