#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <linux/errqueue.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace rsf::net {
namespace {

Status ErrnoStatus(const char* what) {
  return UnavailableError(std::string(what) + ": " + std::strerror(errno));
}

std::atomic<uint64_t> g_write_syscalls{0};
std::atomic<uint64_t> g_recv_syscalls{0};
std::atomic<uint64_t> g_blocking_connects{0};
std::atomic<uint64_t> g_zerocopy_sends{0};
std::atomic<uint64_t> g_zerocopy_bytes{0};

}  // namespace

uint64_t WriteSyscallCount() noexcept {
  return g_write_syscalls.load(std::memory_order_relaxed);
}

uint64_t RecvSyscallCount() noexcept {
  return g_recv_syscalls.load(std::memory_order_relaxed);
}

void NoteZeroCopySend(uint64_t bytes) noexcept {
  g_zerocopy_sends.fetch_add(1, std::memory_order_relaxed);
  g_zerocopy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

uint64_t BlockingConnectCount() noexcept {
  return g_blocking_connects.load(std::memory_order_relaxed);
}

uint64_t ZeroCopySendCount() noexcept {
  return g_zerocopy_sends.load(std::memory_order_relaxed);
}

uint64_t ZeroCopySendBytes() noexcept {
  return g_zerocopy_bytes.load(std::memory_order_relaxed);
}

size_t ZeroCopyThresholdBytes() noexcept {
  if (const char* env = std::getenv("RSF_ZEROCOPY_THRESHOLD")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<size_t>(parsed);
  }
  return 64u * 1024u;
}

uint64_t ZeroCopyCopiedLimit() noexcept {
  if (const char* env = std::getenv("RSF_ZEROCOPY_COPIED_LIMIT")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return parsed;  // 0 = never park the tier
  }
  return 8;
}

void FdGuard::Reset() noexcept {
  const int fd = Release();
  if (fd >= 0) ::close(fd);
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port) {
  g_blocking_connects.fetch_add(1, std::memory_order_relaxed);
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad address: " + host);
  }
  if (::connect(fd.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("connect");
  }
  return TcpConnection(std::move(fd));
}

Result<TcpConnection> TcpConnection::ConnectStart(const std::string& host,
                                                  uint16_t port,
                                                  bool* in_progress) {
  *in_progress = false;
  FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad address: " + host);
  }
  for (;;) {
    if (::connect(fd.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return TcpConnection(std::move(fd));
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) {
      *in_progress = true;
      return TcpConnection(std::move(fd));
    }
    return ErrnoStatus("connect");
  }
}

int TcpConnection::TakeConnectError() noexcept {
  int error = 0;
  socklen_t len = sizeof(error);
  if (::getsockopt(fd_.fd(), SOL_SOCKET, SO_ERROR, &error, &len) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return error;
}

Status TcpConnection::WriteAll(std::span<const uint8_t> data) {
  size_t written = 0;
  while (written < data.size()) {
    g_write_syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::send(fd_.fd(), data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpConnection::WritevAll(std::span<const iovec> iov) {
  // A mutable copy: partial writes are resumed by advancing iov_base.  The
  // hot path (framed message sends) uses 2-3 iovecs, so stay on the stack;
  // larger gathers fall back to the heap.
  constexpr size_t kStackIovecs = 8;
  iovec stack[kStackIovecs];
  std::vector<iovec> heap;
  iovec* vec;
  if (iov.size() <= kStackIovecs) {
    std::memcpy(stack, iov.data(), iov.size() * sizeof(iovec));
    vec = stack;
  } else {
    heap.assign(iov.begin(), iov.end());
    vec = heap.data();
  }

  size_t index = 0;
  while (index < iov.size()) {
    if (vec[index].iov_len == 0) {
      ++index;
      continue;
    }
    // sendmsg, not writev: we need MSG_NOSIGNAL (broken-pipe handling
    // matches WriteAll).
    msghdr msg{};
    msg.msg_iov = vec + index;
    msg.msg_iovlen = std::min(iov.size() - index, size_t{IOV_MAX});
    g_write_syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::sendmsg(fd_.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("sendmsg");
    }
    size_t accepted = static_cast<size_t>(n);
    while (accepted > 0) {
      if (accepted >= vec[index].iov_len) {
        accepted -= vec[index].iov_len;
        vec[index].iov_len = 0;
        ++index;
      } else {
        vec[index].iov_base = static_cast<uint8_t*>(vec[index].iov_base) +
                              accepted;
        vec[index].iov_len -= accepted;
        accepted = 0;
      }
    }
  }
  return Status::Ok();
}

Status TcpConnection::ReadExact(std::span<uint8_t> data) {
  size_t got = 0;
  while (got < data.size()) {
    g_recv_syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::recv(fd_.fd(), data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) return UnavailableError("connection closed");
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> TcpConnection::ReadSome(std::span<uint8_t> data) {
  if (data.empty()) return size_t{0};  // recv(…, 0) would mimic EOF
  for (;;) {
    g_recv_syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::recv(fd_.fd(), data.data(), data.size(), 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return UnavailableError("connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return ErrnoStatus("recv");
  }
}

Result<size_t> TcpConnection::WriteSome(std::span<const iovec> iov) {
  const SendResult result = SendSome(iov, 0);
  if (result.error != 0) {
    errno = result.error;
    return ErrnoStatus("sendmsg");
  }
  return result.bytes;
}

TcpConnection::SendResult TcpConnection::SendSome(std::span<const iovec> iov,
                                                  int flags) noexcept {
  if (iov.empty()) return {};
  for (;;) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov.data());
    msg.msg_iovlen = std::min(iov.size(), size_t{IOV_MAX});
    g_write_syscalls.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::sendmsg(fd_.fd(), &msg, MSG_NOSIGNAL | flags);
    if (n >= 0) {
      if ((flags & MSG_ZEROCOPY) != 0 && n > 0) {
        g_zerocopy_sends.fetch_add(1, std::memory_order_relaxed);
        g_zerocopy_bytes.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
      }
      return {static_cast<size_t>(n), 0};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {};
    return {0, errno != 0 ? errno : EIO};
  }
}

Status TcpConnection::EnableZeroCopy() {
  const int one = 1;
  if (::setsockopt(fd_.fd(), SOL_SOCKET, SO_ZEROCOPY, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_ZEROCOPY)");
  }
  return Status::Ok();
}

Result<bool> TcpConnection::PollErrorQueue(ZeroCopyCompletion* out) {
  for (;;) {
    // Zerocopy notifications carry no data, only ancillary payload; the
    // control buffer is sized for one sock_extended_err comfortably.
    alignas(cmsghdr) char control[256];
    msghdr msg{};
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    const ssize_t n = ::recvmsg(fd_.fd(), &msg, MSG_ERRQUEUE);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      return ErrnoStatus("recvmsg(MSG_ERRQUEUE)");
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
         cm = CMSG_NXTHDR(&msg, cm)) {
      const bool recverr =
          (cm->cmsg_level == SOL_IP && cm->cmsg_type == IP_RECVERR) ||
          (cm->cmsg_level == SOL_IPV6 && cm->cmsg_type == IPV6_RECVERR);
      if (!recverr) continue;
      const auto* ee =
          reinterpret_cast<const sock_extended_err*>(CMSG_DATA(cm));
      if (ee->ee_origin != SO_EE_ORIGIN_ZEROCOPY) continue;
      out->lo = ee->ee_info;
      out->hi = ee->ee_data;
      out->copied = (ee->ee_code & SO_EE_CODE_ZEROCOPY_COPIED) != 0;
      return true;
    }
    // An errqueue entry that was not a zerocopy completion (stray ICMP):
    // consumed; keep draining.
  }
}

Status TcpConnection::SetNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_.fd(), F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.fd(), F_SETFL, wanted) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Result<int> TcpConnection::GetIntOption(int level, int option) const {
  int value = 0;
  socklen_t len = sizeof(value);
  if (::getsockopt(fd_.fd(), level, option, &value, &len) != 0) {
    return ErrnoStatus("getsockopt");
  }
  return value;
}

Status ApplyTransportSocketOptions(TcpConnection& conn) {
  RSF_RETURN_IF_ERROR(conn.SetNoDelay(true));
  const int bytes = kSocketBufferBytes;
  if (::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_RCVBUF)");
  }
  if (::setsockopt(conn.fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_SNDBUF)");
  }
  return Status::Ok();
}

Status TcpConnection::SetNoDelay(bool enabled) {
  const int flag = enabled ? 1 : 0;
  if (::setsockopt(fd_.fd(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

void TcpConnection::ShutdownBoth() noexcept {
  if (fd_.valid()) ::shutdown(fd_.fd(), SHUT_RDWR);
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");

  const int one = 1;
  ::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  // 1024: the connection-scaling bench dials 1024 subscribers at once;
  // the kernel clamps to net.core.somaxconn anyway.
  if (::listen(fd.fd(), 1024) != 0) return ErrnoStatus("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return TcpListener(std::move(fd), ntohs(addr.sin_port));
}

bool IsTransientAcceptErrno(int error) noexcept {
  switch (error) {
    case ECONNABORTED:  // peer aborted between SYN and accept
    case EINTR:         // signal; retried inline below, listed for callers
    case EMFILE:        // process fd table full — may drain
    case ENFILE:        // system fd table full — may drain
    case ENOBUFS:       // transient kernel memory pressure
    case ENOMEM:
    case EAGAIN:        // spurious wake-up on some kernels
    case EPROTO:        // protocol error on the nascent connection
      return true;
    default:
      return false;
  }
}

Result<TcpConnection> TcpListener::Accept() {
  for (;;) {
    const int client = ::accept(fd_.fd(), nullptr, nullptr);
    if (client >= 0) return TcpConnection(FdGuard(client));
    if (errno == EINTR) continue;  // signal delivery is never fatal here
    // Transient failures come back as kResourceExhausted so accept loops
    // can back off and retry instead of abandoning the listener; anything
    // else (EBADF/EINVAL after Close()) is a terminal kUnavailable.
    if (IsTransientAcceptErrno(errno)) {
      return ResourceExhaustedError(std::string("accept: ") +
                                    std::strerror(errno));
    }
    return ErrnoStatus("accept");
  }
}

Result<bool> TcpListener::TryAccept(TcpConnection* out) {
  for (;;) {
    const int client = ::accept(fd_.fd(), nullptr, nullptr);
    if (client >= 0) {
      *out = TcpConnection(FdGuard(client));
      return true;
    }
    if (errno == EINTR) continue;
    // EAGAIN means drained; other transient errnos (aborted handshakes, fd
    // pressure) also yield to the event loop — level-triggered epoll
    // re-reports while a connection is still pending.
    if (IsTransientAcceptErrno(errno)) return false;
    return ErrnoStatus("accept");
  }
}

Status TcpListener::SetNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_.fd(), F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.fd(), F_SETFL, wanted) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

void TcpListener::Close() noexcept {
  if (fd_.valid()) ::shutdown(fd_.fd(), SHUT_RDWR);
  fd_.Reset();
}

}  // namespace rsf::net
