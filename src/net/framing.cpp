#include "net/framing.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/endian.h"

namespace rsf::net {

// Both writers gather the length prefix and the payload spans into one
// WritevAll call, so a frame normally costs a single sendmsg syscall (the
// kernel splits it only when the socket buffer fills).  The seed paid two
// write syscalls per message — a measurable per-message tax at high rates.

Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(payload.size()));
  const iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(payload.data()), payload.size()},
  };
  return conn.WritevAll(std::span<const iovec>(iov, payload.empty() ? 1 : 2));
}

Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(head.size() + body.size()));
  const iovec iov[3] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(head.data()), head.size()},
      {const_cast<uint8_t*>(body.data()), body.size()},
  };
  return conn.WritevAll(iov);
}

Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length) {
  uint8_t header[4];
  RSF_RETURN_IF_ERROR(conn.ReadExact(header));
  const uint32_t raw = LoadLE<uint32_t>(header);
  if (FrameTag(raw) != kFrameTagData) {
    return OutOfRangeError("unexpected frame tag on blocking read: " +
                           std::to_string(FrameTag(raw)));
  }
  const uint32_t len = FrameLength(raw);
  uint8_t* dst = alloc(len);
  if (dst == nullptr && len > 0) {
    return ResourceExhaustedError("frame allocator returned null");
  }
  if (len > 0) {
    RSF_RETURN_IF_ERROR(conn.ReadExact(std::span<uint8_t>(dst, len)));
  }
  *length = len;
  return Status::Ok();
}

void FrameReader::Reset() noexcept {
  state_ = State::kHeader;
  header_got_ = 0;
  payload_ = nullptr;
  raw_len_ = 0;
  payload_len_ = 0;
  payload_got_ = 0;
}

Result<FrameReader::Step> FrameReader::Poll(TcpConnection& conn,
                                            const FrameAllocator& alloc,
                                            uint32_t* length) {
  for (;;) {
    if (state_ == State::kHeader) {
      auto n = conn.ReadSome(
          std::span<uint8_t>(header_ + header_got_, 4 - header_got_));
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kUnavailable &&
            header_got_ > 0) {
          return Status(StatusCode::kUnavailable,
                        "connection closed mid-frame (header)");
        }
        return n.status();
      }
      if (*n == 0) return Step::kNeedMore;
      header_got_ += *n;
      if (header_got_ < 4) continue;

      const uint32_t raw = LoadLE<uint32_t>(header_);
      if (FrameTag(raw) > kFrameTagMax) {
        return OutOfRangeError("unknown frame tag (corrupted length?): " +
                               std::to_string(raw));
      }
      raw_len_ = raw;
      payload_len_ = FrameLength(raw);
      payload_got_ = 0;
      payload_ = alloc(raw);
      if (payload_ == nullptr && payload_len_ > 0) {
        return ResourceExhaustedError("frame allocator returned null");
      }
      if (payload_len_ == 0) {
        *length = raw;
        Reset();
        return Step::kFrame;
      }
      state_ = State::kPayload;
    }

    auto n = conn.ReadSome(std::span<uint8_t>(payload_ + payload_got_,
                                              payload_len_ - payload_got_));
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kUnavailable) {
        return Status(StatusCode::kUnavailable,
                      "connection closed mid-frame (payload)");
      }
      return n.status();
    }
    if (*n == 0) return Step::kNeedMore;
    payload_got_ += *n;
    if (payload_got_ == payload_len_) {
      const uint32_t raw = raw_len_;
      Reset();
      *length = raw;
      return Step::kFrame;
    }
  }
}

bool FrameWriter::Enqueue(std::shared_ptr<const uint8_t[]> payload,
                          uint32_t size, size_t max_pending) {
  bool evicted = false;
  if (max_pending > 0 && staged_.size() + pending_.size() >= max_pending) {
    // Drop-oldest, but never a frame already (partially) on the wire:
    // staged frames are submitted and untouchable, and in readiness mode
    // (staged_ always empty) the front frame may be mid-write.
    const size_t victim =
        (staged_.empty() && !pending_.empty() && pending_.front().offset > 0)
            ? 1
            : 0;
    if (victim < pending_.size()) {
      pending_.erase(pending_.begin() + static_cast<long>(victim));
      evicted = true;
    }
  }
  PendingFrame frame;
  // The raw value (tag | length) goes on the wire; the writer's own
  // byte accounting uses the masked payload length.
  StoreLE<uint32_t>(frame.header, size);
  frame.payload = std::move(payload);
  frame.size = FrameLength(size);
  pending_.push_back(std::move(frame));
  return evicted;
}

size_t SendBatchMaxFrames() noexcept {
  if (const char* env = std::getenv("RSF_SEND_BATCH_MAX")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && parsed > 0) {
      return std::max<size_t>(static_cast<size_t>(parsed), kGatherFramesMin);
    }
  }
  return 64;
}

void FrameWriter::AdaptGatherBudget() noexcept {
  // Deep queue: the socket is the bottleneck, so amortize the syscall over
  // more frames.  Shallow queue: shrink back so the common one-or-two-frame
  // flush never walks an oversized iovec array.
  if (pending_.size() > gather_budget_) {
    gather_budget_ = std::min(gather_budget_ * 2, SendBatchMaxFrames());
  } else if (gather_budget_ > kGatherFramesMin &&
             pending_.size() <= gather_budget_ / 4) {
    gather_budget_ = std::max(gather_budget_ / 2, kGatherFramesMin);
  }
}

Status FrameWriter::FlushZeroCopyPayload(TcpConnection& conn, bool* blocked) {
  // Front frame's header already left via the copy path; send the payload
  // remainder pinned.  Each send that leaves bytes consumes one kernel
  // notification id and retains the payload holder until that id completes.
  PendingFrame& front = pending_.front();
  const size_t payload_off = front.offset - sizeof(front.header);
  const iovec iov = {const_cast<uint8_t*>(front.payload.get()) + payload_off,
                     front.size - payload_off};
  auto result =
      conn.SendSome(std::span<const iovec>(&iov, 1), MSG_ZEROCOPY);
  if (result.error == 0 && result.bytes > 0) {
    in_flight_.push_back({next_zerocopy_id_++, front.payload});
  } else if (result.error == ENOBUFS) {
    // Transient optmem pressure (the pinned-page accounting budget is
    // full): this one send copies, the tier stays on.
    result = conn.SendSome(std::span<const iovec>(&iov, 1), 0);
  } else if (result.error == EINVAL || result.error == EOPNOTSUPP) {
    // The socket/route cannot do MSG_ZEROCOPY at all: copy from now on.
    zerocopy_active_ = false;
    result = conn.SendSome(std::span<const iovec>(&iov, 1), 0);
  }
  if (result.error != 0) {
    return UnavailableError(std::string("sendmsg: ") +
                            std::strerror(result.error));
  }
  if (result.bytes == 0) {
    *blocked = true;  // socket buffer full: resume on writability
    return Status::Ok();
  }
  bytes_written_ += result.bytes;
  front.offset += result.bytes;
  if (front.offset == sizeof(front.header) + front.size) {
    ++zerocopy_frames_;
    pending_.pop_front();
    ++frames_written_;
  }
  return Status::Ok();
}

Status FrameWriter::Flush(TcpConnection& conn) {
  // Gather up to the adaptive budget of queued frames (header + payload
  // each) into one sendmsg; resume mid-frame via the front frame's offset.
  // Zerocopy-eligible frames contribute only their header to the gather —
  // the header bytes live in the deque node, whose storage recycles on pop,
  // so they must be copied — and their payload follows as a dedicated
  // MSG_ZEROCOPY send once the header is on the wire.
  AdaptGatherBudget();
  while (!pending_.empty()) {
    if (ZeroCopyEligible(pending_.front()) &&
        pending_.front().offset >= sizeof(PendingFrame::header)) {
      bool blocked = false;
      RSF_RETURN_IF_ERROR(FlushZeroCopyPayload(conn, &blocked));
      if (blocked) return Status::Ok();
      continue;
    }
    iov_.clear();
    const size_t frames = std::min(pending_.size(), gather_budget_);
    for (size_t i = 0; i < frames; ++i) {
      PendingFrame& frame = pending_[i];
      const bool zerocopy = ZeroCopyEligible(frame);
      size_t skip = frame.offset;  // only ever non-zero for i == 0
      if (skip < sizeof(frame.header)) {
        iov_.push_back(
            {frame.header + skip, sizeof(frame.header) - skip});
        skip = 0;
      } else {
        skip -= sizeof(frame.header);
      }
      if (!zerocopy && frame.size > skip) {
        iov_.push_back({const_cast<uint8_t*>(frame.payload.get()) + skip,
                        frame.size - skip});
      }
      if (zerocopy) break;  // its payload goes out pinned next iteration
    }
    if (iov_.empty()) {  // fully written frames (size-0 payloads) linger?
      pending_.pop_front();
      ++frames_written_;
      continue;
    }
    auto written =
        conn.WriteSome(std::span<const iovec>(iov_.data(), iov_.size()));
    if (!written.ok()) return written.status();
    if (*written == 0) return Status::Ok();  // socket full: resume later
    bytes_written_ += *written;
    size_t remaining = *written;
    while (remaining > 0 && !pending_.empty()) {
      PendingFrame& front = pending_.front();
      const size_t wire = sizeof(front.header) + front.size;
      const size_t take = std::min(remaining, wire - front.offset);
      front.offset += take;
      remaining -= take;
      if (front.offset == wire) {
        pending_.pop_front();
        ++frames_written_;
      }
    }
  }
  return Status::Ok();
}

std::span<uint8_t> FrameReader::NextWindow() noexcept {
  if (state_ == State::kHeader) {
    return {header_ + header_got_, sizeof(header_) - header_got_};
  }
  return {payload_ + payload_got_, payload_len_ - payload_got_};
}

Result<FrameReader::Step> FrameReader::Commit(size_t n,
                                              const FrameAllocator& alloc,
                                              uint32_t* length) {
  if (state_ == State::kHeader) {
    header_got_ += n;
    if (header_got_ < sizeof(header_)) return Step::kNeedMore;
    const uint32_t raw = LoadLE<uint32_t>(header_);
    if (FrameTag(raw) > kFrameTagMax) {
      return OutOfRangeError("unknown frame tag (corrupted length?): " +
                             std::to_string(raw));
    }
    raw_len_ = raw;
    payload_len_ = FrameLength(raw);
    payload_got_ = 0;
    payload_ = alloc(raw);
    if (payload_ == nullptr && payload_len_ > 0) {
      return ResourceExhaustedError("frame allocator returned null");
    }
    if (payload_len_ == 0) {
      *length = raw;
      Reset();
      return Step::kFrame;
    }
    state_ = State::kPayload;
    return Step::kNeedMore;
  }
  payload_got_ += n;
  if (payload_got_ < payload_len_) return Step::kNeedMore;
  const uint32_t raw = raw_len_;
  Reset();
  *length = raw;
  return Step::kFrame;
}

FrameWriter::StagedSend FrameWriter::StageSubmission() {
  if (staged_.empty()) {
    AdaptGatherBudget();
    // Move frames out of the queue for the flight: deque erasure
    // (eviction) invalidates references, and the kernel will be reading
    // these header bytes asynchronously.
    while (!pending_.empty() && staged_.size() < gather_budget_) {
      const bool zerocopy = ZeroCopyEligible(pending_.front());
      staged_.push_back(std::move(pending_.front()));
      pending_.pop_front();
      // A zerocopy frame closes the batch: its header joins the gather,
      // its payload goes out alone as SEND_ZC once the header is on the
      // wire.
      if (zerocopy) break;
    }
  }
  StagedSend out;
  if (staged_.empty()) return out;
  PendingFrame& front = staged_.front();
  if (ZeroCopyEligible(front) && !force_copy_front_ &&
      front.offset >= sizeof(front.header)) {
    const size_t payload_off = front.offset - sizeof(front.header);
    out.zc_data = front.payload.get() + payload_off;
    out.zc_len = front.size - payload_off;
    out.zc_holder = front.payload;
    return out;
  }
  iov_.clear();
  for (size_t i = 0; i < staged_.size(); ++i) {
    PendingFrame& frame = staged_[i];
    const bool zerocopy =
        ZeroCopyEligible(frame) && !(i == 0 && force_copy_front_);
    size_t skip = frame.offset;  // only ever non-zero for i == 0
    if (skip < sizeof(frame.header)) {
      iov_.push_back({frame.header + skip, sizeof(frame.header) - skip});
      skip = 0;
    } else {
      skip -= sizeof(frame.header);
    }
    if (!zerocopy && frame.size > skip) {
      iov_.push_back({const_cast<uint8_t*>(frame.payload.get()) + skip,
                      frame.size - skip});
    }
    if (zerocopy) break;  // its payload goes out pinned next submission
  }
  out.iov = std::span<const iovec>(iov_.data(), iov_.size());
  return out;
}

void FrameWriter::CommitStaged(size_t bytes, bool zerocopy) noexcept {
  bytes_written_ += bytes;
  size_t remaining = bytes;
  while (remaining > 0 && !staged_.empty()) {
    PendingFrame& front = staged_.front();
    const size_t wire = sizeof(front.header) + front.size;
    const size_t take = std::min(remaining, wire - front.offset);
    front.offset += take;
    remaining -= take;
    if (front.offset == wire) {
      if (zerocopy) ++zerocopy_frames_;
      staged_.pop_front();
      force_copy_front_ = false;  // consumed with the frame it degraded
      ++frames_written_;
    }
  }
}

void FrameWriter::NoteZeroCopyReleased(bool copied) noexcept {
  if (zc_outstanding_ > 0) --zc_outstanding_;
  if (copied) {
    ++copied_completions_;
    if (zerocopy_copied_limit_ > 0 &&
        copied_completions_ >= zerocopy_copied_limit_ && zerocopy_active_) {
      // Same verdict as the errqueue path: the route copies anyway, so
      // stop paying notification bookkeeping for it.
      zerocopy_active_ = false;
    }
  }
}

size_t FrameWriter::CompleteZeroCopy(uint32_t lo, uint32_t hi,
                                     bool copied) noexcept {
  // Notification ids are sequential and complete in order, so the range
  // [lo, hi] always covers a prefix of the in-flight queue.  The wrap-safe
  // comparison keeps this correct past 2^32 sends.
  size_t released = 0;
  while (!in_flight_.empty() &&
         static_cast<int32_t>(hi - in_flight_.front().id) >= 0) {
    in_flight_.pop_front();
    ++released;
  }
  if (copied) {
    copied_completions_ += static_cast<uint64_t>(hi - lo) + 1;
    if (zerocopy_copied_limit_ > 0 &&
        copied_completions_ >= zerocopy_copied_limit_ && zerocopy_active_) {
      // The route copies anyway (loopback always does): pinning buys
      // nothing but completion bookkeeping, so stop paying for it.
      zerocopy_active_ = false;
    }
  }
  return released;
}

}  // namespace rsf::net
