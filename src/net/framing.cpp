#include "net/framing.h"

#include "common/endian.h"

namespace rsf::net {

Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(payload.size()));
  RSF_RETURN_IF_ERROR(conn.WriteAll(header));
  return conn.WriteAll(payload);
}

Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(head.size() + body.size()));
  RSF_RETURN_IF_ERROR(conn.WriteAll(header));
  if (!head.empty()) RSF_RETURN_IF_ERROR(conn.WriteAll(head));
  return conn.WriteAll(body);
}

Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length) {
  uint8_t header[4];
  RSF_RETURN_IF_ERROR(conn.ReadExact(header));
  const uint32_t len = LoadLE<uint32_t>(header);
  if (len > kMaxFramePayload) {
    return OutOfRangeError("frame payload too large: " + std::to_string(len));
  }
  uint8_t* dst = alloc(len);
  if (dst == nullptr && len > 0) {
    return ResourceExhaustedError("frame allocator returned null");
  }
  if (len > 0) {
    RSF_RETURN_IF_ERROR(conn.ReadExact(std::span<uint8_t>(dst, len)));
  }
  *length = len;
  return Status::Ok();
}

}  // namespace rsf::net
