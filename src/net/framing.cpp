#include "net/framing.h"

#include <algorithm>

#include "common/endian.h"

namespace rsf::net {

// Both writers gather the length prefix and the payload spans into one
// WritevAll call, so a frame normally costs a single sendmsg syscall (the
// kernel splits it only when the socket buffer fills).  The seed paid two
// write syscalls per message — a measurable per-message tax at high rates.

Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(payload.size()));
  const iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(payload.data()), payload.size()},
  };
  return conn.WritevAll(std::span<const iovec>(iov, payload.empty() ? 1 : 2));
}

Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(head.size() + body.size()));
  const iovec iov[3] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(head.data()), head.size()},
      {const_cast<uint8_t*>(body.data()), body.size()},
  };
  return conn.WritevAll(iov);
}

Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length) {
  uint8_t header[4];
  RSF_RETURN_IF_ERROR(conn.ReadExact(header));
  const uint32_t len = LoadLE<uint32_t>(header);
  if (len > kMaxFramePayload) {
    return OutOfRangeError("frame payload too large: " + std::to_string(len));
  }
  uint8_t* dst = alloc(len);
  if (dst == nullptr && len > 0) {
    return ResourceExhaustedError("frame allocator returned null");
  }
  if (len > 0) {
    RSF_RETURN_IF_ERROR(conn.ReadExact(std::span<uint8_t>(dst, len)));
  }
  *length = len;
  return Status::Ok();
}

void FrameReader::Reset() noexcept {
  state_ = State::kHeader;
  header_got_ = 0;
  payload_ = nullptr;
  payload_len_ = 0;
  payload_got_ = 0;
}

Result<FrameReader::Step> FrameReader::Poll(TcpConnection& conn,
                                            const FrameAllocator& alloc,
                                            uint32_t* length) {
  for (;;) {
    if (state_ == State::kHeader) {
      auto n = conn.ReadSome(
          std::span<uint8_t>(header_ + header_got_, 4 - header_got_));
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kUnavailable &&
            header_got_ > 0) {
          return Status(StatusCode::kUnavailable,
                        "connection closed mid-frame (header)");
        }
        return n.status();
      }
      if (*n == 0) return Step::kNeedMore;
      header_got_ += *n;
      if (header_got_ < 4) continue;

      const uint32_t len = LoadLE<uint32_t>(header_);
      if (len > kMaxFramePayload) {
        return OutOfRangeError("frame payload too large: " +
                               std::to_string(len));
      }
      payload_len_ = len;
      payload_got_ = 0;
      payload_ = alloc(len);
      if (payload_ == nullptr && len > 0) {
        return ResourceExhaustedError("frame allocator returned null");
      }
      if (len == 0) {
        Reset();
        *length = 0;
        return Step::kFrame;
      }
      state_ = State::kPayload;
    }

    auto n = conn.ReadSome(std::span<uint8_t>(payload_ + payload_got_,
                                              payload_len_ - payload_got_));
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kUnavailable) {
        return Status(StatusCode::kUnavailable,
                      "connection closed mid-frame (payload)");
      }
      return n.status();
    }
    if (*n == 0) return Step::kNeedMore;
    payload_got_ += *n;
    if (payload_got_ == payload_len_) {
      const uint32_t len = payload_len_;
      Reset();
      *length = len;
      return Step::kFrame;
    }
  }
}

bool FrameWriter::Enqueue(std::shared_ptr<const uint8_t[]> payload,
                          uint32_t size, size_t max_pending) {
  bool evicted = false;
  if (max_pending > 0 && pending_.size() >= max_pending) {
    // Drop-oldest, but never the frame already partially on the wire.
    const size_t victim = (!pending_.empty() && pending_.front().offset > 0)
                              ? 1
                              : 0;
    if (victim < pending_.size()) {
      pending_.erase(pending_.begin() + static_cast<long>(victim));
      evicted = true;
    }
  }
  PendingFrame frame;
  StoreLE<uint32_t>(frame.header, size);
  frame.payload = std::move(payload);
  frame.size = size;
  pending_.push_back(std::move(frame));
  return evicted;
}

Status FrameWriter::Flush(TcpConnection& conn) {
  // Gather up to kGatherFrames queued frames (header + payload each) into
  // one sendmsg; resume mid-frame via the front frame's offset.
  constexpr size_t kGatherFrames = 8;
  while (!pending_.empty()) {
    iovec iov[kGatherFrames * 2];
    size_t iov_count = 0;
    const size_t frames =
        std::min(pending_.size(), kGatherFrames);
    for (size_t i = 0; i < frames; ++i) {
      PendingFrame& frame = pending_[i];
      size_t skip = frame.offset;  // only ever non-zero for i == 0
      if (skip < sizeof(frame.header)) {
        iov[iov_count++] = {frame.header + skip, sizeof(frame.header) - skip};
        skip = 0;
      } else {
        skip -= sizeof(frame.header);
      }
      if (frame.size > skip) {
        iov[iov_count++] = {
            const_cast<uint8_t*>(frame.payload.get()) + skip,
            frame.size - skip};
      }
    }
    if (iov_count == 0) {  // fully written frames (size-0 payloads) linger?
      pending_.pop_front();
      ++frames_written_;
      continue;
    }
    auto written = conn.WriteSome(std::span<const iovec>(iov, iov_count));
    if (!written.ok()) return written.status();
    if (*written == 0) return Status::Ok();  // socket full: resume later
    size_t remaining = *written;
    while (remaining > 0 && !pending_.empty()) {
      PendingFrame& front = pending_.front();
      const size_t wire = sizeof(front.header) + front.size;
      const size_t take = std::min(remaining, wire - front.offset);
      front.offset += take;
      remaining -= take;
      if (front.offset == wire) {
        pending_.pop_front();
        ++frames_written_;
      }
    }
  }
  return Status::Ok();
}

}  // namespace rsf::net
