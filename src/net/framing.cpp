#include "net/framing.h"

#include "common/endian.h"

namespace rsf::net {

// Both writers gather the length prefix and the payload spans into one
// WritevAll call, so a frame normally costs a single sendmsg syscall (the
// kernel splits it only when the socket buffer fills).  The seed paid two
// write syscalls per message — a measurable per-message tax at high rates.

Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(payload.size()));
  const iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(payload.data()), payload.size()},
  };
  return conn.WritevAll(std::span<const iovec>(iov, payload.empty() ? 1 : 2));
}

Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body) {
  uint8_t header[4];
  StoreLE<uint32_t>(header, static_cast<uint32_t>(head.size() + body.size()));
  const iovec iov[3] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(head.data()), head.size()},
      {const_cast<uint8_t*>(body.data()), body.size()},
  };
  return conn.WritevAll(iov);
}

Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length) {
  uint8_t header[4];
  RSF_RETURN_IF_ERROR(conn.ReadExact(header));
  const uint32_t len = LoadLE<uint32_t>(header);
  if (len > kMaxFramePayload) {
    return OutOfRangeError("frame payload too large: " + std::to_string(len));
  }
  uint8_t* dst = alloc(len);
  if (dst == nullptr && len > 0) {
    return ResourceExhaustedError("frame allocator returned null");
  }
  if (len > 0) {
    RSF_RETURN_IF_ERROR(conn.ReadExact(std::span<uint8_t>(dst, len)));
  }
  *length = len;
  return Status::Ok();
}

}  // namespace rsf::net
