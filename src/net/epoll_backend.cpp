#include "net/epoll_backend.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace rsf::net {
namespace {

constexpr int kMaxEvents = 64;

}  // namespace

std::unique_ptr<EpollBackend> EpollBackend::Create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) {
    RSF_ERROR("epoll_create1 failed: %s", std::strerror(errno));
    return nullptr;
  }
  return std::unique_ptr<EpollBackend>(new EpollBackend(fd));
}

EpollBackend::~EpollBackend() { ::close(epoll_fd_); }

uint32_t EpollBackend::ToEpollMask(uint32_t interest) noexcept {
  uint32_t mask = 0;
  if (interest & kEventReadable) mask |= EPOLLIN | EPOLLRDHUP;
  if (interest & kEventWritable) mask |= EPOLLOUT;
  return mask;
}

bool EpollBackend::Add(int fd, uint32_t interest) {
  epoll_event event{};
  event.events = ToEpollMask(interest);
  event.data.fd = fd;
  epoll_ctls_.fetch_add(1, std::memory_order_relaxed);
  backend_counters::AddEpollCtls(1);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    RSF_WARN("epoll_ctl(ADD, %d) failed: %s", fd, std::strerror(errno));
    return false;
  }
  return true;
}

void EpollBackend::Mod(int fd, uint32_t interest) {
  epoll_event event{};
  event.events = ToEpollMask(interest);
  event.data.fd = fd;
  epoll_ctls_.fetch_add(1, std::memory_order_relaxed);
  backend_counters::AddEpollCtls(1);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    RSF_WARN("epoll_ctl(MOD, %d) failed: %s", fd, std::strerror(errno));
  }
}

void EpollBackend::Del(int fd) {
  // The fd may already be closed (peer teardown); EBADF/ENOENT are fine.
  epoll_ctls_.fetch_add(1, std::memory_order_relaxed);
  backend_counters::AddEpollCtls(1);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

bool EpollBackend::Wait(std::vector<ReadyEvent>* ready) {
  epoll_event events[kMaxEvents];
  int n;
  do {
    epoll_waits_.fetch_add(1, std::memory_order_relaxed);
    backend_counters::AddEpollWaits(1);
    n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    RSF_ERROR("epoll_wait failed: %s", std::strerror(errno));
    return false;
  }
  for (int i = 0; i < n; ++i) {
    const uint32_t raw = events[i].events;
    uint32_t bits = 0;
    if (raw & (EPOLLIN | EPOLLRDHUP | EPOLLPRI)) bits |= kEventReadable;
    if (raw & EPOLLOUT) bits |= kEventWritable;
    if (raw & (EPOLLERR | EPOLLHUP)) bits |= kEventError;
    ready->push_back({events[i].data.fd, bits});
  }
  return true;
}

IoBackendCounters EpollBackend::counters() const noexcept {
  IoBackendCounters out;
  out.epoll_waits = epoll_waits_.load(std::memory_order_relaxed);
  out.epoll_ctls = epoll_ctls_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace rsf::net
