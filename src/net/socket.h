// RAII TCP socket primitives over the BSD socket API.
//
// Transport connections are nonblocking and reactor-managed (net/poller.h,
// net/link.h); the blocking helpers remain for tools and tests that want a
// simple synchronous peer.  All data-path traffic in the benchmarks flows
// through real loopback TCP sockets, matching the paper's intra-machine
// experimental setup (§5.1).
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace rsf::net {

/// Owns a file descriptor; closes it on destruction.  Move-only.
///
/// The descriptor is held atomically because the middleware's shutdown
/// pattern closes sockets from one thread to unblock another thread parked
/// in accept(2)/recv(2) on the same guard — the standard TCPROS unblock
/// idiom.  Ownership transfers (move, Release, Reset) are still single-
/// owner operations; the atomic only makes the close-while-blocked-reader
/// handoff well defined.
class FdGuard {
 public:
  FdGuard() noexcept = default;
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { Reset(); }

  FdGuard(FdGuard&& other) noexcept : fd_(other.Release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_.store(other.Release(), std::memory_order_relaxed);
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  [[nodiscard]] int fd() const noexcept {
    return fd_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool valid() const noexcept { return fd() >= 0; }

  /// Releases ownership without closing.
  int Release() noexcept { return fd_.exchange(-1, std::memory_order_relaxed); }

  /// Closes the descriptor (idempotent, safe against a concurrent Close).
  void Reset() noexcept;

 private:
  std::atomic<int> fd_{-1};
};

/// A connected TCP stream.  Thread-compatible: one reader + one writer
/// thread may operate concurrently (reads and writes never share state).
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FdGuard fd) : fd_(std::move(fd)) {}

  /// Connects to host:port (blocking).  Transport code should use
  /// ConnectStart + a reactor loop instead; this remains for tools, tests,
  /// and benches.  Every call bumps BlockingConnectCount().
  static Result<TcpConnection> Connect(const std::string& host, uint16_t port);

  /// Initiates a nonblocking connect to host:port.  On success the returned
  /// connection is O_NONBLOCK; `*in_progress` tells whether the three-way
  /// handshake is still pending (EINPROGRESS — arm kEventWritable and call
  /// TakeConnectError when it fires) or already complete (loopback often
  /// connects synchronously).  Never blocks, so it is safe to call from the
  /// master-notify thread.
  static Result<TcpConnection> ConnectStart(const std::string& host,
                                            uint16_t port, bool* in_progress);

  /// Resolves a pending nonblocking connect: reads and clears SO_ERROR.
  /// 0 means the connection is established; otherwise the errno the connect
  /// failed with (ECONNREFUSED, ETIMEDOUT, …).
  int TakeConnectError() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Writes the entire span; returns an error on EOF/failure.
  Status WriteAll(std::span<const uint8_t> data);

  /// Writes every byte of every iovec, gathering them into as few syscalls
  /// as the kernel allows (one `sendmsg` when the socket buffer has room).
  /// Handles partial writes by resuming mid-iovec.  Empty iovecs are
  /// skipped; an all-empty span is a no-op.  This is what keeps framed
  /// sends at one syscall per message (see net/framing.h).
  Status WritevAll(std::span<const iovec> iov);

  /// Reads exactly data.size() bytes; kUnavailable on orderly EOF.
  Status ReadExact(std::span<uint8_t> data);

  /// Nonblocking single read (reactor transport).  Returns the byte count
  /// (> 0), or 0 when the socket has no data right now (EAGAIN) — callers
  /// must never pass an empty span.  Orderly EOF and resets come back as
  /// kUnavailable.
  Result<size_t> ReadSome(std::span<uint8_t> data);

  /// Nonblocking single gathered write (one sendmsg).  Returns the bytes
  /// the kernel accepted, or 0 when the socket buffer is full (EAGAIN).
  /// The caller resumes from wherever the count left off (FrameWriter).
  Result<size_t> WriteSome(std::span<const iovec> iov);

  /// Outcome of one nonblocking send syscall, errno preserved.  The
  /// zerocopy egress tier needs the raw errno (ENOBUFS means "retry this
  /// send with a copy", not "link dead"), which Status strings erase.
  /// `error == 0` with `bytes == 0` is EAGAIN (socket buffer full).
  struct SendResult {
    size_t bytes = 0;
    int error = 0;
  };

  /// Nonblocking single gathered send with explicit flags (MSG_NOSIGNAL is
  /// always added).  Pass MSG_ZEROCOPY to pin the iovec pages instead of
  /// copying them into the kernel — the caller then owns the buffers until
  /// the matching completion arrives on the error queue (see
  /// PollErrorQueue).  EINTR is retried internally.
  SendResult SendSome(std::span<const iovec> iov, int flags) noexcept;

  /// Requests kernel zero-copy transmission (SO_ZEROCOPY).  Fails on
  /// kernels/sockets without support — callers then keep the copy path.
  Status EnableZeroCopy();

  /// One MSG_ZEROCOPY completion: every zerocopy send that leaves bytes is
  /// assigned a sequential 32-bit notification id (first send = 0); the
  /// kernel acknowledges id ranges [lo, hi] once it no longer reads the
  /// pinned pages.  `copied` reports the SO_EE_CODE_ZEROCOPY_COPIED
  /// fallback: the kernel copied after all (loopback always does), so the
  /// caller paid completion bookkeeping for nothing and should consider
  /// disabling the tier on this socket.
  struct ZeroCopyCompletion {
    uint32_t lo = 0;
    uint32_t hi = 0;
    bool copied = false;
  };

  /// Drains one zerocopy completion from the socket error queue
  /// (MSG_ERRQUEUE).  Returns true with `*out` filled, false when the
  /// queue is empty (EAGAIN) — EPOLLERR is level-triggered while the queue
  /// is non-empty, so loop until false.  Non-zerocopy errqueue entries are
  /// skipped.  A terminal error (EBADF after close) comes back as a
  /// Status.
  Result<bool> PollErrorQueue(ZeroCopyCompletion* out);

  /// Switches O_NONBLOCK on or off (reactor-managed connections are
  /// nonblocking; the legacy thread transport and SimLink stay blocking).
  Status SetNonBlocking(bool enabled);

  /// Disables Nagle's algorithm (latency benchmarks need this, as does ROS).
  Status SetNoDelay(bool enabled);

  /// getsockopt as an int (tests audit the applied options).
  Result<int> GetIntOption(int level, int option) const;

  /// Shuts down both directions, unblocking any reader.
  void ShutdownBoth() noexcept;

  void Close() noexcept { fd_.Reset(); }

  [[nodiscard]] int fd() const noexcept { return fd_.fd(); }

 private:
  FdGuard fd_;
};

/// Kernel socket buffer size requested for every transport connection,
/// both directions.  One tunable so the accept and dial paths can never
/// drift apart: ApplyTransportSocketOptions sets SO_RCVBUF/SO_SNDBUF to
/// this and TCP_NODELAY on.  256 KiB holds tens of frames at typical
/// message sizes without approaching net.core.{r,w}mem_max defaults (the
/// kernel clamps to those, then doubles for bookkeeping).
inline constexpr int kSocketBufferBytes = 256 * 1024;

/// Applies the transport socket options (TCP_NODELAY, SO_RCVBUF/SO_SNDBUF
/// from kSocketBufferBytes) to a connection.  Called on both accepted and
/// dialed sockets.
Status ApplyTransportSocketOptions(TcpConnection& conn);

/// Process-wide count of write-side socket syscalls (`send` + `sendmsg`)
/// issued by TcpConnection.  A test shim: frame-write tests assert the
/// syscalls-per-message budget (one `sendmsg` per frame) without strace.
uint64_t WriteSyscallCount() noexcept;

/// Process-wide count of read-side socket syscalls (`recv`) issued by
/// TcpConnection.  Together with WriteSyscallCount and the backend
/// counters (net/io_backend.h) this is the syscalls-per-delivery shim the
/// batching tests and the connection bench difference.
uint64_t RecvSyscallCount() noexcept;

/// Process-wide count of blocking TcpConnection::Connect calls.  A test
/// shim: middleware tests assert the subscriber dial path (which runs on
/// the master-notify thread) never issues a blocking connect.
uint64_t BlockingConnectCount() noexcept;

/// Process-wide count of MSG_ZEROCOPY send syscalls that left bytes, and
/// the payload bytes they pinned.  Test shims: the middleware copy-budget
/// tests assert an above-threshold SFM publish leaves user space without a
/// single payload copy (bytes flow through here, not through memcpy).
uint64_t ZeroCopySendCount() noexcept;
uint64_t ZeroCopySendBytes() noexcept;

/// Feeds the zerocopy-send counters for sends that bypass TcpConnection —
/// the uring backend's IORING_OP_SEND_ZC completions — so the copy-budget
/// shims stay meaningful under either backend.
void NoteZeroCopySend(uint64_t bytes) noexcept;

/// The frame size at or above which FrameWriter sends payloads with
/// MSG_ZEROCOPY (RSF_ZEROCOPY_THRESHOLD env, default 64 KiB; 0 disables
/// the tier).  Below it, pinning + completion bookkeeping costs more than
/// the copy it saves.  Re-read on every call so benches and tests can
/// flip the env between runs.
size_t ZeroCopyThresholdBytes() noexcept;

/// How many SO_EE_CODE_ZEROCOPY_COPIED completions a link tolerates
/// before concluding the route cannot do true zerocopy (loopback never
/// can) and reverting to the copy path (RSF_ZEROCOPY_COPIED_LIMIT env,
/// default 8; 0 = never revert, for benches pinning the tier on).
uint64_t ZeroCopyCopiedLimit() noexcept;

/// True for accept(2) errno values that do not poison the listener —
/// aborted handshakes (ECONNABORTED, EPROTO), fd-table or kernel-memory
/// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM), signals (EINTR) — so accept
/// loops should back off and retry instead of exiting.
bool IsTransientAcceptErrno(int error) noexcept;

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.
  static Result<TcpListener> Listen(uint16_t port);

  /// Blocks until a connection arrives.  EINTR is retried internally;
  /// transient failures (see IsTransientAcceptErrno) come back as
  /// kResourceExhausted, terminal ones (listener closed) as kUnavailable.
  Result<TcpConnection> Accept();

  /// Nonblocking accept for reactor use (listener must be O_NONBLOCK).
  /// Returns true with `*out` filled, false when the backlog is drained
  /// (EAGAIN) or the failure is transient, or an error when the listener is
  /// terminally broken (closed).
  Result<bool> TryAccept(TcpConnection* out);

  /// Switches O_NONBLOCK on the listening socket.
  Status SetNonBlocking(bool enabled);

  [[nodiscard]] int fd() const noexcept { return fd_.fd(); }
  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Unblocks Accept() by closing the listening socket.
  void Close() noexcept;

 private:
  TcpListener(FdGuard fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}
  FdGuard fd_;
  uint16_t port_ = 0;
};

}  // namespace rsf::net
