#include "net/sim_link.h"

#include <algorithm>

namespace rsf::net {

uint64_t SimLink::WireTimeNanos(size_t bytes) const {
  if (config_.bandwidth_bps <= 0.0) return 0;
  const double bits = static_cast<double>(bytes) * 8.0;
  return static_cast<uint64_t>(bits / config_.bandwidth_bps * 1e9);
}

uint64_t SimLink::DelayFor(size_t bytes, uint64_t now_nanos) {
  const uint64_t wire = WireTimeNanos(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t start = std::max(now_nanos, busy_until_nanos_);
  const uint64_t done = start + wire;
  busy_until_nanos_ = done;
  const uint64_t deliver = done + config_.propagation_nanos;
  return deliver > now_nanos ? deliver - now_nanos : 0;
}

}  // namespace rsf::net
