#include "net/io_backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/log.h"
#include "net/epoll_backend.h"
#include "net/socket.h"
#include "net/uring_backend.h"

namespace rsf::net {
namespace {

std::atomic<uint64_t> g_enter_calls{0};
std::atomic<uint64_t> g_sqes_submitted{0};
std::atomic<uint64_t> g_cqes_reaped{0};
std::atomic<uint64_t> g_epoll_waits{0};
std::atomic<uint64_t> g_epoll_ctls{0};

/// The test hook: RSF_URING_FORCE_UNAVAILABLE=1 makes the probe report
/// failure even where io_uring works, exercising the auto-fallback path.
/// Read live (not cached) so a test can flip it per EventLoop.
bool UringForcedUnavailable() {
  const char* env = std::getenv("RSF_URING_FORCE_UNAVAILABLE");
  return env != nullptr && env[0] == '1';
}

void LogBackendChoiceOnce(IoBackendKind kind, const char* origin) {
  static std::once_flag once;
  std::call_once(once, [kind, origin] {
    RSF_INFO("io backend: %s (%s)", IoBackendKindName(kind), origin);
  });
}

}  // namespace

namespace backend_counters {
void AddEnter(uint64_t n) noexcept {
  g_enter_calls.fetch_add(n, std::memory_order_relaxed);
}
void AddSqes(uint64_t n) noexcept {
  g_sqes_submitted.fetch_add(n, std::memory_order_relaxed);
}
void AddCqes(uint64_t n) noexcept {
  g_cqes_reaped.fetch_add(n, std::memory_order_relaxed);
}
void AddEpollWaits(uint64_t n) noexcept {
  g_epoll_waits.fetch_add(n, std::memory_order_relaxed);
}
void AddEpollCtls(uint64_t n) noexcept {
  g_epoll_ctls.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace backend_counters

const char* IoBackendKindName(IoBackendKind kind) noexcept {
  return kind == IoBackendKind::kUring ? "uring" : "epoll";
}

bool UringAvailable() {
  if (UringForcedUnavailable()) return false;
  // The real probe result can't change over a process lifetime; cache it.
  static const bool available = UringBackend::ProbeSetup();
  return available;
}

IoBackendKind ResolveIoBackendKind() {
  const char* env = std::getenv("RSF_IO_BACKEND");
  if (env == nullptr || std::strcmp(env, "epoll") == 0) {
    LogBackendChoiceOnce(IoBackendKind::kEpoll,
                         env != nullptr ? "RSF_IO_BACKEND" : "default");
    return IoBackendKind::kEpoll;
  }
  if (std::strcmp(env, "uring") == 0 || std::strcmp(env, "auto") == 0) {
    if (UringAvailable()) {
      LogBackendChoiceOnce(IoBackendKind::kUring, "RSF_IO_BACKEND");
      return IoBackendKind::kUring;
    }
    // EPERM/ENOSYS from io_uring_setup — seccomp sandbox or an old
    // kernel.  `auto` promises a clean fallback; an explicit `uring`
    // request degrades too (crashing a sandboxed host helps nobody).
    LogBackendChoiceOnce(IoBackendKind::kEpoll,
                         "RSF_IO_BACKEND requested uring, probe failed");
    return IoBackendKind::kEpoll;
  }
  RSF_WARN("ignoring invalid RSF_IO_BACKEND=%s (epoll|uring|auto)", env);
  LogBackendChoiceOnce(IoBackendKind::kEpoll, "default");
  return IoBackendKind::kEpoll;
}

std::unique_ptr<IoBackend> MakeIoBackend(IoBackendKind kind) {
  if (kind == IoBackendKind::kUring && UringAvailable()) {
    if (auto backend = UringBackend::Create()) return backend;
    RSF_WARN("uring backend setup failed; falling back to epoll");
  }
  auto epoll = EpollBackend::Create();
  SFM_CHECK_MSG(epoll != nullptr, "epoll backend setup failed");
  return epoll;
}

IoSyscallCounters GlobalIoCounters() noexcept {
  IoSyscallCounters out;
  out.enter_calls = g_enter_calls.load(std::memory_order_relaxed);
  out.sqes_submitted = g_sqes_submitted.load(std::memory_order_relaxed);
  out.cqes_reaped = g_cqes_reaped.load(std::memory_order_relaxed);
  out.epoll_waits = g_epoll_waits.load(std::memory_order_relaxed);
  out.epoll_ctls = g_epoll_ctls.load(std::memory_order_relaxed);
  out.sendmsg_calls = WriteSyscallCount();
  out.recv_calls = RecvSyscallCount();
  return out;
}

}  // namespace rsf::net
