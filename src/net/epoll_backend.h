// The portable readiness backend: the epoll code EventLoop was built on,
// extracted verbatim behind the IoBackend seam.  One epoll instance, one
// epoll_wait per loop turn; no submission tier (links issue their own
// recv/sendmsg syscalls when readiness fires).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/io_backend.h"

namespace rsf::net {

class EpollBackend final : public IoBackend {
 public:
  /// nullptr if epoll_create1 fails (which SFM_CHECKs in practice — the
  /// factory treats a null backend as fatal).
  static std::unique_ptr<EpollBackend> Create();
  ~EpollBackend() override;

  [[nodiscard]] const char* name() const noexcept override { return "epoll"; }

  bool Add(int fd, uint32_t interest) override;
  void Mod(int fd, uint32_t interest) override;
  void Del(int fd) override;
  bool Wait(std::vector<ReadyEvent>* ready) override;
  [[nodiscard]] IoBackendCounters counters() const noexcept override;

 private:
  explicit EpollBackend(int epoll_fd) : epoll_fd_(epoll_fd) {}
  static uint32_t ToEpollMask(uint32_t interest) noexcept;

  int epoll_fd_ = -1;
  std::atomic<uint64_t> epoll_waits_{0};
  std::atomic<uint64_t> epoll_ctls_{0};
};

}  // namespace rsf::net
