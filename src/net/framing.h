// Length-prefixed message framing over a TcpConnection, mirroring TCPROS:
// every unit on the wire is [uint32 little-endian length][payload].
//
// The frame reader takes an allocator callback so the receiving middleware
// can decide where payload bytes land.  This is the hook that makes the
// serialization-free receive path possible: for SFM topics the allocator
// returns a pointer into a freshly registered message arena, so the bytes
// coming off the socket *are* the message (paper §4.2, subscriber side).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/status.h"
#include "net/socket.h"

namespace rsf::net {

/// Maximum accepted frame payload (guards against corrupted lengths).
inline constexpr uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Writes one frame: 4-byte LE length then the payload, gathered into a
/// single writev-style syscall (TcpConnection::WritevAll).
Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload);

/// Writes one frame whose payload is split across two spans (used to send a
/// small header followed by a large zero-copy body without concatenating).
/// Prefix + head + body go out in one gathered syscall.
Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body);

/// Allocator: given the payload length, returns the destination buffer.
/// Returning nullptr aborts the read with kResourceExhausted.
using FrameAllocator = std::function<uint8_t*(uint32_t length)>;

/// Reads one frame into memory provided by `alloc`; on success stores the
/// payload length in `*length`.
Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length);

}  // namespace rsf::net
