// Length-prefixed message framing over a TcpConnection, mirroring TCPROS:
// every unit on the wire is [uint32 little-endian length][payload].
//
// The frame reader takes an allocator callback so the receiving middleware
// can decide where payload bytes land.  This is the hook that makes the
// serialization-free receive path possible: for SFM topics the allocator
// returns a pointer into a freshly registered message arena, so the bytes
// coming off the socket *are* the message (paper §4.2, subscriber side).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "net/socket.h"

namespace rsf::net {

/// The wire length prefix carries a frame *tag* in its top 4 bits (shm
/// descriptor/control frames share the data links, see kFrameTag*), so the
/// payload length proper lives in the low 28 bits.  Tag 0 is ordinary data
/// — the only tag that existed before the shm tier — so a plain peer's
/// frames parse exactly as before.
inline constexpr uint32_t kFrameLengthMask = (1u << 28) - 1u;

/// Maximum accepted frame payload (guards against corrupted lengths).
inline constexpr uint32_t kMaxFramePayload = kFrameLengthMask;

inline constexpr unsigned kFrameTagShift = 28;
inline constexpr uint32_t kFrameTagData = 0;            // message payload
inline constexpr uint32_t kFrameTagShmDescriptor = 1;   // pub→sub block ref
inline constexpr uint32_t kFrameTagShmControl = 2;      // sub→pub ack/nack
inline constexpr uint32_t kFrameTagMax = kFrameTagShmControl;

/// Splits/builds a raw length-prefix value.  The frame reader hands the RAW
/// value to the allocator and on_frame callbacks (so receivers can route on
/// the tag); tag-0 frames have raw == length, which keeps every pre-shm
/// caller byte-for-byte unaffected.
constexpr uint32_t FrameTag(uint32_t raw) noexcept {
  return raw >> kFrameTagShift;
}
constexpr uint32_t FrameLength(uint32_t raw) noexcept {
  return raw & kFrameLengthMask;
}
constexpr uint32_t TaggedLength(uint32_t tag, uint32_t length) noexcept {
  return (tag << kFrameTagShift) | length;
}

/// Writes one frame: 4-byte LE length then the payload, gathered into a
/// single writev-style syscall (TcpConnection::WritevAll).
Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload);

/// Writes one frame whose payload is split across two spans (used to send a
/// small header followed by a large zero-copy body without concatenating).
/// Prefix + head + body go out in one gathered syscall.
Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body);

/// Allocator: given the raw length-prefix value (FrameLength() of it is the
/// payload byte count; FrameTag() the frame tag), returns the destination
/// buffer.  Returning nullptr aborts the read with kResourceExhausted.
using FrameAllocator = std::function<uint8_t*(uint32_t length)>;

/// Reads one frame into memory provided by `alloc`; on success stores the
/// payload length in `*length`.  The blocking path predates frame tags and
/// carries only data frames (bag files, tests): a tagged frame is rejected.
Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length);

/// Incremental frame parser for nonblocking connections (the reactor's
/// receive path).  Poll() consumes whatever bytes the socket has, resuming
/// mid-header or mid-payload across readiness events; the allocator is
/// invoked exactly once per frame — as soon as the 4-byte length prefix
/// completes — so payload bytes stream from the kernel straight into their
/// final destination (for SFM topics, a message arena: the one-copy
/// receive).  The buffer the allocator returns must stay valid until the
/// frame completes, across however many Poll() calls that takes.
class FrameReader {
 public:
  enum class Step {
    kFrame,     // a full frame completed; *length holds the payload size
    kNeedMore,  // socket drained mid-frame; call again on next readiness
  };

  /// Advances the state machine.  After kFrame the reader has reset itself;
  /// callers loop Poll() until kNeedMore to drain multi-frame bursts.
  /// A peer close at a frame boundary is kUnavailable ("connection
  /// closed"); mid-frame it is kUnavailable with a truncation message.
  /// `*length` receives the RAW prefix value — mask with FrameLength()
  /// where a byte count is needed; a raw tag above kFrameTagMax is
  /// rejected as kOutOfRange (corrupted stream).
  Result<Step> Poll(TcpConnection& conn, const FrameAllocator& alloc,
                    uint32_t* length);

  /// Completion-mode interface (submission backends, net/io_backend.h):
  /// instead of the reader issuing recv syscalls, the caller stages a recv
  /// SQE aimed at NextWindow() — the exact remaining header or payload
  /// span, so payload bytes still land straight in the allocator's arena
  /// (the one-copy receive) — and feeds the completed byte count to
  /// Commit().  The allocator runs inside Commit when the header
  /// completes, exactly as Poll invokes it.  `n` must not exceed the
  /// window (the kernel bounds recv by the SQE length).
  [[nodiscard]] std::span<uint8_t> NextWindow() noexcept;
  Result<Step> Commit(size_t n, const FrameAllocator& alloc, uint32_t* length);

  /// Abandons any partial frame (link teardown reuse).
  void Reset() noexcept;

  /// True while a frame is partially read (tests).
  [[nodiscard]] bool MidFrame() const noexcept {
    return header_got_ > 0 || state_ == State::kPayload;
  }

 private:
  enum class State { kHeader, kPayload };
  State state_ = State::kHeader;
  uint8_t header_[4] = {};
  size_t header_got_ = 0;
  uint8_t* payload_ = nullptr;
  uint32_t raw_len_ = 0;      // tag | length as it appeared on the wire
  uint32_t payload_len_ = 0;  // FrameLength(raw_len_)
  size_t payload_got_ = 0;
};

/// The floor and ceiling of the adaptive per-sendmsg gather budget.  The
/// writer starts gathering kGatherFramesMin frames per syscall and doubles
/// toward SendBatchMaxFrames() while the queue stays deeper than the
/// budget, halving back once it drains — small-message floods amortize the
/// syscall without penalizing shallow queues with oversized iovec walks.
inline constexpr size_t kGatherFramesMin = 8;

/// Ceiling for the adaptive gather budget (RSF_SEND_BATCH_MAX env,
/// default 64; values below kGatherFramesMin clamp up).  Re-read on every
/// call so benches can sweep it between runs.
size_t SendBatchMaxFrames() noexcept;

/// Outgoing frame queue + resumable gathered writer for nonblocking
/// connections (the reactor's send path).  Keeps the one-sendmsg-per-burst
/// economics of WritevAll: each Flush() gathers the length prefixes and
/// payloads of every queued frame into as few writev-style syscalls as the
/// socket buffer allows, resuming mid-frame after partial writes.  Not
/// thread-safe — confine to one loop thread (callers lock around it when a
/// producer thread enqueues).
///
/// Zerocopy tier: after EnableZeroCopy(), frames whose payload is at least
/// the threshold leave via MSG_ZEROCOPY — the kernel pins the payload
/// pages instead of copying them, and the frame's shared payload holder is
/// retained in an in-flight queue until the matching completion arrives on
/// the socket error queue (the caller routes EPOLLERR to
/// CompleteZeroCopy).  Only the payload is pinned: the 4-byte length
/// prefix lives inside the queue node, whose storage is recycled the
/// moment the frame pops, so headers always travel the copy path
/// (gathered with any preceding small frames).  ENOBUFS on a pinned send
/// is transient optmem pressure — that one send falls back to a copy and
/// the tier stays on; EINVAL/EOPNOTSUPP and repeated
/// SO_EE_CODE_ZEROCOPY_COPIED completions (loopback) disable the tier for
/// the connection's lifetime.
class FrameWriter {
 public:
  /// Queues one frame (shared payload: fan-out costs no copy).  `size` is
  /// the raw prefix value — TaggedLength(tag, bytes), or just the byte
  /// count for ordinary data frames; the payload byte count on the wire is
  /// FrameLength(size).  When `max_pending` > 0 and the queue is at
  /// capacity, the oldest frame whose bytes have not begun to leave is
  /// evicted first (drop-oldest, matching the publisher queue policy);
  /// returns true when that happened.  The frame whose write is in progress
  /// is never evicted — a partial frame on the wire must complete or the
  /// stream desynchronizes.
  bool Enqueue(std::shared_ptr<const uint8_t[]> payload, uint32_t size,
               size_t max_pending = 0);

  /// Writes as much as the socket accepts.  On success, check HasPending():
  /// true means the socket buffer filled and the caller should arm
  /// writability.  An error means the link is dead; PendingFrames() tells
  /// the caller how many queued frames will never reach the wire.
  Status Flush(TcpConnection& conn);

  // ---- completion-mode interface (submission backends) ----
  // The writer stages a batch of frames out of the queue, the link
  // submits it as one SQE (SENDMSG for the gathered copy path, SEND_ZC
  // for a pinned payload), and the completed byte count comes back
  // through CommitStaged.  Staged frames live in their own deque so their
  // header bytes and iovec array stay at stable addresses while the
  // kernel reads them — Enqueue/eviction never touches them.

  /// One staged submission: either a gathered iovec batch (headers +
  /// copy-path payloads) or a single pinned payload for SEND_ZC.
  struct StagedSend {
    std::span<const iovec> iov;         // empty when zc_data is set
    const uint8_t* zc_data = nullptr;   // pinned payload remainder
    size_t zc_len = 0;
    std::shared_ptr<const uint8_t[]> zc_holder;  // keep alive until NOTIF
    [[nodiscard]] bool empty() const noexcept {
      return iov.empty() && zc_data == nullptr;
    }
  };

  /// Stages the next submission.  Pulls up to the adaptive gather budget
  /// of frames from the queue (stopping after the first zerocopy-eligible
  /// frame, whose payload must travel alone), or resumes the batch already
  /// staged.  The returned spans stay valid until CommitStaged.  Empty
  /// when nothing is queued.
  StagedSend StageSubmission();

  /// Accounts `bytes` of completed staged send; completed frames pop.
  /// `zerocopy` marks a SEND_ZC data completion (counts ZeroCopyFrames).
  void CommitStaged(size_t bytes, bool zerocopy) noexcept;

  /// Degrades the staged front frame to the copy path for its next
  /// submission (SEND_ZC came back ENOBUFS — transient pinned-page
  /// pressure; the tier stays on for later frames).
  void ForceCopyStagedFront() noexcept { force_copy_front_ = true; }

  /// Tracks SEND_ZC submissions awaiting their notification CQE.  The
  /// holders themselves are captured in the backend's completion entry;
  /// these counters keep InFlightHolders() meaningful for tests and feed
  /// the copied-completion auto-disable shared with the errqueue path.
  void NoteZeroCopySubmitted() noexcept { ++zc_outstanding_; }
  void NoteZeroCopyReleased(bool copied) noexcept;

  /// Activates the zerocopy tier (caller has already set SO_ZEROCOPY on
  /// the connection).  `threshold` of 0 keeps the tier off; `copied_limit`
  /// of 0 never auto-disables.
  void EnableZeroCopy(size_t threshold, uint64_t copied_limit) noexcept {
    zerocopy_threshold_ = threshold;
    zerocopy_copied_limit_ = copied_limit;
    zerocopy_active_ = threshold > 0;
  }

  /// Releases the pinned payload holders for the completed notification-id
  /// range [lo, hi] (TcpConnection::ZeroCopyCompletion).  Ids complete in
  /// order, so this pops from the front of the in-flight queue.  A copied
  /// completion counts toward the auto-disable limit: once reached the
  /// tier turns off — the route (loopback) copies anyway, so pinning only
  /// buys completion overhead.  Returns the number of holders released.
  size_t CompleteZeroCopy(uint32_t lo, uint32_t hi, bool copied) noexcept;

  /// Drops every pinned holder (link teardown).  Safe before completions
  /// arrive: the kernel holds its own page references for in-flight skbs,
  /// the holders only gate user-space reuse of the buffer.
  void ReleaseInFlight() noexcept {
    in_flight_.clear();
    zc_outstanding_ = 0;
  }

  [[nodiscard]] bool HasPending() const noexcept {
    return !pending_.empty() || !staged_.empty();
  }
  [[nodiscard]] size_t PendingFrames() const noexcept {
    return pending_.size() + staged_.size();
  }
  [[nodiscard]] uint64_t FramesWritten() const noexcept {
    return frames_written_;
  }
  /// Total bytes the kernel has accepted (copy + zerocopy).  The link's
  /// write-progress deadline snapshots this to tell a slow-but-moving peer
  /// from a stalled one.
  [[nodiscard]] uint64_t BytesWritten() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] bool ZeroCopyActive() const noexcept {
    return zerocopy_active_;
  }
  /// Holders pinned awaiting kernel completions (tests assert lifetime).
  /// Covers both tiers: errqueue-tracked MSG_ZEROCOPY sends and SEND_ZC
  /// submissions awaiting notification.
  [[nodiscard]] size_t InFlightHolders() const noexcept {
    return in_flight_.size() + zc_outstanding_;
  }
  /// Frames whose payload completed through the zerocopy tier.
  [[nodiscard]] uint64_t ZeroCopyFrames() const noexcept {
    return zerocopy_frames_;
  }
  [[nodiscard]] uint64_t CopiedCompletions() const noexcept {
    return copied_completions_;
  }
  /// Current adaptive gather budget (tests observe growth/decay).
  [[nodiscard]] size_t GatherBudget() const noexcept { return gather_budget_; }

 private:
  struct PendingFrame {
    uint8_t header[4];
    std::shared_ptr<const uint8_t[]> payload;
    uint32_t size = 0;
    size_t offset = 0;  // bytes of (header + payload) already written
  };

  /// One zerocopy send that left bytes: the sequential notification id the
  /// kernel assigned it, plus the payload holder it pinned.  A large frame
  /// that needed several sends appears once per send — same holder, rising
  /// ids — and the buffer frees only when the last entry releases.
  struct InFlightSend {
    uint32_t id = 0;
    std::shared_ptr<const uint8_t[]> holder;
  };

  [[nodiscard]] bool ZeroCopyEligible(const PendingFrame& frame)
      const noexcept {
    return zerocopy_active_ && frame.size >= zerocopy_threshold_;
  }
  Status FlushZeroCopyPayload(TcpConnection& conn, bool* blocked);
  void AdaptGatherBudget() noexcept;

  std::deque<PendingFrame> pending_;
  std::deque<PendingFrame> staged_;  // completion-mode: frames in flight
  std::deque<InFlightSend> in_flight_;
  size_t zc_outstanding_ = 0;    // SEND_ZC notifications pending
  bool force_copy_front_ = false;
  std::vector<iovec> iov_;  // reused gather scratch (grows with the budget)
  uint64_t frames_written_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t zerocopy_frames_ = 0;
  uint64_t copied_completions_ = 0;
  uint64_t zerocopy_copied_limit_ = 0;
  size_t zerocopy_threshold_ = 0;
  size_t gather_budget_ = kGatherFramesMin;
  uint32_t next_zerocopy_id_ = 0;
  bool zerocopy_active_ = false;
};

}  // namespace rsf::net
