// Length-prefixed message framing over a TcpConnection, mirroring TCPROS:
// every unit on the wire is [uint32 little-endian length][payload].
//
// The frame reader takes an allocator callback so the receiving middleware
// can decide where payload bytes land.  This is the hook that makes the
// serialization-free receive path possible: for SFM topics the allocator
// returns a pointer into a freshly registered message arena, so the bytes
// coming off the socket *are* the message (paper §4.2, subscriber side).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "common/status.h"
#include "net/socket.h"

namespace rsf::net {

/// Maximum accepted frame payload (guards against corrupted lengths).
inline constexpr uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Writes one frame: 4-byte LE length then the payload, gathered into a
/// single writev-style syscall (TcpConnection::WritevAll).
Status WriteFrame(TcpConnection& conn, std::span<const uint8_t> payload);

/// Writes one frame whose payload is split across two spans (used to send a
/// small header followed by a large zero-copy body without concatenating).
/// Prefix + head + body go out in one gathered syscall.
Status WriteFrameScattered(TcpConnection& conn, std::span<const uint8_t> head,
                           std::span<const uint8_t> body);

/// Allocator: given the payload length, returns the destination buffer.
/// Returning nullptr aborts the read with kResourceExhausted.
using FrameAllocator = std::function<uint8_t*(uint32_t length)>;

/// Reads one frame into memory provided by `alloc`; on success stores the
/// payload length in `*length`.
Status ReadFrame(TcpConnection& conn, const FrameAllocator& alloc,
                 uint32_t* length);

/// Incremental frame parser for nonblocking connections (the reactor's
/// receive path).  Poll() consumes whatever bytes the socket has, resuming
/// mid-header or mid-payload across readiness events; the allocator is
/// invoked exactly once per frame — as soon as the 4-byte length prefix
/// completes — so payload bytes stream from the kernel straight into their
/// final destination (for SFM topics, a message arena: the one-copy
/// receive).  The buffer the allocator returns must stay valid until the
/// frame completes, across however many Poll() calls that takes.
class FrameReader {
 public:
  enum class Step {
    kFrame,     // a full frame completed; *length holds the payload size
    kNeedMore,  // socket drained mid-frame; call again on next readiness
  };

  /// Advances the state machine.  After kFrame the reader has reset itself;
  /// callers loop Poll() until kNeedMore to drain multi-frame bursts.
  /// A peer close at a frame boundary is kUnavailable ("connection
  /// closed"); mid-frame it is kUnavailable with a truncation message.
  Result<Step> Poll(TcpConnection& conn, const FrameAllocator& alloc,
                    uint32_t* length);

  /// Abandons any partial frame (link teardown reuse).
  void Reset() noexcept;

  /// True while a frame is partially read (tests).
  [[nodiscard]] bool MidFrame() const noexcept {
    return header_got_ > 0 || state_ == State::kPayload;
  }

 private:
  enum class State { kHeader, kPayload };
  State state_ = State::kHeader;
  uint8_t header_[4] = {};
  size_t header_got_ = 0;
  uint8_t* payload_ = nullptr;
  uint32_t payload_len_ = 0;
  size_t payload_got_ = 0;
};

/// Outgoing frame queue + resumable gathered writer for nonblocking
/// connections (the reactor's send path).  Keeps the one-sendmsg-per-burst
/// economics of WritevAll: each Flush() gathers the length prefixes and
/// payloads of every queued frame into as few writev-style syscalls as the
/// socket buffer allows, resuming mid-frame after partial writes.  Not
/// thread-safe — confine to one loop thread (callers lock around it when a
/// producer thread enqueues).
class FrameWriter {
 public:
  /// Queues one frame (shared payload: fan-out costs no copy).  When
  /// `max_pending` > 0 and the queue is at capacity, the oldest frame whose
  /// bytes have not begun to leave is evicted first (drop-oldest, matching
  /// the publisher queue policy); returns true when that happened.  The
  /// frame whose write is in progress is never evicted — a partial frame on
  /// the wire must complete or the stream desynchronizes.
  bool Enqueue(std::shared_ptr<const uint8_t[]> payload, uint32_t size,
               size_t max_pending = 0);

  /// Writes as much as the socket accepts.  On success, check HasPending():
  /// true means the socket buffer filled and the caller should arm
  /// writability.  An error means the link is dead; PendingFrames() tells
  /// the caller how many queued frames will never reach the wire.
  Status Flush(TcpConnection& conn);

  [[nodiscard]] bool HasPending() const noexcept { return !pending_.empty(); }
  [[nodiscard]] size_t PendingFrames() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] uint64_t FramesWritten() const noexcept {
    return frames_written_;
  }

 private:
  struct PendingFrame {
    uint8_t header[4];
    std::shared_ptr<const uint8_t[]> payload;
    uint32_t size = 0;
    size_t offset = 0;  // bytes of (header + payload) already written
  };

  std::deque<PendingFrame> pending_;
  uint64_t frames_written_ = 0;
};

}  // namespace rsf::net
