#include "net/link.h"

#include <limits.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace rsf::net {

uint64_t WriteTimeoutNanos() noexcept {
  uint64_t millis = 30'000;
  if (const char* env = std::getenv("RSF_WRITE_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) millis = parsed;
  }
  return millis * 1'000'000ull;
}

Link::Link(EventLoop* loop, Options options, Callbacks callbacks)
    : loop_(loop),
      options_(options),
      callbacks_(std::move(callbacks)),
      submit_mode_(loop->io_backend()->SupportsSubmission()) {
  // Counted at construction, not registration, so a dial burst spreads
  // across the pool before any of the links finish binding.
  loop_->NoteLinkBound();
  loop_slot_held_.store(true, std::memory_order_release);
}

Link::~Link() { ReleaseLoopSlot(); }

void Link::ReleaseLoopSlot() noexcept {
  if (loop_slot_held_.exchange(false, std::memory_order_acq_rel)) {
    loop_->NoteLinkClosed();
  }
}

std::shared_ptr<Link> Link::Accepted(TcpConnection conn, EventLoop* loop,
                                     Options options, Callbacks callbacks) {
  auto link = std::make_shared<Link>(loop, options, std::move(callbacks));
  link->role_ = Role::kServer;
  link->conn_ = std::move(conn);
  link->state_.store(State::kHandshaking, std::memory_order_release);
  loop->RunInLoop([link] { link->StartServerOnLoop(); });
  return link;
}

std::shared_ptr<Link> Link::Dial(const std::string& host, uint16_t port,
                                 EventLoop* loop, Options options,
                                 Callbacks callbacks) {
  auto link = std::make_shared<Link>(loop, options, std::move(callbacks));
  link->role_ = Role::kClient;
  bool in_progress = false;
  auto conn = TcpConnection::ConnectStart(host, port, &in_progress);
  if (conn.ok()) {
    link->conn_ = std::move(*conn);
    link->state_.store(in_progress ? State::kConnecting : State::kHandshaking,
                       std::memory_order_release);
  } else {
    RSF_WARN("link: dial %s:%u failed: %s", host.c_str(), port,
             conn.status().message().c_str());
    // Not kClosed (CloseOnLoop would no-op): StartClientOnLoop sees the
    // invalid conn and surfaces the failure through on_closed like every
    // other error.
    link->state_.store(State::kConnecting, std::memory_order_release);
  }
  loop->RunInLoop([link, in_progress] { link->StartClientOnLoop(in_progress); });
  return link;
}

void Link::StartServerOnLoop() {
  if (state() == State::kClosed) return;
  if (auto s = conn_.SetNonBlocking(true); !s.ok()) {
    RSF_WARN("link: set nonblocking failed: %s", s.message().c_str());
    CloseOnLoop(true);
    return;
  }
  if (auto s = ApplyTransportSocketOptions(conn_); !s.ok()) {
    RSF_WARN("link: socket options failed: %s", s.message().c_str());
  }
  SetupZeroCopy();
  Register();
}

void Link::StartClientOnLoop(bool in_progress) {
  if (!conn_.valid()) {
    // The dial failed synchronously (bad address, fd exhaustion).
    CloseOnLoop(true);
    return;
  }
  if (auto s = ApplyTransportSocketOptions(conn_); !s.ok()) {
    RSF_WARN("link: socket options failed: %s", s.message().c_str());
  }
  SetupZeroCopy();
  if (in_progress) {
    Register();
    // No cancellation handle needed: the timer holds a weak_ptr and a
    // firing after the link left kConnecting is a no-op.
    std::weak_ptr<Link> weak = shared_from_this();
    loop_->RunAfter(options_.connect_timeout_nanos, [weak] {
      auto link = weak.lock();
      if (link && link->state() == State::kConnecting) {
        RSF_WARN("link: connect timed out (fd %d)", link->fd());
        link->CloseOnLoop(true);
      }
    });
    return;
  }
  // Loopback connects often complete synchronously — go straight to the
  // handshake.
  EnterClientHandshake();
  if (state() != State::kClosed) Register();
}

void Link::SetupZeroCopy() {
  if (options_.zerocopy_threshold == 0) return;
  if (submit_mode_) {
    // SEND_ZC carries its own notification CQEs — no SO_ZEROCOPY, no
    // error-queue draining.  Enable the writer tier only when the ring
    // actually supports the opcode.
    if (!loop_->io_backend()->SupportsZeroCopySend()) return;
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.EnableZeroCopy(options_.zerocopy_threshold,
                           options_.zerocopy_copied_limit);
    return;
  }
  if (auto s = conn_.EnableZeroCopy(); !s.ok()) {
    // Pre-4.14 kernel or odd socket family: keep the copy path, silently.
    RSF_DEBUG("link: SO_ZEROCOPY unavailable (fd %d): %s", conn_.fd(),
              s.message().c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(write_mutex_);
  writer_.EnableZeroCopy(options_.zerocopy_threshold,
                         options_.zerocopy_copied_limit);
}

bool Link::DrainErrorQueue() {
  // EPOLLERR stays raised while the error queue is non-empty (it is
  // level-triggered and unmaskable), so drain to EAGAIN or we busy-loop.
  // Entries are zerocopy completions — each releases a range of pinned
  // payload holders.  A plain socket error (ECONNRESET) does not queue
  // completion records; the queue reads empty and the subsequent
  // read/write syscall surfaces the errno and closes the link.
  for (;;) {
    TcpConnection::ZeroCopyCompletion completion;
    auto more = conn_.PollErrorQueue(&completion);
    if (!more.ok()) {
      CloseOnLoop(true);
      return false;
    }
    if (!*more) return true;
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.CompleteZeroCopy(completion.lo, completion.hi, completion.copied);
    zerocopy_frames_.store(writer_.ZeroCopyFrames(),
                           std::memory_order_relaxed);
    zerocopy_copied_.store(writer_.CopiedCompletions(),
                           std::memory_order_relaxed);
  }
}

void Link::MaybeArmWriteDeadline() {
  if (options_.write_timeout_nanos == 0 || write_deadline_armed_) return;
  const State s = state();
  if (s == State::kClosed || s == State::kConnecting) return;
  uint64_t snapshot;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!writer_.HasPending()) return;
    snapshot = writer_.BytesWritten();
  }
  write_deadline_armed_ = true;
  std::weak_ptr<Link> weak = shared_from_this();
  loop_->RunAfter(options_.write_timeout_nanos, [weak, snapshot] {
    if (auto link = weak.lock()) link->OnWriteDeadline(snapshot);
  });
}

void Link::OnWriteDeadline(uint64_t bytes_snapshot) {
  write_deadline_armed_ = false;
  if (state() == State::kClosed) return;
  bool pending;
  uint64_t written;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    pending = writer_.HasPending();
    written = writer_.BytesWritten();
  }
  if (!pending) return;  // queue drained since arming — all good
  if (written == bytes_snapshot) {
    // The peer accepted nothing for a full period: it stopped reading.
    // Close so queued frames and pinned zerocopy holders stop accruing;
    // the owner counts the stranded frames as drops.
    RSF_WARN("link: no write progress in %llu ms with frames queued; "
             "closing (fd %d)",
             static_cast<unsigned long long>(options_.write_timeout_nanos /
                                             1'000'000ull),
             conn_.fd());
    CloseOnLoop(true);
    return;
  }
  MaybeArmWriteDeadline();  // slow but moving: re-arm on a fresh snapshot
}

void Link::Register() {
  loop_->Add(conn_.fd(), CurrentInterest(),
             [self = shared_from_this()](uint32_t events) {
               self->OnEvent(events);
             });
  registered_ = true;
}

uint32_t Link::CurrentInterest() {
  if (submit_mode_) {
    // Sends always travel as submissions and established-state receives as
    // recv SQEs; readiness is only needed to resolve the connect and to
    // drive the (deliberately readiness-shaped) handshake exchange.
    switch (state()) {
      case State::kConnecting:
        return kEventWritable;
      case State::kHandshaking:
        return kEventReadable;
      default:
        return 0;
    }
  }
  bool write_pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_pending = writer_.HasPending();
  }
  switch (state()) {
    case State::kConnecting:
      return kEventWritable;
    case State::kHandshaking:
      return kEventReadable | (write_pending ? kEventWritable : 0u);
    case State::kEstablished:
      return (paused_ ? 0u : kEventReadable) |
             (write_pending ? kEventWritable : 0u);
    case State::kDraining:
      return write_pending ? kEventWritable : 0u;
    case State::kClosed:
      return 0;
  }
  return 0;
}

void Link::UpdateInterest() {
  if (registered_ && state() != State::kClosed) {
    loop_->SetInterest(conn_.fd(), CurrentInterest());
  }
}

void Link::OnEvent(uint32_t events) {
  if (state() == State::kClosed) return;
  if (events & kEventError) {
    // Zerocopy completions arrive as EPOLLERR; drain before read/write so
    // a completions-only event cannot spin the loop.
    if (!DrainErrorQueue()) return;
  }
  if (events & kEventWritable) {
    if (state() == State::kConnecting) {
      ResolveConnect();
    } else {
      FlushWriter();
    }
  }
  if (state() == State::kClosed) return;
  if (events & kEventReadable) {
    if (submit_mode_) {
      // Only the handshake reads by readiness here; in kEstablished the
      // recv SQE owns the socket and a stale single-shot poll completion
      // (armed during the handshake, reaped after the transition) must not
      // race it with a second reader.
      if (state() == State::kHandshaking) HandshakeReadable();
      // Bytes buffered behind the handshake reply are picked up by the
      // first recv SQE — EnterEstablished arms it before returning.
    } else if (state() == State::kEstablished && paused_) {
      // Read interest is off, so this is an EPOLLERR/HUP fold-in: peek for
      // EOF without consuming frame bytes the resume will want.
      PeekForEof();
    } else {
      if (state() == State::kHandshaking) HandshakeReadable();
      // Fall through: bytes buffered behind the handshake reply (a fast
      // publisher) drain in the same event.
      if (state() == State::kEstablished && !paused_) ReadEstablished();
    }
  }
  if (state() != State::kClosed) UpdateInterest();
}

void Link::ResolveConnect() {
  const int error = conn_.TakeConnectError();
  if (error != 0) {
    RSF_DEBUG("link: connect failed: %s", std::strerror(error));
    CloseOnLoop(true);
    return;
  }
  state_.store(State::kHandshaking, std::memory_order_release);
  EnterClientHandshake();
}

void Link::EnterClientHandshake() {
  state_.store(State::kHandshaking, std::memory_order_release);
  if (callbacks_.make_handshake_request) {
    const std::vector<uint8_t> request = callbacks_.make_handshake_request();
    auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[request.size()]);
    std::memcpy(payload.get(), request.data(), request.size());
    {
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.Enqueue(std::move(payload),
                      static_cast<uint32_t>(request.size()));
    }
  }
  FlushWriter();
}

void Link::HandshakeReadable() {
  // One frame each way: a request (server role) or a reply (client role).
  const FrameAllocator alloc = [this](uint32_t length) -> uint8_t* {
    if (length > kMaxHandshakeFrame) return nullptr;
    handshake_buf_.resize(length);
    return handshake_buf_.data();
  };
  uint32_t length = 0;
  auto step = reader_.Poll(conn_, alloc, &length);
  if (!step.ok()) {
    CloseOnLoop(true);
    return;
  }
  if (*step == FrameReader::Step::kNeedMore) return;

  if (role_ == Role::kServer) {
    std::vector<uint8_t> reply;
    const bool accepted = callbacks_.on_handshake_request &&
                          callbacks_.on_handshake_request(
                              handshake_buf_.data(), length, &reply);
    if (!reply.empty()) {
      auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[reply.size()]);
      std::memcpy(payload.get(), reply.data(), reply.size());
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.Enqueue(std::move(payload), static_cast<uint32_t>(reply.size()));
    }
    if (accepted) {
      EnterEstablished();
    } else {
      // Flush the error reply to the peer, then close (kDraining).
      state_.store(State::kDraining, std::memory_order_release);
      FlushWriter();
    }
  } else {
    const bool accepted = callbacks_.on_handshake_reply &&
                          callbacks_.on_handshake_reply(handshake_buf_.data(),
                                                        length);
    if (accepted) {
      EnterEstablished();
    } else {
      CloseOnLoop(true);
    }
  }
  handshake_buf_.clear();
  handshake_buf_.shrink_to_fit();
}

void Link::EnterEstablished() {
  state_.store(State::kEstablished, std::memory_order_release);
  if (callbacks_.on_established) callbacks_.on_established(shared_from_this());
  if (state() == State::kClosed) return;  // on_established may close
  FlushWriter();
  // Completion-mode receive starts here: the first recv SQE also collects
  // any bytes the peer sent right behind its handshake reply.
  if (submit_mode_ && state() == State::kEstablished && !paused_) {
    ArmReceive();
  }
}

void Link::ReadEstablished() {
  if (!callbacks_.on_frame) {
    DrainDiscard();
    return;
  }
  while (state() == State::kEstablished && !paused_) {
    uint32_t length = 0;
    auto step = reader_.Poll(conn_, callbacks_.alloc, &length);
    if (!step.ok()) {
      CloseOnLoop(true);
      return;
    }
    if (*step == FrameReader::Step::kNeedMore) return;
    received_.fetch_add(1, std::memory_order_relaxed);
    callbacks_.on_frame(length);  // may pause or close the link
  }
}

void Link::DrainDiscard() {
  // Publisher side of a link: the peer sends nothing after the handshake,
  // so any readability is either EOF or junk to discard.
  uint8_t scratch[4096];
  for (;;) {
    auto n = conn_.ReadSome(scratch);
    if (!n.ok()) {
      CloseOnLoop(true);
      return;
    }
    if (*n == 0) return;  // drained
  }
}

void Link::PeekForEof() {
  uint8_t byte;
  const ssize_t n = ::recv(conn_.fd(), &byte, 1, MSG_PEEK);
  if (n > 0) return;  // data waiting for the resume — not an error
  if (n < 0 &&
      (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return;
  }
  CloseOnLoop(true);
}

bool Link::EnqueueFrame(std::shared_ptr<const uint8_t[]> payload,
                        uint32_t size) {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (state() == State::kClosed) {
    evicted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool evicted;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    evicted = writer_.Enqueue(std::move(payload), size,
                              options_.max_pending_frames);
  }
  if (evicted) evicted_.fetch_add(1, std::memory_order_relaxed);
  return evicted;
}

void Link::FlushOnLoop() {
  if (state() == State::kClosed) return;
  if (state() == State::kConnecting) return;  // nothing to flush yet
  FlushWriter();
  if (state() != State::kClosed) UpdateInterest();
}

void Link::FlushWriter() {
  if (submit_mode_) {
    PumpSend();
    return;
  }
  Status status;
  bool pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    status = writer_.Flush(conn_);
    pending = writer_.HasPending();
    sent_.store(writer_.FramesWritten(), std::memory_order_relaxed);
    zerocopy_frames_.store(writer_.ZeroCopyFrames(),
                           std::memory_order_relaxed);
  }
  if (!status.ok()) {
    CloseOnLoop(true);
    return;
  }
  if (state() == State::kDraining && !pending) {
    CloseOnLoop(true);
    return;
  }
  if (pending) MaybeArmWriteDeadline();
}

void Link::ArmReceive() {
  if (recv_armed_ || state() != State::kEstablished || paused_) return;
  void* buf;
  size_t len;
  int flags;
  if (callbacks_.on_frame) {
    // Aim the SQE at the reader's exact remaining window (header bytes,
    // then the allocator's arena pointer) — the one-copy receive survives
    // the backend swap.  MSG_WAITALL lets the kernel accumulate the whole
    // window before completing, so a frame costs two CQEs (header,
    // payload) instead of one per skb.
    const std::span<uint8_t> window = reader_.NextWindow();
    buf = window.data();
    len = window.size();
    flags = MSG_WAITALL;
  } else {
    // Drain-and-discard mode (publisher side): any completion is either
    // junk to drop or EOF.
    if (discard_buf_.empty()) discard_buf_.resize(4096);
    buf = discard_buf_.data();
    len = discard_buf_.size();
    flags = 0;
  }
  recv_armed_ = loop_->io_backend()->SubmitRecv(
      conn_.fd(), buf, len, flags,
      [self = shared_from_this()](int32_t res, uint32_t) {
        self->OnRecvCqe(res);
      });
  if (!recv_armed_) CloseOnLoop(true);
}

void Link::OnRecvCqe(int32_t res) {
  recv_armed_ = false;
  if (state() == State::kClosed) return;
  if (res == 0) {  // orderly EOF
    CloseOnLoop(true);
    return;
  }
  if (res < 0) {
    if (res == -EINTR || res == -EAGAIN || res == -ENOBUFS) {
      ArmReceive();  // transient — re-stage the same window
      return;
    }
    if (res == -ECANCELED) return;  // Del cancelled us mid-teardown
    RSF_DEBUG("link: recv completion failed: %s", std::strerror(-res));
    CloseOnLoop(true);
    return;
  }
  if (!callbacks_.on_frame) {
    ArmReceive();  // discarded
    return;
  }
  // MSG_WAITALL can still complete short (signal, peer close mid-frame);
  // Commit accumulates and reports kNeedMore, and the re-arm below stages
  // the shrunken window.
  uint32_t length = 0;
  auto step = reader_.Commit(static_cast<size_t>(res), callbacks_.alloc,
                             &length);
  if (!step.ok()) {
    CloseOnLoop(true);
    return;
  }
  if (*step == FrameReader::Step::kFrame) {
    received_.fetch_add(1, std::memory_order_relaxed);
    callbacks_.on_frame(length);  // may pause or close the link
  }
  if (state() == State::kEstablished && !paused_) ArmReceive();
}

void Link::PumpSend() {
  if (send_inflight_) return;
  const State s = state();
  if (s == State::kClosed || s == State::kConnecting) return;
  FrameWriter::StagedSend staged;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    staged = writer_.StageSubmission();
  }
  if (staged.empty()) {
    if (s == State::kDraining) CloseOnLoop(true);
    return;
  }
  IoBackend* backend = loop_->io_backend();
  bool ok;
  if (staged.zc_data != nullptr) {
    {
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.NoteZeroCopySubmitted();
    }
    // The payload holder rides in the completion closure: the backend
    // keeps it pinned until the notification CQE (F_NOTIF) erases the
    // entry — the submission-tier equivalent of the errqueue in-flight
    // queue.
    ok = backend->SubmitSendZc(
        conn_.fd(), staged.zc_data, staged.zc_len,
        [self = shared_from_this(), holder = staged.zc_holder](
            int32_t res, uint32_t flags) { self->OnSendZcCqe(res, flags); });
  } else {
    send_hdr_ = msghdr{};
    send_hdr_.msg_iov = const_cast<iovec*>(staged.iov.data());
    send_hdr_.msg_iovlen =
        std::min<size_t>(staged.iov.size(), static_cast<size_t>(IOV_MAX));
    ok = backend->SubmitSendMsg(
        conn_.fd(), &send_hdr_,
        [self = shared_from_this()](int32_t res, uint32_t) {
          self->OnSendCqe(res);
        });
  }
  if (!ok) {
    CloseOnLoop(true);
    return;
  }
  send_inflight_ = true;
  MaybeArmWriteDeadline();
}

void Link::OnSendCqe(int32_t res) {
  send_inflight_ = false;
  if (state() == State::kClosed) return;
  if (res < 0) {
    if (res == -EINTR || res == -EAGAIN) {
      PumpSend();  // restage the same batch
      return;
    }
    if (res == -ECANCELED) return;
    RSF_DEBUG("link: send completion failed: %s", std::strerror(-res));
    CloseOnLoop(true);
    return;
  }
  bool pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.CommitStaged(static_cast<size_t>(res), false);
    pending = writer_.HasPending();
    sent_.store(writer_.FramesWritten(), std::memory_order_relaxed);
  }
  if (pending) {
    PumpSend();  // a short send resumes mid-frame; more frames keep going
    return;
  }
  if (state() == State::kDraining) CloseOnLoop(true);
}

void Link::OnSendZcCqe(int32_t res, uint32_t flags) {
  if (flags & kCompletionNotif) {
    // Notification CQE: the kernel released the pinned pages.  res carries
    // only the copied-fallback bit (loopback copies anyway); enough of
    // them auto-disables the tier, same policy as the errqueue path.
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.NoteZeroCopyReleased((flags & kCompletionZcCopied) != 0);
    zerocopy_copied_.store(writer_.CopiedCompletions(),
                           std::memory_order_relaxed);
    return;
  }
  // Data CQE (kCompletionMore set when a notification will follow).
  send_inflight_ = false;
  const bool notif_follows = (flags & kCompletionMore) != 0;
  if (state() == State::kClosed) return;
  if (res < 0) {
    if (!notif_follows) {
      // Errored before pinning anything: no notification will arrive.
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.NoteZeroCopyReleased(false);
    }
    if (res == -ENOBUFS || res == -EINTR || res == -EAGAIN) {
      // Transient pinned-page pressure: this frame degrades to the copy
      // path, the tier stays on for later frames.
      if (res == -ENOBUFS) {
        std::lock_guard<std::mutex> lock(write_mutex_);
        writer_.ForceCopyStagedFront();
      }
      PumpSend();
      return;
    }
    if (res == -EINVAL || res == -EOPNOTSUPP) {
      // The socket family or route can't do SEND_ZC at all: turn the tier
      // off for the link's lifetime and resend via the copy path.
      {
        std::lock_guard<std::mutex> lock(write_mutex_);
        writer_.EnableZeroCopy(0, 0);
      }
      PumpSend();
      return;
    }
    if (res == -ECANCELED) return;
    RSF_DEBUG("link: SEND_ZC completion failed: %s", std::strerror(-res));
    CloseOnLoop(true);
    return;
  }
  // The socket-layer zerocopy counters normally tick inside
  // TcpConnection::SendSome; SEND_ZC bypasses it, so feed them here.
  NoteZeroCopySend(static_cast<uint64_t>(res));
  bool pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.CommitStaged(static_cast<size_t>(res), true);
    pending = writer_.HasPending();
    sent_.store(writer_.FramesWritten(), std::memory_order_relaxed);
    zerocopy_frames_.store(writer_.ZeroCopyFrames(),
                           std::memory_order_relaxed);
  }
  if (pending) {
    PumpSend();
    return;
  }
  if (state() == State::kDraining) CloseOnLoop(true);
}

void Link::PauseReading() {
  if (state() != State::kEstablished || paused_) return;
  paused_ = true;
  UpdateInterest();
}

void Link::ResumeReading() {
  if (state() != State::kEstablished || !paused_) return;
  paused_ = false;
  if (submit_mode_) {
    // Bytes that arrived while paused sit in the kernel buffer; the fresh
    // recv SQE completes against them immediately.
    ArmReceive();
    return;
  }
  UpdateInterest();
  // Bytes that arrived while paused are already in the kernel buffer;
  // level-triggered epoll re-reports them, so no manual read is needed.
}

void Link::CloseNow() { CloseOnLoop(false); }

void Link::CloseSync() {
  auto self = shared_from_this();
  loop_->RunSync([self] { self->CloseOnLoop(false); });
}

void Link::CloseOnLoop(bool notify) {
  if (state() == State::kClosed) return;
  state_.store(State::kClosed, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    stranded_.store(writer_.PendingFrames(), std::memory_order_relaxed);
    // Completions for sends still in flight will never be read; dropping
    // the holders now is safe because the kernel keeps its own page
    // references for queued skbs — the holders only gate user-space
    // buffer reuse, and the arena block frees whenever the last reference
    // (ours or a fan-out peer's) goes.
    writer_.ReleaseInFlight();
  }
  // Remove BEFORE close: on a submission backend this synchronously
  // cancels every SQE targeting the fd (and drops the completion closures,
  // releasing any SEND_ZC payload holders they carry) — closing first
  // would leave in-flight SQEs holding the file open.
  if (registered_) {
    loop_->Remove(conn_.fd());
    registered_ = false;
  }
  ReleaseLoopSlot();
  conn_.Close();
  if (notify && callbacks_.on_closed) callbacks_.on_closed(shared_from_this());
  // Release the callbacks (they capture the owner: Link ⇄ owner cycle).
  // Deferred via Post: CloseOnLoop may be running INSIDE one of these
  // std::functions (on_frame → CloseOnLoop), and destroying the function
  // currently executing is UB.  The posted task runs after this event
  // dispatch finishes, on the same loop.  Post only fails once the loop
  // has stopped — at which point no callback frame is live and clearing
  // inline is safe.
  if (!loop_->Post([self = shared_from_this()] { self->callbacks_ = {}; })) {
    callbacks_ = {};
  }
}

Link::Stats Link::stats() const noexcept {
  Stats s;
  s.frames_enqueued = enqueued_.load(std::memory_order_relaxed);
  s.frames_evicted = evicted_.load(std::memory_order_relaxed);
  s.frames_sent = sent_.load(std::memory_order_relaxed);
  s.frames_received = received_.load(std::memory_order_relaxed);
  s.frames_stranded = stranded_.load(std::memory_order_relaxed);
  s.zerocopy_frames = zerocopy_frames_.load(std::memory_order_relaxed);
  s.zerocopy_copied = zerocopy_copied_.load(std::memory_order_relaxed);
  return s;
}

size_t Link::PendingZeroCopyHolders() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return writer_.InFlightHolders();
}

bool Link::ZeroCopyActive() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return writer_.ZeroCopyActive();
}

}  // namespace rsf::net
