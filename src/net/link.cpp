#include "net/link.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace rsf::net {

uint64_t WriteTimeoutNanos() noexcept {
  uint64_t millis = 30'000;
  if (const char* env = std::getenv("RSF_WRITE_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) millis = parsed;
  }
  return millis * 1'000'000ull;
}

Link::Link(EventLoop* loop, Options options, Callbacks callbacks)
    : loop_(loop),
      options_(options),
      callbacks_(std::move(callbacks)) {}

std::shared_ptr<Link> Link::Accepted(TcpConnection conn, EventLoop* loop,
                                     Options options, Callbacks callbacks) {
  auto link = std::make_shared<Link>(loop, options, std::move(callbacks));
  link->role_ = Role::kServer;
  link->conn_ = std::move(conn);
  link->state_.store(State::kHandshaking, std::memory_order_release);
  loop->RunInLoop([link] { link->StartServerOnLoop(); });
  return link;
}

std::shared_ptr<Link> Link::Dial(const std::string& host, uint16_t port,
                                 EventLoop* loop, Options options,
                                 Callbacks callbacks) {
  auto link = std::make_shared<Link>(loop, options, std::move(callbacks));
  link->role_ = Role::kClient;
  bool in_progress = false;
  auto conn = TcpConnection::ConnectStart(host, port, &in_progress);
  if (conn.ok()) {
    link->conn_ = std::move(*conn);
    link->state_.store(in_progress ? State::kConnecting : State::kHandshaking,
                       std::memory_order_release);
  } else {
    RSF_WARN("link: dial %s:%u failed: %s", host.c_str(), port,
             conn.status().message().c_str());
    // Not kClosed (CloseOnLoop would no-op): StartClientOnLoop sees the
    // invalid conn and surfaces the failure through on_closed like every
    // other error.
    link->state_.store(State::kConnecting, std::memory_order_release);
  }
  loop->RunInLoop([link, in_progress] { link->StartClientOnLoop(in_progress); });
  return link;
}

void Link::StartServerOnLoop() {
  if (state() == State::kClosed) return;
  if (auto s = conn_.SetNonBlocking(true); !s.ok()) {
    RSF_WARN("link: set nonblocking failed: %s", s.message().c_str());
    CloseOnLoop(true);
    return;
  }
  if (auto s = ApplyTransportSocketOptions(conn_); !s.ok()) {
    RSF_WARN("link: socket options failed: %s", s.message().c_str());
  }
  SetupZeroCopy();
  Register();
}

void Link::StartClientOnLoop(bool in_progress) {
  if (!conn_.valid()) {
    // The dial failed synchronously (bad address, fd exhaustion).
    CloseOnLoop(true);
    return;
  }
  if (auto s = ApplyTransportSocketOptions(conn_); !s.ok()) {
    RSF_WARN("link: socket options failed: %s", s.message().c_str());
  }
  SetupZeroCopy();
  if (in_progress) {
    Register();
    // No cancellation handle needed: the timer holds a weak_ptr and a
    // firing after the link left kConnecting is a no-op.
    std::weak_ptr<Link> weak = shared_from_this();
    loop_->RunAfter(options_.connect_timeout_nanos, [weak] {
      auto link = weak.lock();
      if (link && link->state() == State::kConnecting) {
        RSF_WARN("link: connect timed out (fd %d)", link->fd());
        link->CloseOnLoop(true);
      }
    });
    return;
  }
  // Loopback connects often complete synchronously — go straight to the
  // handshake.
  EnterClientHandshake();
  if (state() != State::kClosed) Register();
}

void Link::SetupZeroCopy() {
  if (options_.zerocopy_threshold == 0) return;
  if (auto s = conn_.EnableZeroCopy(); !s.ok()) {
    // Pre-4.14 kernel or odd socket family: keep the copy path, silently.
    RSF_DEBUG("link: SO_ZEROCOPY unavailable (fd %d): %s", conn_.fd(),
              s.message().c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(write_mutex_);
  writer_.EnableZeroCopy(options_.zerocopy_threshold,
                         options_.zerocopy_copied_limit);
}

bool Link::DrainErrorQueue() {
  // EPOLLERR stays raised while the error queue is non-empty (it is
  // level-triggered and unmaskable), so drain to EAGAIN or we busy-loop.
  // Entries are zerocopy completions — each releases a range of pinned
  // payload holders.  A plain socket error (ECONNRESET) does not queue
  // completion records; the queue reads empty and the subsequent
  // read/write syscall surfaces the errno and closes the link.
  for (;;) {
    TcpConnection::ZeroCopyCompletion completion;
    auto more = conn_.PollErrorQueue(&completion);
    if (!more.ok()) {
      CloseOnLoop(true);
      return false;
    }
    if (!*more) return true;
    std::lock_guard<std::mutex> lock(write_mutex_);
    writer_.CompleteZeroCopy(completion.lo, completion.hi, completion.copied);
    zerocopy_frames_.store(writer_.ZeroCopyFrames(),
                           std::memory_order_relaxed);
    zerocopy_copied_.store(writer_.CopiedCompletions(),
                           std::memory_order_relaxed);
  }
}

void Link::MaybeArmWriteDeadline() {
  if (options_.write_timeout_nanos == 0 || write_deadline_armed_) return;
  const State s = state();
  if (s == State::kClosed || s == State::kConnecting) return;
  uint64_t snapshot;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!writer_.HasPending()) return;
    snapshot = writer_.BytesWritten();
  }
  write_deadline_armed_ = true;
  std::weak_ptr<Link> weak = shared_from_this();
  loop_->RunAfter(options_.write_timeout_nanos, [weak, snapshot] {
    if (auto link = weak.lock()) link->OnWriteDeadline(snapshot);
  });
}

void Link::OnWriteDeadline(uint64_t bytes_snapshot) {
  write_deadline_armed_ = false;
  if (state() == State::kClosed) return;
  bool pending;
  uint64_t written;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    pending = writer_.HasPending();
    written = writer_.BytesWritten();
  }
  if (!pending) return;  // queue drained since arming — all good
  if (written == bytes_snapshot) {
    // The peer accepted nothing for a full period: it stopped reading.
    // Close so queued frames and pinned zerocopy holders stop accruing;
    // the owner counts the stranded frames as drops.
    RSF_WARN("link: no write progress in %llu ms with frames queued; "
             "closing (fd %d)",
             static_cast<unsigned long long>(options_.write_timeout_nanos /
                                             1'000'000ull),
             conn_.fd());
    CloseOnLoop(true);
    return;
  }
  MaybeArmWriteDeadline();  // slow but moving: re-arm on a fresh snapshot
}

void Link::Register() {
  loop_->Add(conn_.fd(), CurrentInterest(),
             [self = shared_from_this()](uint32_t events) {
               self->OnEvent(events);
             });
  registered_ = true;
}

uint32_t Link::CurrentInterest() {
  bool write_pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_pending = writer_.HasPending();
  }
  switch (state()) {
    case State::kConnecting:
      return kEventWritable;
    case State::kHandshaking:
      return kEventReadable | (write_pending ? kEventWritable : 0u);
    case State::kEstablished:
      return (paused_ ? 0u : kEventReadable) |
             (write_pending ? kEventWritable : 0u);
    case State::kDraining:
      return write_pending ? kEventWritable : 0u;
    case State::kClosed:
      return 0;
  }
  return 0;
}

void Link::UpdateInterest() {
  if (registered_ && state() != State::kClosed) {
    loop_->SetInterest(conn_.fd(), CurrentInterest());
  }
}

void Link::OnEvent(uint32_t events) {
  if (state() == State::kClosed) return;
  if (events & kEventError) {
    // Zerocopy completions arrive as EPOLLERR; drain before read/write so
    // a completions-only event cannot spin the loop.
    if (!DrainErrorQueue()) return;
  }
  if (events & kEventWritable) {
    if (state() == State::kConnecting) {
      ResolveConnect();
    } else {
      FlushWriter();
    }
  }
  if (state() == State::kClosed) return;
  if (events & kEventReadable) {
    if (state() == State::kEstablished && paused_) {
      // Read interest is off, so this is an EPOLLERR/HUP fold-in: peek for
      // EOF without consuming frame bytes the resume will want.
      PeekForEof();
    } else {
      if (state() == State::kHandshaking) HandshakeReadable();
      // Fall through: bytes buffered behind the handshake reply (a fast
      // publisher) drain in the same event.
      if (state() == State::kEstablished && !paused_) ReadEstablished();
    }
  }
  if (state() != State::kClosed) UpdateInterest();
}

void Link::ResolveConnect() {
  const int error = conn_.TakeConnectError();
  if (error != 0) {
    RSF_DEBUG("link: connect failed: %s", std::strerror(error));
    CloseOnLoop(true);
    return;
  }
  state_.store(State::kHandshaking, std::memory_order_release);
  EnterClientHandshake();
}

void Link::EnterClientHandshake() {
  state_.store(State::kHandshaking, std::memory_order_release);
  if (callbacks_.make_handshake_request) {
    const std::vector<uint8_t> request = callbacks_.make_handshake_request();
    auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[request.size()]);
    std::memcpy(payload.get(), request.data(), request.size());
    {
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.Enqueue(std::move(payload),
                      static_cast<uint32_t>(request.size()));
    }
  }
  FlushWriter();
}

void Link::HandshakeReadable() {
  // One frame each way: a request (server role) or a reply (client role).
  const FrameAllocator alloc = [this](uint32_t length) -> uint8_t* {
    if (length > kMaxHandshakeFrame) return nullptr;
    handshake_buf_.resize(length);
    return handshake_buf_.data();
  };
  uint32_t length = 0;
  auto step = reader_.Poll(conn_, alloc, &length);
  if (!step.ok()) {
    CloseOnLoop(true);
    return;
  }
  if (*step == FrameReader::Step::kNeedMore) return;

  if (role_ == Role::kServer) {
    std::vector<uint8_t> reply;
    const bool accepted = callbacks_.on_handshake_request &&
                          callbacks_.on_handshake_request(
                              handshake_buf_.data(), length, &reply);
    if (!reply.empty()) {
      auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[reply.size()]);
      std::memcpy(payload.get(), reply.data(), reply.size());
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_.Enqueue(std::move(payload), static_cast<uint32_t>(reply.size()));
    }
    if (accepted) {
      EnterEstablished();
    } else {
      // Flush the error reply to the peer, then close (kDraining).
      state_.store(State::kDraining, std::memory_order_release);
      FlushWriter();
    }
  } else {
    const bool accepted = callbacks_.on_handshake_reply &&
                          callbacks_.on_handshake_reply(handshake_buf_.data(),
                                                        length);
    if (accepted) {
      EnterEstablished();
    } else {
      CloseOnLoop(true);
    }
  }
  handshake_buf_.clear();
  handshake_buf_.shrink_to_fit();
}

void Link::EnterEstablished() {
  state_.store(State::kEstablished, std::memory_order_release);
  if (callbacks_.on_established) callbacks_.on_established(shared_from_this());
  if (state() == State::kClosed) return;  // on_established may close
  FlushWriter();
}

void Link::ReadEstablished() {
  if (!callbacks_.on_frame) {
    DrainDiscard();
    return;
  }
  while (state() == State::kEstablished && !paused_) {
    uint32_t length = 0;
    auto step = reader_.Poll(conn_, callbacks_.alloc, &length);
    if (!step.ok()) {
      CloseOnLoop(true);
      return;
    }
    if (*step == FrameReader::Step::kNeedMore) return;
    received_.fetch_add(1, std::memory_order_relaxed);
    callbacks_.on_frame(length);  // may pause or close the link
  }
}

void Link::DrainDiscard() {
  // Publisher side of a link: the peer sends nothing after the handshake,
  // so any readability is either EOF or junk to discard.
  uint8_t scratch[4096];
  for (;;) {
    auto n = conn_.ReadSome(scratch);
    if (!n.ok()) {
      CloseOnLoop(true);
      return;
    }
    if (*n == 0) return;  // drained
  }
}

void Link::PeekForEof() {
  uint8_t byte;
  const ssize_t n = ::recv(conn_.fd(), &byte, 1, MSG_PEEK);
  if (n > 0) return;  // data waiting for the resume — not an error
  if (n < 0 &&
      (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return;
  }
  CloseOnLoop(true);
}

bool Link::EnqueueFrame(std::shared_ptr<const uint8_t[]> payload,
                        uint32_t size) {
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (state() == State::kClosed) {
    evicted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool evicted;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    evicted = writer_.Enqueue(std::move(payload), size,
                              options_.max_pending_frames);
  }
  if (evicted) evicted_.fetch_add(1, std::memory_order_relaxed);
  return evicted;
}

void Link::FlushOnLoop() {
  if (state() == State::kClosed) return;
  if (state() == State::kConnecting) return;  // nothing to flush yet
  FlushWriter();
  if (state() != State::kClosed) UpdateInterest();
}

void Link::FlushWriter() {
  Status status;
  bool pending;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    status = writer_.Flush(conn_);
    pending = writer_.HasPending();
    sent_.store(writer_.FramesWritten(), std::memory_order_relaxed);
    zerocopy_frames_.store(writer_.ZeroCopyFrames(),
                           std::memory_order_relaxed);
  }
  if (!status.ok()) {
    CloseOnLoop(true);
    return;
  }
  if (state() == State::kDraining && !pending) {
    CloseOnLoop(true);
    return;
  }
  if (pending) MaybeArmWriteDeadline();
}

void Link::PauseReading() {
  if (state() != State::kEstablished || paused_) return;
  paused_ = true;
  UpdateInterest();
}

void Link::ResumeReading() {
  if (state() != State::kEstablished || !paused_) return;
  paused_ = false;
  UpdateInterest();
  // Bytes that arrived while paused are already in the kernel buffer;
  // level-triggered epoll re-reports them, so no manual read is needed.
}

void Link::CloseNow() { CloseOnLoop(false); }

void Link::CloseSync() {
  auto self = shared_from_this();
  loop_->RunSync([self] { self->CloseOnLoop(false); });
}

void Link::CloseOnLoop(bool notify) {
  if (state() == State::kClosed) return;
  state_.store(State::kClosed, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    stranded_.store(writer_.PendingFrames(), std::memory_order_relaxed);
    // Completions for sends still in flight will never be read; dropping
    // the holders now is safe because the kernel keeps its own page
    // references for queued skbs — the holders only gate user-space
    // buffer reuse, and the arena block frees whenever the last reference
    // (ours or a fan-out peer's) goes.
    writer_.ReleaseInFlight();
  }
  if (registered_) {
    loop_->Remove(conn_.fd());
    registered_ = false;
  }
  conn_.Close();
  if (notify && callbacks_.on_closed) callbacks_.on_closed(shared_from_this());
  // Release the callbacks (they capture the owner: Link ⇄ owner cycle).
  // Deferred via Post: CloseOnLoop may be running INSIDE one of these
  // std::functions (on_frame → CloseOnLoop), and destroying the function
  // currently executing is UB.  The posted task runs after this event
  // dispatch finishes, on the same loop.  Post only fails once the loop
  // has stopped — at which point no callback frame is live and clearing
  // inline is safe.
  if (!loop_->Post([self = shared_from_this()] { self->callbacks_ = {}; })) {
    callbacks_ = {};
  }
}

Link::Stats Link::stats() const noexcept {
  Stats s;
  s.frames_enqueued = enqueued_.load(std::memory_order_relaxed);
  s.frames_evicted = evicted_.load(std::memory_order_relaxed);
  s.frames_sent = sent_.load(std::memory_order_relaxed);
  s.frames_received = received_.load(std::memory_order_relaxed);
  s.frames_stranded = stranded_.load(std::memory_order_relaxed);
  s.zerocopy_frames = zerocopy_frames_.load(std::memory_order_relaxed);
  s.zerocopy_copied = zerocopy_copied_.load(std::memory_order_relaxed);
  return s;
}

size_t Link::PendingZeroCopyHolders() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return writer_.InFlightHolders();
}

bool Link::ZeroCopyActive() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return writer_.ZeroCopyActive();
}

}  // namespace rsf::net
