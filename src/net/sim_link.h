// Simulated network link: models the serialization delay (bytes / bandwidth)
// and propagation delay of a point-to-point link, so the inter-machine
// experiment of the paper (two hosts on Intel 82599 10 GbE, §5.2) can run on
// one machine.
//
// The model is the standard store-and-forward pipe: a link is busy while a
// frame's bits are on the wire, so frame i's delivery time is
//     deliver(i) = max(send(i), deliver_busy_until) + bytes*8/bw + prop
// The middleware applies the resulting extra delay on the receive path
// before dispatching the callback (after the bytes have crossed the real
// loopback socket, whose cost is also part of the measurement, as it is in
// the paper's intra-machine runs).  Shaped subscriptions pace delivery on
// their reactor loop: the subscription pauses the link's reads and arms an
// EventLoop::RunAfter timer for DelayFor's answer, so shaping costs no
// dedicated thread (see net/link.h).
#pragma once

#include <cstdint>
#include <mutex>

namespace rsf::net {

struct LinkConfig {
  /// Link bandwidth in bits per second (0 = infinite).
  double bandwidth_bps = 0.0;
  /// One-way propagation delay in nanoseconds.
  uint64_t propagation_nanos = 0;

  /// 10 Gigabit Ethernet with a typical same-rack propagation+switch delay.
  static LinkConfig TenGigE() {
    return LinkConfig{10e9, 30'000};  // 10 Gbps, 30 us
  }
  /// 1 Gigabit Ethernet.
  static LinkConfig OneGigE() { return LinkConfig{1e9, 50'000}; }
  /// No shaping (pure loopback).
  static LinkConfig Loopback() { return LinkConfig{}; }
};

/// Per-connection shaper.  Thread-safe.
class SimLink {
 public:
  explicit SimLink(LinkConfig config) : config_(config) {}

  /// Returns the number of nanoseconds the delivery of a frame of
  /// `bytes` bytes, arriving at monotonic time `now_nanos`, must be delayed
  /// to respect the link model.  Updates the busy-until bookkeeping.
  uint64_t DelayFor(size_t bytes, uint64_t now_nanos);

  /// Wire time for `bytes` at the configured bandwidth, in nanoseconds.
  [[nodiscard]] uint64_t WireTimeNanos(size_t bytes) const;

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  LinkConfig config_;
  std::mutex mutex_;
  uint64_t busy_until_nanos_ = 0;  // guarded by mutex_
};

}  // namespace rsf::net
