// sfm::vector<T> — the 8-byte vector skeleton of the SFM format (§4.1).
//
// Layout (matching Fig. 7):
//   uint32 count_    number of elements
//   uint32 offset_   distance from the address of offset_ to element 0
//
// Elements are stored contiguously in the owning message's arena, so they
// are accessed exactly like a C++ array (the paper's third format feature).
// When T is itself an SFM message, only its fixed-size skeleton is stored
// inline; its own strings/vectors expand the same whole message on demand.
//
// resize() may be called once (One-Shot Vector Resizing Assumption); the
// modifier interfaces of std::vector that would trigger reallocation
// (push_back, pop_back, insert, erase, ...) are deliberately not provided —
// using them is a compile error, which is the enforcement mechanism the
// paper prescribes for the No Modifier Assumption.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "sfm/alert.h"
#include "sfm/message_manager.h"

namespace sfm {

/// Detects generated SFM message types (they carry kIsSfmMessage).
template <typename T>
concept SkeletonMessage = requires { T::kIsSfmMessage; };

template <typename T>
class vector {
 public:
  using value_type = T;
  using size_type = size_t;
  using reference = T&;
  using const_reference = const T&;
  using iterator = T*;
  using const_iterator = const T*;

  vector() noexcept = default;
  vector(const vector&) = delete;  // see sfm::string: assign, don't copy raw

  vector& operator=(const vector& other) {
    if (this != &other) AssignFrom(other.data(), other.size());
    return *this;
  }

  /// Transparency helper: `msg.data = std_vector;` works as it does in ROS.
  template <typename U>
  vector& operator=(const std::vector<U>& other) {
    AssignFrom(other.data(), other.size());
    return *this;
  }

  /// One-shot sizing.  New elements are value-initialized (zeroed).
  void resize(size_type n) {
    if (count_ != 0) {
      RaiseAlert(Violation::kVectorMultiResize,
                 "sfm::vector resized a second time (see paper §4.3.3); "
                 "size the vector once up front");
      // Fallback (kLog / kSilent): shrink in place, or claim a fresh block
      // and deep-copy the surviving prefix.
      if (n <= count_) {
        count_ = static_cast<uint32_t>(n);
        return;
      }
      Regrow(n);
      return;
    }
    if (n == 0) return;  // stays unassigned; a later resize is the first one
    T* dst = static_cast<T*>(
        gmm().Expand(&offset_, n * sizeof(T), alignof(T)));
    offset_ = static_cast<uint32_t>(reinterpret_cast<uint8_t*>(dst) -
                                    reinterpret_cast<uint8_t*>(&offset_));
    count_ = static_cast<uint32_t>(n);
  }

  [[nodiscard]] size_type size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] uint32_t wire_count() const noexcept { return count_; }
  [[nodiscard]] uint32_t wire_offset() const noexcept { return offset_; }

  [[nodiscard]] T* data() noexcept { return count_ == 0 ? nullptr : Elems(); }
  [[nodiscard]] const T* data() const noexcept {
    return count_ == 0 ? nullptr : Elems();
  }

  reference operator[](size_type i) noexcept { return Elems()[i]; }
  const_reference operator[](size_type i) const noexcept { return Elems()[i]; }

  reference at(size_type i) {
    if (i >= count_) throw std::out_of_range("sfm::vector::at");
    return Elems()[i];
  }
  const_reference at(size_type i) const {
    if (i >= count_) throw std::out_of_range("sfm::vector::at");
    return Elems()[i];
  }

  reference front() noexcept { return Elems()[0]; }
  const_reference front() const noexcept { return Elems()[0]; }
  reference back() noexcept { return Elems()[count_ - 1]; }
  const_reference back() const noexcept { return Elems()[count_ - 1]; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + count_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + count_; }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  // ---- No Modifier Assumption: these MUST NOT compile (paper §4.3.3). ----
  void push_back(const T&) = delete;
  void emplace_back(...) = delete;
  void pop_back() = delete;
  void insert(...) = delete;
  void erase(...) = delete;
  void clear() = delete;
  void reserve(size_type) = delete;
  void shrink_to_fit() = delete;

 private:
  [[nodiscard]] T* Elems() noexcept {
    return reinterpret_cast<T*>(reinterpret_cast<uint8_t*>(&offset_) + offset_);
  }
  [[nodiscard]] const T* Elems() const noexcept {
    return reinterpret_cast<const T*>(
        reinterpret_cast<const uint8_t*>(&offset_) + offset_);
  }

  template <typename U>
  void AssignFrom(const U* src, size_type n) {
    resize(n);
    CopyInto(Elems(), src, n);
  }

  void Regrow(size_type n) {
    T* dst = static_cast<T*>(gmm().Expand(&offset_, n * sizeof(T), alignof(T)));
    const T* old = Elems();
    CopyInto(dst, old, count_);
    offset_ = static_cast<uint32_t>(reinterpret_cast<uint8_t*>(dst) -
                                    reinterpret_cast<uint8_t*>(&offset_));
    count_ = static_cast<uint32_t>(n);
  }

  // Element copy: raw memcpy is only valid for types without internal
  // relative offsets.  Skeleton messages (and any U != T) go element-wise
  // through operator=, which deep-copies payloads into this arena.
  template <typename U>
  static void CopyInto(T* dst, const U* src, size_type n) {
    if (n == 0) return;
    if constexpr (std::is_same_v<T, U> && !SkeletonMessage<T> &&
                  std::is_trivially_copyable_v<T>) {
      std::memcpy(dst, src, n * sizeof(T));
    } else if constexpr (std::is_same_v<T, U>) {
      // Skeleton messages: operator= deep-copies payloads into this arena.
      for (size_type i = 0; i < n; ++i) dst[i] = src[i];
    } else {
      for (size_type i = 0; i < n; ++i) dst[i] = static_cast<T>(src[i]);
    }
  }

  uint32_t count_ = 0;
  uint32_t offset_ = 0;
};

template <typename T>
inline constexpr bool is_sfm_vector_v = false;
template <typename T>
inline constexpr bool is_sfm_vector_v<vector<T>> = true;

}  // namespace sfm
