// Allocation plumbing shared by every generated SFM message class.
//
// The paper implements "initial memory allocation ... by overloading the
// global new operator and explicitly specializing std::make_shared"
// (§4.3.1).  We inject the overloads per message class instead, through this
// CRTP base: `new Image` resolves to Image::operator new exactly as in the
// paper, without hijacking every allocation in the process (see DESIGN.md,
// substitutions).  The base is empty, so the derived skeleton layout is
// unchanged (empty-base optimization; enforced by static_asserts in the
// generated headers).
#pragma once

#include <cstddef>
#include <memory>
#include <new>

#include "sfm/message_manager.h"

namespace sfm {

template <typename Derived>
struct ManagedMessage {
  /// Allocates the message's arena (capacity from the IDL, overridable via
  /// sfm::SetArenaCapacity) and registers it with the global manager.
  static void* operator new(size_t size) {
    const size_t capacity =
        ArenaCapacityFor(Derived::DataType(), Derived::kArenaCapacity);
    const size_t cap = capacity < size ? size : capacity;
    return gmm().Allocate(Derived::DataType(), cap, size);
  }

  /// Drops the manager record; the arena is freed once the transport holds
  /// no buffer pointers (paper Fig. 8).  Falls back to the global heap for
  /// pointers that were never registered.
  static void operator delete(void* ptr) {
    if (!gmm().Release(ptr)) ::operator delete(ptr);
  }

  // Placement form used by the receive path (interpret-in-place).
  static void* operator new(size_t, void* where) noexcept { return where; }
  static void operator delete(void*, void*) noexcept {}

  // Arrays of whole messages make no life-cycle sense here.
  static void* operator new[](size_t) = delete;
  static void operator delete[](void*) = delete;
};

/// True for generated SFM message types.
template <typename T>
inline constexpr bool is_sfm_message_v =
    std::is_base_of_v<ManagedMessage<T>, T>;

/// The supported way to get a shared serialization-free message.
/// (`std::make_shared` bypasses class operator new — its control block +
/// object allocation would not be an arena — so generated headers also
/// provide `T::create()` forwarding here.)
template <typename M, typename... Args>
std::shared_ptr<M> make_message(Args&&... args) {
  static_assert(is_sfm_message_v<M>, "make_message is for SFM messages");
  return std::shared_ptr<M>(new M(std::forward<Args>(args)...));
}

/// Receive path: wraps a just-adopted arena (see
/// MessageManager::AdoptReceived) as a callback-ready ConstPtr.  The deleter
/// releases the manager record — the "dummy de-serialization routine" of
/// paper Fig. 9 in which the buffer and the message object are one.
template <typename M>
std::shared_ptr<const M> WrapReceived(const uint8_t* start) {
  static_assert(is_sfm_message_v<M>, "WrapReceived is for SFM messages");
  const M* msg = reinterpret_cast<const M*>(start);
  return std::shared_ptr<const M>(
      msg, [](const M* m) { gmm().Release(const_cast<M*>(m)); });
}

}  // namespace sfm
