// sfm::string — the 8-byte string skeleton of the SFM format (paper §4.1).
//
// Layout (matching Fig. 7 byte for byte):
//   uint32 length_   bytes occupied by the content INCLUDING the terminating
//                    zero and padding up to a 4-byte boundary ("rgb8" -> 8)
//   uint32 offset_   distance from the address of offset_ itself to the
//                    first content byte (relative => position-independent)
//
// The interface mirrors std::string closely enough that existing ROS code
// compiles unchanged (the paper's transparency requirement).  Content space
// is claimed from the owning message's arena through sfm::gmm on first
// assignment; a second assignment violates the One-Shot String Assignment
// Assumption and raises an alert (with an in-place/re-expansion fallback
// under non-throwing alert policies).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "sfm/alert.h"
#include "sfm/message_manager.h"

namespace sfm {

class string {
 public:
  using value_type = char;
  using size_type = size_t;
  using const_iterator = const char*;
  static constexpr size_type npos = static_cast<size_type>(-1);

  string() noexcept = default;

  string& operator=(const char* text) {
    Assign(text, std::strlen(text));
    return *this;
  }
  string& operator=(const std::string& text) {
    Assign(text.data(), text.size());
    return *this;
  }
  string& operator=(std::string_view text) {
    Assign(text.data(), text.size());
    return *this;
  }
  string& operator=(const string& other) {
    if (this != &other) Assign(other.data(), other.size());
    return *this;
  }
  // Copying the 8-byte skeleton raw would carry a dangling relative offset
  // into another arena; route construction through assignment instead.
  string(const string& other) = delete;

  void assign(const char* text, size_type count) { Assign(text, count); }

  /// Logical length (strlen semantics), NOT the padded wire length.
  [[nodiscard]] size_type size() const noexcept {
    return length_ == 0 ? 0 : std::strlen(c_str());
  }
  [[nodiscard]] size_type length() const noexcept { return size(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Wire-level content capacity (content + NUL + padding); what the
  /// skeleton's first word stores.  0 means never assigned.
  [[nodiscard]] uint32_t wire_length() const noexcept { return length_; }
  [[nodiscard]] uint32_t wire_offset() const noexcept { return offset_; }

  [[nodiscard]] const char* c_str() const noexcept {
    return length_ == 0 ? "" : ContentPtr();
  }
  [[nodiscard]] const char* data() const noexcept { return c_str(); }

  char operator[](size_type i) const noexcept { return c_str()[i]; }
  [[nodiscard]] char at(size_type i) const {
    if (i >= size()) throw std::out_of_range("sfm::string::at");
    return c_str()[i];
  }
  [[nodiscard]] char front() const noexcept { return c_str()[0]; }
  [[nodiscard]] char back() const noexcept { return c_str()[size() - 1]; }

  [[nodiscard]] const_iterator begin() const noexcept { return c_str(); }
  [[nodiscard]] const_iterator end() const noexcept { return c_str() + size(); }
  [[nodiscard]] const_iterator cbegin() const noexcept { return begin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return end(); }

  // NOLINTNEXTLINE(google-explicit-constructor): transparency requires the
  // same implicit conversions std::string offers.
  operator std::string() const { return std::string(c_str(), size()); }
  operator std::string_view() const noexcept {  // NOLINT
    return std::string_view(c_str(), size());
  }

  [[nodiscard]] int compare(std::string_view other) const noexcept {
    return std::string_view(c_str(), size()).compare(other);
  }

  [[nodiscard]] size_type find(char c, size_type pos = 0) const noexcept {
    const std::string_view view(c_str(), size());
    const size_t found = view.find(c, pos);
    return found;
  }

  [[nodiscard]] std::string substr(size_type pos = 0,
                                   size_type count = npos) const {
    return std::string(std::string_view(c_str(), size()).substr(pos, count));
  }

  friend bool operator==(const string& a, std::string_view b) noexcept {
    return std::string_view(a.c_str(), a.size()) == b;
  }
  friend bool operator==(std::string_view a, const string& b) noexcept {
    return b == a;
  }
  friend bool operator==(const string& a, const string& b) noexcept {
    return a == std::string_view(b.c_str(), b.size());
  }
  friend bool operator==(const string& a, const char* b) noexcept {
    return a == std::string_view(b);
  }

 private:
  [[nodiscard]] const char* ContentPtr() const noexcept {
    return reinterpret_cast<const char*>(&offset_) + offset_;
  }
  [[nodiscard]] char* ContentPtr() noexcept {
    return reinterpret_cast<char*>(&offset_) + offset_;
  }

  void Assign(const char* text, size_type count) {
    const auto needed =
        static_cast<uint32_t>(((count + 1 + 3) / 4) * 4);  // NUL + pad to 4
    if (length_ != 0) {
      RaiseAlert(Violation::kStringReassignment,
                 "sfm::string assigned a second time (see paper §4.3.3); "
                 "restructure the code to assign once");
      // Fallback (kLog / kSilent): reuse the existing content block when the
      // new value fits; otherwise claim a fresh block, abandoning the old
      // one inside the arena (wasteful but correct).
      if (needed <= length_) {
        std::memcpy(ContentPtr(), text, count);
        std::memset(ContentPtr() + count, 0, length_ - count);
        return;
      }
    }
    char* dst = static_cast<char*>(gmm().Expand(&offset_, needed, 4));
    std::memcpy(dst, text, count);
    // Expand() zeroed the block, so NUL and padding are already in place.
    offset_ = static_cast<uint32_t>(dst - reinterpret_cast<char*>(&offset_));
    length_ = needed;
  }

  uint32_t length_ = 0;
  uint32_t offset_ = 0;
};

static_assert(sizeof(string) == 8, "sfm::string skeleton must be 8 bytes");

inline std::string to_string(const string& s) { return std::string(s); }

}  // namespace sfm
