// Umbrella header for the SFM runtime (the paper's "ROS-SF Library",
// §4.3.3): skeleton field types, the message manager, alerts, and the
// allocation base used by generated message classes.
#pragma once

#include "sfm/alert.h"           // IWYU pragma: export
#include "sfm/managed_message.h" // IWYU pragma: export
#include "sfm/message_manager.h" // IWYU pragma: export
#include "sfm/string.h"          // IWYU pragma: export
#include "sfm/vector.h"          // IWYU pragma: export
