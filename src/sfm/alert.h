// Alert machinery for the three SFM applicability assumptions (paper §4.3.3,
// §5.4) plus the runtime preconditions of the arena allocator.
//
// The paper's framework "raises an alert" when the One-Shot String
// Assignment or One-Shot Vector Resizing assumption is violated, and relies
// on a compile error for the No Modifier assumption.  Here an alert either
// throws (default — the violation is a bug to fix), logs, or is silently
// counted; in the two one-shot cases a correct-but-wasteful fallback path
// (re-expansion of the arena) lets log/silent runs proceed, mirroring how a
// developer would keep a system running while fixing the reported sites.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sfm {

enum class Violation : int {
  kStringReassignment = 0,  // One-Shot String Assignment Assumption
  kVectorMultiResize = 1,   // One-Shot Vector Resizing Assumption
  kUnmanagedMessage = 2,    // message not allocated through the arena (stack)
  kArenaOverflow = 3,       // whole message exceeded its arena capacity
  kCount_,
};

const char* ViolationName(Violation v) noexcept;

enum class AlertAction {
  kThrow,   // throw sfm::AlertError (default)
  kLog,     // log a warning, count, then fall back where possible
  kSilent,  // count only
};

/// Thrown by RaiseAlert under kThrow (always thrown for kUnmanagedMessage
/// and kArenaOverflow, which have no safe fallback).
class AlertError : public std::runtime_error {
 public:
  AlertError(Violation violation, const std::string& detail)
      : std::runtime_error(std::string(ViolationName(violation)) + ": " +
                           detail),
        violation_(violation) {}

  [[nodiscard]] Violation violation() const noexcept { return violation_; }

 private:
  Violation violation_;
};

/// Per-violation counters since the last Reset (process-wide, atomic).
struct AlertStats {
  uint64_t counts[static_cast<int>(Violation::kCount_)] = {};
  [[nodiscard]] uint64_t For(Violation v) const noexcept {
    return counts[static_cast<int>(v)];
  }
  [[nodiscard]] uint64_t Total() const noexcept {
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    return total;
  }
};

/// Sets the process-wide action for recoverable violations; returns previous.
AlertAction SetAlertAction(AlertAction action) noexcept;
AlertAction GetAlertAction() noexcept;

AlertStats GetAlertStats() noexcept;
void ResetAlertStats() noexcept;

/// Records the violation and applies the current action.  For
/// kUnmanagedMessage and kArenaOverflow this always throws: execution cannot
/// continue safely.  Returns (under kLog/kSilent) so the caller can run its
/// fallback path.
void RaiseAlert(Violation violation, const std::string& detail);

/// RAII override of the alert action (tests).
class ScopedAlertAction {
 public:
  explicit ScopedAlertAction(AlertAction action)
      : previous_(SetAlertAction(action)) {}
  ~ScopedAlertAction() { SetAlertAction(previous_); }
  ScopedAlertAction(const ScopedAlertAction&) = delete;
  ScopedAlertAction& operator=(const ScopedAlertAction&) = delete;

 private:
  AlertAction previous_;
};

}  // namespace sfm
