#include "sfm/alert.h"

#include <atomic>

#include "common/log.h"

namespace sfm {
namespace {

std::atomic<int> g_action{static_cast<int>(AlertAction::kThrow)};
std::atomic<uint64_t> g_counts[static_cast<int>(Violation::kCount_)];

}  // namespace

const char* ViolationName(Violation v) noexcept {
  switch (v) {
    case Violation::kStringReassignment:
      return "One-Shot String Assignment violation";
    case Violation::kVectorMultiResize:
      return "One-Shot Vector Resizing violation";
    case Violation::kUnmanagedMessage:
      return "unmanaged SFM message";
    case Violation::kArenaOverflow:
      return "arena overflow";
    case Violation::kCount_:
      break;
  }
  return "unknown violation";
}

AlertAction SetAlertAction(AlertAction action) noexcept {
  return static_cast<AlertAction>(
      g_action.exchange(static_cast<int>(action), std::memory_order_relaxed));
}

AlertAction GetAlertAction() noexcept {
  return static_cast<AlertAction>(g_action.load(std::memory_order_relaxed));
}

AlertStats GetAlertStats() noexcept {
  AlertStats stats;
  for (int i = 0; i < static_cast<int>(Violation::kCount_); ++i) {
    stats.counts[i] = g_counts[i].load(std::memory_order_relaxed);
  }
  return stats;
}

void ResetAlertStats() noexcept {
  for (auto& c : g_counts) c.store(0, std::memory_order_relaxed);
}

void RaiseAlert(Violation violation, const std::string& detail) {
  g_counts[static_cast<int>(violation)].fetch_add(1, std::memory_order_relaxed);

  const bool fatal = violation == Violation::kUnmanagedMessage ||
                     violation == Violation::kArenaOverflow;
  const AlertAction action = GetAlertAction();
  if (fatal || action == AlertAction::kThrow) {
    throw AlertError(violation, detail);
  }
  if (action == AlertAction::kLog) {
    RSF_WARN("SFM alert: %s: %s", ViolationName(violation), detail.c_str());
  }
}

}  // namespace sfm
