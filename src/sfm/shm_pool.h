// Shared-memory arena pool: the cross-process leg of the serialization-free
// transport (DESIGN.md §12).
//
// SFM arenas are position-independent — every variable-size field stores a
// relative offset (paper §4.1) — so an arena block is a valid message at ANY
// mapping address.  This pool exploits that: the publisher allocates
// above-threshold arena blocks from named POSIX shared-memory segments
// (`shm_open` + `mmap`) instead of the heap, and a subscriber in another
// process maps the same segment and reads the message in place.  What
// crosses the socket is a ~48-byte descriptor, not megabytes of payload.
//
// Layout of one segment (`/dev/shm/rsf.<pid>.<token>.<id>`):
//
//   [SegmentHeader]        magic/version/geometry, validated on attach
//   [BlockCtl x count]     per-block cross-process control words:
//                            gen    generation fence (u32, bumped on reuse)
//                            stamp  publisher's sequence number — the
//                                   release/acquire edge that orders the
//                                   payload bytes before the reader's load
//                            refs[kMaxPeers]  one refcount column per peer
//   [blocks]               `count` blocks of one pow2 size class
//
// All control words are lock-free std::atomics on MAP_SHARED pages, which
// makes them address-free and valid across processes.
//
// Lifetime protocol (publisher side owns recycling):
//   - a block handed to the allocator is LIVE; its PooledDeleter marks it
//     RETIRED when the last local shared_ptr reference dies;
//   - a RETIRED block recycles to FREE only when every peer refcount is
//     zero BOTH before and after a seq_cst `gen` bump — a reader that raced
//     its increment against the bump sees the changed generation, drops its
//     reference, and never touches recycled bytes (the fence);
//   - peers are per-LINK slots (columns in `refs`); a slot is reusable only
//     once drained, and a dead peer (SIGKILL) is swept by pid liveness —
//     its refcounts are force-cleared and its blocks reclaimed.
//
// Failure policy: every fallible operation here degrades to the heap/TCP
// path (nullptr / nullopt / error Status) — shared memory is an
// optimization tier, never a correctness dependency.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace sfm::shm {

inline constexpr uint32_t kSegmentMagic = 0x53465352u;  // "RSFS" little-endian
inline constexpr uint32_t kSegmentVersion = 1;
/// Peer-slot columns per block: one per negotiated subscriber link.  The
/// 17th concurrent shm subscriber falls back to TCP.
inline constexpr size_t kMaxPeers = 16;

/// Cross-process per-block control word.  Sized and aligned so adjacent
/// blocks' control words never share a cache line.
struct BlockCtl {
  std::atomic<uint32_t> gen;
  uint32_t reserved;
  std::atomic<uint64_t> stamp;
  std::atomic<uint32_t> refs[kMaxPeers];
  uint8_t pad[128 - 16 - sizeof(uint32_t) * kMaxPeers];
};
static_assert(sizeof(BlockCtl) == 128, "BlockCtl must stay cache-line padded");
static_assert(std::atomic<uint32_t>::is_always_lock_free &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "shm control words must be address-free atomics");

/// On-disk segment prologue, validated field by field on attach.
struct SegmentHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t pool_id;
  uint64_t segment_bytes;
  uint64_t block_class;  // bytes per block (pow2 size class)
  uint32_t block_count;
  int32_t owner_pid;
  uint64_t ctl_offset;   // BlockCtl array
  uint64_t data_offset;  // block 0
};

/// What the publisher sends instead of the payload: enough for the
/// subscriber to locate, validate, and fence the block.
struct Descriptor {
  uint64_t pool_id = 0;
  uint32_t block_index = 0;
  uint32_t gen = 0;
  uint64_t offset = 0;  // byte offset of the block within the segment
  uint64_t length = 0;  // whole-message size (<= block class)
  uint64_t seq = 0;     // per-link publish sequence (ack protocol)
};

// ---- configuration ----

/// Master switch: RSF_TRANSPORT_SHM truthy (1/true/on/yes).  Re-read on
/// every call so benches and tests can flip it between runs; default OFF,
/// which keeps the tier completely out of the tier-1 byte stream.
bool Enabled() noexcept;

/// Minimum arena-block size class that lands in shared memory
/// (RSF_SHM_THRESHOLD env, default 64 KiB; 0 = every class).  Below it the
/// descriptor + ack round trip costs more than the loopback copy saves.
size_t ThresholdBytes() noexcept;

/// This process's segment namespace, "rsf.<pid>.<token>" (token is random:
/// a restarted publisher never collides with its predecessor's stale
/// files).  First call also sweeps /dev/shm of rsf.* files whose owner pid
/// is dead — crash cleanup for predecessors — and registers an atexit
/// unlink of our own segments.
const std::string& Namespace();

/// Sticky flag set when the first subscriber link negotiates shm.  Until
/// then the allocator never places blocks in shared memory, so a process
/// that merely has the env knob set (e.g. the whole tier-1 suite under the
/// CI shm job) allocates byte-identically to the heap path unless a peer
/// actually asked for the tier.
void NotePeerNegotiated() noexcept;
bool PeersEverNegotiated() noexcept;

// ---- publisher side ----

/// Attempts to acquire a block of `cls` bytes (an ArenaBlockClassSize
/// result) from the shm pool.  Returns nullptr — caller falls back to the
/// heap — when the tier is off, no peer ever negotiated, `cls` is below
/// threshold, the pool hit its byte cap, or segment creation failed.
uint8_t* TryAcquire(size_t cls);

/// Routes a block back if it belongs to a shm segment: marks it retired
/// and recycles it immediately when no peer holds a reference.  Returns
/// false when the pointer is not shm-backed (caller owns it).  Called by
/// PooledDeleter on every block death, so the no-shm fast path is one
/// relaxed atomic load.
bool ReleaseIfOwned(uint8_t* block) noexcept;

/// Locates the live block containing `data` (which must be the block
/// start), stamps it with `seq` (the release edge for the payload bytes),
/// and fills a descriptor.  nullopt when `data` is not shm-backed — the
/// caller sends the payload inline.
std::optional<Descriptor> PreparePublish(const uint8_t* data, size_t length,
                                         uint64_t seq);

/// Claims a refcount column for a newly negotiated subscriber link.
/// Returns -1 when all kMaxPeers slots are busy (link falls back to TCP).
/// A previously released slot is reused only once fully drained; a
/// released slot whose owner died is swept first.
int AcquirePeerSlot(pid_t peer_pid);

/// Returns a slot when its link closes.  `peer_pid` must match the pid the
/// slot was acquired for (guards a stale release against slot reuse).
/// Live peers may still hold references — the slot drains before reuse.
void ReleasePeerSlot(int slot, pid_t peer_pid);

/// Force-reclaims every slot whose peer process is dead: clears its
/// refcount columns and recycles any retired blocks that drop to zero.
/// Returns the number of blocks reclaimed.  Runs automatically on
/// allocation pressure and slot release; tests call it directly after
/// SIGKILLing (and reaping!) a subscriber — a zombie still "exists" to
/// kill(pid, 0).
size_t SweepDeadPeers();

/// Attempts to recycle every retired block (tests: prove nothing leaks
/// after subscribers are gone).  Returns how many moved to the free list.
size_t RecycleRetired();

/// Unlinks /dev/shm/rsf.<pid>.* files whose owner pid is dead — the
/// crash-cleanup pass a restarted publisher runs before creating its own
/// namespace (also invoked by the first Namespace() call).  Returns the
/// number of files removed.  Never touches this process's own segments.
size_t SweepStaleSegments();

/// Pool introspection (tests, leak checks, /dev/shm accounting).
struct PoolStats {
  size_t segments = 0;
  size_t mapped_bytes = 0;
  size_t total_blocks = 0;
  size_t live_blocks = 0;     // handed out, holder still alive
  size_t retired_blocks = 0;  // holder dead, awaiting peer refs to drain
  size_t free_blocks = 0;
  size_t active_peer_slots = 0;
  uint64_t blocks_reclaimed = 0;  // via dead-peer sweeps (cumulative)
  uint64_t gen_fence_rejections = 0;  // recycle aborted by a racing reader
};
PoolStats GetPoolStats();

// ---- subscriber side ----

/// A subscriber's mapping of one publisher segment.  Each attach maps the
/// segment fresh (per link), so two subscriptions in one process register
/// arenas at distinct addresses.  Unmapped on destruction; outstanding
/// RefTokens keep it alive.
class SegmentView {
 public:
  SegmentView(uint8_t* base, size_t bytes) : base_(base), bytes_(bytes) {}
  ~SegmentView();
  SegmentView(const SegmentView&) = delete;
  SegmentView& operator=(const SegmentView&) = delete;

  [[nodiscard]] const SegmentHeader& header() const noexcept {
    return *reinterpret_cast<const SegmentHeader*>(base_);
  }
  [[nodiscard]] BlockCtl* ctl(uint32_t index) const noexcept {
    return reinterpret_cast<BlockCtl*>(base_ + header().ctl_offset) + index;
  }
  [[nodiscard]] uint8_t* block(uint32_t index) const noexcept {
    return base_ + header().data_offset +
           static_cast<size_t>(index) * header().block_class;
  }
  [[nodiscard]] size_t bytes() const noexcept { return bytes_; }

 private:
  uint8_t* const base_;
  const size_t bytes_;
};

/// Maps segment `pool_id` of publisher namespace `ns` and validates its
/// header against this library's version and basic geometry (offsets and
/// block geometry must stay inside the file).  Any failure is a reason to
/// fall back to TCP for the link.
rsf::Result<std::shared_ptr<SegmentView>> AttachSegment(const std::string& ns,
                                                        uint64_t pool_id);

/// One subscriber-held block reference: increments are done by the caller
/// (fetch_add THEN generation check — see the fence protocol); the token
/// decrements on destruction and keeps the mapping alive meanwhile.  The
/// adopted message's buffer aliases this token, so the publisher cannot
/// recycle the block while the message is reachable.
class RefToken {
 public:
  RefToken(std::shared_ptr<SegmentView> view, BlockCtl* ctl, int slot)
      : view_(std::move(view)), ctl_(ctl), slot_(slot) {}
  ~RefToken() { ctl_->refs[slot_].fetch_sub(1, std::memory_order_seq_cst); }
  RefToken(const RefToken&) = delete;
  RefToken& operator=(const RefToken&) = delete;

 private:
  std::shared_ptr<SegmentView> view_;
  BlockCtl* ctl_;
  int slot_;
};

/// Test hook: drops every segment (asserting nothing is live), unlinks the
/// files, and resets the sticky negotiation flag.  Never used in
/// production paths — the pool is otherwise process-lifetime.
void ResetPoolForTest();

}  // namespace sfm::shm
