#include "sfm/shm_pool.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <random>
#include <vector>

#include "common/log.h"

namespace sfm::shm {
namespace {

// Geometry: segments hold a handful of blocks of ONE size class, so the
// free/retired bookkeeping stays trivial and a class that stops being used
// wastes at most one segment.  The byte cap mirrors the heap ArenaPool's.
constexpr size_t kTargetSegmentBytes = 16ull * 1024 * 1024;
constexpr size_t kMinBlocksPerSegment = 2;
constexpr size_t kMaxBlocksPerSegment = 32;
constexpr size_t kMaxPoolBytes = 512ull * 1024 * 1024;
constexpr uint32_t kMaxBlockCount = 4096;  // attach-side sanity bound

enum class BlockState : uint8_t { kFree, kLive, kRetired };

struct Segment {
  std::string name;  // shm_open name, with leading '/'
  uint64_t pool_id = 0;
  uint8_t* base = nullptr;
  size_t bytes = 0;
  size_t cls = 0;
  uint32_t count = 0;
  BlockCtl* ctl = nullptr;
  uint8_t* data = nullptr;
  std::vector<BlockState> state;
  std::vector<uint32_t> free_list;

  [[nodiscard]] const SegmentHeader& header() const noexcept {
    return *reinterpret_cast<const SegmentHeader*>(base);
  }
};

struct PeerSlot {
  enum class State : uint8_t { kFree, kActive, kDraining };
  State state = State::kFree;
  pid_t pid = 0;
};

struct ShmPool {
  std::mutex mutex;
  std::vector<Segment> segments;
  PeerSlot slots[kMaxPeers];
  uint64_t next_pool_id = 0;
  size_t mapped_bytes = 0;
  uint64_t blocks_reclaimed = 0;
  uint64_t gen_fence_rejections = 0;
};

ShmPool& Pool() {
  static auto* pool = new ShmPool();  // leaked: outlives all arenas
  return *pool;
}

// One-load fast path for PooledDeleter: most processes never map a segment.
std::atomic<bool> g_has_segments{false};
std::atomic<bool> g_peer_negotiated{false};

bool PidDead(pid_t pid) noexcept {
  return pid > 0 && ::kill(pid, 0) != 0 && errno == ESRCH;
}

bool EnvTruthy(const char* value) noexcept {
  return value != nullptr &&
         (std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
          std::strcmp(value, "on") == 0 || std::strcmp(value, "yes") == 0);
}

size_t AlignUp(size_t value, size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

void UnlinkOwnSegments() {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  for (const Segment& segment : pool.segments) {
    ::shm_unlink(segment.name.c_str());
  }
}

std::string MakeNamespace() {
  std::random_device rd;
  const uint64_t token =
      (static_cast<uint64_t>(rd()) << 32) | static_cast<uint64_t>(rd());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rsf.%d.%llx", ::getpid(),
                static_cast<unsigned long long>(token));
  return buf;
}

/// Recycle protocol (caller holds the pool mutex): a retired block may be
/// reused only when no peer holds a reference — checked once, then FENCED
/// with a generation bump, then checked again.  seq_cst on both sides: a
/// reader that incremented refs concurrently either did so before our
/// first check (we see it, abort), or races the bump — then our recheck
/// sees its increment OR its generation check sees our bump; both sides
/// observing "no conflict" is a store-buffer outcome seq_cst forbids.
bool TryRecycleLocked(ShmPool& pool, Segment& segment, uint32_t index) {
  if (segment.state[index] != BlockState::kRetired) return false;
  BlockCtl* ctl = segment.ctl + index;
  for (size_t s = 0; s < kMaxPeers; ++s) {
    if (ctl->refs[s].load(std::memory_order_seq_cst) != 0) return false;
  }
  ctl->gen.fetch_add(1, std::memory_order_seq_cst);
  for (size_t s = 0; s < kMaxPeers; ++s) {
    if (ctl->refs[s].load(std::memory_order_seq_cst) != 0) {
      // A reader raced in between the check and the fence; it will see the
      // new generation and back out, after which a later recycle succeeds.
      ++pool.gen_fence_rejections;
      return false;
    }
  }
  segment.state[index] = BlockState::kFree;
  segment.free_list.push_back(index);
  return true;
}

size_t RecycleRetiredLocked(ShmPool& pool) {
  size_t recycled = 0;
  for (Segment& segment : pool.segments) {
    for (uint32_t i = 0; i < segment.count; ++i) {
      if (TryRecycleLocked(pool, segment, i)) ++recycled;
    }
  }
  return recycled;
}

bool SlotDrainedLocked(const ShmPool& pool, int slot) {
  for (const Segment& segment : pool.segments) {
    for (uint32_t i = 0; i < segment.count; ++i) {
      if (segment.ctl[i].refs[slot].load(std::memory_order_seq_cst) != 0) {
        return false;
      }
    }
  }
  return true;
}

/// Force-clears a dead peer's refcount column and reclaims any retired
/// blocks that drop to zero because of it.  Only ever called for a pid
/// that no longer exists — a dead process cannot be mid-read.
size_t ForceClearSlotLocked(ShmPool& pool, int slot) {
  size_t reclaimed = 0;
  for (Segment& segment : pool.segments) {
    for (uint32_t i = 0; i < segment.count; ++i) {
      BlockCtl* ctl = segment.ctl + i;
      if (ctl->refs[slot].load(std::memory_order_seq_cst) != 0) {
        ctl->refs[slot].store(0, std::memory_order_seq_cst);
        if (TryRecycleLocked(pool, segment, i)) ++reclaimed;
      }
    }
  }
  pool.slots[slot] = PeerSlot{};
  pool.blocks_reclaimed += reclaimed;
  return reclaimed;
}

size_t SweepDeadPeersLocked(ShmPool& pool) {
  size_t reclaimed = 0;
  for (size_t slot = 0; slot < kMaxPeers; ++slot) {
    if (pool.slots[slot].state != PeerSlot::State::kFree &&
        PidDead(pool.slots[slot].pid)) {
      RSF_WARN("shm peer pid %d died; reclaiming its block references",
               static_cast<int>(pool.slots[slot].pid));
      reclaimed += ForceClearSlotLocked(pool, static_cast<int>(slot));
    }
  }
  return reclaimed;
}

Segment* CreateSegmentLocked(ShmPool& pool, size_t cls) {
  const size_t want = kTargetSegmentBytes / cls;
  const uint32_t count = static_cast<uint32_t>(
      std::min(kMaxBlocksPerSegment, std::max(kMinBlocksPerSegment, want)));
  const size_t ctl_offset = AlignUp(sizeof(SegmentHeader), alignof(BlockCtl));
  const size_t data_offset =
      AlignUp(ctl_offset + count * sizeof(BlockCtl), 4096);
  const size_t bytes = data_offset + count * cls;
  if (pool.mapped_bytes + bytes > kMaxPoolBytes) return nullptr;

  const uint64_t pool_id = pool.next_pool_id++;
  const std::string name =
      "/" + Namespace() + "." + std::to_string(pool_id);
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    RSF_WARN("shm_open(%s) failed: %s — shm tier falls back to the heap",
             name.c_str(), std::strerror(errno));
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    RSF_WARN("ftruncate(%s, %zu) failed: %s", name.c_str(), bytes,
             std::strerror(errno));
    ::close(fd);
    ::shm_unlink(name.c_str());
    return nullptr;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                      0);
  ::close(fd);
  if (base == MAP_FAILED) {
    RSF_WARN("mmap(%s) failed: %s", name.c_str(), std::strerror(errno));
    ::shm_unlink(name.c_str());
    return nullptr;
  }

  Segment segment;
  segment.name = name;
  segment.pool_id = pool_id;
  segment.base = static_cast<uint8_t*>(base);
  segment.bytes = bytes;
  segment.cls = cls;
  segment.count = count;
  segment.ctl =
      reinterpret_cast<BlockCtl*>(segment.base + ctl_offset);
  segment.data = segment.base + data_offset;
  segment.state.assign(count, BlockState::kFree);
  segment.free_list.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    new (segment.ctl + i) BlockCtl();  // zero-initialized control words
    segment.free_list.push_back(count - 1 - i);  // hand out low indices first
  }
  auto* header = new (segment.base) SegmentHeader();
  header->magic = kSegmentMagic;
  header->version = kSegmentVersion;
  header->pool_id = pool_id;
  header->segment_bytes = bytes;
  header->block_class = cls;
  header->block_count = count;
  header->owner_pid = static_cast<int32_t>(::getpid());
  header->ctl_offset = ctl_offset;
  header->data_offset = data_offset;

  pool.mapped_bytes += bytes;
  pool.segments.push_back(std::move(segment));
  g_has_segments.store(true, std::memory_order_release);
  return &pool.segments.back();
}

Segment* FindByAddressLocked(ShmPool& pool, const uint8_t* addr) {
  for (Segment& segment : pool.segments) {
    if (addr >= segment.data && addr < segment.base + segment.bytes) {
      return &segment;
    }
  }
  return nullptr;
}

}  // namespace

bool Enabled() noexcept {
  return EnvTruthy(std::getenv("RSF_TRANSPORT_SHM"));
}

size_t ThresholdBytes() noexcept {
  if (const char* env = std::getenv("RSF_SHM_THRESHOLD")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<size_t>(parsed);
  }
  return 64 * 1024;
}

const std::string& Namespace() {
  static const std::string* ns = [] {
    (void)SweepStaleSegments();
    auto* fresh = new std::string(MakeNamespace());
    // Normal-exit hygiene: crash cleanup is the stale sweep above, run by
    // the NEXT publisher on this host.
    std::atexit(UnlinkOwnSegments);
    return fresh;
  }();
  return *ns;
}

void NotePeerNegotiated() noexcept {
  g_peer_negotiated.store(true, std::memory_order_release);
}

bool PeersEverNegotiated() noexcept {
  return g_peer_negotiated.load(std::memory_order_acquire);
}

size_t SweepStaleSegments() {
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return 0;
  const pid_t self = ::getpid();
  size_t removed = 0;
  while (dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, "rsf.", 4) != 0) continue;
    char* end = nullptr;
    const long pid = std::strtol(name + 4, &end, 10);
    if (end == name + 4 || *end != '.' || pid <= 0 ||
        static_cast<pid_t>(pid) == self || !PidDead(static_cast<pid_t>(pid))) {
      continue;
    }
    const std::string path = "/" + std::string(name);
    if (::shm_unlink(path.c_str()) == 0) {
      RSF_INFO("removed stale shm segment %s (owner pid %ld is dead)",
               name, pid);
      ++removed;
    }
  }
  ::closedir(dir);
  return removed;
}

uint8_t* TryAcquire(size_t cls) {
  if (!Enabled() || !PeersEverNegotiated()) return nullptr;
  if (cls < ThresholdBytes() || !std::has_single_bit(cls)) return nullptr;
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);

  const auto pop_free = [&]() -> uint8_t* {
    for (Segment& segment : pool.segments) {
      if (segment.cls != cls || segment.free_list.empty()) continue;
      const uint32_t index = segment.free_list.back();
      segment.free_list.pop_back();
      segment.state[index] = BlockState::kLive;
      return segment.data + static_cast<size_t>(index) * cls;
    }
    return nullptr;
  };

  if (uint8_t* block = pop_free()) return block;
  // Allocation pressure: drain retired blocks, then sweep dead peers —
  // a SIGKILLed subscriber must never wedge the pool.
  (void)RecycleRetiredLocked(pool);
  if (uint8_t* block = pop_free()) return block;
  if (SweepDeadPeersLocked(pool) > 0) {
    if (uint8_t* block = pop_free()) return block;
  }
  if (CreateSegmentLocked(pool, cls) != nullptr) {
    if (uint8_t* block = pop_free()) return block;
  }
  return nullptr;  // byte cap or syscall failure: heap fallback
}

bool ReleaseIfOwned(uint8_t* block) noexcept {
  if (!g_has_segments.load(std::memory_order_acquire)) return false;
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  Segment* segment = FindByAddressLocked(pool, block);
  if (segment == nullptr) return false;
  const size_t offset = static_cast<size_t>(block - segment->data);
  const uint32_t index = static_cast<uint32_t>(offset / segment->cls);
  if (offset % segment->cls != 0 ||
      segment->state[index] != BlockState::kLive) {
    RSF_ERROR("shm release of unrecognized block %p (index %u)",
              static_cast<void*>(block), index);
    return true;  // shm-owned either way: never let the heap free it
  }
  segment->state[index] = BlockState::kRetired;
  // Fast path: no peer ever referenced it (or all already released) —
  // straight back to the free list.
  (void)TryRecycleLocked(pool, *segment, index);
  return true;
}

std::optional<Descriptor> PreparePublish(const uint8_t* data, size_t length,
                                         uint64_t seq) {
  if (!g_has_segments.load(std::memory_order_acquire)) return std::nullopt;
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  Segment* segment = FindByAddressLocked(pool, data);
  if (segment == nullptr) return std::nullopt;
  const size_t offset = static_cast<size_t>(data - segment->data);
  const uint32_t index = static_cast<uint32_t>(offset / segment->cls);
  if (offset % segment->cls != 0 || length > segment->cls ||
      segment->state[index] != BlockState::kLive) {
    return std::nullopt;
  }
  BlockCtl* ctl = segment->ctl + index;
  Descriptor descriptor;
  descriptor.pool_id = segment->pool_id;
  descriptor.block_index = index;
  // The publisher's live holder pins the block (PooledDeleter hasn't run),
  // so gen cannot move between this read and the subscriber's check unless
  // the descriptor outlives the pin — exactly what the fence is for.
  descriptor.gen = ctl->gen.load(std::memory_order_seq_cst);
  descriptor.offset = segment->header().data_offset +
                      static_cast<uint64_t>(index) * segment->cls;
  descriptor.length = length;
  descriptor.seq = seq;
  // The release edge ordering the payload bytes (written before Publish)
  // before the subscriber's acquire load of the stamp.
  ctl->stamp.store(seq, std::memory_order_seq_cst);
  return descriptor;
}

int AcquirePeerSlot(pid_t peer_pid) {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  for (size_t s = 0; s < kMaxPeers; ++s) {
    if (pool.slots[s].state == PeerSlot::State::kFree) {
      pool.slots[s] = {PeerSlot::State::kActive, peer_pid};
      return static_cast<int>(s);
    }
  }
  // No virgin slot: reap draining slots whose owner died or fully drained.
  for (size_t s = 0; s < kMaxPeers; ++s) {
    if (pool.slots[s].state != PeerSlot::State::kDraining) continue;
    if (PidDead(pool.slots[s].pid)) {
      (void)ForceClearSlotLocked(pool, static_cast<int>(s));
    } else if (!SlotDrainedLocked(pool, static_cast<int>(s))) {
      continue;
    }
    pool.slots[s] = {PeerSlot::State::kActive, peer_pid};
    return static_cast<int>(s);
  }
  return -1;
}

void ReleasePeerSlot(int slot, pid_t peer_pid) {
  if (slot < 0 || static_cast<size_t>(slot) >= kMaxPeers) return;
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  PeerSlot& entry = pool.slots[slot];
  if (entry.state != PeerSlot::State::kActive || entry.pid != peer_pid) {
    return;  // stale release: the slot moved on (swept and reassigned)
  }
  if (PidDead(peer_pid)) {
    (void)ForceClearSlotLocked(pool, slot);
    return;
  }
  // The peer process is alive and may still hold message references; the
  // slot drains (its RefTokens decrement through the shared mapping) and
  // becomes reusable once every column entry is zero.
  entry.state = PeerSlot::State::kDraining;
  (void)RecycleRetiredLocked(pool);
  if (SlotDrainedLocked(pool, slot)) entry = PeerSlot{};
}

size_t SweepDeadPeers() {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  return SweepDeadPeersLocked(pool);
}

size_t RecycleRetired() {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  return RecycleRetiredLocked(pool);
}

PoolStats GetPoolStats() {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  PoolStats stats;
  stats.segments = pool.segments.size();
  stats.mapped_bytes = pool.mapped_bytes;
  for (const Segment& segment : pool.segments) {
    stats.total_blocks += segment.count;
    for (uint32_t i = 0; i < segment.count; ++i) {
      switch (segment.state[i]) {
        case BlockState::kFree: ++stats.free_blocks; break;
        case BlockState::kLive: ++stats.live_blocks; break;
        case BlockState::kRetired: ++stats.retired_blocks; break;
      }
    }
  }
  for (const PeerSlot& slot : pool.slots) {
    if (slot.state == PeerSlot::State::kActive) ++stats.active_peer_slots;
  }
  stats.blocks_reclaimed = pool.blocks_reclaimed;
  stats.gen_fence_rejections = pool.gen_fence_rejections;
  return stats;
}

SegmentView::~SegmentView() { ::munmap(base_, bytes_); }

rsf::Result<std::shared_ptr<SegmentView>> AttachSegment(const std::string& ns,
                                                        uint64_t pool_id) {
  const std::string name = "/" + ns + "." + std::to_string(pool_id);
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) {
    return rsf::UnavailableError("shm_open(" + name +
                                 "): " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(SegmentHeader))) {
    ::close(fd);
    return rsf::OutOfRangeError("shm segment " + name + " too small");
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return rsf::UnavailableError("mmap(" + name +
                                 "): " + std::strerror(errno));
  }
  auto view =
      std::make_shared<SegmentView>(static_cast<uint8_t*>(base), bytes);
  const SegmentHeader& header = view->header();
  const auto reject = [&](const std::string& why) {
    return rsf::FailedPreconditionError("shm segment " + name + ": " + why);
  };
  if (header.magic != kSegmentMagic) return reject("bad magic");
  if (header.version != kSegmentVersion) {
    return reject("pool version " + std::to_string(header.version) +
                  " != " + std::to_string(kSegmentVersion));
  }
  if (header.pool_id != pool_id) return reject("pool id mismatch");
  if (header.segment_bytes != bytes) return reject("size mismatch");
  if (header.block_count == 0 || header.block_count > kMaxBlockCount) {
    return reject("implausible block count");
  }
  if (header.block_class == 0 ||
      !std::has_single_bit(header.block_class)) {
    return reject("block class not a power of two");
  }
  if (header.ctl_offset < sizeof(SegmentHeader) ||
      header.ctl_offset % alignof(BlockCtl) != 0 ||
      header.ctl_offset + header.block_count * sizeof(BlockCtl) >
          header.data_offset) {
    return reject("control array out of bounds");
  }
  if (header.data_offset > bytes ||
      header.block_count * header.block_class > bytes - header.data_offset) {
    return reject("blocks out of bounds");
  }
  return view;
}

void ResetPoolForTest() {
  ShmPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  for (Segment& segment : pool.segments) {
    ::munmap(segment.base, segment.bytes);
    ::shm_unlink(segment.name.c_str());
  }
  pool.segments.clear();
  pool.mapped_bytes = 0;
  pool.blocks_reclaimed = 0;
  pool.gen_fence_rejections = 0;
  for (PeerSlot& slot : pool.slots) slot = PeerSlot{};
  g_has_segments.store(false, std::memory_order_release);
  g_peer_negotiated.store(false, std::memory_order_release);
}

}  // namespace sfm::shm
