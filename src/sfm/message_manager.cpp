#include "sfm/message_manager.h"

#include <bit>
#include <cstring>
#include <limits>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "sfm/alert.h"
#include "sfm/shm_pool.h"

namespace sfm {
namespace {

size_t AlignUp(size_t value, size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

std::mutex g_capacity_mutex;
std::map<std::string, size_t>& CapacityOverrides() {
  static std::map<std::string, size_t> overrides;
  return overrides;
}

// ---- arena block pool ----
//
// Blocks are recycled by power-of-two size class (ArenaBlockClassSize), so
// near-miss capacities share a bucket.  Bounded so pathological capacity
// mixes cannot hoard memory; beyond the bound, blocks fall back to the
// heap.
constexpr size_t kMaxPoolBytes = 512ull * 1024 * 1024;
constexpr size_t kMaxBlocksPerCapacity = 8;

struct ArenaPool {
  std::mutex mutex;
  std::map<size_t, std::vector<uint8_t*>> free_blocks;
  // Blocks of each class currently out with a caller (deleter not yet run),
  // heap- and shm-backed alike — the leak-detection side of the snapshot.
  std::map<size_t, size_t> live_counts;
  size_t bytes = 0;

  ~ArenaPool() {
    for (auto& [capacity, blocks] : free_blocks) {
      for (uint8_t* block : blocks) delete[] block;
    }
  }
};

ArenaPool& Pool() {
  static auto* pool = new ArenaPool();  // leaked: outlives all arenas
  return *pool;
}

void NoteBlockDead(ArenaPool& pool, size_t cls) {
  const auto it = pool.live_counts.find(cls);
  if (it != pool.live_counts.end() && it->second > 0) --it->second;
}

}  // namespace

void PooledDeleter::operator()(uint8_t* block) const noexcept {
  if (block == nullptr) return;
  ArenaPool& pool = Pool();
  // Shm-backed blocks go back to their segment's free list (the cross-
  // process release/recycle protocol lives there); the heap pool only ever
  // sees heap pointers.  One relaxed load when no segment exists.
  if (shm::ReleaseIfOwned(block)) {
    std::lock_guard<std::mutex> lock(pool.mutex);
    NoteBlockDead(pool, capacity);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    NoteBlockDead(pool, capacity);
    auto& blocks = pool.free_blocks[capacity];
    if (blocks.size() < kMaxBlocksPerCapacity &&
        pool.bytes + capacity <= kMaxPoolBytes) {
      blocks.push_back(block);
      pool.bytes += capacity;
      return;
    }
  }
  delete[] block;
}

size_t ArenaBlockClassSize(size_t capacity) noexcept {
  // Floor keeps tiny arenas from fragmenting the pool into dozens of
  // classes; the pow2 ceiling at most doubles a request, which the
  // kMaxPoolBytes bound already accommodates.
  constexpr size_t kMinClass = 256;
  if (capacity <= kMinClass) return kMinClass;
  if (capacity > (std::numeric_limits<size_t>::max() >> 1)) return capacity;
  return std::bit_ceil(capacity);
}

PooledBlock AcquireArenaBlock(size_t capacity) {
  return AcquireArenaBlock(capacity, /*shareable=*/false);
}

PooledBlock AcquireArenaBlock(size_t capacity, bool shareable) {
  const size_t cls = ArenaBlockClassSize(capacity);
  ArenaPool& pool = Pool();
  if (shareable) {
    // Above-threshold publisher arenas land in shared memory when the tier
    // is on and a subscriber negotiated it; TryAcquire declines otherwise
    // and the heap path below is byte-identical to the pre-shm behavior.
    if (uint8_t* block = shm::TryAcquire(cls)) {
      std::lock_guard<std::mutex> lock(pool.mutex);
      ++pool.live_counts[cls];
      return PooledBlock(block, PooledDeleter{cls});
    }
  }
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    ++pool.live_counts[cls];
    const auto it = pool.free_blocks.find(cls);
    if (it != pool.free_blocks.end() && !it->second.empty()) {
      uint8_t* block = it->second.back();
      it->second.pop_back();
      pool.bytes -= cls;
      return PooledBlock(block, PooledDeleter{cls});
    }
  }
  return PooledBlock(new uint8_t[cls], PooledDeleter{cls});
}

size_t ArenaPoolBytes() {
  ArenaPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  return pool.bytes;
}

void TrimArenaPool() {
  ArenaPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  for (auto& [capacity, blocks] : pool.free_blocks) {
    for (uint8_t* block : blocks) delete[] block;
  }
  pool.free_blocks.clear();
  pool.bytes = 0;
}

std::vector<ArenaPoolClassStats> ArenaPoolSnapshot() {
  ArenaPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  std::map<size_t, ArenaPoolClassStats> by_class;
  for (const auto& [cls, blocks] : pool.free_blocks) {
    by_class[cls].class_size = cls;
    by_class[cls].pooled = blocks.size();
  }
  for (const auto& [cls, live] : pool.live_counts) {
    by_class[cls].class_size = cls;
    by_class[cls].live = live;
  }
  std::vector<ArenaPoolClassStats> snapshot;
  snapshot.reserve(by_class.size());
  for (const auto& [cls, stats] : by_class) snapshot.push_back(stats);
  return snapshot;
}

const char* MessageStateName(MessageState state) noexcept {
  switch (state) {
    case MessageState::kAllocated:
      return "Allocated";
    case MessageState::kPublished:
      return "Published";
  }
  return "?";
}

MessageManager::ThreadRecordCache& MessageManager::Cache() noexcept {
  static thread_local ThreadRecordCache cache;
  return cache;
}

MessageManager::~MessageManager() {
  // Records still registered at destruction (leaked messages) may be parked
  // in some thread's cache; clearing `live` keeps such an entry from
  // validating against a later manager or arena at the same address.
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  for (auto& [key, record] : records_) {
    record->live.store(false, std::memory_order_release);
  }
}

uint8_t* MessageManager::Insert(uint8_t* start, size_t capacity, size_t size,
                                MessageState state,
                                std::shared_ptr<uint8_t[]> buffer,
                                const char* datatype) {
  auto record = std::make_shared<Record>();
  record->start = start;
  record->capacity = capacity;
  record->size.store(size, std::memory_order_relaxed);
  record->state.store(state, std::memory_order_relaxed);
  record->buffer = std::move(buffer);
  record->datatype = datatype;
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  records_.emplace(reinterpret_cast<uintptr_t>(start), std::move(record));
  return start;
}

void* MessageManager::Allocate(const char* datatype, size_t capacity,
                               size_t skeleton_size) {
  SFM_CHECK_MSG(skeleton_size <= capacity,
                "arena capacity smaller than message skeleton");
  // All publisher-side arenas are shareable candidates: whether one lands
  // in shared memory is decided entirely inside the shm pool (tier enabled,
  // peer negotiated, class above threshold).
  PooledBlock pooled = AcquireArenaBlock(capacity, /*shareable=*/true);
  // Copy the deleter: it carries the pool's size class, which may exceed
  // the requested capacity (power-of-two rounding).
  const PooledDeleter deleter = pooled.get_deleter();
  auto block = std::shared_ptr<uint8_t[]>(pooled.release(), deleter);
  uint8_t* start = block.get();
  std::memset(start, 0, skeleton_size);  // before registration: no lock held

  Insert(start, capacity, skeleton_size, MessageState::kAllocated,
         std::move(block), datatype);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return start;
}

bool MessageManager::Release(void* start) {
  std::shared_ptr<uint8_t[]> doomed;  // freed after the lock is dropped
  {
    std::unique_lock<std::shared_mutex> lock(index_mutex_);
    const auto it = records_.find(reinterpret_cast<uintptr_t>(start));
    if (it == records_.end()) return false;
    Record& record = *it->second;
    // Order matters for lock-free cache validation: clear `live` first so a
    // parked cache entry can never validate once the buffer is gone.
    record.live.store(false, std::memory_order_release);
    doomed = std::move(record.buffer);
    records_.erase(it);
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
  // Erasing the record dropped the manager's buffer pointer; `doomed` dies
  // here and the block is freed (or pooled) once any in-flight transport
  // references die — outside the index lock either way.
  return true;
}

std::shared_ptr<MessageManager::Record> MessageManager::FindInIndex(
    const void* addr) const {
  const auto key = reinterpret_cast<uintptr_t>(addr);
  auto it = records_.upper_bound(key);
  if (it == records_.begin()) return nullptr;
  --it;
  if (key >= it->first + it->second->capacity) return nullptr;
  return it->second;
}

void* MessageManager::Expand(const void* field_addr, size_t bytes,
                             size_t align) {
  SFM_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  const auto key = reinterpret_cast<uintptr_t>(field_addr);

  // Fast path: the thread's cached record still covers this address and is
  // still live — no lock, no search.  The shared_ptr guarantees the Record
  // struct outlives any concurrent Release; `live` (cleared under the
  // writer lock before the buffer is dropped) guarantees we never grant
  // space in a freed arena.
  ThreadRecordCache& cache = Cache();
  Record* record = nullptr;
  if (cache.manager == this && key >= cache.start &&
      key < cache.start + cache.capacity &&
      cache.record->live.load(std::memory_order_acquire)) {
    record = cache.record.get();
  } else {
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    std::shared_ptr<Record> found = FindInIndex(field_addr);
    if (found == nullptr) {
      RaiseAlert(
          Violation::kUnmanagedMessage,
          "an sfm field requested memory but its message is not "
          "arena-allocated; declare the message on the heap (the ROS-SF "
          "Converter rewrites stack declarations automatically)");
      return nullptr;  // unreachable: kUnmanagedMessage always throws
    }
    cache.manager = this;
    cache.start = reinterpret_cast<uintptr_t>(found->start);
    cache.capacity = found->capacity;
    cache.record = std::move(found);
    record = cache.record.get();
  }

  // Reserve [aligned_end, aligned_end + bytes) with a CAS bump: concurrent
  // expanders of the same message get disjoint regions, and expanders of
  // different messages never touch the same lock or cache line.
  size_t old_size = record->size.load(std::memory_order_relaxed);
  size_t aligned_end;
  do {
    aligned_end = AlignUp(old_size, align);
    if (aligned_end + bytes > record->capacity) {
      RaiseAlert(Violation::kArenaOverflow,
                 "whole message for " + std::string(record->datatype) +
                     " would grow to " + std::to_string(aligned_end + bytes) +
                     " bytes, over the arena capacity of " +
                     std::to_string(record->capacity) +
                     "; raise it in the IDL (@arena_capacity) or via "
                     "sfm::SetArenaCapacity()");
      return nullptr;  // unreachable: kArenaOverflow always throws
    }
  } while (!record->size.compare_exchange_weak(
      old_size, aligned_end + bytes, std::memory_order_acq_rel,
      std::memory_order_relaxed));

  // Zero the granted region outside any lock: it was exclusively reserved
  // above, and the arena block cannot disappear while the caller
  // legitimately owns the message it is expanding.
  uint8_t* out = record->start + aligned_end;
  std::memset(out, 0, bytes);
  expansions_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::optional<BufferRef> MessageManager::Publish(const void* start) {
  const auto key = reinterpret_cast<uintptr_t>(start);

  // Fast path: the publishing thread's cached record IS this message (the
  // overwhelmingly common shape — the thread that filled the message, whose
  // Expands primed the cache, is the thread that publishes it).  Publish
  // requires the record START, so the hit test is exact-key, not range.
  // Reading `buffer` without the index lock is safe for the same reason
  // Expand's arena writes are: only Release moves the buffer out, and
  // releasing a message while another thread is still publishing it is a
  // use-after-free in the caller (see the ownership rule in the header).
  ThreadRecordCache& cache = Cache();
  if (cache.manager == this && key == cache.start &&
      cache.record->live.load(std::memory_order_acquire)) {
    Record& record = *cache.record;
    record.state.store(MessageState::kPublished, std::memory_order_release);
    publishes_.fetch_add(1, std::memory_order_relaxed);
    return BufferRef{std::shared_ptr<const uint8_t[]>(record.buffer),
                     record.size.load(std::memory_order_acquire)};
  }

  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  Record& record = *it->second;
  record.state.store(MessageState::kPublished, std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // Copying `record.buffer` is safe under the shared lock: the shared_ptr
  // object itself is immutable after insertion (only Release moves it out,
  // under the writer lock), and control-block refcounting is atomic.
  return BufferRef{std::shared_ptr<const uint8_t[]>(record.buffer),
                   record.size.load(std::memory_order_acquire)};
}

std::optional<BufferRef> MessageManager::Borrow(const void* start) {
  auto ref = Publish(start);
  if (ref.has_value()) borrows_.fetch_add(1, std::memory_order_relaxed);
  return ref;
}

const uint8_t* MessageManager::AdoptReceived(const char* datatype,
                                             std::unique_ptr<uint8_t[]> block,
                                             size_t capacity, size_t size) {
  SFM_CHECK_MSG(size <= capacity, "received message larger than its block");
  uint8_t* start = block.get();
  Insert(start, capacity, size, MessageState::kPublished,
         std::shared_ptr<uint8_t[]>(block.release(),
                                    std::default_delete<uint8_t[]>()),
         datatype);
  received_adoptions_.fetch_add(1, std::memory_order_relaxed);
  return start;
}

const uint8_t* MessageManager::AdoptReceived(const char* datatype,
                                             PooledBlock block,
                                             size_t capacity, size_t size) {
  SFM_CHECK_MSG(size <= capacity, "received message larger than its block");
  uint8_t* start = block.get();
  // Preserve the deleter's size class (≥ capacity after pow2 rounding) so
  // the block returns to the pool under the class it was drawn from.
  const PooledDeleter deleter = block.get_deleter();
  Insert(start, capacity, size, MessageState::kPublished,
         std::shared_ptr<uint8_t[]>(block.release(), deleter), datatype);
  received_adoptions_.fetch_add(1, std::memory_order_relaxed);
  return start;
}

const uint8_t* MessageManager::AdoptShared(const char* datatype,
                                           std::shared_ptr<uint8_t[]> buffer,
                                           size_t capacity, size_t size) {
  SFM_CHECK_MSG(size <= capacity, "received message larger than its block");
  uint8_t* start = buffer.get();
  Insert(start, capacity, size, MessageState::kPublished, std::move(buffer),
         datatype);
  received_adoptions_.fetch_add(1, std::memory_order_relaxed);
  return start;
}

bool MessageManager::TryWholeCopy(void* dst, const void* src,
                                  size_t skeleton_size) {
  // Whole-copy is a rare, coarse operation (generated operator=): the
  // writer lock keeps it trivially exclusive against the lock-free Expand
  // path mutating dst's size concurrently.
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  const auto dst_it = records_.find(reinterpret_cast<uintptr_t>(dst));
  if (dst_it == records_.end()) return false;
  Record& dst_record = *dst_it->second;

  const std::shared_ptr<Record> src_record = FindInIndex(src);
  size_t src_size = skeleton_size;
  if (src_record != nullptr) {
    if (src_record->start != static_cast<const uint8_t*>(src)) {
      // src is a nested field of some arena, not a whole message; the
      // caller must copy field-wise so payloads land in dst's arena.
      return false;
    }
    src_size = src_record->size.load(std::memory_order_acquire);
  }
  if (src_size > dst_record.capacity) {
    RaiseAlert(Violation::kArenaOverflow,
               "whole-message copy of " + std::to_string(src_size) +
                   " bytes exceeds destination arena capacity of " +
                   std::to_string(dst_record.capacity));
    return true;  // unreachable: kArenaOverflow always throws
  }
  std::memcpy(dst_record.start, src, src_size);
  dst_record.size.store(src_size, std::memory_order_release);
  return true;
}

std::optional<RecordInfo> MessageManager::Find(const void* addr) const {
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  const std::shared_ptr<Record> record = FindInIndex(addr);
  if (record == nullptr) return std::nullopt;
  RecordInfo info;
  info.start = record->start;
  info.capacity = record->capacity;
  info.size = record->size.load(std::memory_order_acquire);
  info.state = record->state.load(std::memory_order_acquire);
  info.use_count = record->buffer.use_count();
  info.datatype = record->datatype;
  return info;
}

size_t MessageManager::SizeOf(const void* addr) const {
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  const std::shared_ptr<Record> record = FindInIndex(addr);
  return record == nullptr ? 0
                           : record->size.load(std::memory_order_acquire);
}

size_t MessageManager::LiveCount() const {
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  return records_.size();
}

ManagerStats MessageManager::Stats() const {
  ManagerStats stats;
  stats.allocations = allocations_.load(std::memory_order_relaxed);
  stats.releases = releases_.load(std::memory_order_relaxed);
  stats.expansions = expansions_.load(std::memory_order_relaxed);
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.received_adoptions =
      received_adoptions_.load(std::memory_order_relaxed);
  stats.borrows = borrows_.load(std::memory_order_relaxed);
  return stats;
}

void MessageManager::ResetStats() {
  allocations_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
  expansions_.store(0, std::memory_order_relaxed);
  publishes_.store(0, std::memory_order_relaxed);
  received_adoptions_.store(0, std::memory_order_relaxed);
  borrows_.store(0, std::memory_order_relaxed);
}

MessageManager& gmm() {
  static MessageManager manager;
  return manager;
}

void SetArenaCapacity(const std::string& datatype, size_t bytes) {
  std::lock_guard<std::mutex> lock(g_capacity_mutex);
  if (bytes == 0) {
    CapacityOverrides().erase(datatype);
  } else {
    CapacityOverrides()[datatype] = bytes;
  }
}

size_t ArenaCapacityFor(const std::string& datatype, size_t default_bytes) {
  std::lock_guard<std::mutex> lock(g_capacity_mutex);
  const auto& overrides = CapacityOverrides();
  const auto it = overrides.find(datatype);
  return it != overrides.end() ? it->second : default_bytes;
}

}  // namespace sfm
