#include "sfm/message_manager.h"

#include <cstring>
#include <vector>

#include "common/status.h"
#include "sfm/alert.h"

namespace sfm {
namespace {

size_t AlignUp(size_t value, size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

std::mutex g_capacity_mutex;
std::map<std::string, size_t>& CapacityOverrides() {
  static std::map<std::string, size_t> overrides;
  return overrides;
}

// ---- arena block pool ----
//
// Blocks are recycled by exact capacity.  Bounded so pathological capacity
// mixes cannot hoard memory; beyond the bound, blocks fall back to the
// heap.
constexpr size_t kMaxPoolBytes = 512ull * 1024 * 1024;
constexpr size_t kMaxBlocksPerCapacity = 8;

struct ArenaPool {
  std::mutex mutex;
  std::map<size_t, std::vector<uint8_t*>> free_blocks;
  size_t bytes = 0;

  ~ArenaPool() {
    for (auto& [capacity, blocks] : free_blocks) {
      for (uint8_t* block : blocks) delete[] block;
    }
  }
};

ArenaPool& Pool() {
  static auto* pool = new ArenaPool();  // leaked: outlives all arenas
  return *pool;
}

}  // namespace

void PooledDeleter::operator()(uint8_t* block) const noexcept {
  if (block == nullptr) return;
  ArenaPool& pool = Pool();
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    auto& blocks = pool.free_blocks[capacity];
    if (blocks.size() < kMaxBlocksPerCapacity &&
        pool.bytes + capacity <= kMaxPoolBytes) {
      blocks.push_back(block);
      pool.bytes += capacity;
      return;
    }
  }
  delete[] block;
}

PooledBlock AcquireArenaBlock(size_t capacity) {
  ArenaPool& pool = Pool();
  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    const auto it = pool.free_blocks.find(capacity);
    if (it != pool.free_blocks.end() && !it->second.empty()) {
      uint8_t* block = it->second.back();
      it->second.pop_back();
      pool.bytes -= capacity;
      return PooledBlock(block, PooledDeleter{capacity});
    }
  }
  return PooledBlock(new uint8_t[capacity], PooledDeleter{capacity});
}

size_t ArenaPoolBytes() {
  ArenaPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  return pool.bytes;
}

void TrimArenaPool() {
  ArenaPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mutex);
  for (auto& [capacity, blocks] : pool.free_blocks) {
    for (uint8_t* block : blocks) delete[] block;
  }
  pool.free_blocks.clear();
  pool.bytes = 0;
}

const char* MessageStateName(MessageState state) noexcept {
  switch (state) {
    case MessageState::kAllocated:
      return "Allocated";
    case MessageState::kPublished:
      return "Published";
  }
  return "?";
}

void* MessageManager::Allocate(const char* datatype, size_t capacity,
                               size_t skeleton_size) {
  SFM_CHECK_MSG(skeleton_size <= capacity,
                "arena capacity smaller than message skeleton");
  PooledBlock pooled = AcquireArenaBlock(capacity);
  auto block =
      std::shared_ptr<uint8_t[]>(pooled.release(), PooledDeleter{capacity});
  uint8_t* start = block.get();
  std::memset(start, 0, skeleton_size);

  Record record;
  record.start = start;
  record.capacity = capacity;
  record.size = skeleton_size;
  record.state = MessageState::kAllocated;
  record.buffer = std::move(block);
  record.datatype = datatype;

  std::lock_guard<std::mutex> lock(mutex_);
  records_.emplace(reinterpret_cast<uintptr_t>(start), std::move(record));
  ++stats_.allocations;
  return start;
}

bool MessageManager::Release(void* start) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(reinterpret_cast<uintptr_t>(start));
  if (it == records_.end()) return false;
  // Erasing the record drops the manager's buffer pointer; the block is
  // freed by shared_ptr once any in-flight transport references die.
  records_.erase(it);
  ++stats_.releases;
  return true;
}

MessageManager::Record* MessageManager::FindLocked(const void* addr) {
  const auto key = reinterpret_cast<uintptr_t>(addr);
  auto it = records_.upper_bound(key);
  if (it == records_.begin()) return nullptr;
  --it;
  Record& record = it->second;
  if (key >= it->first + record.capacity) return nullptr;
  return &record;
}

const MessageManager::Record* MessageManager::FindLocked(
    const void* addr) const {
  return const_cast<MessageManager*>(this)->FindLocked(addr);
}

void* MessageManager::Expand(const void* field_addr, size_t bytes,
                             size_t align) {
  SFM_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  std::lock_guard<std::mutex> lock(mutex_);
  Record* record = FindLocked(field_addr);
  if (record == nullptr) {
    RaiseAlert(Violation::kUnmanagedMessage,
               "an sfm field requested memory but its message is not "
               "arena-allocated; declare the message on the heap (the ROS-SF "
               "Converter rewrites stack declarations automatically)");
    return nullptr;  // unreachable: kUnmanagedMessage always throws
  }
  const size_t aligned_end = AlignUp(record->size, align);
  if (aligned_end + bytes > record->capacity) {
    RaiseAlert(Violation::kArenaOverflow,
               "whole message for " + std::string(record->datatype) +
                   " would grow to " + std::to_string(aligned_end + bytes) +
                   " bytes, over the arena capacity of " +
                   std::to_string(record->capacity) +
                   "; raise it in the IDL (@arena_capacity) or via "
                   "sfm::SetArenaCapacity()");
    return nullptr;  // unreachable: kArenaOverflow always throws
  }
  uint8_t* out = record->start + aligned_end;
  std::memset(out, 0, bytes);
  record->size = aligned_end + bytes;
  ++stats_.expansions;
  return out;
}

std::optional<BufferRef> MessageManager::Publish(const void* start) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(reinterpret_cast<uintptr_t>(start));
  if (it == records_.end()) return std::nullopt;
  Record& record = it->second;
  record.state = MessageState::kPublished;
  ++stats_.publishes;
  return BufferRef{std::shared_ptr<const uint8_t[]>(record.buffer),
                   record.size};
}

const uint8_t* MessageManager::AdoptReceived(const char* datatype,
                                             std::unique_ptr<uint8_t[]> block,
                                             size_t capacity, size_t size) {
  SFM_CHECK_MSG(size <= capacity, "received message larger than its block");
  uint8_t* start = block.get();

  Record record;
  record.start = start;
  record.capacity = capacity;
  record.size = size;
  record.state = MessageState::kPublished;  // paper Fig. 9: enters Published
  record.buffer = std::shared_ptr<uint8_t[]>(block.release(),
                                             std::default_delete<uint8_t[]>());
  record.datatype = datatype;

  std::lock_guard<std::mutex> lock(mutex_);
  records_.emplace(reinterpret_cast<uintptr_t>(start), std::move(record));
  ++stats_.received_adoptions;
  return start;
}

bool MessageManager::TryWholeCopy(void* dst, const void* src,
                                  size_t skeleton_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto dst_it = records_.find(reinterpret_cast<uintptr_t>(dst));
  if (dst_it == records_.end()) return false;
  Record& dst_record = dst_it->second;

  const Record* src_record = FindLocked(src);
  size_t src_size = skeleton_size;
  if (src_record != nullptr) {
    if (src_record->start != static_cast<const uint8_t*>(src)) {
      // src is a nested field of some arena, not a whole message; the
      // caller must copy field-wise so payloads land in dst's arena.
      return false;
    }
    src_size = src_record->size;
  }
  if (src_size > dst_record.capacity) {
    RaiseAlert(Violation::kArenaOverflow,
               "whole-message copy of " + std::to_string(src_size) +
                   " bytes exceeds destination arena capacity of " +
                   std::to_string(dst_record.capacity));
    return true;  // unreachable: kArenaOverflow always throws
  }
  std::memcpy(dst_record.start, src, src_size);
  dst_record.size = src_size;
  return true;
}

const uint8_t* MessageManager::AdoptReceived(const char* datatype,
                                             PooledBlock block,
                                             size_t capacity, size_t size) {
  SFM_CHECK_MSG(size <= capacity, "received message larger than its block");
  uint8_t* start = block.get();

  Record record;
  record.start = start;
  record.capacity = capacity;
  record.size = size;
  record.state = MessageState::kPublished;
  record.buffer =
      std::shared_ptr<uint8_t[]>(block.release(), PooledDeleter{capacity});
  record.datatype = datatype;

  std::lock_guard<std::mutex> lock(mutex_);
  records_.emplace(reinterpret_cast<uintptr_t>(start), std::move(record));
  ++stats_.received_adoptions;
  return start;
}

std::optional<RecordInfo> MessageManager::Find(const void* addr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Record* record = FindLocked(addr);
  if (record == nullptr) return std::nullopt;
  RecordInfo info;
  info.start = record->start;
  info.capacity = record->capacity;
  info.size = record->size;
  info.state = record->state;
  info.use_count = record->buffer.use_count();
  info.datatype = record->datatype;
  return info;
}

size_t MessageManager::SizeOf(const void* addr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Record* record = FindLocked(addr);
  return record == nullptr ? 0 : record->size;
}

size_t MessageManager::LiveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

ManagerStats MessageManager::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void MessageManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ManagerStats{};
}

MessageManager& gmm() {
  static MessageManager manager;
  return manager;
}

void SetArenaCapacity(const std::string& datatype, size_t bytes) {
  std::lock_guard<std::mutex> lock(g_capacity_mutex);
  if (bytes == 0) {
    CapacityOverrides().erase(datatype);
  } else {
    CapacityOverrides()[datatype] = bytes;
  }
}

size_t ArenaCapacityFor(const std::string& datatype, size_t default_bytes) {
  std::lock_guard<std::mutex> lock(g_capacity_mutex);
  const auto& overrides = CapacityOverrides();
  const auto it = overrides.find(datatype);
  return it != overrides.end() ? it->second : default_bytes;
}

}  // namespace sfm
