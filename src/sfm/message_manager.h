// The message manager (paper §4.2, §4.3.3: `sfm::mm` with one global
// instance `sfm::gmm`).
//
// Every serialization-free message lives in one contiguous heap block, its
// *arena*: the fixed-size skeleton at offset 0, variable-size payloads
// (string contents, vector elements) appended behind it.  The manager keeps
// one record per live arena:
//
//   [start, start+capacity)   the heap block
//   size                      current extent of the *whole message*
//   buffer                    the "buffer pointer" — a shared_ptr that owns
//                             the block; publish() hands aliased copies to
//                             the transport, so the block outlives the
//                             developer-visible message object
//   state                     Allocated -> Published  (Destructed == erased)
//
// Field types (sfm::string / sfm::vector) call Expand() with their own
// address when they need payload space; the manager locates the containing
// record by binary search over the address-ordered record map — exactly the
// lookup structure the paper describes — bumps `size`, and returns the new
// region.
//
// Concurrency model (see DESIGN.md "Manager concurrency model"): the record
// index is read-mostly.  Mutations of the index itself — Allocate, Release,
// AdoptReceived, TryWholeCopy — take the writer side of a shared_mutex;
// index readers (Publish, Find, the Expand slow path) take the reader side,
// so concurrent publishers never serialize on one lock.  Expand reserves
// its region with a CAS bump loop on the record's atomic size and zeroes
// the granted bytes outside any lock.  A thread-local one-entry record
// cache holds a shared_ptr to the last record this thread expanded; a hit
// is validated by an address-range check plus the record's atomic `live`
// flag (cleared on Release and manager destruction), making the common
// pattern — many Expand() calls against the same in-flight message —
// entirely lock-free: no index lock, no search, one atomic load + one CAS.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

namespace sfm {

enum class MessageState { kAllocated, kPublished };

const char* MessageStateName(MessageState state) noexcept;

/// An aliased reference to a message arena: what `publish` puts on the wire.
struct BufferRef {
  std::shared_ptr<const uint8_t[]> data;
  size_t size = 0;

  [[nodiscard]] bool valid() const noexcept { return data != nullptr; }
};

/// Introspection snapshot of one record (tests, debugging).
struct RecordInfo {
  const uint8_t* start = nullptr;
  size_t capacity = 0;
  size_t size = 0;
  MessageState state = MessageState::kAllocated;
  long use_count = 0;  // buffer-pointer reference count
  std::string datatype;
};

/// Aggregate counters (tests, the ablation bench).
struct ManagerStats {
  uint64_t allocations = 0;
  uint64_t releases = 0;
  uint64_t expansions = 0;
  uint64_t publishes = 0;
  uint64_t received_adoptions = 0;
  // Zero-copy in-process publishes: the subscriber borrowed the arena via
  // an aliased buffer pointer instead of receiving bytes.  A subset of
  // `publishes`.
  uint64_t borrows = 0;
};

/// Deleter that returns an arena block to the process-wide block pool.
struct PooledDeleter {
  size_t capacity = 0;
  void operator()(uint8_t* block) const noexcept;
};

/// An owned arena block that recycles itself.
using PooledBlock = std::unique_ptr<uint8_t[], PooledDeleter>;

/// The pooled size class a requested capacity lands in: the next power of
/// two (with a small floor).  Classing means near-miss capacities — a
/// type whose largest-message estimate grew by a few bytes — still reuse
/// pooled blocks instead of missing an exact-capacity lookup and paying
/// the allocator.
size_t ArenaBlockClassSize(size_t capacity) noexcept;

/// Acquires a block of at least `capacity` bytes from the pool (or the
/// heap).  Pooling matters for throughput: arenas are sized for the LARGEST
/// message of a type (§4.2), typically megabytes, and allocating/releasing
/// such blocks per message costs mmap + page-fault churn that can eat the
/// serialization savings.  Recycled blocks keep their pages warm.
/// The returned block is ArenaBlockClassSize(capacity) bytes; its deleter
/// carries that class size, so callers re-wrapping the pointer must copy
/// the deleter (never rebuild one from the requested capacity).
PooledBlock AcquireArenaBlock(size_t capacity);

/// Same, with placement control: `shareable` blocks may come from the
/// shared-memory pool (DESIGN.md §12) when the shm transport tier is
/// enabled and a peer has negotiated it — the seam that lets above-threshold
/// publisher arenas land directly in cross-process-mappable pages.  The
/// returned block is interchangeable with the heap kind: PooledDeleter
/// routes it back to whichever pool owns it.  Falls back to the heap
/// whenever the shm pool declines (tier off, below threshold, byte cap).
PooledBlock AcquireArenaBlock(size_t capacity, bool shareable);

/// Pool occupancy in bytes (tests / introspection).
size_t ArenaPoolBytes();
/// Drops all pooled blocks.
void TrimArenaPool();

/// Per-size-class pool occupancy: how many blocks of each class sit free in
/// the pool and how many are live (acquired, deleter not yet run).  Live
/// counts cover heap- and shm-backed blocks alike — after full teardown
/// every class must read live == 0, which is what the stress tests assert
/// to prove no arena (shm blocks included) leaks.
struct ArenaPoolClassStats {
  size_t class_size = 0;
  size_t pooled = 0;
  size_t live = 0;
};
std::vector<ArenaPoolClassStats> ArenaPoolSnapshot();

/// The message manager.  All methods are thread-safe with respect to each
/// other and to operations on *other* messages.  Operations on one message
/// follow the normal ownership rule: the thread(s) writing a message may
/// Expand it concurrently (the CAS bump makes grants disjoint), but
/// releasing a message while another thread is still expanding it is a
/// use-after-free bug in the caller, exactly as with any heap object.
class MessageManager {
 public:
  MessageManager() = default;
  ~MessageManager();
  MessageManager(const MessageManager&) = delete;
  MessageManager& operator=(const MessageManager&) = delete;

  /// Allocates a fresh arena of `capacity` bytes, registers it, and returns
  /// the message start address.  The first `skeleton_size` bytes are zeroed
  /// (a zeroed skeleton is the valid default state for every SFM type) and
  /// the whole-message size starts at `skeleton_size`.
  void* Allocate(const char* datatype, size_t capacity, size_t skeleton_size);

  /// Drops the record whose start address is `start` (object deleted by the
  /// developer's code — the overloaded operator delete, or the subscriber
  /// ConstPtr deleter).  The underlying block is freed once the transport
  /// holds no aliased buffer pointers.  Returns false if `start` is not a
  /// registered arena (the caller then owns the memory).
  bool Release(void* start);

  /// Grants `bytes` bytes (aligned to `align`) at the current end of the
  /// whole message containing `field_addr`, zeroed, and grows the recorded
  /// size.  Raises kUnmanagedMessage if no record contains `field_addr`
  /// (stack-allocated message: the ROS-SF Converter was not applied) and
  /// kArenaOverflow if capacity is exceeded.  Both are fatal alerts.
  ///
  /// Lock-free on the fast path: when the thread's one-entry record cache
  /// still covers `field_addr` (the overwhelmingly common case — a message
  /// is filled by one thread, field by field), no index lock is taken at
  /// all; the region is reserved with a CAS loop on the record's atomic
  /// size and zeroed outside any lock.  A cache miss falls back to a
  /// shared-lock binary search and refills the cache.
  void* Expand(const void* field_addr, size_t bytes, size_t align);

  /// Marks the message Published and returns an aliased buffer pointer
  /// covering the whole message, for the transmission queue.  nullopt if
  /// `start` is not registered.  Lock-free when the calling thread's record
  /// cache holds this message (the thread that filled it publishes it);
  /// otherwise takes only a shared lock, so publishers on different
  /// messages never serialize either way.
  std::optional<BufferRef> Publish(const void* start);

  /// Zero-copy in-process publish ("borrowed publish"): identical to
  /// Publish(), but counted separately.  The returned BufferRef's shared
  /// ownership of the arena block is the life-cycle guarantee the
  /// in-process transport relies on: even after the publisher's handle dies
  /// and Release() erases the record, the block stays alive until the last
  /// borrowing subscriber drops its aliased pointer (SFM reads are relative
  /// offsets, so they never need the record back).
  std::optional<BufferRef> Borrow(const void* start);

  /// Receive path: registers an externally filled arena.  `block` is the
  /// heap block (capacity bytes), `size` the received whole-message size.
  /// The message enters the Published state directly (paper Fig. 9).
  /// Returns the message start address.
  const uint8_t* AdoptReceived(const char* datatype,
                               std::unique_ptr<uint8_t[]> block,
                               size_t capacity, size_t size);

  /// Same, for a pooled block (the transport's receive path).
  const uint8_t* AdoptReceived(const char* datatype, PooledBlock block,
                               size_t capacity, size_t size);

  /// Same, for an externally owned buffer (the shm receive path: `buffer`
  /// aliases a block in a publisher's mapped segment, and its control block
  /// holds the cross-process reference token).  The manager shares — never
  /// frees — the underlying bytes; when the last aliased pointer dies the
  /// caller-supplied control block runs and releases the shm reference.
  const uint8_t* AdoptShared(const char* datatype,
                             std::shared_ptr<uint8_t[]> buffer,
                             size_t capacity, size_t size);

  /// Top-level assignment fast path for the generated copy constructor and
  /// operator= (paper §4.3.1: "find the current size of the whole message
  /// from the message manager and copy the message").  If `dst` is a
  /// registered record *start*, copies src's whole-message bytes verbatim
  /// (relative offsets make them position-independent) — or just the
  /// skeleton when src is unregistered — resets dst's size, and returns
  /// true.  Returns false when dst is not a record start, i.e. the
  /// assignment target is a nested field and the caller must copy
  /// field-wise.  Raises kArenaOverflow if dst cannot hold src.
  bool TryWholeCopy(void* dst, const void* src, size_t skeleton_size);

  /// Record lookup by any address inside the arena (tests / introspection).
  std::optional<RecordInfo> Find(const void* addr) const;

  /// Current whole-message size of the message containing `addr`;
  /// 0 if unknown.
  size_t SizeOf(const void* addr) const;

  [[nodiscard]] size_t LiveCount() const;
  [[nodiscard]] ManagerStats Stats() const;
  void ResetStats();

 private:
  struct Record {
    uint8_t* start = nullptr;
    size_t capacity = 0;
    // The per-record fields the hot path touches; everything else is
    // immutable once the record is inserted (writer lock held).  `live` is
    // what lets a thread cache validate a record without the index lock:
    // Release (and manager destruction) clears it before the record leaves
    // the index, and the Record struct itself is shared_ptr-owned, so a
    // stale cache entry reads a cleared flag instead of freed memory.
    std::atomic<size_t> size{0};
    std::atomic<MessageState> state{MessageState::kAllocated};
    std::atomic<bool> live{true};
    std::shared_ptr<uint8_t[]> buffer;  // the buffer pointer
    const char* datatype = "";
  };

  /// One-entry per-thread cache of the last record an Expand() resolved.
  /// The shared_ptr keeps the (small) Record struct alive across a
  /// concurrent Release, so validation — range check + `live` — is safe
  /// with no lock.  Release moves the buffer pointer out of the record, so
  /// a parked cache entry never pins a multi-megabyte arena block.
  struct ThreadRecordCache {
    const MessageManager* manager = nullptr;
    uintptr_t start = 0;
    size_t capacity = 0;
    std::shared_ptr<Record> record;
  };
  static ThreadRecordCache& Cache() noexcept;

  // Returns the record containing `addr`, or nullptr.  Caller holds
  // index_mutex_ in either mode (read-only on the map).
  std::shared_ptr<Record> FindInIndex(const void* addr) const;

  // Inserts a fresh record under the writer lock and returns its start.
  uint8_t* Insert(uint8_t* start, size_t capacity, size_t size,
                  MessageState state, std::shared_ptr<uint8_t[]> buffer,
                  const char* datatype);

  mutable std::shared_mutex index_mutex_;
  std::map<uintptr_t, std::shared_ptr<Record>> records_;  // keyed by start

  // Relaxed: counters are monotonic telemetry, never synchronization.
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> releases_{0};
  std::atomic<uint64_t> expansions_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> received_adoptions_{0};
  std::atomic<uint64_t> borrows_{0};
};

/// The global message manager (`sfm::gmm` in the paper).
MessageManager& gmm();

/// Overrides the arena capacity for a datatype at run time (takes precedence
/// over the IDL-declared capacity baked into the generated header).  Pass 0
/// to remove the override.
void SetArenaCapacity(const std::string& datatype, size_t bytes);

/// Capacity to use for `datatype` given its generated default.
size_t ArenaCapacityFor(const std::string& datatype, size_t default_bytes);

}  // namespace sfm
