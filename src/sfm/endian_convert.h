// Receiver-side endianness conversion for SFM messages (paper §4.4.1).
//
// An SFM message travels in the publisher's byte order.  When the two ends
// disagree, the subscriber must swap every multi-byte scalar — including
// the {length, offset} words of string/vector skeletons — before the
// message can be interpreted in place.  The paper discusses this as the
// cost that "could even counteract the efficiency brought by
// serialization-free frameworks"; this module implements the conversion so
// that cost can be measured (see bench/ablation_micro).
//
// ConvertEndianness walks the message through the generated for_each_field
// visitor.  It must run on a message whose skeleton words are still in
// *foreign* order, so lengths/offsets are swapped before being used to
// locate payloads.  The message must be mutable and arena-backed.
#pragma once

#include <type_traits>

#include "common/clock.h"
#include "common/endian.h"
#include "serialization/field_model.h"
#include "sfm/string.h"
#include "sfm/vector.h"

namespace sfm {

/// Which way the message is being converted.  The walker must read vector
/// counts and offsets in HOST order: converting a received foreign message
/// means the host values only exist AFTER the skeleton words are swapped;
/// converting an outgoing message to foreign order means they only exist
/// BEFORE.
enum class SwapDirection {
  kFromForeign,  // received bytes -> host order (the §4.4.1 receiver step)
  kToForeign,    // host order -> foreign bytes (tests / symmetric peers)
};

namespace internal {

template <typename T>
void SwapScalarInPlace(T& value) noexcept {
  if constexpr (sizeof(T) == 1) {
    (void)value;
  } else if constexpr (std::is_same_v<T, ::rsf::Time>) {
    value.sec = ::rsf::ByteSwap(value.sec);
    value.nsec = ::rsf::ByteSwap(value.nsec);
  } else {
    using U = std::conditional_t<
        sizeof(T) == 2, uint16_t,
        std::conditional_t<sizeof(T) == 4, uint32_t, uint64_t>>;
    U raw;
    std::memcpy(&raw, &value, sizeof(T));
    raw = ::rsf::ByteSwap(raw);
    std::memcpy(&value, &raw, sizeof(T));
  }
}

/// Swaps a skeleton word pair in place and returns the HOST-order values
/// (post-swap when converting from foreign, pre-swap when converting to).
inline std::pair<uint32_t, uint32_t> SwapSkeletonWords(void* skeleton,
                                                       SwapDirection dir) {
  auto* words = static_cast<uint32_t*>(skeleton);
  const uint32_t pre0 = words[0];
  const uint32_t pre1 = words[1];
  words[0] = ::rsf::ByteSwap(words[0]);
  words[1] = ::rsf::ByteSwap(words[1]);
  if (dir == SwapDirection::kFromForeign) return {words[0], words[1]};
  return {pre0, pre1};
}

template <typename T>
void ConvertField(T& field, SwapDirection dir);

template <rsf::ser::Message M>
void ConvertMessage(M& msg, SwapDirection dir) {
  msg.for_each_field(
      [dir](const char*, auto& field) { ConvertField(field, dir); });
}

template <typename T>
void ConvertField(T& field, SwapDirection dir) {
  if constexpr (rsf::ser::is_scalar_v<T>) {
    SwapScalarInPlace(field);
  } else if constexpr (std::is_same_v<T, string>) {
    // Strings: only the skeleton words need swapping (content is bytes).
    SwapSkeletonWords(&field, dir);
  } else if constexpr (is_sfm_vector_v<T>) {
    using E = typename T::value_type;
    const auto [count, offset] = SwapSkeletonWords(&field, dir);
    if (count == 0 || offset == 0) return;
    auto* base = reinterpret_cast<uint8_t*>(&field) + 4 + offset;
    auto* elements = reinterpret_cast<E*>(base);
    for (uint32_t i = 0; i < count; ++i) {
      if constexpr (rsf::ser::is_scalar_v<E>) {
        SwapScalarInPlace(elements[i]);
      } else {
        ConvertMessage(elements[i], dir);
      }
    }
  } else if constexpr (rsf::ser::is_std_array_v<T>) {
    for (auto& element : field) {
      if constexpr (rsf::ser::is_scalar_v<typename T::value_type>) {
        SwapScalarInPlace(element);
      } else {
        ConvertMessage(element, dir);
      }
    }
  } else {
    ConvertMessage(field, dir);  // nested message
  }
}

}  // namespace internal

/// Converts an SFM message, in place, between byte orders.  Converting a
/// message kToForeign and then kFromForeign restores the original bytes.
/// Call with kFromForeign on a received message whose publisher had the
/// opposite endianness, BEFORE reading any field.
template <rsf::ser::Message M>
void ConvertEndianness(M& msg,
                       SwapDirection dir = SwapDirection::kFromForeign) {
  static_assert(is_sfm_message_v<M>, "ConvertEndianness is for SFM messages");
  internal::ConvertMessage(msg, dir);
}

}  // namespace sfm
