// Time vocabulary shared by the middleware, the benchmarks, and the message
// `Header.stamp` field.
//
// rsf::Time mirrors ROS1 `ros::Time`: (sec, nsec) since the Unix epoch.  It
// is a fixed-size POD so it can live inside SFM skeletons unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace rsf {

/// ROS1-style wall-clock timestamp: seconds + nanoseconds since epoch.
struct Time {
  uint32_t sec = 0;
  uint32_t nsec = 0;

  /// Current wall-clock time.
  static Time Now() noexcept;

  /// Constructs from a total nanosecond count since epoch.
  static Time FromNanos(uint64_t nanos) noexcept {
    return Time{static_cast<uint32_t>(nanos / 1000000000ull),
                static_cast<uint32_t>(nanos % 1000000000ull)};
  }

  [[nodiscard]] uint64_t ToNanos() const noexcept {
    return static_cast<uint64_t>(sec) * 1000000000ull + nsec;
  }

  [[nodiscard]] double ToSeconds() const noexcept {
    return static_cast<double>(sec) + static_cast<double>(nsec) * 1e-9;
  }

  [[nodiscard]] bool IsZero() const noexcept { return sec == 0 && nsec == 0; }

  friend bool operator==(const Time& a, const Time& b) noexcept {
    return a.sec == b.sec && a.nsec == b.nsec;
  }
  friend auto operator<=>(const Time& a, const Time& b) noexcept {
    return a.ToNanos() <=> b.ToNanos();
  }
};

static_assert(sizeof(Time) == 8, "Time must stay a fixed-size 8-byte POD");

/// Monotonic nanoseconds; the basis for all latency measurements.
uint64_t MonotonicNanos() noexcept;

/// Difference now - stamp, in nanoseconds (0 if stamp is in the future).
uint64_t ElapsedSince(const Time& stamp) noexcept;

/// Sleeps the calling thread for `nanos` nanoseconds.
void SleepForNanos(uint64_t nanos);

/// ROS1-style rate limiter: `Rate r(10); while (...) { work(); r.Sleep(); }`
/// keeps the loop at the given frequency, accounting for work time.
class Rate {
 public:
  explicit Rate(double hz);

  /// Sleeps until the next cycle boundary.  Returns false if the cycle was
  /// overrun (work took longer than the period); the schedule then resets.
  bool Sleep();

  [[nodiscard]] uint64_t period_nanos() const noexcept { return period_nanos_; }

 private:
  uint64_t period_nanos_;
  uint64_t next_deadline_;
};

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}
  void Reset() noexcept { start_ = MonotonicNanos(); }
  [[nodiscard]] uint64_t ElapsedNanos() const noexcept {
    return MonotonicNanos() - start_;
  }
  [[nodiscard]] double ElapsedMillis() const noexcept {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  uint64_t start_;
};

}  // namespace rsf
