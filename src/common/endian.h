// Unaligned little-endian load/store helpers used by every serializer.
//
// All wire formats in this repository are little-endian, matching ROS1
// serialization and the paper's publisher-side-endianness rule (§4.4.1).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace rsf {

static_assert(std::endian::native == std::endian::little,
              "ROS-SF reproduction targets little-endian hosts (paper §4.4.1)");

/// Stores `value` at (possibly unaligned) `dst` in little-endian order.
template <typename T>
inline void StoreLE(void* dst, T value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(dst, &value, sizeof(T));
}

/// Loads a T from (possibly unaligned) `src` in little-endian order.
template <typename T>
inline T LoadLE(const void* src) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

/// Byte-swaps an unsigned integer (for endianness tests / conversions).
template <typename T>
inline T ByteSwap(T value) noexcept {
  static_assert(std::is_unsigned_v<T>);
  if constexpr (sizeof(T) == 1) {
    return value;
  } else if constexpr (sizeof(T) == 2) {
    return static_cast<T>(__builtin_bswap16(value));
  } else if constexpr (sizeof(T) == 4) {
    return static_cast<T>(__builtin_bswap32(value));
  } else {
    static_assert(sizeof(T) == 8);
    return static_cast<T>(__builtin_bswap64(value));
  }
}

}  // namespace rsf
