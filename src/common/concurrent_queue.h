// Bounded thread-safe FIFO used by the middleware's callback queues and the
// simulated link.  Blocking pop with shutdown support; bounded push with a
// drop-oldest policy option (roscpp publisher queues drop when full).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rsf {

enum class QueueFullPolicy {
  kBlock,       // push blocks until space is available
  kDropOldest,  // evict the oldest element to make room (roscpp behaviour)
  kReject,      // push returns false
};

/// What happened to an Offer()ed element — callers that account for
/// deliveries (publisher link stats) need to know when acceptance came at
/// the price of evicting a queued element that will now never be consumed.
enum class PushOutcome {
  kAccepted,              // enqueued, nothing displaced
  kAcceptedEvictedOldest, // enqueued, but the oldest queued element was dropped
  kRejected,              // not enqueued (kReject policy or shutdown)
};

template <typename T>
class ConcurrentQueue {
 public:
  explicit ConcurrentQueue(size_t capacity = SIZE_MAX,
                           QueueFullPolicy policy = QueueFullPolicy::kDropOldest)
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(policy),
        // Pushers only ever sleep on not_full_ when the queue is bounded
        // AND the policy blocks; otherwise every pop-side notify would be a
        // wasted wake-up (two per message on the publisher sender path).
        notify_pushers_(policy == QueueFullPolicy::kBlock &&
                        capacity_ != SIZE_MAX) {}

  /// Returns false only if rejected (kReject policy) or shut down.
  bool Push(T item) {
    return Offer(std::move(item)) != PushOutcome::kRejected;
  }

  /// Like Push, but reports whether acceptance evicted the oldest queued
  /// element (kDropOldest policy) so callers can account for the drop.
  PushOutcome Offer(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) return PushOutcome::kRejected;
    bool evicted = false;
    if (queue_.size() >= capacity_) {
      switch (policy_) {
        case QueueFullPolicy::kBlock:
          not_full_.wait(lock, [&] { return queue_.size() < capacity_ || shutdown_; });
          if (shutdown_) return PushOutcome::kRejected;
          break;
        case QueueFullPolicy::kDropOldest:
          queue_.pop_front();
          ++dropped_;
          evicted = true;
          break;
        case QueueFullPolicy::kReject:
          return PushOutcome::kRejected;
      }
    }
    queue_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return evicted ? PushOutcome::kAcceptedEvictedOldest
                   : PushOutcome::kAccepted;
  }

  /// Blocks until an item is available or the queue is shut down.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    if (notify_pushers_) not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available, then drains everything
  /// queued under a single lock acquisition (an O(1) deque swap).  Returns
  /// an empty deque only once the queue is shut down and drained.  Consumer
  /// loops that can batch (the publisher sender thread) use this to pay one
  /// lock + zero wake-ups for a burst instead of one of each per item.
  std::deque<T> PopAll() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
    std::deque<T> drained;
    drained.swap(queue_);
    lock.unlock();
    if (notify_pushers_ && !drained.empty()) not_full_.notify_all();
    return drained;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    if (notify_pushers_) not_full_.notify_one();
    return item;
  }

  /// Blocks up to `timeout_nanos`; nullopt on timeout or shutdown.
  std::optional<T> PopFor(uint64_t timeout_nanos) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_empty_.wait_for(
        lock, std::chrono::nanoseconds(timeout_nanos),
        [&] { return !queue_.empty() || shutdown_; });
    if (!ready || queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    if (notify_pushers_) not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return nullopt.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] bool Empty() const { return Size() == 0; }

  [[nodiscard]] uint64_t DroppedCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  const size_t capacity_;
  const QueueFullPolicy policy_;
  const bool notify_pushers_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool shutdown_ = false;
  uint64_t dropped_ = 0;
};

}  // namespace rsf
