// Minimal leveled logger with printf-style formatting.
//
// Thread-safe (one flockfile'd fprintf per record).  The global level can be
// raised in benchmarks to silence chatter; tests can install a capture sink
// to assert on emitted records (used e.g. by the sfm alert tests).
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace rsf {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* LogLevelName(LogLevel level) noexcept;

/// Sets the minimum level that will be emitted.  Returns the previous level.
LogLevel SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// A sink receives (level, formatted message).  Installing a sink replaces
/// stderr output; passing nullptr restores stderr output.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

namespace internal {
void LogV(LogLevel level, const char* file, int line, const char* fmt,
          va_list ap);
void Log(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace internal

#define RSF_LOG(level, ...) \
  ::rsf::internal::Log((level), __FILE__, __LINE__, __VA_ARGS__)
#define RSF_DEBUG(...) RSF_LOG(::rsf::LogLevel::kDebug, __VA_ARGS__)
#define RSF_INFO(...) RSF_LOG(::rsf::LogLevel::kInfo, __VA_ARGS__)
#define RSF_WARN(...) RSF_LOG(::rsf::LogLevel::kWarn, __VA_ARGS__)
#define RSF_ERROR(...) RSF_LOG(::rsf::LogLevel::kError, __VA_ARGS__)

/// RAII guard that silences logging below `level` for its lifetime.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(SetLogLevel(level)) {}
  ~ScopedLogLevel() { SetLogLevel(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace rsf
