#include "common/clock.h"

#include <thread>

namespace rsf {

Time Time::Now() noexcept {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  return Time::FromNanos(static_cast<uint64_t>(nanos));
}

uint64_t MonotonicNanos() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

uint64_t ElapsedSince(const Time& stamp) noexcept {
  const Time now = Time::Now();
  const uint64_t now_ns = now.ToNanos();
  const uint64_t then_ns = stamp.ToNanos();
  return now_ns > then_ns ? now_ns - then_ns : 0;
}

void SleepForNanos(uint64_t nanos) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

Rate::Rate(double hz)
    : period_nanos_(hz > 0 ? static_cast<uint64_t>(1e9 / hz) : 0),
      next_deadline_(MonotonicNanos() + period_nanos_) {}

bool Rate::Sleep() {
  const uint64_t now = MonotonicNanos();
  if (period_nanos_ == 0) return true;
  if (now >= next_deadline_) {
    // Overrun: re-anchor the schedule at the current time.
    next_deadline_ = now + period_nanos_;
    return false;
  }
  SleepForNanos(next_deadline_ - now);
  next_deadline_ += period_nanos_;
  return true;
}

}  // namespace rsf
