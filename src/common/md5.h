// Self-contained MD5 (RFC 1321) used for ROS-style message-definition
// checksums.  ROS1 identifies a message type on the wire by the MD5 of its
// canonicalized definition text; the middleware refuses connections whose
// checksums disagree, and our registry reproduces that behaviour.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

namespace rsf {

class Md5 {
 public:
  Md5() { Reset(); }

  void Reset() noexcept;
  void Update(const void* data, size_t len) noexcept;
  void Update(const std::string& text) noexcept {
    Update(text.data(), text.size());
  }

  /// Finalizes and writes 16 digest bytes.  The object must be Reset()
  /// before further use.
  void Final(uint8_t digest[16]) noexcept;

  /// One-shot convenience: lowercase hex digest of `text`.
  static std::string HexDigest(const std::string& text);

 private:
  void Transform(const uint8_t block[64]) noexcept;

  uint32_t state_[4];
  uint64_t bit_count_;
  uint8_t buffer_[64];
};

}  // namespace rsf
