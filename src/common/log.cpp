#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace rsf {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex

const char* Basename(const char* path) noexcept {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel SetLogLevel(LogLevel level) noexcept {
  return static_cast<LogLevel>(
      g_level.exchange(static_cast<int>(level), std::memory_order_relaxed));
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace internal {

void LogV(LogLevel level, const char* file, int line, const char* fmt,
          va_list ap) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  std::vsnprintf(body, sizeof(body), fmt, ap);

  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink) {
      g_sink(level, body);
      return;
    }
  }
  std::fprintf(stderr, "[%-5s %s:%d] %s\n", LogLevelName(level),
               Basename(file), line, body);
}

void Log(LogLevel level, const char* file, int line, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  LogV(level, file, line, fmt, ap);
  va_end(ap);
}

}  // namespace internal
}  // namespace rsf
