#include "common/status.h"

namespace rsf {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace rsf
