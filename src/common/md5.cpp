#include "common/md5.h"

#include <cstring>

namespace rsf {
namespace {

constexpr uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                               0x10325476u};

// Per-round shift amounts and sine-derived constants (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

uint32_t RotL(uint32_t x, int s) noexcept { return (x << s) | (x >> (32 - s)); }

}  // namespace

void Md5::Reset() noexcept {
  std::memcpy(state_, kInit, sizeof(state_));
  bit_count_ = 0;
  std::memset(buffer_, 0, sizeof(buffer_));
}

void Md5::Transform(const uint8_t block[64]) noexcept {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    std::memcpy(&m[i], block + i * 4, 4);  // little-endian host assumed
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) noexcept {
  const auto* bytes = static_cast<const uint8_t*>(data);
  size_t fill = static_cast<size_t>((bit_count_ >> 3) & 63);
  bit_count_ += static_cast<uint64_t>(len) << 3;

  if (fill > 0) {
    const size_t space = 64 - fill;
    const size_t take = len < space ? len : space;
    std::memcpy(buffer_ + fill, bytes, take);
    bytes += take;
    len -= take;
    fill += take;
    if (fill == 64) Transform(buffer_);
    if (len == 0) return;
  }
  while (len >= 64) {
    Transform(bytes);
    bytes += 64;
    len -= 64;
  }
  if (len > 0) std::memcpy(buffer_, bytes, len);
}

void Md5::Final(uint8_t digest[16]) noexcept {
  const uint64_t bits = bit_count_;
  const uint8_t pad_start = 0x80;
  Update(&pad_start, 1);
  const uint8_t zero = 0;
  while ((bit_count_ >> 3) % 64 != 56) Update(&zero, 1);

  uint8_t length_le[8];
  std::memcpy(length_le, &bits, 8);
  Update(length_le, 8);

  std::memcpy(digest, state_, 16);
}

std::string Md5::HexDigest(const std::string& text) {
  Md5 md5;
  md5.Update(text);
  uint8_t digest[16];
  md5.Final(digest);

  static const char* hex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = hex[digest[i] >> 4];
    out[2 * i + 1] = hex[digest[i] & 15];
  }
  return out;
}

}  // namespace rsf
