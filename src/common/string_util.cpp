#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace rsf {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return text;
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  for (char c : text.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string HumanBytes(size_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace rsf
