#include "common/stats.h"

#include <cstdio>

namespace rsf {

std::string LatencyRecorder::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.3fms sd=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f n=%llu",
                mean_ms(), stddev_ms(), Percentile(0.5), Percentile(0.99),
                min_ms(), max_ms(),
                static_cast<unsigned long long>(count()));
  return buf;
}

}  // namespace rsf
