// Small string helpers shared by the IDL parser, the converter, and the
// benchmark table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rsf {

/// Splits on `delim`; empty tokens are kept (like Python's str.split(d)).
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits on any whitespace run; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading/trailing whitespace.
std::string_view Strip(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string text, std::string_view from,
                       std::string_view to);

/// True if `text` is a valid C identifier.
bool IsIdentifier(std::string_view text);

/// Formats `bytes` as "200 KB" / "6.2 MB" etc.
std::string HumanBytes(size_t bytes);

}  // namespace rsf
