// Latency statistics used by the benchmark harness: online mean/stddev plus
// a sample reservoir for percentiles.  Matches the paper's reporting style
// (Figs. 13/16/18 report mean ± standard deviation).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace rsf {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void Add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Collects latency samples (milliseconds) and reports summary statistics.
class LatencyRecorder {
 public:
  void AddNanos(uint64_t nanos) { AddMillis(static_cast<double>(nanos) * 1e-6); }
  void AddMillis(double ms) {
    stats_.Add(ms);
    samples_.push_back(ms);
  }

  [[nodiscard]] uint64_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean_ms() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev_ms() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min_ms() const noexcept { return stats_.min(); }
  [[nodiscard]] double max_ms() const noexcept { return stats_.max(); }

  /// q in [0,1]; e.g. Percentile(0.5) is the median.
  [[nodiscard]] double Percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  /// "mean=1.234ms sd=0.1 p50=1.2 p99=1.5 n=200"
  [[nodiscard]] std::string Summary() const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  OnlineStats stats_;
  std::vector<double> samples_;
};

}  // namespace rsf
