// Lightweight error-handling vocabulary used across the repository.
//
// Fallible operations that can fail for routine, recoverable reasons (socket
// teardown, malformed input) return Status / Result<T>.  Programming errors
// (violated invariants) use SFM_CHECK, which aborts with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace rsf {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kResourceExhausted,
  kCancelled,
};

/// Human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value.  Cheap to copy on the success path (no string
/// allocated); carries a message on the error path.
class Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status NotFoundError(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
inline Status AlreadyExistsError(std::string m) {
  return {StatusCode::kAlreadyExists, std::move(m)};
}
inline Status OutOfRangeError(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
inline Status FailedPreconditionError(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status UnavailableError(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}
inline Status InternalError(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}
inline Status ResourceExhaustedError(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
inline Status CancelledError(std::string m) {
  return {StatusCode::kCancelled, std::move(m)};
}

/// A value or an error.  `Result<T> r = ...; if (!r.ok()) return r.status();`
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define RSF_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rsf::Status _rsf_st = (expr);              \
    if (!_rsf_st.ok()) return _rsf_st;           \
  } while (0)

/// Fatal invariant check: always on, aborts with file/line on failure.
#define SFM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SFM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, (msg));                                 \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

}  // namespace rsf
