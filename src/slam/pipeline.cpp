#include "slam/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"

namespace rsf::slam {

SlamResult OrbSlamLite::ProcessFrame(const uint8_t* gray, uint32_t width,
                                     uint32_t height) {
  const rsf::Stopwatch watch;
  SlamResult result;

  // Pyramid passes: pass 0 is the full-resolution detection whose output we
  // keep; further passes redo the detection with tighter thresholds, which
  // stands in for ORB's multi-scale pyramid cost.
  for (int pass = 0; pass < std::max(1, config_.work_factor); ++pass) {
    FastConfig fast = config_.fast;
    fast.threshold += pass * 2;
    auto keypoints = DetectFast(gray, width, height, fast);
    if (pass == 0) result.keypoints = std::move(keypoints);
  }
  auto descriptors = ComputeBrief(gray, width, height, result.keypoints);
  result.matches =
      MatchDescriptors(descriptors, previous_descriptors_, 0.8);

  // Motion estimate: median feature displacement current -> previous.
  if (!result.matches.empty()) {
    std::vector<double> dxs;
    std::vector<double> dys;
    dxs.reserve(result.matches.size());
    dys.reserve(result.matches.size());
    for (const Match& match : result.matches) {
      const Keypoint& current = result.keypoints[match.query];
      const Keypoint& previous = previous_keypoints_[match.train];
      dxs.push_back(static_cast<double>(previous.x) - current.x);
      dys.push_back(static_cast<double>(previous.y) - current.y);
    }
    const auto median = [](std::vector<double>& v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    // A feature's image position decreases as the camera pans positively,
    // so previous - current IS the camera motion in scene units.
    pose_.x += median(dxs);
    pose_.y += median(dys);
  }

  previous_keypoints_ = result.keypoints;
  previous_descriptors_ = std::move(descriptors);
  ++frames_;

  result.pose = pose_;
  result.compute_millis = watch.ElapsedMillis();
  return result;
}

}  // namespace rsf::slam
