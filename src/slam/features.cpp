#include "slam/features.h"

#include <algorithm>

namespace rsf::slam {
namespace {

// The 16-pixel Bresenham circle of radius 3 used by FAST.
constexpr int kCircle[16][2] = {
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0},  {3, 1},  {2, 2},  {1, 3},
    {0, 3},  {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3}};

}  // namespace

std::vector<Keypoint> DetectFast(const uint8_t* gray, uint32_t width,
                                 uint32_t height, const FastConfig& config) {
  std::vector<Keypoint> raw;
  const int t = config.threshold;

  for (uint32_t y = 3; y + 3 < height; ++y) {
    for (uint32_t x = 3; x + 3 < width; ++x) {
      const int center = gray[y * width + x];
      const int hi = center + t;
      const int lo = center - t;

      // Quick rejection: of pixels 0/4/8/12, at least 3 must be out.
      int quick_bright = 0;
      int quick_dark = 0;
      for (const int probe : {0, 4, 8, 12}) {
        const int value =
            gray[(y + kCircle[probe][1]) * width + (x + kCircle[probe][0])];
        if (value > hi) ++quick_bright;
        if (value < lo) ++quick_dark;
      }
      if (quick_bright < 3 && quick_dark < 3) continue;

      // Full segment test: a contiguous arc of min_arc pixels all brighter
      // (or all darker) than the center by the threshold.
      uint32_t bright_mask = 0;
      uint32_t dark_mask = 0;
      for (int i = 0; i < 16; ++i) {
        const int value =
            gray[(y + kCircle[i][1]) * width + (x + kCircle[i][0])];
        if (value > hi) bright_mask |= (1u << i);
        if (value < lo) dark_mask |= (1u << i);
      }
      const auto has_arc = [&](uint32_t mask) {
        // Wrap-around run detection on the 16-bit ring.
        const uint32_t ring = mask | (mask << 16);
        int run = 0;
        for (int i = 0; i < 32; ++i) {
          run = (ring >> i) & 1u ? run + 1 : 0;
          if (run >= config.min_arc) return true;
        }
        return false;
      };
      if (!has_arc(bright_mask) && !has_arc(dark_mask)) continue;

      // Response: sum of absolute differences over the circle.
      int score = 0;
      for (const auto& offset : kCircle) {
        score += std::abs(
            gray[(y + offset[1]) * width + (x + offset[0])] - center);
      }
      raw.push_back(Keypoint{static_cast<uint16_t>(x),
                             static_cast<uint16_t>(y),
                             static_cast<int16_t>(std::min(score, 32000))});
    }
  }

  // Non-maximum suppression on a coarse grid, strongest first.
  std::sort(raw.begin(), raw.end(),
            [](const Keypoint& a, const Keypoint& b) { return a.score > b.score; });
  std::vector<Keypoint> kept;
  const int r = config.nms_radius;
  const uint32_t grid_w = width / r + 2;
  std::vector<uint8_t> occupied((width / r + 2) * (height / r + 2), 0);
  for (const Keypoint& kp : raw) {
    const uint32_t cell = (kp.y / r) * grid_w + (kp.x / r);
    if (occupied[cell]) continue;
    occupied[cell] = 1;
    kept.push_back(kp);
    if (kept.size() >= config.max_keypoints) break;
  }
  return kept;
}

std::vector<Descriptor> ComputeBrief(const uint8_t* gray, uint32_t width,
                                     uint32_t height,
                                     const std::vector<Keypoint>& keypoints) {
  std::vector<Descriptor> descriptors(keypoints.size());
  for (size_t k = 0; k < keypoints.size(); ++k) {
    const Keypoint& kp = keypoints[k];
    if (kp.x < 16 || kp.y < 16 || kp.x + 16 >= width || kp.y + 16 >= height) {
      continue;  // border: zero descriptor
    }
    // Deterministic pseudo-random point pairs (the BRIEF test pattern),
    // derived from the bit index so every keypoint uses the same pattern.
    Descriptor& desc = descriptors[k];
    for (int bit = 0; bit < 256; ++bit) {
      uint64_t h = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(bit + 1);
      h ^= h >> 31;
      const int ax = static_cast<int>(h % 31) - 15;
      const int ay = static_cast<int>((h >> 8) % 31) - 15;
      const int bx = static_cast<int>((h >> 16) % 31) - 15;
      const int by = static_cast<int>((h >> 24) % 31) - 15;
      const uint8_t a = gray[(kp.y + ay) * width + (kp.x + ax)];
      const uint8_t b = gray[(kp.y + by) * width + (kp.x + bx)];
      if (a < b) desc.bits[bit >> 6] |= (1ull << (bit & 63));
    }
  }
  return descriptors;
}

std::vector<Match> MatchDescriptors(const std::vector<Descriptor>& query,
                                    const std::vector<Descriptor>& train,
                                    double max_ratio) {
  std::vector<Match> matches;
  if (train.empty()) return matches;
  for (uint32_t q = 0; q < query.size(); ++q) {
    int best = 1 << 30;
    int second = 1 << 30;
    uint32_t best_index = 0;
    for (uint32_t t = 0; t < train.size(); ++t) {
      const int distance = query[q].HammingDistance(train[t]);
      if (distance < best) {
        second = best;
        best = distance;
        best_index = t;
      } else if (distance < second) {
        second = distance;
      }
    }
    if (best < static_cast<int>(max_ratio * second) && best < 80) {
      matches.push_back(Match{q, best_index, best});
    }
  }
  return matches;
}

}  // namespace rsf::slam
