// Synthetic TUM-RGBD-like frame source (paper §5.3 substitute; see
// DESIGN.md).  Renders a deterministic textured scene observed by a camera
// on a smooth trajectory: multi-octave value noise gives the scene stable,
// trackable intensity corners, and the camera pan/zoom between frames gives
// the feature matcher real inter-frame motion to estimate — the properties
// of the TUM sequences that the ORB-SLAM case study actually depends on.
#pragma once

#include <cstdint>
#include <vector>

namespace rsf::slam {

struct CameraPose {
  double x = 0;    // pan (pixels of scene space)
  double y = 0;
  double yaw = 0;  // radians
};

struct Frame {
  uint32_t width = 0;
  uint32_t height = 0;
  std::vector<uint8_t> rgb;   // width*height*3
  std::vector<uint8_t> gray;  // width*height
  CameraPose truth;           // ground-truth camera pose for this frame
  uint32_t index = 0;
};

class FrameGenerator {
 public:
  FrameGenerator(uint32_t width, uint32_t height, uint64_t seed = 42);

  /// Renders the next frame along the trajectory.
  Frame Next();

  [[nodiscard]] uint32_t width() const noexcept { return width_; }
  [[nodiscard]] uint32_t height() const noexcept { return height_; }

 private:
  /// Deterministic smooth scene intensity at world coordinate (u, v).
  [[nodiscard]] uint8_t SceneIntensity(double u, double v) const;

  uint32_t width_;
  uint32_t height_;
  uint64_t seed_;
  uint32_t frame_index_ = 0;
};

}  // namespace rsf::slam
