// OrbSlamLite — the compute core of the application case study (paper
// §5.3): per frame, detect FAST corners, describe them with BRIEF, match
// against the previous frame, and integrate the estimated camera motion.
// The `work_factor` knob repeats the detection over synthetic pyramid
// levels so the per-frame compute can be tuned to the paper's reported
// 30-40 ms, which dominates the end-to-end latencies of Fig. 18.
#pragma once

#include <cstdint>
#include <vector>

#include "slam/features.h"
#include "slam/image_gen.h"

namespace rsf::slam {

struct SlamResult {
  CameraPose pose;                  // integrated camera pose estimate
  std::vector<Keypoint> keypoints;  // current frame's features
  std::vector<Match> matches;       // matches against the previous frame
  double compute_millis = 0;        // wall time spent in ProcessFrame
};

class OrbSlamLite {
 public:
  struct Config {
    FastConfig fast;
    /// Number of synthetic pyramid passes (compute-cost knob).
    int work_factor = 3;
  };

  OrbSlamLite() : OrbSlamLite(Config{}) {}
  explicit OrbSlamLite(Config config) : config_(config) {}

  /// Tracks one grayscale frame (row-major, width*height bytes).
  SlamResult ProcessFrame(const uint8_t* gray, uint32_t width,
                          uint32_t height);

  [[nodiscard]] const CameraPose& pose() const noexcept { return pose_; }
  [[nodiscard]] uint64_t frames_processed() const noexcept {
    return frames_;
  }

 private:
  Config config_;
  CameraPose pose_;
  std::vector<Keypoint> previous_keypoints_;
  std::vector<Descriptor> previous_descriptors_;
  uint64_t frames_ = 0;
};

}  // namespace rsf::slam
