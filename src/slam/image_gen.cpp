#include "slam/image_gen.h"

#include <cmath>

namespace rsf::slam {
namespace {

/// 2D integer hash -> [0, 255] (deterministic texture lattice).
uint32_t Hash2(uint64_t seed, int32_t x, int32_t y) noexcept {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(static_cast<uint32_t>(x)) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<uint64_t>(static_cast<uint32_t>(y)) * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<uint32_t>(h & 0xFF);
}

double Smooth(double t) noexcept { return t * t * (3.0 - 2.0 * t); }

/// Bilinear value noise over the hash lattice.
double ValueNoise(uint64_t seed, double u, double v) noexcept {
  const auto x0 = static_cast<int32_t>(std::floor(u));
  const auto y0 = static_cast<int32_t>(std::floor(v));
  const double fx = Smooth(u - x0);
  const double fy = Smooth(v - y0);
  const double a = Hash2(seed, x0, y0);
  const double b = Hash2(seed, x0 + 1, y0);
  const double c = Hash2(seed, x0, y0 + 1);
  const double d = Hash2(seed, x0 + 1, y0 + 1);
  return (a * (1 - fx) + b * fx) * (1 - fy) + (c * (1 - fx) + d * fx) * fy;
}

}  // namespace

FrameGenerator::FrameGenerator(uint32_t width, uint32_t height, uint64_t seed)
    : width_(width), height_(height), seed_(seed) {}

uint8_t FrameGenerator::SceneIntensity(double u, double v) const {
  // Two noise octaves plus a checker component give broad structure...
  double value = 0.6 * ValueNoise(seed_, u / 64.0, v / 64.0) +
                 0.4 * ValueNoise(seed_ + 1, u / 16.0, v / 16.0);
  const bool checker =
      (static_cast<int64_t>(std::floor(u / 48.0)) +
       static_cast<int64_t>(std::floor(v / 48.0))) % 2 == 0;
  if (checker) value = 255.0 - value;

  // ...and a sparse speckle lattice provides the strong, well-localized
  // blobs the FAST segment test responds to (the "texture" of the scene).
  constexpr double kCell = 14.0;
  const auto cell_x = static_cast<int32_t>(std::floor(u / kCell));
  const auto cell_y = static_cast<int32_t>(std::floor(v / kCell));
  const uint32_t speckle = Hash2(seed_ + 3, cell_x, cell_y);
  if (speckle < 96) {  // ~3/8 of cells carry a dot
    const double center_u = (cell_x + 0.5) * kCell;
    const double center_v = (cell_y + 0.5) * kCell;
    const double du = u - center_u;
    const double dv = v - center_v;
    if (du * du + dv * dv < 4.5) {
      value = (speckle & 1) ? 245.0 : 10.0;
    }
  }
  return static_cast<uint8_t>(value < 0 ? 0 : (value > 255 ? 255 : value));
}

Frame FrameGenerator::Next() {
  Frame frame;
  frame.width = width_;
  frame.height = height_;
  frame.index = frame_index_;
  frame.gray.resize(static_cast<size_t>(width_) * height_);
  frame.rgb.resize(static_cast<size_t>(width_) * height_ * 3);

  // Smooth TUM-fr1-like trajectory: slow pan + gentle rotation.
  const double t = static_cast<double>(frame_index_);
  frame.truth.x = 3.0 * t;
  frame.truth.y = 40.0 * std::sin(t * 0.05);
  frame.truth.yaw = 0.02 * std::sin(t * 0.03);

  const double cos_yaw = std::cos(frame.truth.yaw);
  const double sin_yaw = std::sin(frame.truth.yaw);
  const double cx = width_ / 2.0;
  const double cy = height_ / 2.0;

  for (uint32_t y = 0; y < height_; ++y) {
    for (uint32_t x = 0; x < width_; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      const double u = frame.truth.x + cx + dx * cos_yaw - dy * sin_yaw;
      const double v = frame.truth.y + cy + dx * sin_yaw + dy * cos_yaw;
      const uint8_t g = SceneIntensity(u, v);
      const size_t at = static_cast<size_t>(y) * width_ + x;
      frame.gray[at] = g;
      frame.rgb[at * 3 + 0] = g;
      frame.rgb[at * 3 + 1] = static_cast<uint8_t>((g * 3) / 4 + 32);
      frame.rgb[at * 3 + 2] = static_cast<uint8_t>(255 - g);
    }
  }
  ++frame_index_;
  return frame;
}

}  // namespace rsf::slam
