// Feature extraction for the synthetic ORB-SLAM pipeline: a FAST-9-style
// segment-test corner detector and a BRIEF-style 256-bit binary descriptor
// (the two components ORB composes).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsf::slam {

struct Keypoint {
  uint16_t x = 0;
  uint16_t y = 0;
  int16_t score = 0;  // corner response (for non-max suppression)
};

struct Descriptor {
  std::array<uint64_t, 4> bits{};  // 256-bit BRIEF pattern

  [[nodiscard]] int HammingDistance(const Descriptor& other) const noexcept {
    int distance = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      distance += __builtin_popcountll(bits[i] ^ other.bits[i]);
    }
    return distance;
  }
};

struct FastConfig {
  int threshold = 24;      // intensity delta for the segment test
  int min_arc = 9;         // contiguous circle pixels required (FAST-9)
  size_t max_keypoints = 600;
  int nms_radius = 6;      // non-maximum suppression radius
};

/// FAST-style corner detection over a grayscale image (row-major).
std::vector<Keypoint> DetectFast(const uint8_t* gray, uint32_t width,
                                 uint32_t height, const FastConfig& config);

/// BRIEF-style descriptors for keypoints (sampled pairs in a 31x31 patch;
/// keypoints too close to the border get zero descriptors).
std::vector<Descriptor> ComputeBrief(const uint8_t* gray, uint32_t width,
                                     uint32_t height,
                                     const std::vector<Keypoint>& keypoints);

struct Match {
  uint32_t query = 0;  // index into the current frame's keypoints
  uint32_t train = 0;  // index into the previous frame's keypoints
  int distance = 0;
};

/// Brute-force Hamming matching with a Lowe-style ratio test.
std::vector<Match> MatchDescriptors(const std::vector<Descriptor>& query,
                                    const std::vector<Descriptor>& train,
                                    double max_ratio = 0.8);

}  // namespace rsf::slam
