// The ROS node graph of the application case study (paper §5.3, Fig. 17):
//
//   pub_tum --/camera/image--> orb_slam --+--/pose--------> pose sink
//                                         +--/pointcloud--> cloud sink
//                                         +--/debug_image-> debug sink
//
// Every node is templated on a message profile (RegularMsgs or SfmMsgs) —
// the node bodies are IDENTICAL for both, which is the paper's
// transparency claim in executable form: switching the generated header
// variant flips the whole graph between ROS and ROS-SF.
#pragma once

#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/stats.h"
#include "geometry_msgs/PoseStamped.h"
#include "geometry_msgs/sfm/PoseStamped.h"
#include "ros/ros.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/PointCloud2.h"
#include "sensor_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/PointCloud2.h"
#include "slam/image_gen.h"
#include "slam/pipeline.h"

namespace rsf::slam {

struct RegularMsgs {
  using Image = ::sensor_msgs::Image;
  using PoseStamped = ::geometry_msgs::PoseStamped;
  using PointCloud2 = ::sensor_msgs::PointCloud2;
  static constexpr const char* Name() { return "ROS"; }
};

struct SfmMsgs {
  using Image = ::sensor_msgs::sfm::Image;
  using PoseStamped = ::geometry_msgs::sfm::PoseStamped;
  using PointCloud2 = ::sensor_msgs::sfm::PointCloud2;
  static constexpr const char* Name() { return "ROS-SF"; }
};

/// Allocates a fresh message of either variant (SFM messages must come from
/// the arena allocator; regular ones are ordinary shared_ptrs).
template <typename M>
std::shared_ptr<M> NewMessage() {
  if constexpr (::sfm::is_sfm_message_v<M>) {
    return ::sfm::make_message<M>();
  } else {
    return std::make_shared<M>();
  }
}

/// pub_tum: publishes synthetic TUM-like RGB frames.  Frames are
/// pre-rendered at construction and replayed in a cycle — like the paper's
/// pub_tum, which plays back the pre-loaded TUM RGB-D dataset — so the
/// timed path contains only message construction and transmission.
template <typename Msgs>
class TumPublisherNode {
 public:
  using Image = typename Msgs::Image;

  TumPublisherNode(uint32_t width, uint32_t height, uint64_t seed = 42,
                   size_t cache_frames = 16)
      : generator_(width, height, seed) {
    cache_.reserve(cache_frames);
    for (size_t i = 0; i < cache_frames; ++i) {
      cache_.push_back(generator_.Next());
    }
    publisher_ = node_.template advertise<Image>("/camera/image", 10);
  }

  /// Renders and publishes one frame.  The creation timestamp goes INTO the
  /// message before the pixels are written, so downstream latencies include
  /// message construction (the paper's measurement convention, §5.1).
  void PublishOne() {
    auto msg = NewMessage<Image>();
    msg->header.stamp = rsf::Time::Now();
    msg->header.seq = static_cast<uint32_t>(published_);
    msg->header.frame_id = "camera";
    const Frame& frame = cache_[published_ % cache_.size()];
    msg->height = frame.height;
    msg->width = frame.width;
    msg->encoding = "rgb8";
    msg->step = frame.width * 3;
    msg->data.resize(frame.rgb.size());
    std::memcpy(msg->data.data(), frame.rgb.data(), frame.rgb.size());
    publisher_.publish(*msg);
    ++published_;
  }

  [[nodiscard]] size_t NumSubscribers() const {
    return publisher_.getNumSubscribers();
  }
  [[nodiscard]] uint64_t published() const noexcept { return published_; }

 private:
  ros::NodeHandle node_{"pub_tum"};
  ros::Publisher publisher_;
  FrameGenerator generator_;
  std::vector<Frame> cache_;
  uint64_t published_ = 0;
};

/// orb_slam: tracks frames and publishes pose, point cloud, debug image.
template <typename Msgs>
class SlamNode {
 public:
  using Image = typename Msgs::Image;
  using PoseStamped = typename Msgs::PoseStamped;
  using PointCloud2 = typename Msgs::PointCloud2;

  struct Config {
    OrbSlamLite::Config slam{};
    /// 3D points emitted per matched feature — the stand-in for the dense
    /// local map ORB-SLAM publishes (makes /pointcloud large, per §5.3).
    uint32_t points_per_feature = 64;
  };

  SlamNode() : SlamNode(Config{}) {}
  explicit SlamNode(Config config) : config_(config), slam_(config.slam) {
    pose_pub_ = node_.template advertise<PoseStamped>("/pose", 10);
    cloud_pub_ = node_.template advertise<PointCloud2>("/pointcloud", 10);
    debug_pub_ = node_.template advertise<Image>("/debug_image", 10);
    ros::SubscribeOptions options;
    options.inline_dispatch = true;  // compute on the receive thread
    // The SLAM pipeline reproduces the paper's inter-process figures, so
    // every hop stays on the wire transport even when nodes share a process.
    options.allow_intra_process = false;
    subscriber_ = node_.template subscribe<Image>(
        "/camera/image", 10,
        [this](const typename Image::ConstPtr& msg) { OnImage(msg); },
        options);
  }

  [[nodiscard]] uint64_t frames() const noexcept {
    return slam_.frames_processed();
  }
  [[nodiscard]] double last_compute_millis() const noexcept {
    return last_compute_millis_;
  }

 private:
  void OnImage(const typename Image::ConstPtr& msg) {
    const uint32_t width = msg->width;
    const uint32_t height = msg->height;

    // RGB -> grayscale (scratch buffer, part of the compute cost).
    gray_.resize(static_cast<size_t>(width) * height);
    const uint8_t* rgb = msg->data.data();
    for (size_t i = 0; i < gray_.size(); ++i) {
      gray_[i] = static_cast<uint8_t>(
          (rgb[i * 3] * 77 + rgb[i * 3 + 1] * 150 + rgb[i * 3 + 2] * 29) >> 8);
    }

    const SlamResult result = slam_.ProcessFrame(gray_.data(), width, height);
    last_compute_millis_ = result.compute_millis;

    PublishPose(msg, result);
    PublishCloud(msg, result);
    PublishDebugImage(msg, result);
  }

  void PublishPose(const typename Image::ConstPtr& in,
                   const SlamResult& result) {
    auto pose = NewMessage<PoseStamped>();
    pose->header.stamp = in->header.stamp;  // carries the source timestamp
    pose->header.seq = in->header.seq;
    pose->header.frame_id = "world";
    pose->pose.position.x = result.pose.x / 100.0;
    pose->pose.position.y = result.pose.y / 100.0;
    pose->pose.position.z = 0.0;
    pose->pose.orientation.z = std::sin(result.pose.yaw / 2.0);
    pose->pose.orientation.w = std::cos(result.pose.yaw / 2.0);
    pose_pub_.publish(*pose);
  }

  void PublishCloud(const typename Image::ConstPtr& in,
                    const SlamResult& result) {
    auto cloud = NewMessage<PointCloud2>();
    cloud->header.stamp = in->header.stamp;
    cloud->header.seq = in->header.seq;
    cloud->header.frame_id = "world";

    const uint32_t per = config_.points_per_feature;
    const auto count =
        static_cast<uint32_t>(result.matches.size()) * per;
    cloud->height = 1;
    cloud->width = count;
    cloud->is_bigendian = 0;
    cloud->point_step = 16;  // x y z intensity (float32 each)
    cloud->row_step = count * 16;
    cloud->is_dense = 1;

    cloud->fields.resize(4);
    const char* names[4] = {"x", "y", "z", "intensity"};
    for (uint32_t f = 0; f < 4; ++f) {
      cloud->fields[f].name = names[f];
      cloud->fields[f].offset = f * 4;
      cloud->fields[f].datatype = 7;  // FLOAT32
      cloud->fields[f].count = 1;
    }

    cloud->data.resize(static_cast<size_t>(count) * 16);
    uint8_t* out = cloud->data.data();
    for (const Match& match : result.matches) {
      const Keypoint& kp = result.keypoints[match.query];
      for (uint32_t p = 0; p < per; ++p) {
        // Back-project with synthetic depth; jitter per sub-point stands in
        // for the dense neighbourhood of the map point.
        const float depth = 1.0f + 0.01f * static_cast<float>(p);
        const float values[4] = {
            (static_cast<float>(kp.x) - 320.0f) * depth / 525.0f,
            (static_cast<float>(kp.y) - 240.0f) * depth / 525.0f, depth,
            static_cast<float>(match.distance)};
        std::memcpy(out, values, 16);
        out += 16;
      }
    }
    cloud_pub_.publish(*cloud);
  }

  void PublishDebugImage(const typename Image::ConstPtr& in,
                         const SlamResult& result) {
    auto debug = NewMessage<Image>();
    debug->header.stamp = in->header.stamp;
    debug->header.seq = in->header.seq;
    debug->header.frame_id = "camera";
    debug->height = in->height;
    debug->width = in->width;
    debug->encoding = "rgb8";
    debug->step = in->step;
    debug->data.resize(in->data.size());
    std::memcpy(debug->data.data(), in->data.data(), in->data.size());

    // Draw green crosses on tracked features.
    uint8_t* pixels = debug->data.data();
    const uint32_t width = in->width;
    for (const Keypoint& kp : result.keypoints) {
      for (int d = -3; d <= 3; ++d) {
        const size_t horizontal =
            (static_cast<size_t>(kp.y) * width + kp.x + d) * 3;
        const size_t vertical =
            ((static_cast<size_t>(kp.y) + d) * width + kp.x) * 3;
        if (horizontal + 2 < debug->data.size()) {
          pixels[horizontal] = 0;
          pixels[horizontal + 1] = 255;
          pixels[horizontal + 2] = 0;
        }
        if (vertical + 2 < debug->data.size()) {
          pixels[vertical] = 0;
          pixels[vertical + 1] = 255;
          pixels[vertical + 2] = 0;
        }
      }
    }
    debug_pub_.publish(*debug);
  }

  Config config_;
  ros::NodeHandle node_{"orb_slam"};
  ros::Publisher pose_pub_;
  ros::Publisher cloud_pub_;
  ros::Publisher debug_pub_;
  ros::Subscriber subscriber_;
  OrbSlamLite slam_;
  std::vector<uint8_t> gray_;
  double last_compute_millis_ = 0;
};

/// A latency-recording sink for any stamped message type.
template <typename M>
class LatencySinkNode {
 public:
  LatencySinkNode(const std::string& name, const std::string& topic)
      : node_(name) {
    ros::SubscribeOptions options;
    options.inline_dispatch = true;
    options.allow_intra_process = false;  // measure the wire path (see above)
    subscriber_ = node_.template subscribe<M>(
        topic, 50,
        [this](const std::shared_ptr<const M>& msg) {
          std::lock_guard<std::mutex> lock(mutex_);
          recorder_.AddNanos(rsf::ElapsedSince(msg->header.stamp));
        },
        options);
  }

  [[nodiscard]] uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorder_.count();
  }
  [[nodiscard]] rsf::LatencyRecorder snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorder_;
  }

 private:
  ros::NodeHandle node_;
  ros::Subscriber subscriber_;
  mutable std::mutex mutex_;
  rsf::LatencyRecorder recorder_;
};

}  // namespace rsf::slam
