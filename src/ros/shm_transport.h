// Wire protocol of the shared-memory transport tier (DESIGN.md §12).
//
// The tier reuses the existing reactor Link; only the frames change.  The
// 4-byte length prefix carries a 4-bit tag (net/framing.h), giving three
// frame kinds on a negotiated link:
//
//   tag 0 (data)        the classic inline payload — also the fallback
//   tag 1 (descriptor)  publisher → subscriber: a 48-byte pointer into a
//                       shared segment instead of the payload bytes
//   tag 2 (control)     subscriber → publisher: cumulative ack of consumed
//                       descriptors, or "disable" (fall back to inline)
//
// Descriptor payload (48 bytes, little-endian):
//   u32 magic 'RSFD' | u32 block_index | u64 pool_id | u32 gen |
//   u32 reserved | u64 offset | u64 length | u64 seq
//
// Control payload (16 bytes, little-endian):
//   u32 magic 'RSFA' | u8 kind (0 = ack, 1 = disable) | u8[3] pad | u64 seq
//
// Lifetime: the publisher PINS the published message (its SerializedMessage
// holder) in a per-lane ledger (the ShmLane of transport_lane.cpp) until
// the subscriber's cumulative ack covers its seq.  A pinned holder keeps
// PooledDeleter from running, the block from retiring, and its generation
// from moving — so a descriptor the subscriber reads in order always
// passes the generation fence.  Only ledger-evicted descriptors
// (drop-oldest under backpressure, counted as publisher drops) can lose
// the race, and those fail the fence cleanly: drop-oldest semantics, never
// a torn read.  On "disable" the publisher retransmits every unacked pin
// inline and stops sending descriptors on that lane.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sfm/shm_pool.h"

namespace ros {

inline constexpr uint32_t kShmDescriptorMagic = 0x44465352u;  // "RSFD" LE
inline constexpr uint32_t kShmControlMagic = 0x41465352u;     // "RSFA" LE
inline constexpr uint32_t kShmDescriptorSize = 48;
inline constexpr uint32_t kShmControlSize = 16;
/// Upper bound a link's allocator accepts for tagged shm frames; anything
/// larger is a corrupted prefix and closes the link.
inline constexpr uint32_t kShmMaxControlFrame = 64;

enum class ShmControlKind : uint8_t { kAck = 0, kDisable = 1 };

/// Builds the descriptor frame payload (a fresh 48-byte buffer, shareable
/// across every link the publish fans out to).
std::shared_ptr<const uint8_t[]> EncodeShmDescriptorFrame(
    const sfm::shm::Descriptor& descriptor);

/// Parses and structurally validates a descriptor payload (size + magic;
/// geometry is checked against the mapped segment later).
bool DecodeShmDescriptor(const uint8_t* data, size_t size,
                         sfm::shm::Descriptor* out);

std::shared_ptr<const uint8_t[]> EncodeShmControlFrame(ShmControlKind kind,
                                                       uint64_t seq);

bool DecodeShmControl(const uint8_t* data, size_t size, ShmControlKind* kind,
                      uint64_t* seq);

/// Subscriber-side per-link shm state (owned by the WireLink, loop-thread
/// confined after the handshake).
struct ShmSubState {
  bool negotiated = false;
  /// A validation/attach failure broke the tier for this link; descriptors
  /// already in flight are ignored (the publisher retransmits them inline
  /// after our disable control frame).
  bool broken = false;
  int slot = -1;
  std::string ns;  // publisher's segment namespace from the handshake
  std::unordered_map<uint64_t, std::shared_ptr<sfm::shm::SegmentView>>
      segments;
  std::vector<uint8_t> ctrl_buf;  // staging for inbound descriptor frames
};

/// Resolves a validated descriptor to an aliased buffer over the mapped
/// block, holding a cross-process reference (RefToken) as its control
/// block: attaches the segment on first use, bounds-checks the descriptor
/// against the segment geometry, takes the peer reference, and verifies the
/// generation fence and publish stamp.  `min_length` is the smallest
/// payload the caller's type can accept (its skeleton size).
///
/// Error codes carry the fallback decision: kUnavailable means only THIS
/// message is gone (generation fence — the publisher evicted its pin;
/// drop-oldest semantics, ack and move on), every other code means the
/// descriptor or segment cannot be trusted and the link must leave the
/// tier (send disable, set `broken`).
rsf::Result<std::shared_ptr<uint8_t[]>> ShmMapDescriptor(
    ShmSubState& state, const sfm::shm::Descriptor& descriptor,
    size_t min_length);

}  // namespace ros
