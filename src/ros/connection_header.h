// TCPROS-style connection header: the key=value handshake exchanged when a
// subscriber connects to a publisher.  Encoded exactly like ROS1:
// repeated [uint32 length]["key=value"] fields inside one frame.
#pragma once

#include <sys/types.h>

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ros {

using ConnectionHeader = std::map<std::string, std::string>;

/// Encodes the header fields (without the outer frame length).
std::vector<uint8_t> EncodeConnectionHeader(const ConnectionHeader& header);

/// Decodes a header payload; rejects malformed field lengths / missing '='.
rsf::Result<ConnectionHeader> DecodeConnectionHeader(const uint8_t* data,
                                                     size_t size);

/// Builds the subscriber-side handshake for a topic.
ConnectionHeader MakeSubscriberHeader(const std::string& topic,
                                      const std::string& datatype,
                                      const std::string& md5sum,
                                      const std::string& callerid);

/// Validates a subscriber handshake against what the publisher offers.
/// Returns OK or a descriptive error (also sent back over the wire).
rsf::Status ValidateSubscriberHeader(const ConnectionHeader& header,
                                     const std::string& topic,
                                     const std::string& datatype,
                                     const std::string& md5sum);

// ---- shm-tier negotiation fields (DESIGN.md §12.4 / §13) ----
//
// The shm tier rides the TCPROS handshake as plain key=value fields:
// request `shm=1, shm_pid=<pid>`, grant `shm=1, shm_ns=<ns>,
// shm_slot=<slot>`.  These helpers keep the field names and their
// validation in one place; LanePolicy (transport_lane.h) consumes the
// parsed forms.

/// Stamps the subscriber's shm request onto its handshake header.
void AddShmRequestFields(ConnectionHeader* header, pid_t pid);

/// The publisher-side view of a subscriber's shm request.
struct ShmRequest {
  bool requested = false;  // header carried shm=1
  bool pid_known = false;  // ... and a parseable shm_pid
  pid_t pid = 0;
};
[[nodiscard]] ShmRequest ParseShmRequest(const ConnectionHeader& header);

/// Stamps the publisher's shm grant onto its handshake reply.
void AddShmGrantFields(ConnectionHeader* reply, const std::string& ns,
                       int slot);

/// The subscriber-side view of the publisher's reply.  `granted` is true
/// only for a well-formed grant: shm=1 with a non-empty namespace and a
/// slot inside [0, max_slots) — anything malformed degrades to plain TCP.
struct ShmGrant {
  bool granted = false;
  std::string ns;
  int slot = -1;
};
[[nodiscard]] ShmGrant ParseShmGrant(const ConnectionHeader& reply,
                                     size_t max_slots);

}  // namespace ros
