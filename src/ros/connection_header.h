// TCPROS-style connection header: the key=value handshake exchanged when a
// subscriber connects to a publisher.  Encoded exactly like ROS1:
// repeated [uint32 length]["key=value"] fields inside one frame.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ros {

using ConnectionHeader = std::map<std::string, std::string>;

/// Encodes the header fields (without the outer frame length).
std::vector<uint8_t> EncodeConnectionHeader(const ConnectionHeader& header);

/// Decodes a header payload; rejects malformed field lengths / missing '='.
rsf::Result<ConnectionHeader> DecodeConnectionHeader(const uint8_t* data,
                                                     size_t size);

/// Builds the subscriber-side handshake for a topic.
ConnectionHeader MakeSubscriberHeader(const std::string& topic,
                                      const std::string& datatype,
                                      const std::string& md5sum,
                                      const std::string& callerid);

/// Validates a subscriber handshake against what the publisher offers.
/// Returns OK or a descriptive error (also sent back over the wire).
rsf::Status ValidateSubscriberHeader(const ConnectionHeader& header,
                                     const std::string& topic,
                                     const std::string& datatype,
                                     const std::string& md5sum);

}  // namespace ros
