#include "ros/master.h"

#include <algorithm>

namespace ros {

rsf::Status Master::CheckTypeLocked(Topic& topic, const std::string& datatype,
                                    const std::string& md5sum,
                                    const std::string& topic_name) {
  // "*" is the wildcard used by type-agnostic tools (rosbag record,
  // rostopic): it matches any concrete type and never pins the topic's.
  if (datatype == "*" && md5sum == "*") return rsf::Status::Ok();
  if (topic.datatype.empty() || topic.datatype == "*") {
    topic.datatype = datatype;
    topic.md5sum = md5sum;
    return rsf::Status::Ok();
  }
  if (topic.datatype != datatype || topic.md5sum != md5sum) {
    return rsf::FailedPreconditionError(
        "topic " + topic_name + " already has type " + topic.datatype +
        " (md5 " + topic.md5sum + "); cannot use " + datatype);
  }
  return rsf::Status::Ok();
}

rsf::Status Master::RegisterPublisher(const std::string& topic_name,
                                      const std::string& datatype,
                                      const std::string& md5sum,
                                      const TopicEndpoint& endpoint) {
  std::vector<PublisherUpdateFn> to_notify;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Topic& topic = topics_[topic_name];
    RSF_RETURN_IF_ERROR(CheckTypeLocked(topic, datatype, md5sum, topic_name));
    topic.publishers.push_back(endpoint);
    to_notify.reserve(topic.subscribers.size());
    for (const auto& [id, fn] : topic.subscribers) to_notify.push_back(fn);
  }
  // Notify outside the lock: callbacks connect sockets / spawn threads.
  for (const auto& fn : to_notify) fn(endpoint);
  return rsf::Status::Ok();
}

void Master::UnregisterPublisher(const std::string& topic_name,
                                 const TopicEndpoint& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = topics_.find(topic_name);
  if (it == topics_.end()) return;
  auto& publishers = it->second.publishers;
  publishers.erase(std::remove(publishers.begin(), publishers.end(), endpoint),
                   publishers.end());
}

rsf::Result<uint64_t> Master::RegisterSubscriber(
    const std::string& topic_name, const std::string& datatype,
    const std::string& md5sum, PublisherUpdateFn on_publisher) {
  uint64_t id = 0;
  std::vector<TopicEndpoint> existing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Topic& topic = topics_[topic_name];
    RSF_RETURN_IF_ERROR(CheckTypeLocked(topic, datatype, md5sum, topic_name));
    id = next_subscriber_id_++;
    topic.subscribers.emplace(id, on_publisher);
    existing = topic.publishers;
  }
  for (const auto& endpoint : existing) on_publisher(endpoint);
  return id;
}

void Master::UnregisterSubscriber(const std::string& topic_name, uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = topics_.find(topic_name);
  if (it == topics_.end()) return;
  it->second.subscribers.erase(id);
}

std::vector<TopicInfo> Master::Topics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TopicInfo> out;
  out.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    out.push_back(TopicInfo{name, topic.datatype, topic.md5sum,
                            topic.publishers.size(),
                            topic.subscribers.size()});
  }
  return out;
}

std::vector<TopicEndpoint> Master::PublishersOf(
    const std::string& topic_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = topics_.find(topic_name);
  return it == topics_.end() ? std::vector<TopicEndpoint>{}
                             : it->second.publishers;
}

void Master::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  topics_.clear();
}

Master& master() {
  // Leaked, like the arena pool: subscription/connection threads unwinding
  // at process exit still unregister their topics, and a function-local
  // static would be destroyed out from under them (heap-use-after-free in
  // the topic map, caught by ASan in the fig13 bench teardown).
  static auto* instance = new Master();
  return *instance;
}

}  // namespace ros
