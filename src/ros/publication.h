// Publisher-side transport for one advertised topic: a listening socket,
// the TCPROS handshake, and per-subscriber outgoing frame queues — plus,
// for typed publishers, the in-process fanout registered by co-located
// subscriptions (intra_process.h).
//
// Two transport modes exist, sampled from net::ReactorTransportEnabled()
// at Create time:
//
//  - reactor (default): the listener, every handshake, and every link's
//    send queue live on ONE EventLoop of the shared pool.  Accept,
//    handshake framing, and sends are nonblocking resumable state machines
//    (net/framing.h), drained on readiness; Publish() enqueues frames and
//    kicks the loop.  Total transport threads stay O(cores) regardless of
//    subscriber count (DESIGN.md §8).
//  - threads (legacy, kept for the connection-scaling ablation and as an
//    escape hatch): one accept thread plus one sender thread per link,
//    blocking I/O.
//
// Publication is untyped: TCP links move SerializedMessage units, and the
// in-process fanout moves type-erased shared_ptr<const M> handles.  The
// typed Publisher handle (node_handle.h) serializes / clones / borrows
// messages before handing them here.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/concurrent_queue.h"
#include "common/status.h"
#include "net/framing.h"
#include "net/poller.h"
#include "net/socket.h"
#include "ros/intra_process.h"
#include "ros/serialized_message.h"

namespace ros {

/// Publisher-side delivery counters.  "Sent" only counts frames that were
/// actually handed to (or still queued for) a live link: a frame evicted by
/// the drop-oldest policy, or stranded behind a broken connection, counts
/// as dropped, never as sent.
struct PublicationStats {
  uint64_t enqueued = 0;          // frames pushed toward TCP links
  uint64_t dropped = 0;           // evicted by drop-oldest or stranded on a dead link
  uint64_t intra_delivered = 0;   // in-process deliveries (all tiers)
  uint64_t intra_zero_copy = 0;   // ... of which aliased the publisher's message
  uint64_t intra_whole_copy = 0;  // ... of which handed out a clone
  size_t tcp_links = 0;           // live TCP subscriber links
  size_t intra_links = 0;         // live in-process subscriber links
};

class Publication : public std::enable_shared_from_this<Publication> {
 public:
  /// Binds a listener on an ephemeral loopback port and starts accepting.
  /// `intra_capable` publishers (typed ones, i.e. NodeHandle::advertise)
  /// also register with the in-process registry so co-located subscribers
  /// can link directly instead of dialing the port.
  static rsf::Result<std::shared_ptr<Publication>> Create(
      const std::string& topic, const std::string& datatype,
      const std::string& md5sum, const std::string& callerid,
      size_t queue_size, bool intra_capable = false);

  ~Publication();
  Publication(const Publication&) = delete;
  Publication& operator=(const Publication&) = delete;

  /// Fans the message out to every connected TCP subscriber (aliased shared
  /// buffer: no per-subscriber copy).  Messages queued while a link's queue
  /// is full evict the oldest (roscpp behaviour).
  void Publish(SerializedMessage message);

  /// In-process handshake: validates the subscriber's negotiated checksum
  /// against this topic's and, on success, adds the link to the fanout —
  /// the same contract as the TCPROS header exchange, without the sockets.
  rsf::Status AddIntraLink(std::shared_ptr<IntraLinkBase> link);

  /// Unhooks one in-process link (subscriber shutdown).  Links whose
  /// subscriber merely vanished are also culled lazily on publish.
  void RemoveIntraLink(const IntraLinkBase* link);

  /// Fans a type-erased shared message out to every live in-process link,
  /// culling dead ones.  Returns the number of subscribers reached.
  size_t DeliverIntra(const std::shared_ptr<const void>& message,
                      IntraTier tier);

  /// True if any in-process links are registered (publish should clone or
  /// borrow the message for them).
  [[nodiscard]] bool HasIntraLinks() const;

  /// True if any TCP links are connected (publish should serialize).
  [[nodiscard]] bool HasTcpLinks() const;

  /// Number of live subscriber links, both transports.
  [[nodiscard]] size_t NumSubscribers() const;

  /// Messages accepted for sending on TCP links, minus those that were
  /// dropped before reaching the wire.
  [[nodiscard]] uint64_t SentCount() const noexcept {
    const uint64_t enqueued = enqueued_.load(std::memory_order_relaxed);
    const uint64_t dropped = dropped_.load(std::memory_order_relaxed);
    return enqueued >= dropped ? enqueued - dropped : 0;
  }

  /// Delivery counters snapshot.
  [[nodiscard]] PublicationStats Stats() const;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  [[nodiscard]] const std::string& md5sum() const noexcept { return md5sum_; }

  /// Stops accepting, closes all links, joins all threads.  Idempotent.
  void Shutdown();

 private:
  Publication(const std::string& topic, const std::string& datatype,
              const std::string& md5sum, const std::string& callerid,
              size_t queue_size, rsf::net::TcpListener listener);

  /// Starts the accept machinery (called once by Create): registers the
  /// listener with the event loop (reactor mode) or spawns the accept
  /// thread (legacy mode).
  void Start();

  // ---- legacy thread-per-connection mode ----

  struct SubscriberLink {
    rsf::net::TcpConnection connection;
    rsf::ConcurrentQueue<SerializedMessage> queue;
    std::thread sender;
    std::atomic<bool> dead{false};

    SubscriberLink(rsf::net::TcpConnection conn, size_t queue_size)
        : connection(std::move(conn)),
          queue(queue_size, rsf::QueueFullPolicy::kDropOldest) {}
  };

  void AcceptLoop();
  void SenderLoop(SubscriberLink* link);
  // Performs the handshake; returns false to drop the connection.
  bool Handshake(rsf::net::TcpConnection& conn);
  // Shared by both modes: validates a request header, builds the reply
  // frame, returns whether the subscriber is accepted.
  bool EvaluateHandshake(const uint8_t* request, uint32_t length,
                         std::vector<uint8_t>* reply_frame);

  // ---- reactor mode ----

  /// A connected subscriber on the event loop.  The FrameWriter and its
  /// queue bound are guarded by `mutex` (producers enqueue from publish
  /// threads; the loop thread flushes); everything else is loop-confined.
  struct ReactorLink {
    rsf::net::TcpConnection connection;
    std::mutex mutex;
    rsf::net::FrameWriter writer;
    bool writable_armed = false;

    explicit ReactorLink(rsf::net::TcpConnection conn)
        : connection(std::move(conn)) {}
  };

  /// A connection mid-handshake, loop-confined: request frame in, reply
  /// frame out, then promotion to ReactorLink or teardown.
  struct PendingPeer {
    rsf::net::TcpConnection connection;
    rsf::net::FrameReader reader;
    std::vector<uint8_t> request;
    rsf::net::FrameWriter writer;  // the reply frame
    bool accepted = false;
    bool reply_queued = false;

    explicit PendingPeer(rsf::net::TcpConnection conn)
        : connection(std::move(conn)) {}
  };

  // All loop-thread-only.
  void OnAcceptReady();
  void OnPeerEvent(const std::shared_ptr<PendingPeer>& peer, uint32_t events);
  void FinishHandshake(const std::shared_ptr<PendingPeer>& peer);
  void PromotePeer(const std::shared_ptr<PendingPeer>& peer);
  void DropPeer(const std::shared_ptr<PendingPeer>& peer);
  void OnLinkEvent(const std::shared_ptr<ReactorLink>& link, uint32_t events);
  void FlushLink(const std::shared_ptr<ReactorLink>& link);
  void RemoveLink(const std::shared_ptr<ReactorLink>& link);

  const std::string topic_;
  const std::string datatype_;
  const std::string md5sum_;
  const std::string callerid_;
  const size_t queue_size_;

  rsf::net::TcpListener listener_;
  uint16_t port_ = 0;
  bool intra_registered_ = false;  // written once in Create, before Start
  const bool reactor_mode_;        // sampled once in the constructor
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> intra_delivered_{0};
  std::atomic<uint64_t> intra_zero_copy_{0};
  std::atomic<uint64_t> intra_whole_copy_{0};
  // Started by Start() after construction completes, NEVER in the
  // constructor: the accept loop reads shutdown_/links_, which are declared
  // after it and would not be initialized yet.  Legacy mode only.
  std::thread accept_thread_;

  // Reactor mode: the loop carrying this publication's listener and links.
  rsf::net::EventLoop* loop_ = nullptr;
  std::atomic<bool> kick_pending_{false};  // coalesces Publish() wake-ups
  std::vector<std::shared_ptr<PendingPeer>> pending_peers_;  // loop-confined

  mutable std::mutex links_mutex_;
  std::vector<std::unique_ptr<SubscriberLink>> links_;     // legacy mode
  std::vector<std::shared_ptr<ReactorLink>> reactor_links_;  // reactor mode

  mutable std::mutex intra_mutex_;
  std::vector<std::shared_ptr<IntraLinkBase>> intra_links_;
};

}  // namespace ros
