// Publisher-side transport for one advertised topic: a listening socket, an
// accept loop that performs the TCPROS handshake, and one outgoing queue +
// sender thread per connected subscriber.
//
// Publication is untyped: it moves SerializedMessage units.  The typed
// Publisher handle (node_handle.h) serializes — or, for SFM topics, aliases
// — messages before enqueueing them here.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/concurrent_queue.h"
#include "common/status.h"
#include "net/socket.h"
#include "ros/serialized_message.h"

namespace ros {

class Publication {
 public:
  /// Binds a listener on an ephemeral loopback port and starts accepting.
  static rsf::Result<std::shared_ptr<Publication>> Create(
      const std::string& topic, const std::string& datatype,
      const std::string& md5sum, const std::string& callerid,
      size_t queue_size);

  ~Publication();
  Publication(const Publication&) = delete;
  Publication& operator=(const Publication&) = delete;

  /// Fans the message out to every connected subscriber (aliased shared
  /// buffer: no per-subscriber copy).  Messages queued while a link's queue
  /// is full evict the oldest (roscpp behaviour).
  void Publish(SerializedMessage message);

  /// Number of live subscriber links.
  [[nodiscard]] size_t NumSubscribers() const;

  /// Total messages accepted for sending (all links).
  [[nodiscard]] uint64_t SentCount() const noexcept {
    return sent_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  [[nodiscard]] const std::string& md5sum() const noexcept { return md5sum_; }

  /// Stops accepting, closes all links, joins all threads.  Idempotent.
  void Shutdown();

 private:
  Publication(const std::string& topic, const std::string& datatype,
              const std::string& md5sum, const std::string& callerid,
              size_t queue_size, rsf::net::TcpListener listener);

  /// Starts the accept loop (called once by Create).
  void Start();

  struct SubscriberLink {
    rsf::net::TcpConnection connection;
    rsf::ConcurrentQueue<SerializedMessage> queue;
    std::thread sender;
    std::atomic<bool> dead{false};

    SubscriberLink(rsf::net::TcpConnection conn, size_t queue_size)
        : connection(std::move(conn)),
          queue(queue_size, rsf::QueueFullPolicy::kDropOldest) {}
  };

  void AcceptLoop();
  void SenderLoop(SubscriberLink* link);
  // Performs the handshake; returns false to drop the connection.
  bool Handshake(rsf::net::TcpConnection& conn);

  const std::string topic_;
  const std::string datatype_;
  const std::string md5sum_;
  const std::string callerid_;
  const size_t queue_size_;

  rsf::net::TcpListener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> sent_count_{0};
  // Started by Start() after construction completes, NEVER in the
  // constructor: the accept loop reads shutdown_/links_, which are declared
  // after it and would not be initialized yet.
  std::thread accept_thread_;

  mutable std::mutex links_mutex_;
  std::vector<std::unique_ptr<SubscriberLink>> links_;
};

}  // namespace ros
