// Publisher-side transport for one advertised topic: a listening socket,
// the TCPROS handshake policy, and the fan-out across subscriber lanes —
// plus, for typed publishers, the in-process fanout registered by
// co-located subscriptions (intra_process.h).
//
// Publication is pure policy over the TransportLane seam (DESIGN.md §13):
// the listener and every wire link live on ONE EventLoop of the shared
// reactor pool; each established subscriber — in-process, plain TCP, or
// shm-negotiated — is one TransportLane in a single array, and Publish is
// exactly: finalize one PublishContext (wire frame + shm descriptor, each
// encoded once for the whole fan-out), then `lane->Offer(ctx)` over a
// snapshot.  No tier branches, no per-link maps, no per-publish
// negotiation reads — adding a transport tier means adding a lane class,
// not editing this file.  Total transport threads stay O(cores) regardless
// of subscriber count (DESIGN.md §8).
//
// Publication is untyped: wire lanes move SerializedMessage units, and the
// in-process fanout moves type-erased shared_ptr<const M> handles.  The
// typed Publisher handle (node_handle.h) serializes / clones / borrows
// messages into the PublishContext before handing it here.  Every lane
// feeds the same enqueued/dropped counters, so SentCount() means
// "deliveries that reached a live subscriber" regardless of tier.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/link.h"
#include "net/poller.h"
#include "net/socket.h"
#include "ros/intra_process.h"
#include "ros/serialized_message.h"
#include "ros/transport_lane.h"

namespace ros {

/// Publisher-side delivery counters.  "Sent" only counts frames that were
/// actually handed to (or still queued for) a live link: a frame evicted by
/// the drop-oldest policy, stranded behind a broken connection, or whose
/// shm pin was evicted from a stalled subscriber's ledger counts as
/// dropped, never as sent.  Every lane kind flows through the same
/// enqueued/dropped pair, so the counters describe the topic, not one
/// transport.
struct PublicationStats {
  uint64_t enqueued = 0;          // delivery attempts, wire frames + intra
  uint64_t dropped = 0;           // evicted, stranded, or dead-link attempts
  uint64_t intra_delivered = 0;   // in-process deliveries (all tiers)
  uint64_t intra_zero_copy = 0;   // ... of which aliased the publisher's message
  uint64_t intra_whole_copy = 0;  // ... of which handed out a clone
  uint64_t shm_descriptors = 0;   // wire deliveries sent as shm descriptors
  uint64_t shm_inline = 0;        // wire deliveries on negotiated links that
                                  // went inline (fallback / below threshold)
  size_t tcp_links = 0;           // live (established) wire subscriber links
  size_t shm_links = 0;           // ... of which negotiated the shm tier
  size_t intra_links = 0;         // live in-process subscriber links
};

class Publication : public std::enable_shared_from_this<Publication> {
 public:
  /// Binds a listener on an ephemeral loopback port and starts accepting.
  /// `intra_capable` publishers (typed ones, i.e. NodeHandle::advertise)
  /// also register with the in-process registry so co-located subscribers
  /// can link directly instead of dialing the port.
  static rsf::Result<std::shared_ptr<Publication>> Create(
      const std::string& topic, const std::string& datatype,
      const std::string& md5sum, const std::string& callerid,
      size_t queue_size, bool intra_capable = false);

  ~Publication();
  Publication(const Publication&) = delete;
  Publication& operator=(const Publication&) = delete;

  /// Fans one publish across every established lane.  Finalizes the
  /// context's wire frame and (when a shm lane is live) its descriptor
  /// frame EXACTLY ONCE, then offers the shared context to each lane — a
  /// per-lane shared_ptr copy, never a per-lane encode
  /// (shim::frame_builds / shim::descriptor_builds carry the proof).
  void Publish(PublishContext ctx);

  /// Untyped wire publish (bag replay, wire-level tests): fans the frame
  /// out to every wire lane; in-process lanes skip it.
  void Publish(SerializedMessage message);

  /// In-process handshake: validates the subscriber's negotiated checksum
  /// against this topic's and, on success, registers the lane as PENDING —
  /// the same contract as the TCPROS header exchange, without the sockets.
  /// The link receives nothing until ActivateIntraLink, mirroring the TCP
  /// pending→established split: the subscriber finishes its own
  /// bookkeeping first, so a publish racing the connect can't deliver
  /// into a half-registered link.
  rsf::Status AddIntraLink(std::shared_ptr<IntraLinkBase> link);

  /// Moves a pending in-process lane into the live fanout (called by the
  /// subscriber once the link is filed on its side).  A lane no longer
  /// pending — culled by Shutdown or RemoveIntraLink in between — stays
  /// out: late activation never resurrects it.
  void ActivateIntraLink(const IntraLinkBase* link);

  /// Unhooks one in-process lane (subscriber shutdown).  Lanes whose
  /// subscriber merely vanished are also culled lazily on publish.
  void RemoveIntraLink(const IntraLinkBase* link);

  /// True if any in-process lanes are live (publish should clone or
  /// borrow the message for them).  Lock-free.
  [[nodiscard]] bool HasIntraLinks() const noexcept {
    return intra_lane_count_.load(std::memory_order_acquire) > 0;
  }

  /// True if any wire lanes are established (publish should serialize).
  /// Lock-free.
  [[nodiscard]] bool HasTcpLinks() const noexcept {
    return wire_lane_count_.load(std::memory_order_acquire) > 0;
  }

  /// Number of live subscriber lanes, every kind.
  [[nodiscard]] size_t NumSubscribers() const;

  /// Delivery attempts that reached (or are still queued for) a live
  /// subscriber, across every lane kind.
  [[nodiscard]] uint64_t SentCount() const noexcept {
    const uint64_t enqueued =
        counters_.enqueued.load(std::memory_order_relaxed);
    const uint64_t dropped = counters_.dropped.load(std::memory_order_relaxed);
    return enqueued >= dropped ? enqueued - dropped : 0;
  }

  /// Delivery counters snapshot.
  [[nodiscard]] PublicationStats Stats() const;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  [[nodiscard]] const std::string& md5sum() const noexcept { return md5sum_; }

  /// Stops accepting and closes all lanes (RunSync: once this returns no
  /// loop callback touches this object).  Idempotent.
  void Shutdown();

 private:
  Publication(const std::string& topic, const std::string& datatype,
              const std::string& md5sum, const std::string& callerid,
              size_t queue_size, rsf::net::TcpListener listener);

  /// A mid-handshake wire link and the context its lane will be built
  /// from.  Moves into lanes_ at establishment.
  struct PendingWire {
    std::shared_ptr<rsf::net::Link> link;
    std::shared_ptr<WireLaneContext> ctx;
  };

  /// Registers the listener with the event loop (called once by Create).
  void Start();

  /// Validates a request header, builds the reply frame, returns whether
  /// the subscriber is accepted.  The Link handshake callback.  Tier
  /// negotiation is LanePolicy::GrantWireTier over the parsed header; a
  /// grant records the acquired peer slot in `ctx` (loop thread) for the
  /// lane built at establishment.
  bool EvaluateHandshake(const uint8_t* request, uint32_t length,
                         std::vector<uint8_t>* reply_frame,
                         WireLaneContext* ctx);

  /// Offers a finalized context to a snapshot of all lanes, culling dead
  /// in-process lanes, then kicks the loop once for the wire lanes.
  void OfferToLanes(const PublishContext& ctx);

  // Loop-thread-only.
  void OnAcceptReady();
  void OnLinkEstablished(const std::shared_ptr<rsf::net::Link>& link,
                         const std::shared_ptr<WireLaneContext>& ctx);
  void OnLinkClosed(const std::shared_ptr<rsf::net::Link>& link,
                    const std::shared_ptr<WireLaneContext>& ctx);

  const std::string topic_;
  const std::string datatype_;
  const std::string md5sum_;
  const std::string callerid_;
  const size_t queue_size_;
  /// Shm pin-ledger bound per lane: generous enough that a subscriber
  /// acking every message never hits it; a stalled one loses its oldest
  /// pins (counted as drops).
  const size_t max_pins_;

  rsf::net::TcpListener listener_;
  uint16_t port_ = 0;
  bool intra_registered_ = false;  // written once in Create, before Start
  std::atomic<bool> shutdown_{false};
  LaneCounters counters_;  // lanes bump these directly
  std::atomic<uint64_t> shm_seq_{0};  // publish sequence for the pin ledger

  // Lock-free lane census for the publish fast path (HasIntraLinks /
  // HasTcpLinks decide what the typed Publisher builds) and for skipping
  // the descriptor encode when no shm lane is live.
  std::atomic<size_t> intra_lane_count_{0};
  std::atomic<size_t> wire_lane_count_{0};
  std::atomic<size_t> shm_lane_count_{0};

  // The loop carrying this publication's listener and every wire link.
  rsf::net::EventLoop* loop_ = nullptr;
  std::atomic<bool> kick_pending_{false};  // coalesces Publish() wake-ups

  mutable std::mutex links_mutex_;
  // Mid-handshake wire links, not-yet-activated in-process lanes, and the
  // live fanout (every lane kind).  Wire links move from pending_wire_ to
  // lanes_ in OnLinkEstablished; intra lanes move from pending_intra_ in
  // ActivateIntraLink.
  std::vector<PendingWire> pending_wire_;
  std::vector<std::shared_ptr<TransportLane>> pending_intra_;
  std::vector<std::shared_ptr<TransportLane>> lanes_;

  // Publish-path scratch, reused across publishes so a steady-state
  // publish allocates nothing.  publish_scratch_ is guarded by
  // scratch_mutex_ (try-lock: a reentrant or concurrent publish falls
  // back to a local vector); kick_scratch_ is loop-confined.
  std::mutex scratch_mutex_;
  std::vector<std::shared_ptr<TransportLane>> publish_scratch_;
  std::vector<std::shared_ptr<TransportLane>> kick_scratch_;
};

}  // namespace ros
