// Publisher-side transport for one advertised topic: a listening socket,
// the TCPROS handshake policy, and the fan-out across subscriber links —
// plus, for typed publishers, the in-process fanout registered by
// co-located subscriptions (intra_process.h).
//
// Publication is pure policy over `rsf::net::Link`: the listener and every
// subscriber link live on ONE EventLoop of the shared reactor pool, Link
// owns the handshake/framing/teardown state machines, and this class only
// decides what the frames are (EvaluateHandshake validates connection
// headers; Publish enqueues one shared-payload frame per link and kicks
// the loop once).  Total transport threads stay O(cores) regardless of
// subscriber count (DESIGN.md §8).  The thread-per-connection transport
// was removed in PR 4; RSF_TRANSPORT=threads only logs a deprecation
// warning.
//
// Publication is untyped: TCP links move SerializedMessage units, and the
// in-process fanout moves type-erased shared_ptr<const M> handles.  The
// typed Publisher handle (node_handle.h) serializes / clones / borrows
// messages before handing them here.  Both transports feed the same
// enqueued/dropped counters, so SentCount() means "deliveries that
// reached a live subscriber" regardless of tier.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/link.h"
#include "net/poller.h"
#include "net/socket.h"
#include "ros/intra_process.h"
#include "ros/serialized_message.h"
#include "ros/shm_transport.h"

namespace ros {

/// Publisher-side delivery counters.  "Sent" only counts frames that were
/// actually handed to (or still queued for) a live link: a frame evicted by
/// the drop-oldest policy, or stranded behind a broken connection, counts
/// as dropped, never as sent.  Intra-process deliveries flow through the
/// same enqueued/dropped pair (a delivery attempt on a dead link is a
/// drop), so the counters describe the topic, not one transport.
struct PublicationStats {
  uint64_t enqueued = 0;          // delivery attempts, TCP frames + intra
  uint64_t dropped = 0;           // evicted, stranded, or dead-link attempts
  uint64_t intra_delivered = 0;   // in-process deliveries (all tiers)
  uint64_t intra_zero_copy = 0;   // ... of which aliased the publisher's message
  uint64_t intra_whole_copy = 0;  // ... of which handed out a clone
  uint64_t shm_descriptors = 0;   // wire deliveries sent as shm descriptors
  uint64_t shm_inline = 0;        // wire deliveries on negotiated links that
                                  // went inline (fallback / below threshold)
  size_t tcp_links = 0;           // live (established) TCP subscriber links
  size_t shm_links = 0;           // ... of which negotiated the shm tier
  size_t intra_links = 0;         // live in-process subscriber links
};

class Publication : public std::enable_shared_from_this<Publication> {
 public:
  /// Binds a listener on an ephemeral loopback port and starts accepting.
  /// `intra_capable` publishers (typed ones, i.e. NodeHandle::advertise)
  /// also register with the in-process registry so co-located subscribers
  /// can link directly instead of dialing the port.
  static rsf::Result<std::shared_ptr<Publication>> Create(
      const std::string& topic, const std::string& datatype,
      const std::string& md5sum, const std::string& callerid,
      size_t queue_size, bool intra_capable = false);

  ~Publication();
  Publication(const Publication&) = delete;
  Publication& operator=(const Publication&) = delete;

  /// Fans the message out to every established TCP subscriber link (aliased
  /// shared buffer: no per-subscriber copy).  Messages queued while a
  /// link's queue is full evict the oldest (roscpp behaviour).
  void Publish(SerializedMessage message);

  /// In-process handshake: validates the subscriber's negotiated checksum
  /// against this topic's and, on success, registers the link as PENDING —
  /// the same contract as the TCPROS header exchange, without the sockets.
  /// The link receives nothing until ActivateIntraLink, mirroring the TCP
  /// pending→established split: the subscriber finishes its own
  /// bookkeeping first, so a publish racing the connect can't deliver
  /// into a half-registered link.
  rsf::Status AddIntraLink(std::shared_ptr<IntraLinkBase> link);

  /// Moves a pending in-process link into the live fanout (called by the
  /// subscriber once the link is filed on its side).  A link no longer
  /// pending — culled by Shutdown or RemoveIntraLink in between — stays
  /// out: late activation never resurrects it.
  void ActivateIntraLink(const IntraLinkBase* link);

  /// Unhooks one in-process link (subscriber shutdown).  Links whose
  /// subscriber merely vanished are also culled lazily on publish.
  void RemoveIntraLink(const IntraLinkBase* link);

  /// Fans a type-erased shared message out to every live in-process link,
  /// culling dead ones.  Returns the number of subscribers reached.
  /// Every attempt counts as enqueued; an attempt on a dead link counts as
  /// dropped — the same accounting TCP frames get.
  size_t DeliverIntra(const std::shared_ptr<const void>& message,
                      IntraTier tier);

  /// True if any in-process links are registered (publish should clone or
  /// borrow the message for them).
  [[nodiscard]] bool HasIntraLinks() const;

  /// True if any TCP links are established (publish should serialize).
  [[nodiscard]] bool HasTcpLinks() const;

  /// Number of live subscriber links, both transports.
  [[nodiscard]] size_t NumSubscribers() const;

  /// Delivery attempts that reached (or are still queued for) a live
  /// subscriber, across both transports.
  [[nodiscard]] uint64_t SentCount() const noexcept {
    const uint64_t enqueued = enqueued_.load(std::memory_order_relaxed);
    const uint64_t dropped = dropped_.load(std::memory_order_relaxed);
    return enqueued >= dropped ? enqueued - dropped : 0;
  }

  /// Delivery counters snapshot.
  [[nodiscard]] PublicationStats Stats() const;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  [[nodiscard]] const std::string& md5sum() const noexcept { return md5sum_; }

  /// Stops accepting and closes all links (RunSync: once this returns no
  /// loop callback touches this object).  Idempotent.
  void Shutdown();

 private:
  Publication(const std::string& topic, const std::string& datatype,
              const std::string& md5sum, const std::string& callerid,
              size_t queue_size, rsf::net::TcpListener listener);

  /// Registers the listener with the event loop (called once by Create).
  void Start();

  /// Validates a request header, builds the reply frame, returns whether
  /// the subscriber is accepted.  The Link handshake callback.  When the
  /// request asks for the shm tier and this process can grant it (tier
  /// enabled, a peer slot free), the reply carries the segment namespace
  /// and the subscriber's slot, and `shm` flips to negotiated.
  bool EvaluateHandshake(const uint8_t* request, uint32_t length,
                         std::vector<uint8_t>* reply_frame, ShmLinkState* shm);

  // Loop-thread-only.
  void OnAcceptReady();
  void OnLinkEstablished(const std::shared_ptr<rsf::net::Link>& link);
  void OnLinkClosed(const std::shared_ptr<rsf::net::Link>& link);
  /// A control frame (ack / disable) arrived on a subscriber link.
  void OnShmControlFrame(const std::shared_ptr<ShmLinkState>& shm,
                         uint32_t raw);
  /// Returns the link's peer slot and drops its pin ledger.
  void ReleaseShmLink(const std::shared_ptr<ShmLinkState>& shm);

  const std::string topic_;
  const std::string datatype_;
  const std::string md5sum_;
  const std::string callerid_;
  const size_t queue_size_;

  rsf::net::TcpListener listener_;
  uint16_t port_ = 0;
  bool intra_registered_ = false;  // written once in Create, before Start
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> intra_delivered_{0};
  std::atomic<uint64_t> intra_zero_copy_{0};
  std::atomic<uint64_t> intra_whole_copy_{0};
  std::atomic<uint64_t> shm_descriptors_{0};
  std::atomic<uint64_t> shm_inline_{0};
  std::atomic<uint64_t> shm_seq_{0};  // publish sequence for the pin ledger

  // The loop carrying this publication's listener and every link.
  rsf::net::EventLoop* loop_ = nullptr;
  std::atomic<bool> kick_pending_{false};  // coalesces Publish() wake-ups

  mutable std::mutex links_mutex_;
  // Mid-handshake and established links.  Links move from pending_links_
  // to links_ in OnLinkEstablished; OnLinkClosed erases from both.
  std::vector<std::shared_ptr<rsf::net::Link>> pending_links_;
  std::vector<std::shared_ptr<rsf::net::Link>> links_;
  // Per-link shm state, filed alongside the link in OnAcceptReady (loop
  // thread, before any frame can arrive) and erased with it.
  std::map<const rsf::net::Link*, std::shared_ptr<ShmLinkState>> shm_states_;

  mutable std::mutex intra_mutex_;
  // Accepted but not yet activated links (subscriber still filing), and
  // the live fanout.  DeliverIntra only ever touches intra_links_.
  std::vector<std::shared_ptr<IntraLinkBase>> pending_intra_;
  std::vector<std::shared_ptr<IntraLinkBase>> intra_links_;
};

}  // namespace ros
