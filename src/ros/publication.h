// Publisher-side transport for one advertised topic: a listening socket, an
// accept loop that performs the TCPROS handshake, and one outgoing queue +
// sender thread per connected subscriber — plus, for typed publishers, the
// in-process fanout registered by co-located subscriptions (intra_process.h).
//
// Publication is untyped: TCP links move SerializedMessage units, and the
// in-process fanout moves type-erased shared_ptr<const M> handles.  The
// typed Publisher handle (node_handle.h) serializes / clones / borrows
// messages before handing them here.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/concurrent_queue.h"
#include "common/status.h"
#include "net/socket.h"
#include "ros/intra_process.h"
#include "ros/serialized_message.h"

namespace ros {

/// Publisher-side delivery counters.  "Sent" only counts frames that were
/// actually handed to (or still queued for) a live link: a frame evicted by
/// the drop-oldest policy, or stranded behind a broken connection, counts
/// as dropped, never as sent.
struct PublicationStats {
  uint64_t enqueued = 0;          // frames pushed toward TCP links
  uint64_t dropped = 0;           // evicted by drop-oldest or stranded on a dead link
  uint64_t intra_delivered = 0;   // in-process deliveries (all tiers)
  uint64_t intra_zero_copy = 0;   // ... of which aliased the publisher's message
  uint64_t intra_whole_copy = 0;  // ... of which handed out a clone
  size_t tcp_links = 0;           // live TCP subscriber links
  size_t intra_links = 0;         // live in-process subscriber links
};

class Publication {
 public:
  /// Binds a listener on an ephemeral loopback port and starts accepting.
  /// `intra_capable` publishers (typed ones, i.e. NodeHandle::advertise)
  /// also register with the in-process registry so co-located subscribers
  /// can link directly instead of dialing the port.
  static rsf::Result<std::shared_ptr<Publication>> Create(
      const std::string& topic, const std::string& datatype,
      const std::string& md5sum, const std::string& callerid,
      size_t queue_size, bool intra_capable = false);

  ~Publication();
  Publication(const Publication&) = delete;
  Publication& operator=(const Publication&) = delete;

  /// Fans the message out to every connected TCP subscriber (aliased shared
  /// buffer: no per-subscriber copy).  Messages queued while a link's queue
  /// is full evict the oldest (roscpp behaviour).
  void Publish(SerializedMessage message);

  /// In-process handshake: validates the subscriber's negotiated checksum
  /// against this topic's and, on success, adds the link to the fanout —
  /// the same contract as the TCPROS header exchange, without the sockets.
  rsf::Status AddIntraLink(std::shared_ptr<IntraLinkBase> link);

  /// Unhooks one in-process link (subscriber shutdown).  Links whose
  /// subscriber merely vanished are also culled lazily on publish.
  void RemoveIntraLink(const IntraLinkBase* link);

  /// Fans a type-erased shared message out to every live in-process link,
  /// culling dead ones.  Returns the number of subscribers reached.
  size_t DeliverIntra(const std::shared_ptr<const void>& message,
                      IntraTier tier);

  /// True if any in-process links are registered (publish should clone or
  /// borrow the message for them).
  [[nodiscard]] bool HasIntraLinks() const;

  /// True if any TCP links are connected (publish should serialize).
  [[nodiscard]] bool HasTcpLinks() const;

  /// Number of live subscriber links, both transports.
  [[nodiscard]] size_t NumSubscribers() const;

  /// Messages accepted for sending on TCP links, minus those that were
  /// dropped before reaching the wire.
  [[nodiscard]] uint64_t SentCount() const noexcept {
    const uint64_t enqueued = enqueued_.load(std::memory_order_relaxed);
    const uint64_t dropped = dropped_.load(std::memory_order_relaxed);
    return enqueued >= dropped ? enqueued - dropped : 0;
  }

  /// Delivery counters snapshot.
  [[nodiscard]] PublicationStats Stats() const;

  [[nodiscard]] uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
  [[nodiscard]] const std::string& datatype() const noexcept {
    return datatype_;
  }
  [[nodiscard]] const std::string& md5sum() const noexcept { return md5sum_; }

  /// Stops accepting, closes all links, joins all threads.  Idempotent.
  void Shutdown();

 private:
  Publication(const std::string& topic, const std::string& datatype,
              const std::string& md5sum, const std::string& callerid,
              size_t queue_size, rsf::net::TcpListener listener);

  /// Starts the accept loop (called once by Create).
  void Start();

  struct SubscriberLink {
    rsf::net::TcpConnection connection;
    rsf::ConcurrentQueue<SerializedMessage> queue;
    std::thread sender;
    std::atomic<bool> dead{false};

    SubscriberLink(rsf::net::TcpConnection conn, size_t queue_size)
        : connection(std::move(conn)),
          queue(queue_size, rsf::QueueFullPolicy::kDropOldest) {}
  };

  void AcceptLoop();
  void SenderLoop(SubscriberLink* link);
  // Performs the handshake; returns false to drop the connection.
  bool Handshake(rsf::net::TcpConnection& conn);

  const std::string topic_;
  const std::string datatype_;
  const std::string md5sum_;
  const std::string callerid_;
  const size_t queue_size_;

  rsf::net::TcpListener listener_;
  uint16_t port_ = 0;
  bool intra_registered_ = false;  // written once in Create, before Start
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> intra_delivered_{0};
  std::atomic<uint64_t> intra_zero_copy_{0};
  std::atomic<uint64_t> intra_whole_copy_{0};
  // Started by Start() after construction completes, NEVER in the
  // constructor: the accept loop reads shutdown_/links_, which are declared
  // after it and would not be initialized yet.
  std::thread accept_thread_;

  mutable std::mutex links_mutex_;
  std::vector<std::unique_ptr<SubscriberLink>> links_;

  mutable std::mutex intra_mutex_;
  std::vector<std::shared_ptr<IntraLinkBase>> intra_links_;
};

}  // namespace ros
