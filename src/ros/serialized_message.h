// The unit the transport queues and writes: a shared, immutable byte
// buffer.  For regular messages it owns a freshly serialized buffer; for
// SFM messages it *aliases the message arena itself* (the buffer pointer of
// paper Fig. 8) — publishing never copies.
#pragma once

#include <cstdint>
#include <memory>

namespace ros {

struct SerializedMessage {
  std::shared_ptr<const uint8_t[]> data;
  size_t size = 0;

  [[nodiscard]] bool valid() const noexcept { return data != nullptr; }
};

}  // namespace ros
