// The node's callback queue: receive threads enqueue bound closures, the
// spinner drains them — roscpp's CallbackQueue / ros::spin() structure.
#pragma once

#include <functional>

#include "common/concurrent_queue.h"

namespace ros {

class CallbackQueue {
 public:
  CallbackQueue() : queue_(SIZE_MAX, rsf::QueueFullPolicy::kBlock) {}

  void Enqueue(std::function<void()> callback) {
    queue_.Push(std::move(callback));
  }

  /// Runs callbacks until Shutdown() — ros::spin().
  void Spin() {
    while (auto callback = queue_.Pop()) (*callback)();
  }

  /// Runs at most one pending callback; false if none ran — ros::spinOnce().
  bool SpinOnce() {
    auto callback = queue_.TryPop();
    if (!callback.has_value()) return false;
    (*callback)();
    return true;
  }

  /// Blocks up to `timeout_nanos` for one callback; false on timeout.
  bool SpinOnceFor(uint64_t timeout_nanos) {
    auto callback = queue_.PopFor(timeout_nanos);
    if (!callback.has_value()) return false;
    (*callback)();
    return true;
  }

  void Shutdown() { queue_.Shutdown(); }

  [[nodiscard]] size_t Pending() const { return queue_.Size(); }

 private:
  rsf::ConcurrentQueue<std::function<void()>> queue_;
};

}  // namespace ros
