// Umbrella header for the mini-ROS middleware: include this plus your
// generated message headers and write roscpp-style code (paper Fig. 3).
#pragma once

#include "ros/callback_queue.h"     // IWYU pragma: export
#include "ros/connection_header.h"  // IWYU pragma: export
#include "ros/intra_process.h"      // IWYU pragma: export
#include "ros/master.h"             // IWYU pragma: export
#include "ros/message_traits.h"     // IWYU pragma: export
#include "ros/node_handle.h"        // IWYU pragma: export
#include "ros/publication.h"        // IWYU pragma: export
#include "ros/serialized_message.h" // IWYU pragma: export
#include "ros/subscription.h"       // IWYU pragma: export
