#include "ros/transport_lane.h"

#include <deque>
#include <mutex>
#include <utility>

#include "common/log.h"
#include "net/framing.h"
#include "ros/message_traits.h"
#include "ros/shm_transport.h"
#include "sfm/shm_pool.h"

namespace ros {

namespace {

/// In-process delivery: a typed pointer hand-off into the subscriber's
/// queue.  No wire, no frames — Offer ignores untyped contexts (bag
/// replay publishes have no intra handle) and reports a dead subscriber
/// by returning false, which culls the lane.
class IntraLane final : public TransportLane {
 public:
  IntraLane(std::shared_ptr<IntraLinkBase> link, LaneCounters* counters)
      : link_(std::move(link)), counters_(counters) {}

  bool Offer(const PublishContext& ctx) override {
    if (!ctx.has_intra) return true;
    // Same accounting as a wire frame: the attempt is enqueued; reaching a
    // dead link is a drop.  SentCount() then spans every tier.
    counters_->enqueued.fetch_add(1, std::memory_order_relaxed);
    if (!link_->Deliver(ctx.intra, ctx.intra_tier)) {
      counters_->dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    counters_->intra_delivered.fetch_add(1, std::memory_order_relaxed);
    (ctx.intra_tier == IntraTier::kZeroCopy ? counters_->intra_zero_copy
                                            : counters_->intra_whole_copy)
        .fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void OnControlFrame(uint32_t, const uint8_t*) override {}
  void Close() override {}

  [[nodiscard]] LaneDescription Describe() const override {
    return {LaneKind::kIntra, link_->alive()};
  }
  [[nodiscard]] const IntraLinkBase* intra_link() const noexcept override {
    return link_.get();
  }

 private:
  const std::shared_ptr<IntraLinkBase> link_;
  LaneCounters* const counters_;
};

/// Plain TCP delivery: the pre-built wire frame goes onto the link's
/// drop-oldest queue (one shared_ptr copy, never a payload copy).
class TcpLane final : public TransportLane {
 public:
  TcpLane(std::shared_ptr<rsf::net::Link> link, LaneCounters* counters)
      : link_(std::move(link)), counters_(counters) {}

  bool Offer(const PublishContext& ctx) override {
    if (!ctx.has_wire()) return true;
    counters_->enqueued.fetch_add(1, std::memory_order_relaxed);
    if (link_->EnqueueFrame(ctx.wire)) {
      counters_->dropped.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void OnControlFrame(uint32_t, const uint8_t*) override {
    RSF_WARN("unexpected control frame on a plain TCP lane; ignoring");
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    link_->CloseNow();
    // Frames still queued behind the closed connection are lost.
    counters_->dropped.fetch_add(link_->stats().frames_stranded,
                                 std::memory_order_relaxed);
  }

  void Flush() override { link_->FlushOnLoop(); }

  [[nodiscard]] LaneDescription Describe() const override {
    return {LaneKind::kTcp, true};
  }

 private:
  const std::shared_ptr<rsf::net::Link> link_;
  LaneCounters* const counters_;
  bool closed_ = false;  // loop-confined
};

/// Shm-tier delivery: the pre-encoded 48-byte descriptor goes out instead
/// of the payload, whose holder is PINNED in this lane's ledger until the
/// subscriber's cumulative ack covers its seq (shm_transport.h lifetime
/// rules).  Ledger overflow drops the oldest pin — a real publisher-side
/// loss (the stale descriptor fails the generation fence downstream), so
/// it counts in `dropped`.  A "disable" control frame retransmits every
/// unacked pin inline and pins the lane to inline frames for good.
class ShmLane final : public TransportLane {
 public:
  ShmLane(std::shared_ptr<rsf::net::Link> link, LaneCounters* counters,
          std::string topic, size_t max_pins, int slot, pid_t peer_pid)
      : link_(std::move(link)),
        counters_(counters),
        topic_(std::move(topic)),
        max_pins_(max_pins),
        slot_(slot),
        peer_pid_(peer_pid) {}

  bool Offer(const PublishContext& ctx) override {
    if (!ctx.has_wire()) return true;
    counters_->enqueued.fetch_add(1, std::memory_order_relaxed);

    bool via_descriptor = false;
    if (ctx.descriptor.valid()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!inline_only_ && !closed_) {
        ledger_.push_back({ctx.seq, ctx.payload});
        // Pin bound: generous enough that a subscriber acking every
        // message never hits it; a stalled one loses its oldest pins
        // (drop-oldest — the generation fence turns their stale
        // descriptors into clean drops, counted here as real losses).
        while (ledger_.size() > max_pins_) {
          ledger_.pop_front();
          counters_->dropped.fetch_add(1, std::memory_order_relaxed);
          shim::shm_pin_evictions.fetch_add(1, std::memory_order_relaxed);
        }
        via_descriptor = true;
      }
    }

    if (via_descriptor) {
      if (link_->EnqueueFrame(ctx.descriptor)) {
        counters_->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters_->shm_descriptors.fetch_add(1, std::memory_order_relaxed);
        shim::shm_zero_copy_deliveries.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      return true;
    }
    // Inline fallback on a negotiated lane: heap-backed payload, tier
    // below threshold, or the subscriber left the tier.
    if (link_->EnqueueFrame(ctx.wire)) {
      counters_->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_->shm_inline.fetch_add(1, std::memory_order_relaxed);
      shim::shm_fallback_deliveries.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void OnControlFrame(uint32_t raw, const uint8_t* data) override {
    ShmControlKind kind;
    uint64_t seq = 0;
    if (!DecodeShmControl(data, rsf::net::FrameLength(raw), &kind, &seq)) {
      RSF_WARN("malformed shm control frame on %s; ignoring", topic_.c_str());
      return;
    }
    std::vector<SerializedMessage> retransmit;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (kind == ShmControlKind::kAck) {
        // Cumulative: every pin at or below the acked seq is consumed.
        while (!ledger_.empty() && ledger_.front().seq <= seq) {
          ledger_.pop_front();
        }
        return;
      }
      // Disable: the subscriber's side of the tier broke (attach failure,
      // out-of-range descriptor).  Everything unacked goes out inline, in
      // order, and the lane stays inline for good.
      inline_only_ = true;
      retransmit.reserve(ledger_.size());
      for (auto& pinned : ledger_) {
        retransmit.push_back(std::move(pinned.message));
      }
      ledger_.clear();
    }
    RSF_WARN("subscriber on %s left the shm tier; retransmitting %zu pinned "
             "messages inline",
             topic_.c_str(), retransmit.size());
    for (const auto& message : retransmit) {
      // Not re-counted as enqueued (the descriptor delivery already was);
      // an eviction here is a real loss, though.
      if (link_->EnqueueFrame(message.data,
                              static_cast<uint32_t>(message.size))) {
        counters_->dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    link_->FlushOnLoop();  // control frames arrive on the loop thread
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      // Dropping the ledger releases the pinned payload holders; blocks
      // the (possibly dead) peer never acked retire, and either its
      // in-mapping RefTokens drain them or the pid liveness sweep reclaims
      // them.
      ledger_.clear();
    }
    sfm::shm::ReleasePeerSlot(slot_, peer_pid_);
    link_->CloseNow();
    counters_->dropped.fetch_add(link_->stats().frames_stranded,
                                 std::memory_order_relaxed);
  }

  void Flush() override { link_->FlushOnLoop(); }

  [[nodiscard]] LaneDescription Describe() const override {
    return {LaneKind::kShm, true};
  }

 private:
  struct Pinned {
    uint64_t seq = 0;
    SerializedMessage message;  // the holder that keeps the block live
  };

  const std::shared_ptr<rsf::net::Link> link_;
  LaneCounters* const counters_;
  const std::string topic_;
  const size_t max_pins_;
  const int slot_;       // peer refcount column in every segment
  const pid_t peer_pid_;  // liveness-sweep identity for the slot

  std::mutex mutex_;
  bool inline_only_ = false;
  bool closed_ = false;
  std::deque<Pinned> ledger_;
};

}  // namespace

LanePolicy::Plan LanePolicy::PlanSubscriber(const SubscriberSide& in) noexcept {
  // In-process beats every wire: co-located endpoints hand pointers over
  // unless the subscription opted out or a shaped link pins it to TCP.
  // (An intra rejection — checksum mismatch — never falls back to TCP:
  // the TCPROS handshake would reject it for the same reason.)
  if (in.co_located && in.allow_intra && !in.shaped) return Plan::kIntra;
  // The shm tier is only worth asking for when it could actually work:
  // SFM wire format (position-independent arenas), a same-host publisher,
  // no link shaping, and the tier switched on here.
  if (in.serialization_free && in.allow_shm && !in.shaped && in.shm_enabled &&
      in.loopback) {
    return Plan::kTcpRequestShm;
  }
  return Plan::kTcp;
}

LanePolicy::Grant LanePolicy::GrantWireTier(const PublisherSide& in) noexcept {
  if (!in.shm_requested || !in.peer_pid_known) return Grant::kTcpNotRequested;
  if (!in.shm_enabled) return Grant::kTcpTierDisabled;
  if (!in.slot_acquired) return Grant::kTcpNoSlot;
  return Grant::kShm;
}

std::shared_ptr<TransportLane> MakeIntraLane(
    std::shared_ptr<IntraLinkBase> link, LaneCounters* counters) {
  return std::make_shared<IntraLane>(std::move(link), counters);
}

std::shared_ptr<TransportLane> MakeWireLane(
    const std::shared_ptr<WireLaneContext>& ctx,
    std::shared_ptr<rsf::net::Link> link, LaneCounters* counters,
    const std::string& topic, size_t max_pins) {
  if (LanePolicy::WireLaneKind(ctx->shm_negotiated) == LaneKind::kShm) {
    return std::make_shared<ShmLane>(std::move(link), counters, topic,
                                     max_pins, ctx->shm_slot, ctx->shm_pid);
  }
  return std::make_shared<TcpLane>(std::move(link), counters);
}

}  // namespace ros
