// Serialization traits: the seam where ROS-SF replaces roscpp's generated
// serialize/de-serialize routines (paper §4.3.1, "Overloaded ROS
// serialization routine" / "Overloaded ROS de-serialization routine").
//
// Regular messages take the classic path:
//   publish:  allocate a buffer, run the generated serializer (one full copy)
//   receive:  read the frame into a scratch buffer, run the generated
//             de-serializer into a fresh message object (another full copy)
//
// SFM messages take the serialization-free path:
//   publish:  ask the global message manager for an aliased buffer pointer
//             covering the whole message — zero copy
//   receive:  read the frame straight into a newly adopted arena and
//             reinterpret it as the message — the "dummy de-serialization
//             routine" of Fig. 9 — zero copy
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "serialization/field_model.h"
#include "serialization/ros1.h"
#include "sfm/sfm.h"
#include "sfm/shm_pool.h"
#include "ros/serialized_message.h"

namespace ros {

using rsf::ser::Message;

/// Receive-path shim counters: how frame payloads reached their final
/// message.  Tests assert the copy budget with these instead of strace —
/// the SFM path must show arena-direct landings and zero scratch
/// allocations / deserialize copies (exactly one kernel→arena copy), and
/// the regular path must show scratch reuse instead of per-frame
/// allocation.  Relaxed telemetry, never synchronization.
namespace shim {
inline std::atomic<uint64_t> scratch_allocations{0};  // scratch grew (heap)
inline std::atomic<uint64_t> scratch_reuses{0};     // frame fit in scratch
inline std::atomic<uint64_t> deserialize_copies{0};  // generated de-serializer ran
inline std::atomic<uint64_t> arena_direct{0};  // payload read straight into an arena
// Send-path counters: every user-space copy a publish can make on its way
// to the wire.  An SFM arena publish must bump NEITHER — its payload goes
// out as an aliased shared_ptr, and (above the zerocopy threshold) even
// the kernel crossing is a pin, not a copy (rsf::net::ZeroCopySendBytes
// carries the proof for that last hop).
inline std::atomic<uint64_t> wire_serialize_copies{0};  // generated serializer ran
inline std::atomic<uint64_t> wire_snapshot_copies{0};   // SFM stack-fallback memcpy
// Shm-tier counters (DESIGN.md §12): deliveries that crossed processes as a
// 48-byte descriptor into a shared block (zero payload copies end to end),
// vs deliveries on shm-negotiated links that went inline anyway — below the
// size threshold, heap-backed payload, or a per-link fallback.
inline std::atomic<uint64_t> shm_zero_copy_deliveries{0};
inline std::atomic<uint64_t> shm_fallback_deliveries{0};
// Serialize-once fan-out proof (DESIGN.md §13): a publish finalizes its
// wire frame once and encodes its shm descriptor once, no matter how many
// lanes the fan-out visits.  Tests assert these advance by exactly the
// publish count at any subscriber count.
inline std::atomic<uint64_t> frame_builds{0};       // wire frames finalized
inline std::atomic<uint64_t> descriptor_builds{0};  // shm descriptors encoded
/// Pins evicted from a shm lane's ledger by drop-oldest backpressure.  Each
/// eviction is a real publisher-side loss (the subscriber's descriptor will
/// fail the generation fence) and counts in PublicationStats::dropped.
inline std::atomic<uint64_t> shm_pin_evictions{0};
/// Shm blocks force-reclaimed from dead (SIGKILLed) subscribers — reads the
/// pool's own ledger so the count survives pool-internal sweeps too.
inline uint64_t shm_blocks_reclaimed() {
  return ::sfm::shm::GetPoolStats().blocks_reclaimed;
}
}  // namespace shim

/// A frame destination handed to the transport's frame reader, plus the
/// typed finalization once the bytes are in.
template <Message M>
struct Serializer;

// ---- regular messages ----

template <Message M>
struct Serializer {
  static constexpr bool kSerializationFree = false;

  static SerializedMessage ToWire(const M& msg) {
    const size_t length = rsf::ser::ros1::SerializedLength(msg);
    auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[length]);
    rsf::ser::ros1::Serialize(msg, buffer.get());
    shim::wire_serialize_copies.fetch_add(1, std::memory_order_relaxed);
    return SerializedMessage{std::move(buffer), length};
  }

  /// In-process whole-copy tier: one deep copy through the generated copy
  /// constructor — no serialization, no wire format.  Safe while the
  /// publisher keeps mutating `msg`.
  static std::shared_ptr<const M> ToShared(const M& msg) {
    return std::make_shared<const M>(msg);
  }

  /// In-process zero-copy tier: for regular messages shared ownership IS
  /// the borrow — the subscriber holds the same heap object.
  static std::shared_ptr<const M> Borrow(const std::shared_ptr<const M>& msg) {
    return msg;
  }

  struct ReceiveArena {
    /// Per-link scratch staging buffer, reused across frames: the read loop
    /// owns it and keeps its capacity, so steady-state receive does zero
    /// heap allocation for the staging bytes.  Grow-only.
    std::vector<uint8_t>* scratch = nullptr;
    std::unique_ptr<uint8_t[]> owned;  // fallback when no scratch is wired
    uint8_t* data = nullptr;

    uint8_t* Allocate(uint32_t length) {
      const size_t needed = length == 0 ? 1 : length;
      if (scratch != nullptr) {
        if (scratch->size() < needed) {
          scratch->resize(needed);
          shim::scratch_allocations.fetch_add(1, std::memory_order_relaxed);
        } else {
          shim::scratch_reuses.fetch_add(1, std::memory_order_relaxed);
        }
        data = scratch->data();
      } else {
        // Default-initialized: the socket read fills it (make_unique would
        // value-initialize, i.e. memset the whole block).
        owned.reset(new uint8_t[needed]);
        shim::scratch_allocations.fetch_add(1, std::memory_order_relaxed);
        data = owned.get();
      }
      return data;
    }
  };

  static rsf::Result<std::shared_ptr<const M>> FromWire(ReceiveArena arena,
                                                        uint32_t length) {
    auto msg = std::make_shared<M>();
    shim::deserialize_copies.fetch_add(1, std::memory_order_relaxed);
    RSF_RETURN_IF_ERROR(
        rsf::ser::ros1::Deserialize(arena.data, length, *msg));
    return std::shared_ptr<const M>(std::move(msg));
  }
};

// ---- serialization-free messages ----

template <Message M>
  requires(::sfm::is_sfm_message_v<M>)
struct Serializer<M> {
  static constexpr bool kSerializationFree = true;

  static SerializedMessage ToWire(const M& msg) {
    // The common case: the message lives in a managed arena (the ROS-SF
    // Converter guarantees heap allocation), so publishing is one aliased
    // shared_ptr copy.
    if (auto buffer = ::sfm::gmm().Publish(&msg)) {
      return SerializedMessage{std::move(buffer->data), buffer->size};
    }
    // A stack-allocated message can only reach here if it never grew (any
    // variable-size use would have raised kUnmanagedMessage); its skeleton
    // alone is a complete whole message, so snapshot it.
    auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[sizeof(M)]);
    std::memcpy(buffer.get(), &msg, sizeof(M));
    shim::wire_snapshot_copies.fetch_add(1, std::memory_order_relaxed);
    return SerializedMessage{std::move(buffer), sizeof(M)};
  }

  /// In-process whole-copy tier: the generated copy constructor routes
  /// through MessageManager::TryWholeCopy — one arena memcpy of the whole
  /// message, no per-field work (paper §4.3.1's assignment fast path).
  static std::shared_ptr<const M> ToShared(const M& msg) {
    return ::sfm::make_message<M>(msg);
  }

  /// In-process zero-copy tier: aliases the manager's buffer pointer, so
  /// the subscriber's handle keeps the arena block alive even after the
  /// publisher's shared_ptr dies and the record is released — SFM reads
  /// are relative offsets and never need the record back (Fig. 8
  /// life-cycle, extended to borrowed in-process readers).
  static std::shared_ptr<const M> Borrow(const std::shared_ptr<const M>& msg) {
    if (auto buffer = ::sfm::gmm().Borrow(msg.get())) {
      return std::shared_ptr<const M>(std::move(buffer->data), msg.get());
    }
    // Unmanaged (stack-declared, never grown) message: plain shared
    // ownership of the caller's object is still zero-copy.
    return msg;
  }

  struct ReceiveArena {
    /// Present for interface parity with the regular variant; the SFM path
    /// never stages bytes — payloads land in the arena block directly.
    std::vector<uint8_t>* scratch = nullptr;
    ::sfm::PooledBlock block;
    size_t capacity = 0;

    uint8_t* Allocate(uint32_t length) {
      capacity = ::sfm::ArenaCapacityFor(M::DataType(), M::kArenaCapacity);
      if (capacity < length) capacity = length;
      // Pooled + default-initialized: arenas are megabytes (sized for the
      // largest message of the type), so recycling keeps pages warm and a
      // value-initializing allocation would memset the full capacity.
      block = ::sfm::AcquireArenaBlock(capacity);
      shim::arena_direct.fetch_add(1, std::memory_order_relaxed);
      return block.get();
    }
  };

  static rsf::Result<std::shared_ptr<const M>> FromWire(ReceiveArena arena,
                                                        uint32_t length) {
    if (length < sizeof(M)) {
      return rsf::OutOfRangeError("SFM frame smaller than the skeleton");
    }
    const uint8_t* start = ::sfm::gmm().AdoptReceived(
        M::DataType(), std::move(arena.block), arena.capacity, length);
    return ::sfm::WrapReceived<M>(start);
  }
};

}  // namespace ros
