// Subscriber-side transport for one topic: for every publisher endpoint the
// master reports, the subscription negotiates a transport at connect time —
// a direct in-process link when the publisher's Publication lives in this
// process (intra_process.h), loopback TCPROS otherwise.
//
// The TCP path is policy over `rsf::net::Link`: OnPublisher starts a
// NONBLOCKING dial (the master-notify thread never waits on connect(2) or
// the handshake — both complete on the reactor loop), and the established
// link's frame allocator is where the serialization-free receive happens:
// Serializer<M> decides whether payload bytes land in a per-link scratch
// buffer (regular messages, de-serialized afterwards) or directly in a
// registered message arena (SFM messages, re-interpreted in place).  The
// in-process path skips the wire entirely: the publisher hands over a
// shared_ptr<const M> — a clone on the whole-copy tier, an alias of its
// own message on the zero-copy tier — and delivery is a queue push.
//
// A SubscribeOptions::link configuration routes delivery through a
// SimLink shaper — the stand-in for the paper's two-machine 10 GbE testbed
// (§5.2; see DESIGN.md substitutions) — and therefore forces TCP.  Shaping
// is paced on the loop: the link's reads pause and an EventLoop::RunAfter
// timer delivers the frame when its wire time has elapsed, so a shaped
// subscription costs no dedicated thread and unread bytes exert real TCP
// backpressure on the publisher, exactly like the blocking reader it
// replaced.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/concurrent_queue.h"
#include "common/log.h"
#include "net/link.h"
#include "net/poller.h"
#include "net/sim_link.h"
#include "net/socket.h"
#include "ros/callback_queue.h"
#include "ros/connection_header.h"
#include "ros/intra_process.h"
#include "ros/master.h"
#include "ros/message_traits.h"
#include "ros/publication.h"
#include "ros/shm_transport.h"
#include "ros/transport_lane.h"

namespace ros {

struct SubscribeOptions {
  /// Incoming message queue depth; overflow drops the oldest (roscpp).
  size_t queue_size = 10;
  /// Simulated link applied to this subscription's deliveries.  A shaped
  /// link models a remote machine, so it forces the TCP transport.
  rsf::net::LinkConfig link{};
  /// Run the callback on the receive thread instead of the callback queue.
  bool inline_dispatch = false;
  /// Allow the in-process transport when the publisher is co-located.
  /// Disable to force TCPROS (benchmark baselines, wire-level tests).
  bool allow_intra_process = true;
  /// Allow the shared-memory tier for same-host SFM publishers (negotiated
  /// in the handshake; requires RSF_TRANSPORT_SHM=1 on both sides).
  /// Disable to pin this subscription to inline TCP frames.
  bool allow_shm = true;
};

/// Type-erased base so NodeHandle / Subscriber handles can own any
/// Subscription<M>.
class SubscriptionBase {
 public:
  virtual ~SubscriptionBase() = default;
  virtual void Shutdown() = 0;
  [[nodiscard]] virtual const std::string& topic() const = 0;
  [[nodiscard]] virtual uint64_t ReceivedCount() const = 0;
  [[nodiscard]] virtual uint64_t DroppedCount() const = 0;
  [[nodiscard]] virtual size_t NumPublishers() const = 0;
  /// In-process deliveries received on the zero-copy tier (aliased message).
  [[nodiscard]] virtual uint64_t IntraZeroCopyCount() const = 0;
  /// In-process deliveries received on the whole-copy tier (cloned message).
  [[nodiscard]] virtual uint64_t IntraWholeCopyCount() const = 0;
  /// Cross-process deliveries received through the shm tier (descriptor
  /// mapped and read in place — zero payload copies).
  [[nodiscard]] virtual uint64_t ShmZeroCopyCount() const = 0;
};

template <Message M>
class Subscription final
    : public SubscriptionBase,
      public std::enable_shared_from_this<Subscription<M>> {
 public:
  using MessagePtr = std::shared_ptr<const M>;
  using Callback = std::function<void(const MessagePtr&)>;

  /// Registers with the master and starts connecting to publishers.
  /// `transport_md5` is the negotiated checksum (the SFM variant is marked,
  /// so a serialization-free publisher can never feed a regular subscriber).
  static rsf::Result<std::shared_ptr<Subscription>> Create(
      const std::string& topic, const std::string& transport_md5,
      const std::string& callerid, const SubscribeOptions& options,
      Callback callback, std::shared_ptr<CallbackQueue> queue) {
    auto subscription = std::shared_ptr<Subscription>(new Subscription(
        topic, transport_md5, callerid, options, std::move(callback),
        std::move(queue)));
    std::weak_ptr<Subscription> weak = subscription;
    auto id = master().RegisterSubscriber(
        topic, M::DataType(), transport_md5,
        [weak](const TopicEndpoint& endpoint) {
          if (auto self = weak.lock()) self->OnPublisher(endpoint);
        });
    if (!id.ok()) return id.status();
    subscription->master_id_ = *id;
    return subscription;
  }

  ~Subscription() override { Shutdown(); }

  void Shutdown() override {
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true)) return;
    master().UnregisterSubscriber(topic_, master_id_);
    pending_.Shutdown();
    std::vector<IntraEntry> intra;
    std::vector<std::shared_ptr<WireLink>> wire;
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      intra.swap(intra_links_);
      wire.swap(wire_links_);
    }
    // Links tear down ON their loop thread and synchronously: after
    // CloseSync returns, no callback for that link is running or will ever
    // run, which is what makes the destructor safe.  Done outside
    // links_mutex_ — a concurrent RemoveWireLink on the loop thread takes
    // that mutex, and holding it here would deadlock the RunSync
    // handshake.  (When Shutdown itself runs on a loop thread — the last
    // reference died inside a callback — RunSync executes inline.)
    for (const auto& wl : wire) wl->link->CloseSync();
    // Unhook from publications outside links_mutex_: RemoveIntraLink takes
    // the publication's intra lock, which a concurrent DeliverIntra holds
    // around nothing but its own snapshot — still, never nest ours in it.
    for (const auto& [link, publication] : intra) {
      if (auto pub = publication.lock()) pub->RemoveIntraLink(link.get());
    }
  }

  [[nodiscard]] const std::string& topic() const override { return topic_; }
  [[nodiscard]] uint64_t ReceivedCount() const override {
    return received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t DroppedCount() const override {
    return pending_.DroppedCount();
  }
  [[nodiscard]] uint64_t IntraZeroCopyCount() const override {
    return intra_zero_copy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t IntraWholeCopyCount() const override {
    return intra_whole_copy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t ShmZeroCopyCount() const override {
    return shm_zero_copy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t NumPublishers() const override {
    std::lock_guard<std::mutex> lock(links_mutex_);
    size_t alive = 0;
    for (const auto& wl : wire_links_) {
      if (wl->link->established()) ++alive;
    }
    for (const auto& [link, publication] : intra_links_) {
      if (!publication.expired()) ++alive;
    }
    return alive;
  }

 private:
  /// One publisher connection: the Link that owns the socket plus the
  /// loop-confined receive state.  `scratch` is the per-link staging buffer
  /// regular messages reuse across frames (grows to the largest frame seen,
  /// then allocation-free); the SFM variant ignores it and lands payloads
  /// straight in arena blocks.
  struct WireLink {
    /// Set (under links_mutex_) right after Dial returns; the owner-side
    /// handle Shutdown closes.
    std::shared_ptr<rsf::net::Link> link;
    /// Loop-confined copy, set by on_established — the receive path uses
    /// this for pause/resume without touching links_mutex_.
    std::shared_ptr<rsf::net::Link> loop_link;
    /// True once on_closed ran; guards the add-after-close race (a dial
    /// can fail before OnPublisher files the link).  Under links_mutex_.
    bool removed = false;
    std::vector<uint8_t> scratch;
    typename Serializer<M>::ReceiveArena arena;
    /// Shm-tier receive state (loop-confined after the handshake): the
    /// negotiated peer slot, the publisher's segment namespace, and this
    /// link's own mappings.  Mappings are per-link on purpose — two
    /// subscriptions in one process then register adopted arenas at
    /// distinct addresses, so the manager's address-keyed index never
    /// collides.
    ShmSubState shm;
  };

  /// The subscriber end of one in-process link.  Holds the subscription
  /// weakly: a dead subscriber makes Deliver return false, and the
  /// publication culls the link.
  class IntraLink final : public IntraLinkBase {
   public:
    IntraLink(std::weak_ptr<Subscription> subscription, std::string md5,
              std::string callerid)
        : subscription_(std::move(subscription)),
          md5_(std::move(md5)),
          callerid_(std::move(callerid)) {}

    bool Deliver(const std::shared_ptr<const void>& message,
                 IntraTier tier) override {
      auto self = subscription_.lock();
      if (self == nullptr) return false;
      // The cast back to M is safe: AddIntraLink only accepted this link
      // after matching the negotiated transport checksum.
      return self->DeliverIntra(std::static_pointer_cast<const M>(message),
                                tier);
    }

    [[nodiscard]] bool alive() const noexcept override {
      auto self = subscription_.lock();
      return self != nullptr &&
             !self->shutdown_.load(std::memory_order_acquire);
    }

    [[nodiscard]] const std::string& transport_md5() const noexcept override {
      return md5_;
    }
    [[nodiscard]] const std::string& callerid() const noexcept override {
      return callerid_;
    }

   private:
    std::weak_ptr<Subscription> subscription_;
    const std::string md5_;
    const std::string callerid_;
  };

  using IntraEntry =
      std::pair<std::shared_ptr<IntraLinkBase>, std::weak_ptr<Publication>>;

  Subscription(const std::string& topic, const std::string& transport_md5,
               const std::string& callerid, const SubscribeOptions& options,
               Callback callback, std::shared_ptr<CallbackQueue> queue)
      : topic_(topic),
        transport_md5_(transport_md5),
        callerid_(callerid),
        options_(options),
        callback_(std::move(callback)),
        queue_(std::move(queue)),
        shaper_(options.link),
        pending_(options.queue_size == 0 ? 1 : options.queue_size,
                 rsf::QueueFullPolicy::kDropOldest) {}

  [[nodiscard]] bool ShapedLink() const noexcept {
    return options_.link.bandwidth_bps > 0 ||
           options_.link.propagation_nanos > 0;
  }

  /// Called on the master's notify thread.  Never blocks: the in-process
  /// negotiation is a registry lookup, and the TCP fallback is a
  /// nonblocking Link::Dial whose connect + handshake complete on the
  /// reactor loop.
  void OnPublisher(const TopicEndpoint& endpoint) {
    if (shutdown_.load(std::memory_order_acquire)) return;

    // Transport negotiation, in one testable table (DESIGN.md §13): the
    // LanePolicy rows decide in-process vs TCP vs TCP-with-shm-request;
    // this function only carries out the plan.
    auto publication = intra_registry().Find(topic_, endpoint.port);
    LanePolicy::SubscriberSide side;
    side.co_located = publication != nullptr;
    side.allow_intra = options_.allow_intra_process;
    side.shaped = ShapedLink();
    side.serialization_free = Serializer<M>::kSerializationFree;
    side.allow_shm = options_.allow_shm;
    side.shm_enabled = sfm::shm::Enabled();
    side.loopback =
        endpoint.host == "127.0.0.1" || endpoint.host == "localhost";
    const LanePolicy::Plan plan = LanePolicy::PlanSubscriber(side);

    if (plan == LanePolicy::Plan::kIntra) {
      auto link = std::make_shared<IntraLink>(this->weak_from_this(),
                                              transport_md5_, callerid_);
      const auto status = publication->AddIntraLink(link);
      if (status.ok()) {
        {
          std::lock_guard<std::mutex> lock(links_mutex_);
          if (shutdown_.load(std::memory_order_acquire)) {
            publication->RemoveIntraLink(link.get());
            return;
          }
          intra_links_.emplace_back(link, publication);
        }
        // Filed on our side: go live.  Outside links_mutex_ — the
        // publication takes its own lock and must never nest inside
        // ours.  If our Shutdown raced in between, it already called
        // RemoveIntraLink, and this activation no-ops.
        publication->ActivateIntraLink(link.get());
      } else {
        RSF_WARN("publisher rejected in-process subscription to %s: %s",
                 topic_.c_str(), status.ToString().c_str());
      }
      // Never fall back to TCP for a co-located publication: a rejection
      // here (checksum mismatch) would be rejected by the TCPROS
      // handshake too.
      return;
    }

    auto wl = std::make_shared<WireLink>();
    std::weak_ptr<Subscription> weak = this->weak_from_this();

    const bool want_shm = plan == LanePolicy::Plan::kTcpRequestShm;

    rsf::net::Link::Callbacks callbacks;
    // Captured by value: the request must be buildable even if the
    // subscription died between dial and connect completion.
    callbacks.make_handshake_request = [topic = topic_,
                                        datatype = std::string(M::DataType()),
                                        md5 = transport_md5_,
                                        callerid = callerid_, want_shm] {
      auto header = MakeSubscriberHeader(topic, datatype, md5, callerid);
      if (want_shm) AddShmRequestFields(&header, ::getpid());
      return EncodeConnectionHeader(header);
    };
    callbacks.on_handshake_reply = [topic = topic_, wl](const uint8_t* data,
                                                        uint32_t length) {
      auto header = DecodeConnectionHeader(data, length);
      if (!header.ok()) return false;
      if (const auto it = header->find("error"); it != header->end()) {
        RSF_WARN("publisher rejected subscription to %s: %s", topic.c_str(),
                 it->second.c_str());
        return false;
      }
      // Publisher granted the shm tier: remember its namespace and our
      // refcount slot.  Loop-thread write, before any frame can arrive.
      // A malformed grant degrades to plain TCP.
      const ShmGrant grant = ParseShmGrant(*header, sfm::shm::kMaxPeers);
      if (grant.granted) {
        wl->shm.negotiated = true;
        wl->shm.ns = grant.ns;
        wl->shm.slot = grant.slot;
      }
      return true;
    };
    callbacks.alloc = [wl](uint32_t raw) -> uint8_t* {
      // One allocator call per frame, routed by the prefix tag: descriptors
      // stage in a small control buffer; data frames go the classic way —
      // regular messages into the link's reused scratch, SFM messages
      // arena-direct.  Unknown tags close the link (null allocation).
      const uint32_t tag = rsf::net::FrameTag(raw);
      const uint32_t length = rsf::net::FrameLength(raw);
      if (tag == rsf::net::kFrameTagShmDescriptor) {
        if (length == 0 || length > kShmMaxControlFrame) return nullptr;
        wl->shm.ctrl_buf.resize(length);
        return wl->shm.ctrl_buf.data();
      }
      if (tag != rsf::net::kFrameTagData) return nullptr;
      wl->arena = {};
      wl->arena.scratch = &wl->scratch;
      return wl->arena.Allocate(length);
    };
    callbacks.on_frame = [weak, wl](uint32_t raw) {
      auto self = weak.lock();
      if (self == nullptr) return;
      const uint32_t length = rsf::net::FrameLength(raw);
      if (rsf::net::FrameTag(raw) == rsf::net::kFrameTagShmDescriptor) {
        self->OnShmDescriptor(wl, length);
      } else {
        self->OnWireFrame(wl, length);
      }
    };
    callbacks.on_established =
        [wl](const std::shared_ptr<rsf::net::Link>& link) {
          wl->loop_link = link;
        };
    callbacks.on_closed = [weak,
                           wl](const std::shared_ptr<rsf::net::Link>&) {
      if (auto self = weak.lock()) self->RemoveWireLink(wl);
    };

    auto link =
        rsf::net::Link::Dial(endpoint.host, endpoint.port,
                             rsf::net::Reactor::Get().NextLoop(),
                             rsf::net::Link::Options{}, std::move(callbacks));
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      if (!shutdown_.load(std::memory_order_acquire)) {
        wl->link = link;
        // A dial that already failed ran on_closed before we got here;
        // don't file a dead link.
        if (!wl->removed) wire_links_.push_back(wl);
        return;
      }
    }
    // Shut down while dialing: tear the link back down.
    link->CloseSync();
  }

  /// Loop-thread-only: a descriptor frame arrived on a shm-negotiated
  /// link.  Maps the referenced block (attaching its segment on first use),
  /// adopts it as a received arena — the aliased buffer's control block
  /// holds the cross-process reference — and dispatches the message read
  /// in place.  Consumption is acked so the publisher releases its pin;
  /// any distrustful failure sends "disable" and drops the link back to
  /// inline TCP (the publisher then retransmits everything unacked).
  void OnShmDescriptor(const std::shared_ptr<WireLink>& wl, uint32_t length) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    if constexpr (Serializer<M>::kSerializationFree) {
      sfm::shm::Descriptor descriptor;
      if (!wl->shm.negotiated ||
          !DecodeShmDescriptor(wl->shm.ctrl_buf.data(), length,
                               &descriptor)) {
        ShmLeaveTier(wl, "malformed shm descriptor");
        return;
      }
      if (wl->shm.broken) {
        // Tier already abandoned; in-flight descriptors are superseded by
        // the publisher's inline retransmits.
        return;
      }
      auto buffer = ShmMapDescriptor(wl->shm, descriptor, sizeof(M));
      if (!buffer.ok()) {
        if (buffer.status().code() == rsf::StatusCode::kUnavailable) {
          // Only this message is gone (the publisher evicted its pin and
          // the block recycled): drop-oldest semantics.  Ack it so the
          // ledger advances.
          SendShmControl(wl, ShmControlKind::kAck, descriptor.seq);
        } else {
          ShmLeaveTier(wl, buffer.status().ToString().c_str());
        }
        return;
      }
      const uint8_t* start = ::sfm::gmm().AdoptShared(
          M::DataType(), *std::move(buffer),
          static_cast<size_t>(descriptor.length),
          static_cast<size_t>(descriptor.length));
      received_.fetch_add(1, std::memory_order_relaxed);
      shm_zero_copy_.fetch_add(1, std::memory_order_relaxed);
      Dispatch(::sfm::WrapReceived<M>(start));
      SendShmControl(wl, ShmControlKind::kAck, descriptor.seq);
    } else {
      // A non-SFM subscription never negotiates the tier; a descriptor
      // here is a protocol violation.
      ShmLeaveTier(wl, "shm descriptor on a non-SFM subscription");
    }
  }

  /// Loop-thread-only: abandons the shm tier for this link and tells the
  /// publisher, which retransmits every unacked pin inline.
  void ShmLeaveTier(const std::shared_ptr<WireLink>& wl, const char* why) {
    if (!wl->shm.broken) {
      RSF_WARN("subscription to %s leaving the shm tier: %s", topic_.c_str(),
               why);
      wl->shm.broken = true;
      SendShmControl(wl, ShmControlKind::kDisable, 0);
    }
  }

  /// Loop-thread-only (loop_link is the loop-confined handle).
  void SendShmControl(const std::shared_ptr<WireLink>& wl,
                      ShmControlKind kind, uint64_t seq) {
    if (wl->loop_link == nullptr) return;
    (void)wl->loop_link->EnqueueFrame(
        EncodeShmControlFrame(kind, seq),
        rsf::net::TaggedLength(rsf::net::kFrameTagShmControl,
                               kShmControlSize));
    wl->loop_link->FlushOnLoop();
  }

  /// Loop-thread-only: one complete frame arrived on a publisher link.
  void OnWireFrame(const std::shared_ptr<WireLink>& wl, uint32_t length) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    auto msg = Serializer<M>::FromWire(std::move(wl->arena), length);
    if (!msg.ok()) {
      RSF_ERROR("dropping malformed message on %s: %s", topic_.c_str(),
                msg.status().ToString().c_str());
      return;
    }
    received_.fetch_add(1, std::memory_order_relaxed);
    MessagePtr message = *std::move(msg);

    // Simulated-link shaping: hold delivery for wire + propagation time,
    // paced on the loop.  Reads pause until the frame is delivered, so at
    // most one frame is in flight and unread bytes back up into the kernel
    // buffer — the same flow control the blocking shaped reader exerted.
    if (ShapedLink()) {
      const uint64_t delay =
          shaper_.DelayFor(length + 4, rsf::MonotonicNanos());
      if (delay > 0 && wl->loop_link != nullptr) {
        wl->loop_link->PauseReading();
        std::weak_ptr<Subscription> weak = this->weak_from_this();
        const bool armed = wl->loop_link->loop()->RunAfter(
            delay, [weak, wl, message] {
              if (auto self = weak.lock()) {
                if (!self->shutdown_.load(std::memory_order_acquire)) {
                  self->Dispatch(message);
                }
              }
              wl->loop_link->ResumeReading();  // no-op unless established
            });
        if (armed) return;
        // Loop is stopping: deliver inline rather than drop silently.
        wl->loop_link->ResumeReading();
      }
    }

    Dispatch(std::move(message));
  }

  /// Runs on the link's loop thread (on_closed) — the link closed itself
  /// (publisher gone, reset, malformed framing, connect failure).
  void RemoveWireLink(const std::shared_ptr<WireLink>& wl) {
    std::lock_guard<std::mutex> lock(links_mutex_);
    wl->removed = true;
    std::erase(wire_links_, wl);
  }

  /// In-process delivery: called by the publication's fanout, on the
  /// publisher's thread.  Returns false once shut down (the publication
  /// culls the link).
  bool DeliverIntra(MessagePtr msg, IntraTier tier) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    received_.fetch_add(1, std::memory_order_relaxed);
    (tier == IntraTier::kZeroCopy ? intra_zero_copy_ : intra_whole_copy_)
        .fetch_add(1, std::memory_order_relaxed);
    Dispatch(std::move(msg));
    return true;
  }

  void Dispatch(MessagePtr msg) {
    if (options_.inline_dispatch) {
      callback_(msg);
      return;
    }
    pending_.Push(std::move(msg));
    // Weak capture: the subscription owns queue_, so a shared self here
    // would cycle through any task left undrained at destruction.  A dead
    // subscription's queued dispatches just no-op (Shutdown discards
    // pending_ regardless).
    std::weak_ptr<Subscription> weak = this->weak_from_this();
    queue_->Enqueue([weak] {
      if (auto self = weak.lock()) {
        if (auto pending = self->pending_.TryPop()) {
          self->callback_(*pending);
        }
      }
    });
  }

  const std::string topic_;
  const std::string transport_md5_;
  const std::string callerid_;
  const SubscribeOptions options_;
  const Callback callback_;
  const std::shared_ptr<CallbackQueue> queue_;

  rsf::net::SimLink shaper_;
  rsf::ConcurrentQueue<MessagePtr> pending_;
  uint64_t master_id_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> intra_zero_copy_{0};
  std::atomic<uint64_t> intra_whole_copy_{0};
  std::atomic<uint64_t> shm_zero_copy_{0};

  mutable std::mutex links_mutex_;
  std::vector<std::shared_ptr<WireLink>> wire_links_;
  std::vector<IntraEntry> intra_links_;
};

}  // namespace ros
