// Subscriber-side transport for one topic: connects to every publisher
// endpoint the master reports, performs the TCPROS handshake, and runs one
// read loop per publisher link.
//
// The read loop is where the serialization-free receive path happens: the
// frame allocator from Serializer<M> decides whether payload bytes land in
// a scratch buffer (regular messages, de-serialized afterwards) or directly
// in a registered message arena (SFM messages, re-interpreted in place).
//
// A SubscribeOptions::link configuration routes delivery through a
// SimLink shaper — the stand-in for the paper's two-machine 10 GbE testbed
// (§5.2; see DESIGN.md substitutions).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/concurrent_queue.h"
#include "common/log.h"
#include "net/framing.h"
#include "net/sim_link.h"
#include "net/socket.h"
#include "ros/callback_queue.h"
#include "ros/connection_header.h"
#include "ros/master.h"
#include "ros/message_traits.h"

namespace ros {

struct SubscribeOptions {
  /// Incoming message queue depth; overflow drops the oldest (roscpp).
  size_t queue_size = 10;
  /// Simulated link applied to this subscription's deliveries.
  rsf::net::LinkConfig link{};
  /// Run the callback on the receive thread instead of the callback queue.
  bool inline_dispatch = false;
};

/// Type-erased base so NodeHandle / Subscriber handles can own any
/// Subscription<M>.
class SubscriptionBase {
 public:
  virtual ~SubscriptionBase() = default;
  virtual void Shutdown() = 0;
  [[nodiscard]] virtual const std::string& topic() const = 0;
  [[nodiscard]] virtual uint64_t ReceivedCount() const = 0;
  [[nodiscard]] virtual uint64_t DroppedCount() const = 0;
  [[nodiscard]] virtual size_t NumPublishers() const = 0;
};

template <Message M>
class Subscription final
    : public SubscriptionBase,
      public std::enable_shared_from_this<Subscription<M>> {
 public:
  using MessagePtr = std::shared_ptr<const M>;
  using Callback = std::function<void(const MessagePtr&)>;

  /// Registers with the master and starts connecting to publishers.
  /// `transport_md5` is the negotiated checksum (the SFM variant is marked,
  /// so a serialization-free publisher can never feed a regular subscriber).
  static rsf::Result<std::shared_ptr<Subscription>> Create(
      const std::string& topic, const std::string& transport_md5,
      const std::string& callerid, const SubscribeOptions& options,
      Callback callback, std::shared_ptr<CallbackQueue> queue) {
    auto subscription = std::shared_ptr<Subscription>(new Subscription(
        topic, transport_md5, callerid, options, std::move(callback),
        std::move(queue)));
    std::weak_ptr<Subscription> weak = subscription;
    auto id = master().RegisterSubscriber(
        topic, M::DataType(), transport_md5,
        [weak](const TopicEndpoint& endpoint) {
          if (auto self = weak.lock()) self->OnPublisher(endpoint);
        });
    if (!id.ok()) return id.status();
    subscription->master_id_ = *id;
    return subscription;
  }

  ~Subscription() override { Shutdown(); }

  void Shutdown() override {
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true)) return;
    master().UnregisterSubscriber(topic_, master_id_);
    pending_.Shutdown();
    std::lock_guard<std::mutex> lock(links_mutex_);
    for (const auto& link : links_) {
      link->connection.ShutdownBoth();
      if (!link->reader.joinable()) continue;
      // The reader's closure holds a shared_ptr to this subscription, so
      // the destructor (and this Shutdown) can run ON a reader thread when
      // that reference is the last one; a thread cannot join itself.
      if (link->reader.get_id() == std::this_thread::get_id()) {
        link->reader.detach();
      } else {
        link->reader.join();
      }
    }
    links_.clear();
  }

  [[nodiscard]] const std::string& topic() const override { return topic_; }
  [[nodiscard]] uint64_t ReceivedCount() const override {
    return received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t DroppedCount() const override {
    return pending_.DroppedCount();
  }
  [[nodiscard]] size_t NumPublishers() const override {
    std::lock_guard<std::mutex> lock(links_mutex_);
    return links_.size();
  }

 private:
  struct PublisherLink {
    rsf::net::TcpConnection connection;
    std::thread reader;
  };

  Subscription(const std::string& topic, const std::string& transport_md5,
               const std::string& callerid, const SubscribeOptions& options,
               Callback callback, std::shared_ptr<CallbackQueue> queue)
      : topic_(topic),
        transport_md5_(transport_md5),
        callerid_(callerid),
        options_(options),
        callback_(std::move(callback)),
        queue_(std::move(queue)),
        shaper_(options.link),
        pending_(options.queue_size == 0 ? 1 : options.queue_size,
                 rsf::QueueFullPolicy::kDropOldest) {}

  void OnPublisher(const TopicEndpoint& endpoint) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    auto conn = rsf::net::TcpConnection::Connect(endpoint.host, endpoint.port);
    if (!conn.ok()) {
      RSF_WARN("connect to publisher of %s failed: %s", topic_.c_str(),
               conn.status().ToString().c_str());
      return;
    }
    (void)conn->SetNoDelay(true);
    if (!Handshake(*conn)) return;

    auto link = std::make_unique<PublisherLink>();
    link->connection = *std::move(conn);
    PublisherLink* raw = link.get();
    // Thread creation stays under the lock so Shutdown() cannot clear the
    // link between registration and the reader becoming joinable.
    std::lock_guard<std::mutex> lock(links_mutex_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    auto self = this->shared_from_this();
    raw->reader = std::thread([self, raw] { self->ReadLoop(raw); });
    links_.push_back(std::move(link));
  }

  bool Handshake(rsf::net::TcpConnection& conn) {
    const auto request = EncodeConnectionHeader(
        MakeSubscriberHeader(topic_, M::DataType(), transport_md5_, callerid_));
    if (!rsf::net::WriteFrame(conn, request).ok()) return false;

    std::vector<uint8_t> reply;
    uint32_t length = 0;
    const auto status = rsf::net::ReadFrame(
        conn,
        [&](uint32_t len) {
          reply.resize(len == 0 ? 1 : len);
          return reply.data();
        },
        &length);
    if (!status.ok()) return false;
    auto header = DecodeConnectionHeader(reply.data(), length);
    if (!header.ok()) return false;
    if (const auto it = header->find("error"); it != header->end()) {
      RSF_WARN("publisher rejected subscription to %s: %s", topic_.c_str(),
               it->second.c_str());
      return false;
    }
    return true;
  }

  void ReadLoop(PublisherLink* link) {
    while (!shutdown_.load(std::memory_order_acquire)) {
      typename Serializer<M>::ReceiveArena arena;
      uint32_t length = 0;
      const auto status = rsf::net::ReadFrame(
          link->connection,
          [&](uint32_t len) { return arena.Allocate(len); }, &length);
      if (!status.ok()) return;  // publisher gone or shutdown

      auto msg = Serializer<M>::FromWire(std::move(arena), length);
      if (!msg.ok()) {
        RSF_ERROR("dropping malformed message on %s: %s", topic_.c_str(),
                  msg.status().ToString().c_str());
        continue;
      }
      received_.fetch_add(1, std::memory_order_relaxed);

      // Simulated-link shaping: hold delivery for wire + propagation time.
      if (options_.link.bandwidth_bps > 0 ||
          options_.link.propagation_nanos > 0) {
        const uint64_t delay =
            shaper_.DelayFor(length + 4, rsf::MonotonicNanos());
        if (delay > 0) rsf::SleepForNanos(delay);
      }

      Dispatch(*std::move(msg));
    }
  }

  void Dispatch(MessagePtr msg) {
    if (options_.inline_dispatch) {
      callback_(msg);
      return;
    }
    pending_.Push(std::move(msg));
    auto self = this->shared_from_this();
    queue_->Enqueue([self] {
      if (auto pending = self->pending_.TryPop()) {
        self->callback_(*pending);
      }
    });
  }

  const std::string topic_;
  const std::string transport_md5_;
  const std::string callerid_;
  const SubscribeOptions options_;
  const Callback callback_;
  const std::shared_ptr<CallbackQueue> queue_;

  rsf::net::SimLink shaper_;
  rsf::ConcurrentQueue<MessagePtr> pending_;
  uint64_t master_id_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> received_{0};

  mutable std::mutex links_mutex_;
  std::vector<std::unique_ptr<PublisherLink>> links_;
};

}  // namespace ros
