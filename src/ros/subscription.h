// Subscriber-side transport for one topic: for every publisher endpoint the
// master reports, the subscription negotiates a transport at connect time —
// a direct in-process link when the publisher's Publication lives in this
// process (intra_process.h), loopback TCPROS otherwise.
//
// The TCP read loop is where the serialization-free receive path happens:
// the frame allocator from Serializer<M> decides whether payload bytes land
// in a scratch buffer (regular messages, de-serialized afterwards) or
// directly in a registered message arena (SFM messages, re-interpreted in
// place).  The in-process path skips the wire entirely: the publisher hands
// over a shared_ptr<const M> — a clone on the whole-copy tier, an alias of
// its own message on the zero-copy tier — and delivery is a queue push.
//
// A SubscribeOptions::link configuration routes delivery through a
// SimLink shaper — the stand-in for the paper's two-machine 10 GbE testbed
// (§5.2; see DESIGN.md substitutions) — and therefore forces TCP.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/concurrent_queue.h"
#include "common/log.h"
#include "net/framing.h"
#include "net/poller.h"
#include "net/sim_link.h"
#include "net/socket.h"
#include "ros/callback_queue.h"
#include "ros/connection_header.h"
#include "ros/intra_process.h"
#include "ros/master.h"
#include "ros/message_traits.h"
#include "ros/publication.h"

namespace ros {

struct SubscribeOptions {
  /// Incoming message queue depth; overflow drops the oldest (roscpp).
  size_t queue_size = 10;
  /// Simulated link applied to this subscription's deliveries.  A shaped
  /// link models a remote machine, so it forces the TCP transport.
  rsf::net::LinkConfig link{};
  /// Run the callback on the receive thread instead of the callback queue.
  bool inline_dispatch = false;
  /// Allow the in-process transport when the publisher is co-located.
  /// Disable to force TCPROS (benchmark baselines, wire-level tests).
  bool allow_intra_process = true;
};

/// Type-erased base so NodeHandle / Subscriber handles can own any
/// Subscription<M>.
class SubscriptionBase {
 public:
  virtual ~SubscriptionBase() = default;
  virtual void Shutdown() = 0;
  [[nodiscard]] virtual const std::string& topic() const = 0;
  [[nodiscard]] virtual uint64_t ReceivedCount() const = 0;
  [[nodiscard]] virtual uint64_t DroppedCount() const = 0;
  [[nodiscard]] virtual size_t NumPublishers() const = 0;
  /// In-process deliveries received on the zero-copy tier (aliased message).
  [[nodiscard]] virtual uint64_t IntraZeroCopyCount() const = 0;
  /// In-process deliveries received on the whole-copy tier (cloned message).
  [[nodiscard]] virtual uint64_t IntraWholeCopyCount() const = 0;
};

template <Message M>
class Subscription final
    : public SubscriptionBase,
      public std::enable_shared_from_this<Subscription<M>> {
 public:
  using MessagePtr = std::shared_ptr<const M>;
  using Callback = std::function<void(const MessagePtr&)>;

  /// Registers with the master and starts connecting to publishers.
  /// `transport_md5` is the negotiated checksum (the SFM variant is marked,
  /// so a serialization-free publisher can never feed a regular subscriber).
  static rsf::Result<std::shared_ptr<Subscription>> Create(
      const std::string& topic, const std::string& transport_md5,
      const std::string& callerid, const SubscribeOptions& options,
      Callback callback, std::shared_ptr<CallbackQueue> queue) {
    auto subscription = std::shared_ptr<Subscription>(new Subscription(
        topic, transport_md5, callerid, options, std::move(callback),
        std::move(queue)));
    std::weak_ptr<Subscription> weak = subscription;
    auto id = master().RegisterSubscriber(
        topic, M::DataType(), transport_md5,
        [weak](const TopicEndpoint& endpoint) {
          if (auto self = weak.lock()) self->OnPublisher(endpoint);
        });
    if (!id.ok()) return id.status();
    subscription->master_id_ = *id;
    return subscription;
  }

  ~Subscription() override { Shutdown(); }

  void Shutdown() override {
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true)) return;
    master().UnregisterSubscriber(topic_, master_id_);
    pending_.Shutdown();
    std::vector<IntraEntry> intra;
    std::vector<std::shared_ptr<ReactorPubLink>> reactor;
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      intra.swap(intra_links_);
      reactor.swap(reactor_links_);
      for (const auto& link : links_) {
        link->connection.ShutdownBoth();
        if (!link->reader.joinable()) continue;
        // The reader's closure holds a shared_ptr to this subscription, so
        // the destructor (and this Shutdown) can run ON a reader thread when
        // that reference is the last one; a thread cannot join itself.
        if (link->reader.get_id() == std::this_thread::get_id()) {
          link->reader.detach();
        } else {
          link->reader.join();
        }
      }
      links_.clear();
    }
    // Reactor links tear down ON their loop thread and synchronously:
    // after RunSync returns, no event callback for the fd is running or
    // will ever run, which is what makes the destructor safe.  Done
    // outside links_mutex_ — a concurrent RemoveReactorLink on the loop
    // thread takes that mutex, and holding it here would deadlock the
    // RunSync handshake.  (When Shutdown itself runs on a loop thread —
    // the last reference died inside a callback — RunSync executes
    // inline, and cross-loop teardown still can't cycle: loop tasks never
    // RunSync back.)
    for (const auto& link : reactor) {
      link->loop->RunSync([&link] {
        link->loop->Remove(link->connection.fd());
        link->connection.Close();
      });
    }
    // Unhook from publications outside links_mutex_: RemoveIntraLink takes
    // the publication's intra lock, which a concurrent DeliverIntra holds
    // around nothing but its own snapshot — still, never nest ours in it.
    for (const auto& [link, publication] : intra) {
      if (auto pub = publication.lock()) pub->RemoveIntraLink(link.get());
    }
  }

  [[nodiscard]] const std::string& topic() const override { return topic_; }
  [[nodiscard]] uint64_t ReceivedCount() const override {
    return received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t DroppedCount() const override {
    return pending_.DroppedCount();
  }
  [[nodiscard]] uint64_t IntraZeroCopyCount() const override {
    return intra_zero_copy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t IntraWholeCopyCount() const override {
    return intra_whole_copy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t NumPublishers() const override {
    std::lock_guard<std::mutex> lock(links_mutex_);
    size_t alive = links_.size() + reactor_links_.size();
    for (const auto& [link, publication] : intra_links_) {
      if (!publication.expired()) ++alive;
    }
    return alive;
  }

 private:
  struct PublisherLink {
    rsf::net::TcpConnection connection;
    std::thread reader;
    std::vector<uint8_t> scratch;  // reused staging (regular messages)
  };

  /// A publisher connection serviced by the reactor: the FrameReader and
  /// the in-flight ReceiveArena are loop-confined.  `scratch` is the
  /// per-link staging buffer regular messages reuse across frames (grows
  /// to the largest frame seen, then allocation-free); the SFM variant
  /// ignores it and lands payloads straight in arena blocks.
  struct ReactorPubLink {
    rsf::net::TcpConnection connection;
    rsf::net::EventLoop* loop = nullptr;
    rsf::net::FrameReader reader;
    std::vector<uint8_t> scratch;
    typename Serializer<M>::ReceiveArena arena;
  };

  /// The subscriber end of one in-process link.  Holds the subscription
  /// weakly: a dead subscriber makes Deliver return false, and the
  /// publication culls the link.
  class IntraLink final : public IntraLinkBase {
   public:
    IntraLink(std::weak_ptr<Subscription> subscription, std::string md5,
              std::string callerid)
        : subscription_(std::move(subscription)),
          md5_(std::move(md5)),
          callerid_(std::move(callerid)) {}

    bool Deliver(const std::shared_ptr<const void>& message,
                 IntraTier tier) override {
      auto self = subscription_.lock();
      if (self == nullptr) return false;
      // The cast back to M is safe: AddIntraLink only accepted this link
      // after matching the negotiated transport checksum.
      return self->DeliverIntra(std::static_pointer_cast<const M>(message),
                                tier);
    }

    [[nodiscard]] bool alive() const noexcept override {
      auto self = subscription_.lock();
      return self != nullptr &&
             !self->shutdown_.load(std::memory_order_acquire);
    }

    [[nodiscard]] const std::string& transport_md5() const noexcept override {
      return md5_;
    }
    [[nodiscard]] const std::string& callerid() const noexcept override {
      return callerid_;
    }

   private:
    std::weak_ptr<Subscription> subscription_;
    const std::string md5_;
    const std::string callerid_;
  };

  using IntraEntry =
      std::pair<std::shared_ptr<IntraLinkBase>, std::weak_ptr<Publication>>;

  Subscription(const std::string& topic, const std::string& transport_md5,
               const std::string& callerid, const SubscribeOptions& options,
               Callback callback, std::shared_ptr<CallbackQueue> queue)
      : topic_(topic),
        transport_md5_(transport_md5),
        callerid_(callerid),
        options_(options),
        callback_(std::move(callback)),
        queue_(std::move(queue)),
        shaper_(options.link),
        pending_(options.queue_size == 0 ? 1 : options.queue_size,
                 rsf::QueueFullPolicy::kDropOldest) {}

  [[nodiscard]] bool ShapedLink() const noexcept {
    return options_.link.bandwidth_bps > 0 ||
           options_.link.propagation_nanos > 0;
  }

  void OnPublisher(const TopicEndpoint& endpoint) {
    if (shutdown_.load(std::memory_order_acquire)) return;

    // Transport negotiation: prefer the in-process link when the endpoint's
    // Publication lives in this process and nothing pins us to the wire.
    if (options_.allow_intra_process && !ShapedLink()) {
      if (auto publication = intra_registry().Find(topic_, endpoint.port)) {
        auto link = std::make_shared<IntraLink>(this->weak_from_this(),
                                                transport_md5_, callerid_);
        const auto status = publication->AddIntraLink(link);
        if (status.ok()) {
          std::lock_guard<std::mutex> lock(links_mutex_);
          if (shutdown_.load(std::memory_order_acquire)) {
            publication->RemoveIntraLink(link.get());
            return;
          }
          intra_links_.emplace_back(std::move(link), publication);
        } else {
          RSF_WARN("publisher rejected in-process subscription to %s: %s",
                   topic_.c_str(), status.ToString().c_str());
        }
        // Never fall back to TCP for a co-located publication: a rejection
        // here (checksum mismatch) would be rejected by the TCPROS
        // handshake too.
        return;
      }
    }

    auto conn = rsf::net::TcpConnection::Connect(endpoint.host, endpoint.port);
    if (!conn.ok()) {
      RSF_WARN("connect to publisher of %s failed: %s", topic_.c_str(),
               conn.status().ToString().c_str());
      return;
    }
    // Same options as the accept side (TCP_NODELAY, paired buffer sizes).
    (void)rsf::net::ApplyTransportSocketOptions(*conn);
    if (!Handshake(*conn)) return;

    // Shaped links must keep a dedicated blocking reader: the shaper
    // sleeps in the delivery path, which would stall every other link on a
    // shared loop thread.
    if (rsf::net::ReactorTransportEnabled() && !ShapedLink()) {
      AttachReactorLink(*std::move(conn));
      return;
    }

    auto link = std::make_unique<PublisherLink>();
    link->connection = *std::move(conn);
    PublisherLink* raw = link.get();
    // Thread creation stays under the lock so Shutdown() cannot clear the
    // link between registration and the reader becoming joinable.
    std::lock_guard<std::mutex> lock(links_mutex_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    auto self = this->shared_from_this();
    raw->reader = std::thread([self, raw] { self->ReadLoop(raw); });
    links_.push_back(std::move(link));
  }

  /// Hands a handshaken connection to an event loop (round-robin across
  /// the pool).  Called on the master's notify thread.
  void AttachReactorLink(rsf::net::TcpConnection conn) {
    (void)conn.SetNonBlocking(true);
    auto link = std::make_shared<ReactorPubLink>();
    link->connection = std::move(conn);
    link->loop = rsf::net::Reactor::Get().NextLoop();
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      if (shutdown_.load(std::memory_order_acquire)) return;
      reactor_links_.push_back(link);
    }
    std::weak_ptr<Subscription> weak = this->weak_from_this();
    link->loop->RunInLoop([weak, link] {
      auto self = weak.lock();
      if (self == nullptr) return;
      link->loop->Add(link->connection.fd(), rsf::net::kEventReadable,
                      [weak, link](uint32_t) {
                        if (auto alive = weak.lock()) {
                          alive->OnReactorReadable(link);
                        }
                      });
    });
  }

  /// Loop-thread-only: drains every complete frame the socket has, parking
  /// mid-frame state in the link's FrameReader/arena between events.
  void OnReactorReadable(const std::shared_ptr<ReactorPubLink>& link) {
    while (!shutdown_.load(std::memory_order_acquire)) {
      uint32_t length = 0;
      auto step = link->reader.Poll(
          link->connection,
          [&](uint32_t len) {
            // One allocator call per frame: regular messages stage in the
            // link's reused scratch, SFM messages land arena-direct.
            link->arena = {};
            link->arena.scratch = &link->scratch;
            return link->arena.Allocate(len);
          },
          &length);
      if (!step.ok()) {  // publisher gone, reset, or malformed framing
        RemoveReactorLink(link);
        return;
      }
      if (*step == rsf::net::FrameReader::Step::kNeedMore) return;

      auto msg = Serializer<M>::FromWire(std::move(link->arena), length);
      if (!msg.ok()) {
        RSF_ERROR("dropping malformed message on %s: %s", topic_.c_str(),
                  msg.status().ToString().c_str());
        continue;
      }
      received_.fetch_add(1, std::memory_order_relaxed);
      Dispatch(*std::move(msg));
    }
  }

  /// Loop-thread-only (or post-RunSync teardown).
  void RemoveReactorLink(const std::shared_ptr<ReactorPubLink>& link) {
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      auto it = std::find(reactor_links_.begin(), reactor_links_.end(), link);
      if (it == reactor_links_.end()) return;  // already removed
      reactor_links_.erase(it);
    }
    link->loop->Remove(link->connection.fd());
    link->connection.Close();
  }

  bool Handshake(rsf::net::TcpConnection& conn) {
    const auto request = EncodeConnectionHeader(
        MakeSubscriberHeader(topic_, M::DataType(), transport_md5_, callerid_));
    if (!rsf::net::WriteFrame(conn, request).ok()) return false;

    std::vector<uint8_t> reply;
    uint32_t length = 0;
    const auto status = rsf::net::ReadFrame(
        conn,
        [&](uint32_t len) {
          reply.resize(len == 0 ? 1 : len);
          return reply.data();
        },
        &length);
    if (!status.ok()) return false;
    auto header = DecodeConnectionHeader(reply.data(), length);
    if (!header.ok()) return false;
    if (const auto it = header->find("error"); it != header->end()) {
      RSF_WARN("publisher rejected subscription to %s: %s", topic_.c_str(),
               it->second.c_str());
      return false;
    }
    return true;
  }

  void ReadLoop(PublisherLink* link) {
    while (!shutdown_.load(std::memory_order_acquire)) {
      typename Serializer<M>::ReceiveArena arena;
      arena.scratch = &link->scratch;
      uint32_t length = 0;
      const auto status = rsf::net::ReadFrame(
          link->connection,
          [&](uint32_t len) { return arena.Allocate(len); }, &length);
      if (!status.ok()) return;  // publisher gone or shutdown

      auto msg = Serializer<M>::FromWire(std::move(arena), length);
      if (!msg.ok()) {
        RSF_ERROR("dropping malformed message on %s: %s", topic_.c_str(),
                  msg.status().ToString().c_str());
        continue;
      }
      received_.fetch_add(1, std::memory_order_relaxed);

      // Simulated-link shaping: hold delivery for wire + propagation time.
      if (ShapedLink()) {
        const uint64_t delay =
            shaper_.DelayFor(length + 4, rsf::MonotonicNanos());
        if (delay > 0) rsf::SleepForNanos(delay);
      }

      Dispatch(*std::move(msg));
    }
  }

  /// In-process delivery: called by the publication's fanout, on the
  /// publisher's thread.  Returns false once shut down (the publication
  /// culls the link).
  bool DeliverIntra(MessagePtr msg, IntraTier tier) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    received_.fetch_add(1, std::memory_order_relaxed);
    (tier == IntraTier::kZeroCopy ? intra_zero_copy_ : intra_whole_copy_)
        .fetch_add(1, std::memory_order_relaxed);
    Dispatch(std::move(msg));
    return true;
  }

  void Dispatch(MessagePtr msg) {
    if (options_.inline_dispatch) {
      callback_(msg);
      return;
    }
    pending_.Push(std::move(msg));
    auto self = this->shared_from_this();
    queue_->Enqueue([self] {
      if (auto pending = self->pending_.TryPop()) {
        self->callback_(*pending);
      }
    });
  }

  const std::string topic_;
  const std::string transport_md5_;
  const std::string callerid_;
  const SubscribeOptions options_;
  const Callback callback_;
  const std::shared_ptr<CallbackQueue> queue_;

  rsf::net::SimLink shaper_;
  rsf::ConcurrentQueue<MessagePtr> pending_;
  uint64_t master_id_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> intra_zero_copy_{0};
  std::atomic<uint64_t> intra_whole_copy_{0};

  mutable std::mutex links_mutex_;
  std::vector<std::unique_ptr<PublisherLink>> links_;      // blocking readers
  std::vector<std::shared_ptr<ReactorPubLink>> reactor_links_;
  std::vector<IntraEntry> intra_links_;
};

}  // namespace ros
