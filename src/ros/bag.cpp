#include "ros/bag.h"

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#include "common/clock.h"
#include "common/endian.h"
#include "net/framing.h"
#include "net/link.h"
#include "net/poller.h"
#include "ros/connection_header.h"
#include "ros/master.h"
#include "ros/publication.h"

namespace ros {
namespace {

constexpr char kMagic[] = "RSFBAG\x01\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

void WriteU32(std::ofstream& out, uint32_t value) {
  uint8_t bytes[4];
  rsf::StoreLE(bytes, value);
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

void WriteU64(std::ofstream& out, uint64_t value) {
  uint8_t bytes[8];
  rsf::StoreLE(bytes, value);
  out.write(reinterpret_cast<const char*>(bytes), 8);
}

rsf::Status ReadU32(std::ifstream& in, uint32_t* value) {
  uint8_t bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) return rsf::OutOfRangeError("truncated bag record");
  *value = rsf::LoadLE<uint32_t>(bytes);
  return rsf::Status::Ok();
}

rsf::Status ReadU64(std::ifstream& in, uint64_t* value) {
  uint8_t bytes[8];
  in.read(reinterpret_cast<char*>(bytes), 8);
  if (!in) return rsf::OutOfRangeError("truncated bag record");
  *value = rsf::LoadLE<uint64_t>(bytes);
  return rsf::Status::Ok();
}

rsf::Status ReadString(std::ifstream& in, std::string* out) {
  uint32_t length = 0;
  RSF_RETURN_IF_ERROR(ReadU32(in, &length));
  if (length > 1 << 20) return rsf::OutOfRangeError("bag string too long");
  out->resize(length);
  in.read(out->data(), length);
  if (!in) return rsf::OutOfRangeError("truncated bag string");
  return rsf::Status::Ok();
}

}  // namespace

rsf::Result<BagWriter> BagWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return rsf::UnavailableError("cannot open bag for write: " + path);
  out.write(kMagic, kMagicLen);
  return BagWriter(std::move(out));
}

rsf::Status BagWriter::Write(const std::string& topic,
                             const std::string& datatype,
                             const std::string& md5sum, uint64_t stamp_nanos,
                             const uint8_t* payload, size_t payload_size) {
  if (!out_.is_open()) return rsf::FailedPreconditionError("bag closed");
  WriteU32(out_, static_cast<uint32_t>(topic.size()));
  out_.write(topic.data(), static_cast<std::streamsize>(topic.size()));
  WriteU32(out_, static_cast<uint32_t>(datatype.size()));
  out_.write(datatype.data(), static_cast<std::streamsize>(datatype.size()));
  WriteU32(out_, static_cast<uint32_t>(md5sum.size()));
  out_.write(md5sum.data(), static_cast<std::streamsize>(md5sum.size()));
  WriteU64(out_, stamp_nanos);
  WriteU32(out_, static_cast<uint32_t>(payload_size));
  out_.write(reinterpret_cast<const char*>(payload),
             static_cast<std::streamsize>(payload_size));
  if (!out_) return rsf::UnavailableError("bag write failed");
  ++records_;
  return rsf::Status::Ok();
}

rsf::Status BagWriter::Close() {
  if (!out_.is_open()) return rsf::Status::Ok();
  out_.flush();
  out_.close();
  return out_.fail() ? rsf::UnavailableError("bag close failed")
                     : rsf::Status::Ok();
}

rsf::Result<BagReader> BagReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return rsf::NotFoundError("cannot open bag: " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return rsf::InvalidArgumentError("not a bag file: " + path);
  }
  return BagReader(std::move(in));
}

rsf::Result<BagRecord> BagReader::Next() {
  if (in_.peek() == EOF) return rsf::NotFoundError("end of bag");
  BagRecord record;
  RSF_RETURN_IF_ERROR(ReadString(in_, &record.topic));
  RSF_RETURN_IF_ERROR(ReadString(in_, &record.datatype));
  RSF_RETURN_IF_ERROR(ReadString(in_, &record.md5sum));
  RSF_RETURN_IF_ERROR(ReadU64(in_, &record.stamp_nanos));
  uint32_t payload_size = 0;
  RSF_RETURN_IF_ERROR(ReadU32(in_, &payload_size));
  if (payload_size > rsf::net::kMaxFramePayload) {
    return rsf::OutOfRangeError("bag payload too large");
  }
  record.payload.resize(payload_size);
  in_.read(reinterpret_cast<char*>(record.payload.data()), payload_size);
  if (!in_) return rsf::OutOfRangeError("truncated bag payload");
  return record;
}

rsf::Result<std::vector<BagRecord>> BagReader::ReadAll() {
  std::vector<BagRecord> records;
  while (true) {
    auto record = Next();
    if (!record.ok()) {
      if (record.status().code() == rsf::StatusCode::kNotFound) break;
      return record.status();
    }
    records.push_back(*std::move(record));
  }
  return records;
}

// ---- TopicRecorder ----
//
// Type-erased subscription over client-role Links: connects like a
// Subscription<M> but treats the payload as an opaque frame.  It handshakes
// with datatype "*" / md5 "*", which the publisher-side validation accepts
// (rostopic/rosbag behaviour).  The recorder spawns NO threads: each
// publisher link dials nonblockingly, handshakes on its reactor loop, and
// appends records from the loop's frame callback.  (Bag appends are small
// buffered ofstream writes; they run on the loop thread, serialized across
// links by write_mutex since one BagWriter can span topics and loops.)

struct TopicRecorder::Impl : std::enable_shared_from_this<TopicRecorder::Impl> {
  std::string topic;
  BagWriter* writer = nullptr;
  std::mutex write_mutex;
  uint64_t master_id = 0;
  std::atomic<bool> shutdown{false};
  std::atomic<uint64_t> recorded{0};

  /// One recorded publisher connection.  datatype/md5 (learned from the
  /// handshake reply) and the payload staging buffer are loop-confined.
  struct RecordLink {
    std::shared_ptr<rsf::net::Link> link;  // under links_mutex
    bool removed = false;                  // under links_mutex
    std::string datatype = "*";
    std::string md5 = "*";
    std::vector<uint8_t> payload;
  };

  std::mutex links_mutex;
  std::vector<std::shared_ptr<RecordLink>> links;

  /// Master-notify thread; never blocks.
  void OnPublisher(const TopicEndpoint& endpoint) {
    if (shutdown.load(std::memory_order_acquire)) return;
    auto rl = std::make_shared<RecordLink>();
    std::weak_ptr<Impl> weak = weak_from_this();

    rsf::net::Link::Callbacks callbacks;
    callbacks.make_handshake_request = [topic = topic] {
      return EncodeConnectionHeader(
          MakeSubscriberHeader(topic, "*", "*", "rsfbag_record"));
    };
    callbacks.on_handshake_reply = [rl](const uint8_t* data, uint32_t length) {
      auto header = DecodeConnectionHeader(data, length);
      if (!header.ok() || header->count("error") != 0) return false;
      if (const auto it = header->find("type"); it != header->end()) {
        rl->datatype = it->second;
      }
      if (const auto it = header->find("md5sum"); it != header->end()) {
        rl->md5 = it->second;
      }
      return true;
    };
    callbacks.alloc = [rl](uint32_t length) {
      rl->payload.resize(length == 0 ? 1 : length);
      return rl->payload.data();
    };
    callbacks.on_frame = [weak, rl](uint32_t length) {
      if (auto self = weak.lock()) self->OnFrame(*rl, length);
    };
    callbacks.on_closed = [weak,
                           rl](const std::shared_ptr<rsf::net::Link>&) {
      if (auto self = weak.lock()) self->RemoveLink(rl);
    };

    auto link = rsf::net::Link::Dial(endpoint.host, endpoint.port,
                                     rsf::net::Reactor::Get().NextLoop(),
                                     rsf::net::Link::Options{},
                                     std::move(callbacks));
    {
      std::lock_guard<std::mutex> lock(links_mutex);
      if (!shutdown.load(std::memory_order_acquire)) {
        rl->link = link;
        if (!rl->removed) links.push_back(rl);
        return;
      }
    }
    link->CloseSync();
  }

  /// Loop-thread-only: one frame arrived on a recorded link.
  void OnFrame(const RecordLink& rl, uint32_t length) {
    if (shutdown.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> lock(write_mutex);
      const auto now = rsf::Time::Now().ToNanos();
      if (!writer->Write(topic, rl.datatype, rl.md5, now, rl.payload.data(),
                         length)
               .ok()) {
        return;
      }
    }
    recorded.fetch_add(1, std::memory_order_relaxed);
  }

  void RemoveLink(const std::shared_ptr<RecordLink>& rl) {
    std::lock_guard<std::mutex> lock(links_mutex);
    rl->removed = true;
    std::erase(links, rl);
  }

  void Shutdown() {
    bool expected = false;
    if (!shutdown.compare_exchange_strong(expected, true)) return;
    master().UnregisterSubscriber(topic, master_id);
    std::vector<std::shared_ptr<RecordLink>> snapshot;
    {
      std::lock_guard<std::mutex> lock(links_mutex);
      snapshot.swap(links);
    }
    // Outside links_mutex_: CloseSync handshakes with the loop thread,
    // which may be blocked in RemoveLink on that mutex.
    for (const auto& rl : snapshot) rl->link->CloseSync();
  }
};

TopicRecorder::TopicRecorder(const std::string& topic, BagWriter* writer)
    : impl_(std::make_shared<Impl>()) {
  impl_->topic = topic;
  impl_->writer = writer;
  std::weak_ptr<Impl> weak = impl_;
  auto id = master().RegisterSubscriber(
      topic, "*", "*", [weak](const TopicEndpoint& endpoint) {
        if (auto impl = weak.lock()) impl->OnPublisher(endpoint);
      });
  SFM_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  impl_->master_id = *id;
}

TopicRecorder::~TopicRecorder() { impl_->Shutdown(); }

uint64_t TopicRecorder::recorded() const {
  return impl_->recorded.load(std::memory_order_relaxed);
}

void TopicRecorder::Shutdown() { impl_->Shutdown(); }

rsf::Result<uint64_t> PlayBag(const std::string& path, double rate) {
  auto reader = BagReader::Open(path);
  if (!reader.ok()) return reader.status();
  auto records = reader->ReadAll();
  if (!records.ok()) return records.status();
  if (records->empty()) return uint64_t{0};

  // One publication per distinct topic.
  std::map<std::string, std::shared_ptr<Publication>> publications;
  for (const auto& record : *records) {
    if (publications.count(record.topic) != 0) continue;
    auto publication = Publication::Create(record.topic, record.datatype,
                                           record.md5sum, "rsfbag_play", 16);
    if (!publication.ok()) return publication.status();
    RSF_RETURN_IF_ERROR(master().RegisterPublisher(
        record.topic, record.datatype, record.md5sum,
        TopicEndpoint{"127.0.0.1", (*publication)->port(), "rsfbag_play"}));
    publications.emplace(record.topic, *std::move(publication));
  }
  // Give subscribers a beat to connect (rosbag play has the same race).
  rsf::SleepForNanos(50'000'000);

  uint64_t published = 0;
  uint64_t previous_stamp = (*records)[0].stamp_nanos;
  for (auto& record : *records) {
    if (rate > 0 && record.stamp_nanos > previous_stamp) {
      rsf::SleepForNanos(static_cast<uint64_t>(
          static_cast<double>(record.stamp_nanos - previous_stamp) / rate));
    }
    previous_stamp = record.stamp_nanos;

    // The record's payload is already exactly the wire frame body: move it
    // into a shared holder and alias it, so every subscriber link's writer
    // queue references the bag bytes directly — no re-serialize, no copy.
    const size_t size = record.payload.size();
    auto holder =
        std::make_shared<std::vector<uint8_t>>(std::move(record.payload));
    if (holder->empty()) holder->resize(1);  // keep data() non-null
    publications[record.topic]->Publish(SerializedMessage{
        std::shared_ptr<uint8_t[]>(holder, holder->data()), size});
    ++published;
  }
  // Let the frames drain before tearing the publications down.
  rsf::SleepForNanos(100'000'000);
  for (const auto& [topic, publication] : publications) {
    master().UnregisterPublisher(
        topic, TopicEndpoint{"127.0.0.1", publication->port(), "rsfbag_play"});
    publication->Shutdown();
  }
  return published;
}

}  // namespace ros
