#include "ros/intra_process.h"

namespace ros {

void IntraProcessRegistry::Register(const std::string& topic, uint16_t port,
                                    std::weak_ptr<Publication> publication) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_[Key{topic, port}] = std::move(publication);
}

void IntraProcessRegistry::Unregister(const std::string& topic,
                                      uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_.erase(Key{topic, port});
}

std::shared_ptr<Publication> IntraProcessRegistry::Find(
    const std::string& topic, uint16_t port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(Key{topic, port});
  return it == endpoints_.end() ? nullptr : it->second.lock();
}

size_t IntraProcessRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.size();
}

IntraProcessRegistry& intra_registry() {
  static auto* instance = new IntraProcessRegistry();
  return *instance;
}

}  // namespace ros
