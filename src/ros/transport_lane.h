// The pluggable per-subscriber delivery seam (DESIGN.md §13).
//
// After PR 7 a topic can reach a subscriber over three tiers — in-process
// pointer hand-off, inline TCP frames, shm descriptor + pin ledger — and
// `Publication::Publish` had grown into a branch ladder over per-link maps
// and side channels.  This header carves the seam that collapses it:
//
//   PublishContext   everything a publish produces, built EXACTLY ONCE per
//                    publish regardless of fan-out: the wire frame (shared
//                    payload + raw tagged prefix), the pre-encoded 48-byte
//                    shm descriptor frame, the pin-ledger sequence number,
//                    and the typed in-process handle.  Lanes only read it.
//
//   TransportLane    one subscriber's delivery path.  Publish is a loop of
//                    `lane->Offer(ctx)` over a snapshot — no tier branches,
//                    no per-publish map lookups, no per-link negotiation
//                    reads.  Concrete lanes: IntraLane (typed pointer
//                    hand-off), TcpLane (inline frames), ShmLane
//                    (descriptor + pin ledger, inline fallback).  A future
//                    UDP-multicast tier is one more subclass plus a
//                    LanePolicy row — nothing in Publication changes.
//
//   LanePolicy       the negotiation table.  Which tier a subscriber asks
//                    for at connect time, what the publisher grants in the
//                    handshake, and which lane an established link becomes
//                    — the rules that used to be spread across the
//                    handshake lambdas of publication.cpp and
//                    subscription.h, now one pure, exhaustively testable
//                    unit mirroring the DESIGN.md §12.4 matrix.
//
// Threading: Offer() is called from publisher threads (any number,
// concurrently); OnControlFrame/Close/Flush are loop-thread-only, like the
// Link callbacks that drive them.  Describe() is thread-safe.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "ros/intra_process.h"
#include "ros/serialized_message.h"

namespace ros {

/// One publish, prepared once and shared by every lane the fan-out visits.
/// The wire frame and descriptor frame alias shared buffers: offering the
/// context to N lanes costs N shared_ptr copies, never N encodes.
struct PublishContext {
  /// Wire payload holder — the serialized (or arena-aliased) bytes, also
  /// the unit the shm pin ledger parks until the subscriber acks.
  SerializedMessage payload;
  /// Finalized data frame: payload aliased under its raw (tag 0) prefix.
  /// Built by Publication from `payload`, exactly once per publish
  /// (shim::frame_builds proves it).
  rsf::net::OutFrame wire;
  /// Pre-encoded shm descriptor frame, when the payload resolved to a
  /// shared block (shim::descriptor_builds counts the one encode).
  /// Invalid when the tier is off, the payload is heap-backed, or no shm
  /// lane is live — shm lanes then deliver inline.
  rsf::net::OutFrame descriptor;
  /// Pin-ledger sequence number stamped into `descriptor`.
  uint64_t seq = 0;

  /// Typed in-process handle (type-erased shared_ptr<const M>) and its
  /// tier.  Absent for untyped publishes (bag replay) — intra lanes then
  /// skip this context.
  std::shared_ptr<const void> intra;
  IntraTier intra_tier = IntraTier::kWholeCopy;
  bool has_intra = false;

  [[nodiscard]] bool has_wire() const noexcept { return payload.valid(); }
  [[nodiscard]] bool empty() const noexcept {
    return !has_wire() && !has_intra;
  }
};

/// The publication's delivery counters, shared by every lane.  Lanes bump
/// these directly so the Publish loop carries no per-tier accounting
/// branches; Publication::Stats() reads them.  Relaxed telemetry.
struct LaneCounters {
  std::atomic<uint64_t> enqueued{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> intra_delivered{0};
  std::atomic<uint64_t> intra_zero_copy{0};
  std::atomic<uint64_t> intra_whole_copy{0};
  std::atomic<uint64_t> shm_descriptors{0};
  std::atomic<uint64_t> shm_inline{0};
};

enum class LaneKind : uint8_t { kIntra, kTcp, kShm };

/// Thread-safe snapshot of one lane for Stats()/NumSubscribers().
struct LaneDescription {
  LaneKind kind = LaneKind::kTcp;
  bool alive = true;  // intra lanes: subscriber still reachable
};

/// One subscriber's delivery path.  See the threading contract above.
class TransportLane {
 public:
  virtual ~TransportLane() = default;

  /// Offers one prepared publish to this lane.  Returns false when the
  /// lane is dead and should be culled from the fan-out (in-process
  /// subscriber gone); wire lanes always return true — their lifecycle is
  /// driven by Link callbacks, not by publish outcomes.
  virtual bool Offer(const PublishContext& ctx) = 0;

  /// A control frame arrived on this lane's link (`data` is the staged
  /// payload, FrameLength(raw) its size).  Loop-thread-only.
  virtual void OnControlFrame(uint32_t raw, const uint8_t* data) = 0;

  /// Releases everything the lane owns (peer slot, pin ledger, link) and
  /// accounts frames stranded behind it.  Loop-thread-only, idempotent.
  virtual void Close() = 0;

  /// Kicks queued wire frames toward the socket.  Loop-thread-only.
  virtual void Flush() {}

  [[nodiscard]] virtual LaneDescription Describe() const = 0;

  /// Identity hook for in-process lane removal (Publication::
  /// RemoveIntraLink keys on the subscriber's IntraLinkBase pointer).
  [[nodiscard]] virtual const IntraLinkBase* intra_link() const noexcept {
    return nullptr;
  }
};

/// Per-accepted-link context shared between the Link's callbacks and the
/// lane that the link becomes once established.  Written on the loop
/// thread (handshake, establishment); the handshake's negotiation outcome
/// decides the lane kind, and slot ownership transfers to the lane at
/// construction — until then OnLinkClosed releases it from here.
struct WireLaneContext {
  std::vector<uint8_t> control_buf;  // staging for inbound control frames
  // Shm negotiation outcome (EvaluateHandshake, loop thread).
  bool shm_negotiated = false;
  int shm_slot = -1;
  pid_t shm_pid = 0;
  // Set at establishment; control frames route through it.  Loop-confined.
  std::shared_ptr<TransportLane> lane;
};

/// The negotiation table: every tier decision in one testable unit.  The
/// rows mirror DESIGN.md §12.4 plus the §7 intra preference; tests cover
/// each cell (tests/ros/transport_lane_test.cpp).
class LanePolicy {
 public:
  // ---- subscriber side: which lane to ask for at connect time ----
  struct SubscriberSide {
    bool co_located = false;   // publisher's Publication lives here
    bool allow_intra = true;   // SubscribeOptions::allow_intra_process
    bool shaped = false;       // SimLink config models a remote machine
    bool serialization_free = false;  // SFM wire format (position-free)
    bool allow_shm = true;     // SubscribeOptions::allow_shm
    bool shm_enabled = false;  // RSF_TRANSPORT_SHM on this side
    bool loopback = false;     // endpoint host is this machine
  };
  enum class Plan : uint8_t {
    kIntra,          // register an in-process link, never dial
    kTcpRequestShm,  // dial TCP, ask for the shm tier in the handshake
    kTcp,            // dial TCP, plain inline frames
  };
  [[nodiscard]] static Plan PlanSubscriber(const SubscriberSide& in) noexcept;

  // ---- publisher side: what the handshake grants ----
  struct PublisherSide {
    bool shm_requested = false;   // header carried shm=1
    bool peer_pid_known = false;  // header carried shm_pid
    bool shm_enabled = false;     // RSF_TRANSPORT_SHM on this side
    bool slot_acquired = false;   // a peer refcount column was free
  };
  enum class Grant : uint8_t {
    kShm,              // reply carries shm_ns/shm_slot; link becomes ShmLane
    kTcpNotRequested,  // subscriber never asked; plain TCP, silent
    kTcpTierDisabled,  // asked, but the tier is off here; log + TCP
    kTcpNoSlot,        // asked, all peer slots busy; warn + TCP
  };
  [[nodiscard]] static Grant GrantWireTier(const PublisherSide& in) noexcept;

  /// Whether the handshake should even try to acquire a peer slot (the
  /// only side-effecting step; everything else above is pure).
  [[nodiscard]] static bool ShouldAttemptShm(const PublisherSide& in) noexcept {
    return in.shm_requested && in.peer_pid_known && in.shm_enabled;
  }

  // ---- established side: which lane a wire link becomes ----
  [[nodiscard]] static LaneKind WireLaneKind(bool shm_negotiated) noexcept {
    return shm_negotiated ? LaneKind::kShm : LaneKind::kTcp;
  }
};

/// Builds the lane for one activated in-process link.
std::shared_ptr<TransportLane> MakeIntraLane(
    std::shared_ptr<IntraLinkBase> link, LaneCounters* counters);

/// Builds the lane for one established wire link: a ShmLane when the
/// handshake negotiated the tier (taking over the peer slot recorded in
/// `ctx`), a TcpLane otherwise.  `max_pins` bounds the shm pin ledger
/// (drop-oldest; evictions count as publisher drops).
std::shared_ptr<TransportLane> MakeWireLane(
    const std::shared_ptr<WireLaneContext>& ctx,
    std::shared_ptr<rsf::net::Link> link, LaneCounters* counters,
    const std::string& topic, size_t max_pins);

}  // namespace ros
