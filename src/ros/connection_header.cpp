#include "ros/connection_header.h"

#include <cstdlib>

#include "common/endian.h"

namespace ros {

std::vector<uint8_t> EncodeConnectionHeader(const ConnectionHeader& header) {
  std::vector<uint8_t> out;
  for (const auto& [key, value] : header) {
    const std::string field = key + "=" + value;
    uint8_t length[4];
    rsf::StoreLE<uint32_t>(length, static_cast<uint32_t>(field.size()));
    out.insert(out.end(), length, length + 4);
    out.insert(out.end(), field.begin(), field.end());
  }
  return out;
}

rsf::Result<ConnectionHeader> DecodeConnectionHeader(const uint8_t* data,
                                                     size_t size) {
  ConnectionHeader header;
  size_t at = 0;
  while (at < size) {
    if (at + 4 > size) {
      return rsf::InvalidArgumentError("truncated header field length");
    }
    const auto length = rsf::LoadLE<uint32_t>(data + at);
    at += 4;
    if (at + length > size) {
      return rsf::InvalidArgumentError("truncated header field");
    }
    const std::string field(reinterpret_cast<const char*>(data + at), length);
    at += length;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return rsf::InvalidArgumentError("header field without '=': " + field);
    }
    header[field.substr(0, eq)] = field.substr(eq + 1);
  }
  return header;
}

ConnectionHeader MakeSubscriberHeader(const std::string& topic,
                                      const std::string& datatype,
                                      const std::string& md5sum,
                                      const std::string& callerid) {
  return ConnectionHeader{{"topic", topic},
                          {"type", datatype},
                          {"md5sum", md5sum},
                          {"callerid", callerid}};
}

rsf::Status ValidateSubscriberHeader(const ConnectionHeader& header,
                                     const std::string& topic,
                                     const std::string& datatype,
                                     const std::string& md5sum) {
  const auto get = [&](const char* key) -> const std::string* {
    const auto it = header.find(key);
    return it == header.end() ? nullptr : &it->second;
  };
  const std::string* got_topic = get("topic");
  if (got_topic == nullptr || *got_topic != topic) {
    return rsf::InvalidArgumentError("topic mismatch on " + topic);
  }
  const std::string* got_type = get("type");
  if (got_type == nullptr || (*got_type != datatype && *got_type != "*")) {
    return rsf::InvalidArgumentError(
        "datatype mismatch on " + topic + ": publisher offers " + datatype +
        ", subscriber wants " + (got_type ? *got_type : "<missing>"));
  }
  const std::string* got_md5 = get("md5sum");
  if (got_md5 == nullptr || (*got_md5 != md5sum && *got_md5 != "*")) {
    return rsf::InvalidArgumentError("md5sum mismatch on " + topic);
  }
  return rsf::Status::Ok();
}

void AddShmRequestFields(ConnectionHeader* header, pid_t pid) {
  (*header)["shm"] = "1";
  (*header)["shm_pid"] = std::to_string(pid);
}

ShmRequest ParseShmRequest(const ConnectionHeader& header) {
  ShmRequest request;
  const auto want = header.find("shm");
  request.requested = want != header.end() && want->second == "1";
  if (!request.requested) return request;
  const auto pid_field = header.find("shm_pid");
  if (pid_field != header.end()) {
    request.pid = static_cast<pid_t>(
        std::strtol(pid_field->second.c_str(), nullptr, 10));
    request.pid_known = true;
  }
  return request;
}

void AddShmGrantFields(ConnectionHeader* reply, const std::string& ns,
                       int slot) {
  (*reply)["shm"] = "1";
  (*reply)["shm_ns"] = ns;
  (*reply)["shm_slot"] = std::to_string(slot);
}

ShmGrant ParseShmGrant(const ConnectionHeader& reply, size_t max_slots) {
  ShmGrant grant;
  const auto shm = reply.find("shm");
  const auto ns = reply.find("shm_ns");
  const auto slot = reply.find("shm_slot");
  if (shm == reply.end() || shm->second != "1" || ns == reply.end() ||
      slot == reply.end()) {
    return grant;
  }
  const long parsed = std::strtol(slot->second.c_str(), nullptr, 10);
  if (parsed < 0 || static_cast<size_t>(parsed) >= max_slots ||
      ns->second.empty()) {
    return grant;
  }
  grant.granted = true;
  grant.ns = ns->second;
  grant.slot = static_cast<int>(parsed);
  return grant;
}

}  // namespace ros
