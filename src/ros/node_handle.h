// The developer-facing API — the same programming pattern as roscpp
// (paper Fig. 3):
//
//   ros::NodeHandle nh("pub");
//   ros::Publisher pub = nh.advertise<sensor_msgs::Image>("/image", 10);
//   ...
//   pub.publish(img);
//
//   ros::NodeHandle nh("sub");
//   ros::Subscriber sub = nh.subscribe<sensor_msgs::Image>(
//       "/image", 10, [](const sensor_msgs::Image::ConstPtr& msg) {...});
//   nh.spin();
//
// Swapping sensor_msgs::Image for sensor_msgs::sfm::Image — what the
// paper's regenerated headers do underneath unchanged source — flips the
// whole pipeline to the serialization-free path; nothing else changes.
#pragma once

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ros/callback_queue.h"
#include "ros/master.h"
#include "ros/message_traits.h"
#include "ros/publication.h"
#include "ros/subscription.h"

namespace ros {

/// Checksum negotiated on the wire.  Regular and SFM variants of a message
/// share the IDL MD5 but not the wire format, so the SFM side is marked —
/// mixing them on one topic is refused at the master and in the handshake.
template <Message M>
std::string TransportChecksum() {
  std::string md5 = M::Md5Sum();
  if constexpr (::sfm::is_sfm_message_v<M>) md5 += "-sfm";
  return md5;
}

/// Handle to an advertised topic; copyable, reference-counted.  The last
/// handle going out of scope tears the publication down (roscpp semantics).
class Publisher {
 public:
  Publisher() = default;

  /// Publishes a message the caller keeps owning (and may keep mutating).
  /// Wire subscribers get the wire form; co-located subscribers get the
  /// whole-copy tier — one clone, shared by all of them.  Everything a
  /// publish produces is built ONCE into a PublishContext and fanned out
  /// across all lanes in a single Publish call.
  template <Message M>
  void publish(const M& msg) const {
    CheckType<M>();
    PublishContext ctx;
    if (impl_->HasIntraLinks()) {
      ctx.intra = std::static_pointer_cast<const void>(
          Serializer<M>::ToShared(msg));
      ctx.intra_tier = IntraTier::kWholeCopy;
      ctx.has_intra = true;
    }
    if (impl_->HasTcpLinks()) ctx.payload = Serializer<M>::ToWire(msg);
    if (!ctx.empty()) impl_->Publish(std::move(ctx));
  }

  /// Publishing through a shared_ptr relinquishes mutation rights (roscpp's
  /// intra-process contract): co-located subscribers get the zero-copy tier
  /// — a handle aliasing this very message, no copy at all.
  template <Message M>
  void publish(const std::shared_ptr<const M>& msg) const {
    CheckType<M>();
    PublishContext ctx;
    if (impl_->HasIntraLinks()) {
      ctx.intra = std::static_pointer_cast<const void>(
          Serializer<M>::Borrow(msg));
      ctx.intra_tier = IntraTier::kZeroCopy;
      ctx.has_intra = true;
    }
    if (impl_->HasTcpLinks()) ctx.payload = Serializer<M>::ToWire(*msg);
    if (!ctx.empty()) impl_->Publish(std::move(ctx));
  }
  template <Message M>
  void publish(const std::shared_ptr<M>& msg) const {
    publish(std::shared_ptr<const M>(msg));
  }

  /// Publishing an rvalue hands the message over: regular messages move
  /// into shared ownership and ride the zero-copy tier; SFM messages clone
  /// once into a fresh arena (relocating an arena-backed skeleton away from
  /// its payloads would corrupt the relative offsets) and share that clone.
  template <typename T, Message M = std::remove_cvref_t<T>>
    requires(!std::is_lvalue_reference_v<T>)
  void publish(T&& msg) const {
    if constexpr (::sfm::is_sfm_message_v<M>) {
      publish(Serializer<M>::ToShared(msg));
    } else {
      publish(std::shared_ptr<const M>(std::make_shared<M>(std::move(msg))));
    }
  }

  [[nodiscard]] size_t getNumSubscribers() const {
    return impl_ ? impl_->NumSubscribers() : 0;
  }
  [[nodiscard]] std::string getTopic() const {
    return impl_ ? impl_->topic() : std::string();
  }
  /// Publisher-side delivery counters (TCP enqueues/drops, intra tiers).
  [[nodiscard]] PublicationStats getStats() const {
    return impl_ ? impl_->Stats() : PublicationStats{};
  }
  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  void shutdown() { impl_.reset(); }

 private:
  friend class NodeHandle;
  explicit Publisher(std::shared_ptr<Publication> impl)
      : impl_(std::move(impl)) {}

  template <Message M>
  void CheckType() const {
    SFM_CHECK_MSG(impl_ != nullptr, "publish on an invalid Publisher");
    SFM_CHECK_MSG(impl_->datatype() == M::DataType(),
                  "publish type does not match advertise type");
  }

  std::shared_ptr<Publication> impl_;
};

/// Handle to a subscription; copyable, reference-counted.
class Subscriber {
 public:
  Subscriber() = default;

  [[nodiscard]] std::string getTopic() const {
    return impl_ ? impl_->topic() : std::string();
  }
  [[nodiscard]] uint64_t receivedCount() const {
    return impl_ ? impl_->ReceivedCount() : 0;
  }
  [[nodiscard]] uint64_t droppedCount() const {
    return impl_ ? impl_->DroppedCount() : 0;
  }
  [[nodiscard]] uint64_t intraZeroCopyCount() const {
    return impl_ ? impl_->IntraZeroCopyCount() : 0;
  }
  [[nodiscard]] uint64_t intraWholeCopyCount() const {
    return impl_ ? impl_->IntraWholeCopyCount() : 0;
  }
  /// Cross-process deliveries that arrived through the shm tier (mapped
  /// and read in place, zero payload copies).
  [[nodiscard]] uint64_t shmZeroCopyCount() const {
    return impl_ ? impl_->ShmZeroCopyCount() : 0;
  }
  [[nodiscard]] size_t getNumPublishers() const {
    return impl_ ? impl_->NumPublishers() : 0;
  }
  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  void shutdown() {
    if (impl_) impl_->Shutdown();
    impl_.reset();
  }

 private:
  friend class NodeHandle;
  explicit Subscriber(std::shared_ptr<SubscriptionBase> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<SubscriptionBase> impl_;
};

class NodeHandle {
 public:
  explicit NodeHandle(std::string name = "node")
      : name_(std::move(name)),
        queue_(std::make_shared<CallbackQueue>()) {}

  ~NodeHandle() { shutdown(); }
  NodeHandle(const NodeHandle&) = delete;
  NodeHandle& operator=(const NodeHandle&) = delete;

  /// Declares a topic and returns the publishing handle (paper Fig. 3).
  template <Message M>
  Publisher advertise(const std::string& topic, size_t queue_size) {
    auto publication = Publication::Create(topic, M::DataType(),
                                           TransportChecksum<M>(), name_,
                                           queue_size, /*intra_capable=*/true);
    SFM_CHECK_MSG(publication.ok(), publication.status().ToString().c_str());
    const auto status = master().RegisterPublisher(
        topic, M::DataType(), TransportChecksum<M>(),
        TopicEndpoint{"127.0.0.1", (*publication)->port(), name_});
    if (!status.ok()) {
      (*publication)->Shutdown();
      throw std::runtime_error(status.ToString());
    }
    registered_publications_.push_back(
        {topic, TopicEndpoint{"127.0.0.1", (*publication)->port(), name_}});
    return Publisher(*std::move(publication));
  }

  /// Registers a callback for a topic (paper Fig. 3).  The callback runs on
  /// this node's callback queue, driven by spin()/spinOnce().
  template <Message M>
  Subscriber subscribe(
      const std::string& topic, size_t queue_size,
      std::function<void(const std::shared_ptr<const M>&)> callback,
      SubscribeOptions options = {}) {
    options.queue_size = queue_size;
    auto subscription =
        Subscription<M>::Create(topic, TransportChecksum<M>(), name_, options,
                                std::move(callback), queue_);
    if (!subscription.ok()) {
      throw std::runtime_error(subscription.status().ToString());
    }
    return Subscriber(*std::move(subscription));
  }

  /// Processes callbacks until shutdown() — ros::spin().
  void spin() { queue_->Spin(); }
  /// Processes one pending callback if any — ros::spinOnce().
  bool spinOnce() { return queue_->SpinOnce(); }
  bool spinOnceFor(uint64_t timeout_nanos) {
    return queue_->SpinOnceFor(timeout_nanos);
  }

  /// Stops spin() and unregisters this node's publishers from the master.
  void shutdown() {
    queue_->Shutdown();
    for (const auto& [topic, endpoint] : registered_publications_) {
      master().UnregisterPublisher(topic, endpoint);
    }
    registered_publications_.clear();
  }

  [[nodiscard]] const std::string& getName() const noexcept { return name_; }
  [[nodiscard]] std::shared_ptr<CallbackQueue> getCallbackQueue() const {
    return queue_;
  }

 private:
  std::string name_;
  std::shared_ptr<CallbackQueue> queue_;
  std::vector<std::pair<std::string, TopicEndpoint>> registered_publications_;
};

}  // namespace ros
