#include "ros/shm_transport.h"

#include <cstring>

namespace ros {
namespace {

void StoreLE32(uint8_t* out, uint32_t value) {
  out[0] = static_cast<uint8_t>(value);
  out[1] = static_cast<uint8_t>(value >> 8);
  out[2] = static_cast<uint8_t>(value >> 16);
  out[3] = static_cast<uint8_t>(value >> 24);
}

void StoreLE64(uint8_t* out, uint64_t value) {
  StoreLE32(out, static_cast<uint32_t>(value));
  StoreLE32(out + 4, static_cast<uint32_t>(value >> 32));
}

uint32_t LoadLE32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

uint64_t LoadLE64(const uint8_t* in) {
  return static_cast<uint64_t>(LoadLE32(in)) |
         (static_cast<uint64_t>(LoadLE32(in + 4)) << 32);
}

}  // namespace

std::shared_ptr<const uint8_t[]> EncodeShmDescriptorFrame(
    const sfm::shm::Descriptor& descriptor) {
  auto frame = std::shared_ptr<uint8_t[]>(new uint8_t[kShmDescriptorSize]);
  uint8_t* out = frame.get();
  StoreLE32(out + 0, kShmDescriptorMagic);
  StoreLE32(out + 4, descriptor.block_index);
  StoreLE64(out + 8, descriptor.pool_id);
  StoreLE32(out + 16, descriptor.gen);
  StoreLE32(out + 20, 0);  // reserved
  StoreLE64(out + 24, descriptor.offset);
  StoreLE64(out + 32, descriptor.length);
  StoreLE64(out + 40, descriptor.seq);
  return frame;
}

bool DecodeShmDescriptor(const uint8_t* data, size_t size,
                         sfm::shm::Descriptor* out) {
  if (size != kShmDescriptorSize) return false;
  if (LoadLE32(data) != kShmDescriptorMagic) return false;
  out->block_index = LoadLE32(data + 4);
  out->pool_id = LoadLE64(data + 8);
  out->gen = LoadLE32(data + 16);
  out->offset = LoadLE64(data + 24);
  out->length = LoadLE64(data + 32);
  out->seq = LoadLE64(data + 40);
  return true;
}

std::shared_ptr<const uint8_t[]> EncodeShmControlFrame(ShmControlKind kind,
                                                       uint64_t seq) {
  auto frame = std::shared_ptr<uint8_t[]>(new uint8_t[kShmControlSize]);
  uint8_t* out = frame.get();
  StoreLE32(out + 0, kShmControlMagic);
  out[4] = static_cast<uint8_t>(kind);
  out[5] = out[6] = out[7] = 0;
  StoreLE64(out + 8, seq);
  return frame;
}

bool DecodeShmControl(const uint8_t* data, size_t size, ShmControlKind* kind,
                      uint64_t* seq) {
  if (size != kShmControlSize) return false;
  if (LoadLE32(data) != kShmControlMagic) return false;
  if (data[4] > static_cast<uint8_t>(ShmControlKind::kDisable)) return false;
  *kind = static_cast<ShmControlKind>(data[4]);
  *seq = LoadLE64(data + 8);
  return true;
}

rsf::Result<std::shared_ptr<uint8_t[]>> ShmMapDescriptor(
    ShmSubState& state, const sfm::shm::Descriptor& descriptor,
    size_t min_length) {
  if (state.slot < 0 ||
      static_cast<size_t>(state.slot) >= sfm::shm::kMaxPeers) {
    return rsf::FailedPreconditionError("shm peer slot never negotiated");
  }

  std::shared_ptr<sfm::shm::SegmentView> view;
  const auto it = state.segments.find(descriptor.pool_id);
  if (it != state.segments.end()) {
    view = it->second;
  } else {
    auto attached = sfm::shm::AttachSegment(state.ns, descriptor.pool_id);
    if (!attached.ok()) return attached.status();
    view = *std::move(attached);
    state.segments.emplace(descriptor.pool_id, view);
  }

  // Geometry checks: a descriptor must point exactly at a block start, fit
  // inside its block, and satisfy the caller's type.  Anything else means a
  // corrupted or hostile descriptor — leave the tier, never read through it.
  const sfm::shm::SegmentHeader& header = view->header();
  if (descriptor.block_index >= header.block_count) {
    return rsf::OutOfRangeError("shm descriptor block index out of range");
  }
  if (descriptor.offset !=
      header.data_offset +
          static_cast<uint64_t>(descriptor.block_index) *
              header.block_class) {
    return rsf::OutOfRangeError("shm descriptor offset is not a block start");
  }
  if (descriptor.length == 0 || descriptor.length > header.block_class ||
      descriptor.offset + descriptor.length > view->bytes()) {
    return rsf::OutOfRangeError("shm descriptor length out of range");
  }
  if (descriptor.length < min_length) {
    return rsf::OutOfRangeError("shm payload smaller than the skeleton");
  }

  // The fence protocol, reader side: take our peer reference FIRST, then
  // re-check the generation.  A recycle that raced us either sees our
  // reference on its recheck and aborts, or bumped the generation before
  // our check — in which case we back out here (seq_cst on both sides
  // forbids the both-miss outcome).
  sfm::shm::BlockCtl* ctl = view->ctl(descriptor.block_index);
  ctl->refs[state.slot].fetch_add(1, std::memory_order_seq_cst);
  if (ctl->gen.load(std::memory_order_seq_cst) != descriptor.gen) {
    ctl->refs[state.slot].fetch_sub(1, std::memory_order_seq_cst);
    return rsf::UnavailableError(
        "shm block recycled before read (publisher evicted its pin)");
  }
  // The acquire edge that orders the publisher's payload writes (all before
  // its stamp store) before our reads through the aliased buffer.  `>=`
  // rather than `==`: republishing the same message re-stamps the block
  // with a later seq without changing the bytes.
  if (ctl->stamp.load(std::memory_order_acquire) < descriptor.seq) {
    ctl->refs[state.slot].fetch_sub(1, std::memory_order_seq_cst);
    return rsf::UnavailableError("shm block stamp behind its descriptor");
  }

  auto token = std::make_shared<sfm::shm::RefToken>(view, ctl, state.slot);
  // Aliased: the buffer points into the mapped block, ownership is the
  // token — its destructor drops the peer reference, and its SegmentView
  // keeps the mapping alive for as long as any message does.
  return std::shared_ptr<uint8_t[]>(std::move(token),
                                    view->block(descriptor.block_index));
}

}  // namespace ros
