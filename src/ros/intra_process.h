// In-process transport: the zero-copy fast path negotiated when publisher
// and subscriber live in the same process.
//
// The TCPROS data plane (publication.h / subscription.h) always works, but
// co-located endpoints do not need it: every byte a loopback socket moves
// is a `ToWire` copy, a kernel round-trip, and a receive-arena copy that a
// pointer hand-off avoids entirely (TZC and ROS 2's Agnocast make the same
// observation).  At connect time a Subscription<M> that finds the
// publisher's Publication in this process — via the registry below, keyed
// by the (topic, port) pair the master hands out — registers a direct
// IntraLink with it instead of dialing TCP.
//
// Delivery has two tiers (see DESIGN.md §8):
//
//   whole-copy  publish(const M&): the publisher may keep mutating the
//               message, so each publish clones it once (for SFM messages a
//               single arena memcpy via MessageManager::TryWholeCopy — no
//               per-field serialization) and every in-process subscriber
//               shares the clone.
//
//   zero-copy   publish(shared_ptr<const M>) / publish(std::move(msg)):
//               ownership is relinquished or shared, so subscribers receive
//               a shared_ptr<const M> aliasing the publisher's message; for
//               SFM messages it pins the manager's buffer pointer, so the
//               arena is released only when the last subscriber drops it.
//
// TCP remains the transport for SimLink-shaped subscriptions (the simulated
// two-machine topologies), for subscriptions that opt out
// (SubscribeOptions::allow_intra_process = false), and as the fallback for
// endpoints that never registered here (e.g. bag replay, which fans out
// untyped wire frames).
//
// Accounting: an in-process delivery attempt flows through the SAME
// publisher-side enqueued/dropped counters as a TCP frame (an attempt on a
// dead link is a drop), so Publication::SentCount() and PublicationStats
// describe the topic across both transports, not one wire.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace ros {

class Publication;

/// Which delivery tier produced an in-process message.
enum class IntraTier : uint8_t {
  kWholeCopy,  // subscriber got its own clone (one memcpy, no serialization)
  kZeroCopy,   // subscriber aliases the publisher's message (no copy at all)
};

/// Type-erased subscriber endpoint of one in-process link.  The concrete
/// Subscription<M>::IntraLink downcasts the void pointer back to
/// shared_ptr<const M>; type safety comes from the transport-checksum
/// handshake performed by Publication::AddIntraLink before the link is
/// accepted, exactly mirroring the TCPROS header exchange.
class IntraLinkBase {
 public:
  virtual ~IntraLinkBase() = default;

  /// Delivers one message (a type-erased shared_ptr<const M>).  Returns
  /// false if the subscriber is gone; the publication then culls the link.
  virtual bool Deliver(const std::shared_ptr<const void>& message,
                       IntraTier tier) = 0;

  /// False once the subscriber shut down (used for counting and culling).
  [[nodiscard]] virtual bool alive() const noexcept = 0;

  /// Negotiated transport checksum (md5, "-sfm"-marked for SFM variants).
  [[nodiscard]] virtual const std::string& transport_md5() const noexcept = 0;

  [[nodiscard]] virtual const std::string& callerid() const noexcept = 0;
};

/// Process-wide map from the master's (topic, port) endpoint coordinates to
/// the live Publication behind them.  Only *typed* publishers register
/// (NodeHandle::advertise): an untyped Publication (bag replay) moves wire
/// frames and cannot feed typed in-process links, so lookups for it miss
/// and the subscriber falls back to TCP.
class IntraProcessRegistry {
 public:
  IntraProcessRegistry() = default;
  IntraProcessRegistry(const IntraProcessRegistry&) = delete;
  IntraProcessRegistry& operator=(const IntraProcessRegistry&) = delete;

  void Register(const std::string& topic, uint16_t port,
                std::weak_ptr<Publication> publication);
  void Unregister(const std::string& topic, uint16_t port);

  /// The live Publication listening on (topic, port), or nullptr if none
  /// registered here (remote endpoint, untyped publisher, or torn down).
  [[nodiscard]] std::shared_ptr<Publication> Find(const std::string& topic,
                                                  uint16_t port) const;

  /// Number of registered (live or not-yet-expired) endpoints (tests).
  [[nodiscard]] size_t Size() const;

 private:
  using Key = std::pair<std::string, uint16_t>;
  mutable std::mutex mutex_;
  std::map<Key, std::weak_ptr<Publication>> endpoints_;
};

/// The process-wide registry (leaked, like ros::master(): unwinding node
/// threads may still unregister at process exit).
IntraProcessRegistry& intra_registry();

}  // namespace ros
