// The name service: tracks which topics are published where and tells
// subscribers about new publishers.
//
// In ROS1 this is the XML-RPC rosmaster process; here the node graph runs
// as threads in one process (DESIGN.md, deviations), so the master is an
// in-process registry with callback-based publisher-update notifications —
// the same control-plane contract, without the RPC encoding.  The data
// plane (message frames) still flows over real loopback TCP sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ros {

struct TopicEndpoint {
  std::string host;
  uint16_t port = 0;
  std::string callerid;

  friend bool operator==(const TopicEndpoint& a,
                         const TopicEndpoint& b) noexcept {
    return a.host == b.host && a.port == b.port && a.callerid == b.callerid;
  }
};

struct TopicInfo {
  std::string name;
  std::string datatype;
  std::string md5sum;
  size_t publisher_count = 0;
  size_t subscriber_count = 0;
};

/// Notified with every publisher endpoint for a subscribed topic: existing
/// ones at registration time, new ones as they appear.  Callbacks run on
/// whichever thread registers the publisher and MUST NOT block: since PR 4
/// every subscriber connect is a nonblocking Link::Dial that completes on a
/// reactor loop, so a notify callback only allocates link state and returns.
using PublisherUpdateFn = std::function<void(const TopicEndpoint&)>;

class Master {
 public:
  Master() = default;
  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Registers a publisher; notifies current subscribers of the topic.
  /// kFailedPrecondition if the topic exists with a different type.
  rsf::Status RegisterPublisher(const std::string& topic,
                                const std::string& datatype,
                                const std::string& md5sum,
                                const TopicEndpoint& endpoint);

  void UnregisterPublisher(const std::string& topic,
                           const TopicEndpoint& endpoint);

  /// Registers a subscriber; `on_publisher` fires synchronously for every
  /// existing publisher and later for each new one.  Returns a subscriber
  /// id for unregistration.
  rsf::Result<uint64_t> RegisterSubscriber(const std::string& topic,
                                           const std::string& datatype,
                                           const std::string& md5sum,
                                           PublisherUpdateFn on_publisher);

  void UnregisterSubscriber(const std::string& topic, uint64_t id);

  /// Topic table snapshot (rostopic-list flavoured introspection).
  [[nodiscard]] std::vector<TopicInfo> Topics() const;

  /// Publisher endpoints currently registered for `topic`.
  [[nodiscard]] std::vector<TopicEndpoint> PublishersOf(
      const std::string& topic) const;

  /// Drops all registrations (tests / process shutdown).
  void Reset();

 private:
  struct Topic {
    std::string datatype;
    std::string md5sum;
    std::vector<TopicEndpoint> publishers;
    std::map<uint64_t, PublisherUpdateFn> subscribers;
  };

  rsf::Status CheckTypeLocked(Topic& topic, const std::string& datatype,
                              const std::string& md5sum,
                              const std::string& topic_name);

  mutable std::mutex mutex_;
  std::map<std::string, Topic> topics_;
  uint64_t next_subscriber_id_ = 1;
};

/// The process-wide master instance.
Master& master();

}  // namespace ros
