// Bag files: record and play back topic traffic, the rosbag workflow the
// ROS ecosystem (and the paper's TUM-dataset playback node) relies on.
//
// Format (little-endian):
//   magic "RSFBAG\x01\n"
//   per record:
//     uint32 topic_len,   topic bytes
//     uint32 type_len,    datatype bytes
//     uint32 md5_len,     md5 bytes
//     uint64 stamp_nanos  (wall-clock receive time)
//     uint32 payload_len, payload bytes (the wire-format frame body)
//
// Records hold the WIRE form, so a bag written from an SFM topic stores the
// arena bytes verbatim (zero serialization, like the live path) and can be
// replayed into SFM subscribers unchanged.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "ros/serialized_message.h"

namespace ros {

struct BagRecord {
  std::string topic;
  std::string datatype;
  std::string md5sum;
  uint64_t stamp_nanos = 0;
  std::vector<uint8_t> payload;
};

class BagWriter {
 public:
  /// Opens (truncates) `path` and writes the magic.
  static rsf::Result<BagWriter> Open(const std::string& path);

  BagWriter(BagWriter&&) = default;
  BagWriter& operator=(BagWriter&&) = default;

  /// Appends one record.
  rsf::Status Write(const std::string& topic, const std::string& datatype,
                    const std::string& md5sum, uint64_t stamp_nanos,
                    const uint8_t* payload, size_t payload_size);

  rsf::Status Write(const BagRecord& record) {
    return Write(record.topic, record.datatype, record.md5sum,
                 record.stamp_nanos, record.payload.data(),
                 record.payload.size());
  }

  [[nodiscard]] uint64_t record_count() const noexcept { return records_; }

  /// Flushes and closes; further writes fail.
  rsf::Status Close();

 private:
  explicit BagWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
  uint64_t records_ = 0;
};

class BagReader {
 public:
  /// Opens `path` and validates the magic.
  static rsf::Result<BagReader> Open(const std::string& path);

  BagReader(BagReader&&) = default;
  BagReader& operator=(BagReader&&) = default;

  /// Reads the next record; kNotFound at clean end-of-bag, other codes on
  /// corruption.
  rsf::Result<BagRecord> Next();

  /// Reads all remaining records.
  rsf::Result<std::vector<BagRecord>> ReadAll();

 private:
  explicit BagReader(std::ifstream in) : in_(std::move(in)) {}
  std::ifstream in_;
};

/// Subscribes to a topic (type-erased: any datatype, checksum "*") and
/// records every frame into a writer — the `rosbag record` role.  Works for
/// regular and SFM topics alike since both are opaque frames on the wire.
class TopicRecorder {
 public:
  /// `writer` must outlive the recorder.
  TopicRecorder(const std::string& topic, BagWriter* writer);
  ~TopicRecorder();
  TopicRecorder(const TopicRecorder&) = delete;
  TopicRecorder& operator=(const TopicRecorder&) = delete;

  [[nodiscard]] uint64_t recorded() const;

  void Shutdown();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Plays a bag back into fresh publications — the `rosbag play` role.
/// Respects inter-record timing scaled by `rate` (0 = as fast as possible).
/// Returns the number of records published.
rsf::Result<uint64_t> PlayBag(const std::string& path, double rate = 0.0);

}  // namespace ros
