#include "ros/publication.h"

#include "common/log.h"
#include "net/framing.h"
#include "ros/connection_header.h"

namespace ros {

rsf::Result<std::shared_ptr<Publication>> Publication::Create(
    const std::string& topic, const std::string& datatype,
    const std::string& md5sum, const std::string& callerid,
    size_t queue_size) {
  auto listener = rsf::net::TcpListener::Listen(0);
  if (!listener.ok()) return listener.status();
  auto publication = std::shared_ptr<Publication>(
      new Publication(topic, datatype, md5sum, callerid, queue_size,
                      *std::move(listener)));
  publication->Start();
  return publication;
}

Publication::Publication(const std::string& topic, const std::string& datatype,
                         const std::string& md5sum,
                         const std::string& callerid, size_t queue_size,
                         rsf::net::TcpListener listener)
    : topic_(topic),
      datatype_(datatype),
      md5sum_(md5sum),
      callerid_(callerid),
      queue_size_(queue_size == 0 ? 1 : queue_size),
      listener_(std::move(listener)),
      port_(listener_.port()) {}

void Publication::Start() {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

Publication::~Publication() { Shutdown(); }

bool Publication::Handshake(rsf::net::TcpConnection& conn) {
  // Read the subscriber's connection header frame.
  std::vector<uint8_t> request;
  uint32_t length = 0;
  const auto read_status = rsf::net::ReadFrame(
      conn,
      [&](uint32_t len) {
        request.resize(len == 0 ? 1 : len);
        return request.data();
      },
      &length);
  if (!read_status.ok()) return false;

  auto header = DecodeConnectionHeader(request.data(), length);
  rsf::Status valid = header.ok()
                          ? ValidateSubscriberHeader(*header, topic_,
                                                     datatype_, md5sum_)
                          : header.status();

  ConnectionHeader reply;
  if (valid.ok()) {
    reply = {{"type", datatype_}, {"md5sum", md5sum_}, {"callerid", callerid_}};
  } else {
    reply = {{"error", valid.ToString()}};
    RSF_WARN("rejecting subscriber on %s: %s", topic_.c_str(),
             valid.ToString().c_str());
  }
  const auto encoded = EncodeConnectionHeader(reply);
  if (!rsf::net::WriteFrame(conn, encoded).ok()) return false;
  return valid.ok();
}

void Publication::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (!shutdown_.load(std::memory_order_acquire)) {
        RSF_DEBUG("accept on %s ended: %s", topic_.c_str(),
                  conn.status().ToString().c_str());
      }
      return;
    }
    (void)conn->SetNoDelay(true);
    if (!Handshake(*conn)) continue;

    auto link = std::make_unique<SubscriberLink>(*std::move(conn), queue_size_);
    SubscriberLink* raw = link.get();
    raw->sender = std::thread([this, raw] { SenderLoop(raw); });
    std::lock_guard<std::mutex> lock(links_mutex_);
    links_.push_back(std::move(link));
  }
}

void Publication::SenderLoop(SubscriberLink* link) {
  while (true) {
    // Drain whatever is queued in one lock acquisition; each message still
    // goes out as its own frame (one gathered syscall per frame).
    auto batch = link->queue.PopAll();
    if (batch.empty()) return;  // queue shut down and drained
    for (const auto& message : batch) {
      const auto status = rsf::net::WriteFrame(
          link->connection,
          std::span<const uint8_t>(message.data.get(), message.size));
      if (!status.ok()) {
        link->dead.store(true, std::memory_order_release);
        return;  // subscriber went away; the link is culled on next publish
      }
    }
  }
}

void Publication::Publish(SerializedMessage message) {
  // Cull links whose sender hit a broken pipe: unhook them under the lock,
  // but Shutdown()/join() after releasing it — joining a sender that is
  // blocked in a multi-megabyte send would otherwise stall every other
  // publisher of this topic behind links_mutex_.
  std::vector<std::unique_ptr<SubscriberLink>> reaped;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    for (auto it = links_.begin(); it != links_.end();) {
      if ((*it)->dead.load(std::memory_order_acquire)) {
        reaped.push_back(std::move(*it));
        it = links_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& link : links_) {
      // Aliased shared buffer: fan-out costs one shared_ptr copy per link.
      link->queue.Push(message);
      sent_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (const auto& link : reaped) {
    link->queue.Shutdown();
    link->sender.join();
  }
}

size_t Publication::NumSubscribers() const {
  std::lock_guard<std::mutex> lock(links_mutex_);
  size_t alive = 0;
  for (const auto& link : links_) {
    if (!link->dead.load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

void Publication::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  listener_.Close();  // unblocks Accept
  if (accept_thread_.joinable()) accept_thread_.join();

  std::lock_guard<std::mutex> lock(links_mutex_);
  for (const auto& link : links_) {
    link->queue.Shutdown();
    link->connection.ShutdownBoth();
    if (link->sender.joinable()) link->sender.join();
  }
  links_.clear();
}

}  // namespace ros
