#include "ros/publication.h"

#include <algorithm>

#include "common/clock.h"
#include "common/log.h"
#include "net/framing.h"
#include "ros/connection_header.h"

namespace ros {

rsf::Result<std::shared_ptr<Publication>> Publication::Create(
    const std::string& topic, const std::string& datatype,
    const std::string& md5sum, const std::string& callerid,
    size_t queue_size, bool intra_capable) {
  auto listener = rsf::net::TcpListener::Listen(0);
  if (!listener.ok()) return listener.status();
  auto publication = std::shared_ptr<Publication>(
      new Publication(topic, datatype, md5sum, callerid, queue_size,
                      *std::move(listener)));
  if (intra_capable) {
    // Register before Start() and before the caller announces the endpoint
    // to the master, so a subscriber notified of (topic, port) always finds
    // the publication here.
    publication->intra_registered_ = true;
    intra_registry().Register(topic, publication->port_, publication);
  }
  publication->Start();
  return publication;
}

Publication::Publication(const std::string& topic, const std::string& datatype,
                         const std::string& md5sum,
                         const std::string& callerid, size_t queue_size,
                         rsf::net::TcpListener listener)
    : topic_(topic),
      datatype_(datatype),
      md5sum_(md5sum),
      callerid_(callerid),
      queue_size_(queue_size == 0 ? 1 : queue_size),
      listener_(std::move(listener)),
      port_(listener_.port()),
      reactor_mode_(rsf::net::ReactorTransportEnabled()) {}

void Publication::Start() {
  if (!reactor_mode_) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return;
  }
  loop_ = rsf::net::Reactor::Get().NextLoop();
  (void)listener_.SetNonBlocking(true);
  std::weak_ptr<Publication> weak = shared_from_this();
  const int fd = listener_.fd();
  loop_->RunInLoop([weak, fd, loop = loop_] {
    auto self = weak.lock();
    if (self == nullptr) return;
    loop->Add(fd, rsf::net::kEventReadable, [weak](uint32_t) {
      if (auto alive = weak.lock()) alive->OnAcceptReady();
    });
  });
}

Publication::~Publication() { Shutdown(); }

/// Decides a subscriber's fate from its connection-header bytes and
/// produces the reply frame.  Shared by both transport modes.
bool Publication::EvaluateHandshake(const uint8_t* request, uint32_t length,
                                    std::vector<uint8_t>* reply_frame) {
  auto header = DecodeConnectionHeader(request, length);
  rsf::Status valid = header.ok()
                          ? ValidateSubscriberHeader(*header, topic_,
                                                     datatype_, md5sum_)
                          : header.status();

  ConnectionHeader reply;
  if (valid.ok()) {
    reply = {{"type", datatype_}, {"md5sum", md5sum_}, {"callerid", callerid_}};
  } else {
    reply = {{"error", valid.ToString()}};
    RSF_WARN("rejecting subscriber on %s: %s", topic_.c_str(),
             valid.ToString().c_str());
  }
  *reply_frame = EncodeConnectionHeader(reply);
  return valid.ok();
}

bool Publication::Handshake(rsf::net::TcpConnection& conn) {
  // Read the subscriber's connection header frame.
  std::vector<uint8_t> request;
  uint32_t length = 0;
  const auto read_status = rsf::net::ReadFrame(
      conn,
      [&](uint32_t len) {
        request.resize(len == 0 ? 1 : len);
        return request.data();
      },
      &length);
  if (!read_status.ok()) return false;

  std::vector<uint8_t> reply;
  const bool accepted = EvaluateHandshake(request.data(), length, &reply);
  if (!rsf::net::WriteFrame(conn, reply).ok()) return false;
  return accepted;
}

// ---- reactor mode ----

void Publication::OnAcceptReady() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    rsf::net::TcpConnection conn;
    auto got = listener_.TryAccept(&conn);
    if (!got.ok()) {
      // Terminal listener failure (normally: Shutdown closed it).
      loop_->Remove(listener_.fd());
      return;
    }
    if (!*got) return;  // backlog drained
    (void)conn.SetNonBlocking(true);
    (void)rsf::net::ApplyTransportSocketOptions(conn);
    auto peer = std::make_shared<PendingPeer>(std::move(conn));
    pending_peers_.push_back(peer);
    std::weak_ptr<Publication> weak = weak_from_this();
    loop_->Add(peer->connection.fd(), rsf::net::kEventReadable,
               [weak, peer](uint32_t events) {
                 if (auto self = weak.lock()) self->OnPeerEvent(peer, events);
               });
  }
}

void Publication::OnPeerEvent(const std::shared_ptr<PendingPeer>& peer,
                              uint32_t events) {
  if (!peer->reply_queued && (events & rsf::net::kEventReadable)) {
    uint32_t length = 0;
    auto step = peer->reader.Poll(
        peer->connection,
        [&](uint32_t len) {
          peer->request.resize(len == 0 ? 1 : len);
          return peer->request.data();
        },
        &length);
    if (!step.ok()) {
      DropPeer(peer);
      return;
    }
    if (*step == rsf::net::FrameReader::Step::kNeedMore) return;

    std::vector<uint8_t> reply;
    peer->accepted = EvaluateHandshake(peer->request.data(), length, &reply);
    auto frame = std::shared_ptr<uint8_t[]>(new uint8_t[reply.size()]);
    std::copy(reply.begin(), reply.end(), frame.get());
    peer->writer.Enqueue(std::move(frame),
                         static_cast<uint32_t>(reply.size()));
    peer->reply_queued = true;
  }
  if (peer->reply_queued) FinishHandshake(peer);
}

void Publication::FinishHandshake(const std::shared_ptr<PendingPeer>& peer) {
  if (!peer->writer.Flush(peer->connection).ok()) {
    DropPeer(peer);
    return;
  }
  if (peer->writer.HasPending()) {
    // Reply didn't fit (pathological for a ~100-byte header, but legal):
    // resume on writability.
    loop_->SetInterest(peer->connection.fd(),
                       rsf::net::kEventReadable | rsf::net::kEventWritable);
    return;
  }
  if (peer->accepted) {
    PromotePeer(peer);
  } else {
    DropPeer(peer);
  }
}

void Publication::PromotePeer(const std::shared_ptr<PendingPeer>& peer) {
  const int fd = peer->connection.fd();
  loop_->Remove(fd);
  std::erase(pending_peers_, peer);
  auto link = std::make_shared<ReactorLink>(std::move(peer->connection));
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    reactor_links_.push_back(link);
  }
  std::weak_ptr<Publication> weak = weak_from_this();
  loop_->Add(fd, rsf::net::kEventReadable, [weak, link](uint32_t events) {
    if (auto self = weak.lock()) self->OnLinkEvent(link, events);
  });
}

void Publication::DropPeer(const std::shared_ptr<PendingPeer>& peer) {
  loop_->Remove(peer->connection.fd());
  peer->connection.Close();
  std::erase(pending_peers_, peer);
}

void Publication::OnLinkEvent(const std::shared_ptr<ReactorLink>& link,
                              uint32_t events) {
  if (events & rsf::net::kEventReadable) {
    // Subscribers never speak after the handshake: readable means close,
    // reset, or stray bytes (drained and ignored).
    uint8_t sink[1024];
    for (;;) {
      auto n = link->connection.ReadSome(sink);
      if (!n.ok()) {
        RemoveLink(link);
        return;
      }
      if (*n == 0) break;
    }
  }
  if (events & rsf::net::kEventWritable) FlushLink(link);
}

void Publication::FlushLink(const std::shared_ptr<ReactorLink>& link) {
  rsf::Status status;
  bool pending;
  {
    std::lock_guard<std::mutex> lock(link->mutex);
    status = link->writer.Flush(link->connection);
    pending = link->writer.HasPending();
  }
  if (!status.ok()) {
    RemoveLink(link);
    return;
  }
  if (pending != link->writable_armed) {
    link->writable_armed = pending;
    loop_->SetInterest(
        link->connection.fd(),
        rsf::net::kEventReadable |
            (pending ? rsf::net::kEventWritable : 0u));
  }
}

void Publication::RemoveLink(const std::shared_ptr<ReactorLink>& link) {
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    auto it = std::find(reactor_links_.begin(), reactor_links_.end(), link);
    if (it == reactor_links_.end()) return;  // already removed
    reactor_links_.erase(it);
  }
  size_t stranded;
  {
    std::lock_guard<std::mutex> lock(link->mutex);
    stranded = link->writer.PendingFrames();
  }
  // Frames still queued behind the broken connection are lost.
  dropped_.fetch_add(stranded, std::memory_order_relaxed);
  loop_->Remove(link->connection.fd());
  link->connection.Close();
}

void Publication::AcceptLoop() {
  // Transient accept failures (aborted handshakes, fd exhaustion) back off
  // and retry instead of killing the listener for every future subscriber.
  constexpr uint64_t kInitialBackoffNanos = 1'000'000;     // 1 ms
  constexpr uint64_t kMaxBackoffNanos = 500'000'000;       // 500 ms
  uint64_t backoff_nanos = kInitialBackoffNanos;
  while (!shutdown_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (conn.status().code() == rsf::StatusCode::kResourceExhausted) {
        RSF_WARN("accept on %s failed transiently (%s); retrying in %llu ms",
                 topic_.c_str(), conn.status().ToString().c_str(),
                 static_cast<unsigned long long>(backoff_nanos / 1'000'000));
        rsf::SleepForNanos(backoff_nanos);
        backoff_nanos = std::min(backoff_nanos * 2, kMaxBackoffNanos);
        continue;
      }
      RSF_DEBUG("accept on %s ended: %s", topic_.c_str(),
                conn.status().ToString().c_str());
      return;
    }
    backoff_nanos = kInitialBackoffNanos;
    (void)rsf::net::ApplyTransportSocketOptions(*conn);
    if (!Handshake(*conn)) continue;

    auto link = std::make_unique<SubscriberLink>(*std::move(conn), queue_size_);
    SubscriberLink* raw = link.get();
    raw->sender = std::thread([this, raw] { SenderLoop(raw); });
    std::lock_guard<std::mutex> lock(links_mutex_);
    links_.push_back(std::move(link));
  }
}

void Publication::SenderLoop(SubscriberLink* link) {
  while (true) {
    // Drain whatever is queued in one lock acquisition; each message still
    // goes out as its own frame (one gathered syscall per frame).
    auto batch = link->queue.PopAll();
    if (batch.empty()) return;  // queue shut down and drained
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& message = batch[i];
      const auto status = rsf::net::WriteFrame(
          link->connection,
          std::span<const uint8_t>(message.data.get(), message.size));
      if (!status.ok()) {
        // This frame and the rest of the batch never reached the wire.
        dropped_.fetch_add(batch.size() - i, std::memory_order_relaxed);
        link->dead.store(true, std::memory_order_release);
        return;  // subscriber went away; the link is culled on next publish
      }
    }
  }
}

void Publication::Publish(SerializedMessage message) {
  if (reactor_mode_) {
    // Enqueue onto every link's frame queue (aliased shared buffer: one
    // shared_ptr copy per link), then kick the loop once to flush them all.
    std::vector<std::shared_ptr<ReactorLink>> snapshot;
    {
      std::lock_guard<std::mutex> lock(links_mutex_);
      snapshot = reactor_links_;
    }
    if (snapshot.empty()) return;
    for (const auto& link : snapshot) {
      enqueued_.fetch_add(1, std::memory_order_relaxed);
      bool evicted;
      {
        std::lock_guard<std::mutex> lock(link->mutex);
        evicted = link->writer.Enqueue(
            message.data, static_cast<uint32_t>(message.size), queue_size_);
      }
      if (evicted) dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    // Coalesced wake-up: back-to-back publishes share one loop task.  The
    // flag resets BEFORE flushing so a publish racing with the flush always
    // either lands its frames in a writer the flush is about to drain, or
    // wins the exchange and schedules the next kick.
    if (!kick_pending_.exchange(true, std::memory_order_acq_rel)) {
      std::weak_ptr<Publication> weak = weak_from_this();
      loop_->RunInLoop([weak] {
        auto self = weak.lock();
        if (self == nullptr) return;
        self->kick_pending_.store(false, std::memory_order_release);
        std::vector<std::shared_ptr<ReactorLink>> links;
        {
          std::lock_guard<std::mutex> lock(self->links_mutex_);
          links = self->reactor_links_;
        }
        for (const auto& link : links) self->FlushLink(link);
      });
    }
    return;
  }

  // Cull links whose sender hit a broken pipe: unhook them under the lock,
  // but Shutdown()/join() after releasing it — joining a sender that is
  // blocked in a multi-megabyte send would otherwise stall every other
  // publisher of this topic behind links_mutex_.
  std::vector<std::unique_ptr<SubscriberLink>> reaped;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    for (auto it = links_.begin(); it != links_.end();) {
      if ((*it)->dead.load(std::memory_order_acquire)) {
        reaped.push_back(std::move(*it));
        it = links_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& link : links_) {
      // Aliased shared buffer: fan-out costs one shared_ptr copy per link.
      enqueued_.fetch_add(1, std::memory_order_relaxed);
      const auto outcome = link->queue.Offer(message);
      if (outcome != rsf::PushOutcome::kAccepted) {
        // Evicted-oldest displaced a queued frame; rejected means the
        // queue shut down under us — either way one frame will never be
        // sent despite having been counted as enqueued.
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  for (const auto& link : reaped) {
    // Frames still queued behind the broken connection are lost.
    dropped_.fetch_add(link->queue.Size(), std::memory_order_relaxed);
    link->queue.Shutdown();
    link->sender.join();
  }
}

rsf::Status Publication::AddIntraLink(std::shared_ptr<IntraLinkBase> link) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return rsf::UnavailableError("publication for " + topic_ +
                                 " is shut down");
  }
  // The same negotiation the TCPROS handshake performs: the marked
  // transport checksum keeps SFM and regular variants of a type apart.
  if (link->transport_md5() != md5sum_) {
    return rsf::FailedPreconditionError(
        "md5sum mismatch on " + topic_ + ": publisher has " + md5sum_ +
        ", subscriber " + link->callerid() + " negotiated " +
        link->transport_md5());
  }
  std::lock_guard<std::mutex> lock(intra_mutex_);
  intra_links_.push_back(std::move(link));
  return rsf::Status::Ok();
}

void Publication::RemoveIntraLink(const IntraLinkBase* link) {
  std::lock_guard<std::mutex> lock(intra_mutex_);
  intra_links_.erase(
      std::remove_if(intra_links_.begin(), intra_links_.end(),
                     [link](const std::shared_ptr<IntraLinkBase>& entry) {
                       return entry.get() == link;
                     }),
      intra_links_.end());
}

size_t Publication::DeliverIntra(const std::shared_ptr<const void>& message,
                                 IntraTier tier) {
  // Snapshot under the lock, deliver outside it: Deliver() may run the
  // subscriber callback inline (on this thread), and that callback is free
  // to publish, subscribe, or shut down — none of which may deadlock here.
  std::vector<std::shared_ptr<IntraLinkBase>> snapshot;
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    snapshot = intra_links_;
  }
  size_t delivered = 0;
  std::vector<const IntraLinkBase*> dead;
  for (const auto& link : snapshot) {
    if (link->Deliver(message, tier)) {
      ++delivered;
    } else {
      dead.push_back(link.get());
    }
  }
  if (!dead.empty()) {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    intra_links_.erase(
        std::remove_if(intra_links_.begin(), intra_links_.end(),
                       [&](const std::shared_ptr<IntraLinkBase>& entry) {
                         return std::find(dead.begin(), dead.end(),
                                          entry.get()) != dead.end();
                       }),
        intra_links_.end());
  }
  if (delivered > 0) {
    intra_delivered_.fetch_add(delivered, std::memory_order_relaxed);
    (tier == IntraTier::kZeroCopy ? intra_zero_copy_ : intra_whole_copy_)
        .fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

bool Publication::HasIntraLinks() const {
  std::lock_guard<std::mutex> lock(intra_mutex_);
  return !intra_links_.empty();
}

bool Publication::HasTcpLinks() const {
  std::lock_guard<std::mutex> lock(links_mutex_);
  return !links_.empty() || !reactor_links_.empty();
}

size_t Publication::NumSubscribers() const {
  size_t alive = 0;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    for (const auto& link : links_) {
      if (!link->dead.load(std::memory_order_acquire)) ++alive;
    }
    alive += reactor_links_.size();
  }
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    for (const auto& link : intra_links_) {
      if (link->alive()) ++alive;
    }
  }
  return alive;
}

PublicationStats Publication::Stats() const {
  PublicationStats stats;
  stats.enqueued = enqueued_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.intra_delivered = intra_delivered_.load(std::memory_order_relaxed);
  stats.intra_zero_copy = intra_zero_copy_.load(std::memory_order_relaxed);
  stats.intra_whole_copy = intra_whole_copy_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    for (const auto& link : links_) {
      if (!link->dead.load(std::memory_order_acquire)) ++stats.tcp_links;
    }
    stats.tcp_links += reactor_links_.size();
  }
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    for (const auto& link : intra_links_) {
      if (link->alive()) ++stats.intra_links;
    }
  }
  return stats;
}

void Publication::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  if (intra_registered_) intra_registry().Unregister(topic_, port_);
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    intra_links_.clear();
  }

  if (reactor_mode_) {
    // All per-fd state lives on the loop thread: tear it down there and
    // wait, so no callback can touch this object once RunSync returns
    // (the destructor relies on exactly this).
    if (loop_ != nullptr) {
      loop_->RunSync([this] {
        loop_->Remove(listener_.fd());
        for (const auto& peer : pending_peers_) {
          loop_->Remove(peer->connection.fd());
          peer->connection.Close();
        }
        pending_peers_.clear();
        std::vector<std::shared_ptr<ReactorLink>> links;
        {
          std::lock_guard<std::mutex> lock(links_mutex_);
          links.swap(reactor_links_);
        }
        for (const auto& link : links) {
          size_t stranded;
          {
            std::lock_guard<std::mutex> lock(link->mutex);
            stranded = link->writer.PendingFrames();
          }
          // Frames never flushed before shutdown are lost.
          dropped_.fetch_add(stranded, std::memory_order_relaxed);
          loop_->Remove(link->connection.fd());
          link->connection.Close();
        }
      });
    }
    listener_.Close();
    return;
  }

  listener_.Close();  // unblocks Accept
  if (accept_thread_.joinable()) accept_thread_.join();

  std::lock_guard<std::mutex> lock(links_mutex_);
  for (const auto& link : links_) {
    link->queue.Shutdown();
    link->connection.ShutdownBoth();
    if (link->sender.joinable()) link->sender.join();
  }
  links_.clear();
}

}  // namespace ros
