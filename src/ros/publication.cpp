#include "ros/publication.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "net/framing.h"
#include "ros/connection_header.h"
#include "ros/message_traits.h"
#include "ros/shm_transport.h"
#include "sfm/shm_pool.h"

namespace ros {

rsf::Result<std::shared_ptr<Publication>> Publication::Create(
    const std::string& topic, const std::string& datatype,
    const std::string& md5sum, const std::string& callerid,
    size_t queue_size, bool intra_capable) {
  auto listener = rsf::net::TcpListener::Listen(0);
  if (!listener.ok()) return listener.status();
  auto publication = std::shared_ptr<Publication>(
      new Publication(topic, datatype, md5sum, callerid, queue_size,
                      *std::move(listener)));
  if (intra_capable) {
    // Register before Start() and before the caller announces the endpoint
    // to the master, so a subscriber notified of (topic, port) always finds
    // the publication here.
    publication->intra_registered_ = true;
    intra_registry().Register(topic, publication->port_, publication);
  }
  publication->Start();
  return publication;
}

Publication::Publication(const std::string& topic, const std::string& datatype,
                         const std::string& md5sum,
                         const std::string& callerid, size_t queue_size,
                         rsf::net::TcpListener listener)
    : topic_(topic),
      datatype_(datatype),
      md5sum_(md5sum),
      callerid_(callerid),
      queue_size_(queue_size == 0 ? 1 : queue_size),
      max_pins_(std::max<size_t>(2 * queue_size_, 64)),
      listener_(std::move(listener)),
      port_(listener_.port()) {}

void Publication::Start() {
  loop_ = rsf::net::Reactor::Get().NextLoop();
  (void)listener_.SetNonBlocking(true);
  std::weak_ptr<Publication> weak = shared_from_this();
  const int fd = listener_.fd();
  loop_->RunInLoop([weak, fd, loop = loop_] {
    auto self = weak.lock();
    if (self == nullptr) return;
    loop->Add(fd, rsf::net::kEventReadable, [weak](uint32_t) {
      if (auto alive = weak.lock()) alive->OnAcceptReady();
    });
  });
}

Publication::~Publication() { Shutdown(); }

/// Decides a subscriber's fate from its connection-header bytes and
/// produces the reply frame.  Tier selection is pure LanePolicy; the only
/// side effect is acquiring the peer slot a grant hands to the lane.
bool Publication::EvaluateHandshake(const uint8_t* request, uint32_t length,
                                    std::vector<uint8_t>* reply_frame,
                                    WireLaneContext* ctx) {
  auto header = DecodeConnectionHeader(request, length);
  rsf::Status valid = header.ok()
                          ? ValidateSubscriberHeader(*header, topic_,
                                                     datatype_, md5sum_)
                          : header.status();

  ConnectionHeader reply;
  if (valid.ok()) {
    reply = {{"type", datatype_}, {"md5sum", md5sum_}, {"callerid", callerid_}};
    const ShmRequest shm_request = ParseShmRequest(*header);
    LanePolicy::PublisherSide side;
    side.shm_requested = shm_request.requested;
    side.peer_pid_known = shm_request.pid_known;
    side.shm_enabled = sfm::shm::Enabled();
    int slot = -1;
    if (LanePolicy::ShouldAttemptShm(side)) {
      slot = sfm::shm::AcquirePeerSlot(shm_request.pid);
      side.slot_acquired = slot >= 0;
    }
    switch (LanePolicy::GrantWireTier(side)) {
      case LanePolicy::Grant::kShm:
        // Loop-thread write, before the link can establish: the lane built
        // in OnLinkEstablished takes ownership of the slot.
        ctx->shm_negotiated = true;
        ctx->shm_slot = slot;
        ctx->shm_pid = shm_request.pid;
        sfm::shm::NotePeerNegotiated();
        AddShmGrantFields(&reply, sfm::shm::Namespace(), slot);
        break;
      case LanePolicy::Grant::kTcpNotRequested:
        break;
      case LanePolicy::Grant::kTcpTierDisabled:
        RSF_INFO("subscriber asked for shm on %s but the tier is disabled "
                 "here; staying on TCP",
                 topic_.c_str());
        break;
      case LanePolicy::Grant::kTcpNoSlot:
        RSF_WARN("no free shm peer slot for subscriber on %s "
                 "(all %zu busy); falling back to TCP",
                 topic_.c_str(), sfm::shm::kMaxPeers);
        break;
    }
  } else {
    reply = {{"error", valid.ToString()}};
    RSF_WARN("rejecting subscriber on %s: %s", topic_.c_str(),
             valid.ToString().c_str());
  }
  *reply_frame = EncodeConnectionHeader(reply);
  return valid.ok();
}

void Publication::OnAcceptReady() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    rsf::net::TcpConnection conn;
    auto got = listener_.TryAccept(&conn);
    if (!got.ok()) {
      // Terminal listener failure (normally: Shutdown closed it).
      loop_->Remove(listener_.fd());
      return;
    }
    if (!*got) return;  // backlog drained

    std::weak_ptr<Publication> weak = weak_from_this();
    rsf::net::Link::Options options;
    options.max_pending_frames = queue_size_;
    // Data flows publisher→subscriber on this link, so it gets the full
    // egress treatment: the zerocopy tier for large frames (env-tuned,
    // resolved per link so benches can flip it between runs) and the
    // write-progress deadline that drops a peer that stopped reading.
    options.zerocopy_threshold = rsf::net::ZeroCopyThresholdBytes();
    options.zerocopy_copied_limit = rsf::net::ZeroCopyCopiedLimit();
    options.write_timeout_nanos = rsf::net::WriteTimeoutNanos();
    auto ctx = std::make_shared<WireLaneContext>();
    rsf::net::Link::Callbacks callbacks;
    callbacks.on_handshake_request =
        [weak, ctx](const uint8_t* data, uint32_t length,
                    std::vector<uint8_t>* reply) {
          auto self = weak.lock();
          return self != nullptr &&
                 self->EvaluateHandshake(data, length, reply, ctx.get());
        };
    callbacks.on_established =
        [weak, ctx](const std::shared_ptr<rsf::net::Link>& link) {
          if (auto self = weak.lock()) self->OnLinkEstablished(link, ctx);
        };
    callbacks.on_closed =
        [weak, ctx](const std::shared_ptr<rsf::net::Link>& link) {
          if (auto self = weak.lock()) self->OnLinkClosed(link, ctx);
        };
    // The only thing a subscriber ever sends after the handshake is a
    // small tagged shm control frame (ack / disable); anything else —
    // including any data-tagged frame — is a protocol violation and closes
    // the link by way of a null allocation.
    callbacks.alloc = [ctx](uint32_t raw) -> uint8_t* {
      if (rsf::net::FrameTag(raw) != rsf::net::kFrameTagShmControl) {
        return nullptr;
      }
      const uint32_t length = rsf::net::FrameLength(raw);
      if (length == 0 || length > kShmMaxControlFrame) return nullptr;
      ctx->control_buf.resize(length);
      return ctx->control_buf.data();
    };
    callbacks.on_frame = [ctx](uint32_t raw) {
      // Routed straight to the lane (loop-confined): established links
      // always have one; a frame sneaking in earlier is dropped.
      if (ctx->lane != nullptr) {
        ctx->lane->OnControlFrame(raw, ctx->control_buf.data());
      }
    };
    auto link = rsf::net::Link::Accepted(std::move(conn), loop_, options,
                                         std::move(callbacks));
    std::lock_guard<std::mutex> lock(links_mutex_);
    pending_wire_.push_back({std::move(link), std::move(ctx)});
  }
}

void Publication::OnLinkEstablished(
    const std::shared_ptr<rsf::net::Link>& link,
    const std::shared_ptr<WireLaneContext>& ctx) {
  if (shutdown_.load(std::memory_order_acquire)) {
    // Shutdown's RunSync (serialized with us on the loop) tears down the
    // still-pending entry, including a mid-handshake slot grant.
    link->CloseNow();
    return;
  }
  auto lane = MakeWireLane(ctx, link, &counters_, topic_, max_pins_);
  ctx->lane = lane;  // control frames route here from now on (loop thread)
  std::lock_guard<std::mutex> lock(links_mutex_);
  std::erase_if(pending_wire_,
                [&](const PendingWire& entry) { return entry.link == link; });
  lanes_.push_back(std::move(lane));
  wire_lane_count_.fetch_add(1, std::memory_order_release);
  if (ctx->shm_negotiated) {
    shm_lane_count_.fetch_add(1, std::memory_order_release);
  }
}

void Publication::OnLinkClosed(const std::shared_ptr<rsf::net::Link>& link,
                               const std::shared_ptr<WireLaneContext>& ctx) {
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    std::erase_if(pending_wire_, [&](const PendingWire& entry) {
      return entry.link == link;
    });
    if (ctx->lane != nullptr && std::erase(lanes_, ctx->lane) > 0) {
      wire_lane_count_.fetch_sub(1, std::memory_order_release);
      if (ctx->shm_negotiated) {
        shm_lane_count_.fetch_sub(1, std::memory_order_release);
      }
    }
  }
  if (ctx->lane != nullptr) {
    // Idempotent: releases the peer slot, drops the pin ledger, and counts
    // the frames stranded behind the broken connection.
    ctx->lane->Close();
    return;
  }
  // Died mid-handshake: no lane owns the slot yet, release it here.
  if (ctx->shm_negotiated) {
    sfm::shm::ReleasePeerSlot(ctx->shm_slot, ctx->shm_pid);
    ctx->shm_negotiated = false;
  }
  counters_.dropped.fetch_add(link->stats().frames_stranded,
                              std::memory_order_relaxed);
}

void Publication::Publish(PublishContext ctx) {
  // Serialize-once fan-out: the wire frame is finalized here, exactly once
  // per publish, and shared (aliased holder) by every lane Offer visits.
  if (ctx.has_wire()) {
    ctx.wire = {ctx.payload.data, static_cast<uint32_t>(ctx.payload.size)};
    shim::frame_builds.fetch_add(1, std::memory_order_relaxed);
    // One descriptor for the whole fan-out, and only when a shm lane is
    // live: PreparePublish resolves the payload to its shm block (nullopt
    // when it is heap-backed — tier off, below threshold, or a snapshot
    // copy) and stamps it with this publish's sequence number.
    if (shm_lane_count_.load(std::memory_order_acquire) > 0) {
      ctx.seq = shm_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (auto descriptor = sfm::shm::PreparePublish(ctx.payload.data.get(),
                                                     ctx.payload.size,
                                                     ctx.seq)) {
        ctx.descriptor = {EncodeShmDescriptorFrame(*descriptor),
                          rsf::net::TaggedLength(
                              rsf::net::kFrameTagShmDescriptor,
                              kShmDescriptorSize)};
        shim::descriptor_builds.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  OfferToLanes(ctx);
}

void Publication::Publish(SerializedMessage message) {
  PublishContext ctx;
  ctx.payload = std::move(message);
  Publish(std::move(ctx));
}

void Publication::OfferToLanes(const PublishContext& ctx) {
  // Snapshot under the lock, offer outside it: an in-process lane may run
  // the subscriber callback inline (on this thread), and that callback is
  // free to publish, subscribe, or shut down — none of which may deadlock
  // here.  The snapshot vector is reused across publishes (steady-state
  // publish allocates nothing); a reentrant or concurrent publish loses
  // the try-lock and falls back to a local vector.
  std::vector<std::shared_ptr<TransportLane>> local;
  std::unique_lock<std::mutex> scratch_lock(scratch_mutex_, std::try_to_lock);
  auto& snapshot = scratch_lock.owns_lock() ? publish_scratch_ : local;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    snapshot.assign(lanes_.begin(), lanes_.end());
  }
  if (snapshot.empty()) return;

  std::vector<const TransportLane*> dead;
  for (const auto& lane : snapshot) {
    if (!lane->Offer(ctx)) dead.push_back(lane.get());
  }
  if (!dead.empty()) {
    // Only in-process lanes report death through Offer; wire lanes close
    // through their Link callbacks.
    std::lock_guard<std::mutex> lock(links_mutex_);
    const size_t culled = std::erase_if(
        lanes_, [&](const std::shared_ptr<TransportLane>& lane) {
          return std::find(dead.begin(), dead.end(), lane.get()) !=
                 dead.end();
        });
    intra_lane_count_.fetch_sub(culled, std::memory_order_release);
  }
  snapshot.clear();  // drop the lane refs, keep the capacity

  if (!ctx.has_wire()) return;
  // Coalesced wake-up: back-to-back publishes share one loop task.  The
  // flag resets BEFORE flushing so a publish racing with the flush always
  // either lands its frames in a writer the flush is about to drain, or
  // wins the exchange and schedules the next kick.
  if (!kick_pending_.exchange(true, std::memory_order_acq_rel)) {
    std::weak_ptr<Publication> weak = weak_from_this();
    loop_->RunInLoop([weak] {
      auto self = weak.lock();
      if (self == nullptr) return;
      self->kick_pending_.store(false, std::memory_order_release);
      auto& lanes = self->kick_scratch_;  // loop-confined, reused
      {
        std::lock_guard<std::mutex> lock(self->links_mutex_);
        lanes.assign(self->lanes_.begin(), self->lanes_.end());
      }
      for (const auto& lane : lanes) lane->Flush();
      lanes.clear();
    });
  }
}

rsf::Status Publication::AddIntraLink(std::shared_ptr<IntraLinkBase> link) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return rsf::UnavailableError("publication for " + topic_ +
                                 " is shut down");
  }
  // The same negotiation the TCPROS handshake performs: the marked
  // transport checksum keeps SFM and regular variants of a type apart.
  if (link->transport_md5() != md5sum_) {
    return rsf::FailedPreconditionError(
        "md5sum mismatch on " + topic_ + ": publisher has " + md5sum_ +
        ", subscriber " + link->callerid() + " negotiated " +
        link->transport_md5());
  }
  // Mirror the TCP pending→established split: the lane joins the fanout
  // only once the subscriber finishes filing it (ActivateIntraLink), so a
  // publish racing the connect can never deliver into a half-registered
  // link whose subscriber-side bookkeeping isn't ready to receive.
  std::lock_guard<std::mutex> lock(links_mutex_);
  pending_intra_.push_back(MakeIntraLane(std::move(link), &counters_));
  return rsf::Status::Ok();
}

void Publication::ActivateIntraLink(const IntraLinkBase* link) {
  std::lock_guard<std::mutex> lock(links_mutex_);
  auto it = std::find_if(
      pending_intra_.begin(), pending_intra_.end(),
      [link](const std::shared_ptr<TransportLane>& lane) {
        return lane->intra_link() == link;
      });
  // Not pending: a concurrent Shutdown/Remove already culled it — a late
  // activation must not resurrect the lane into the fanout.
  if (it == pending_intra_.end()) return;
  lanes_.push_back(std::move(*it));
  pending_intra_.erase(it);
  intra_lane_count_.fetch_add(1, std::memory_order_release);
}

void Publication::RemoveIntraLink(const IntraLinkBase* link) {
  std::lock_guard<std::mutex> lock(links_mutex_);
  const auto matches = [link](const std::shared_ptr<TransportLane>& lane) {
    return lane->intra_link() == link;
  };
  std::erase_if(pending_intra_, matches);
  const size_t removed = std::erase_if(lanes_, matches);
  intra_lane_count_.fetch_sub(removed, std::memory_order_release);
}

size_t Publication::NumSubscribers() const {
  std::lock_guard<std::mutex> lock(links_mutex_);
  size_t alive = 0;
  for (const auto& lane : lanes_) {
    const LaneDescription description = lane->Describe();
    if (description.kind != LaneKind::kIntra || description.alive) ++alive;
  }
  return alive;
}

PublicationStats Publication::Stats() const {
  PublicationStats stats;
  stats.enqueued = counters_.enqueued.load(std::memory_order_relaxed);
  stats.dropped = counters_.dropped.load(std::memory_order_relaxed);
  stats.intra_delivered =
      counters_.intra_delivered.load(std::memory_order_relaxed);
  stats.intra_zero_copy =
      counters_.intra_zero_copy.load(std::memory_order_relaxed);
  stats.intra_whole_copy =
      counters_.intra_whole_copy.load(std::memory_order_relaxed);
  stats.shm_descriptors =
      counters_.shm_descriptors.load(std::memory_order_relaxed);
  stats.shm_inline = counters_.shm_inline.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(links_mutex_);
  for (const auto& lane : lanes_) {
    const LaneDescription description = lane->Describe();
    switch (description.kind) {
      case LaneKind::kIntra:
        if (description.alive) ++stats.intra_links;
        break;
      case LaneKind::kShm:
        ++stats.shm_links;
        ++stats.tcp_links;  // shm lanes ride an established TCP link
        break;
      case LaneKind::kTcp:
        ++stats.tcp_links;
        break;
    }
  }
  return stats;
}

void Publication::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  if (intra_registered_) intra_registry().Unregister(topic_, port_);

  // All per-fd state lives on the loop thread: tear it down there and
  // wait, so no callback can touch this object once RunSync returns
  // (the destructor relies on exactly this).
  if (loop_ != nullptr) {
    loop_->RunSync([this] {
      loop_->Remove(listener_.fd());
      std::vector<PendingWire> pending;
      std::vector<std::shared_ptr<TransportLane>> lanes;
      std::vector<std::shared_ptr<TransportLane>> pending_intra;
      {
        std::lock_guard<std::mutex> lock(links_mutex_);
        pending.swap(pending_wire_);
        lanes.swap(lanes_);
        pending_intra.swap(pending_intra_);
        intra_lane_count_.store(0, std::memory_order_release);
        wire_lane_count_.store(0, std::memory_order_release);
        shm_lane_count_.store(0, std::memory_order_release);
      }
      for (const auto& entry : pending) {
        // A mid-handshake grant parked its slot in the context; no lane
        // owns it yet.
        if (entry.ctx->shm_negotiated) {
          sfm::shm::ReleasePeerSlot(entry.ctx->shm_slot, entry.ctx->shm_pid);
          entry.ctx->shm_negotiated = false;
        }
        entry.link->CloseNow();
      }
      // Lane Close releases peer slots and pin ledgers and counts frames
      // never flushed before shutdown as dropped (in-process lanes no-op).
      for (const auto& lane : lanes) lane->Close();
    });
  }
  listener_.Close();
}

}  // namespace ros
