#include "ros/publication.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"
#include "net/framing.h"
#include "ros/connection_header.h"
#include "ros/message_traits.h"
#include "sfm/shm_pool.h"

namespace ros {

rsf::Result<std::shared_ptr<Publication>> Publication::Create(
    const std::string& topic, const std::string& datatype,
    const std::string& md5sum, const std::string& callerid,
    size_t queue_size, bool intra_capable) {
  auto listener = rsf::net::TcpListener::Listen(0);
  if (!listener.ok()) return listener.status();
  auto publication = std::shared_ptr<Publication>(
      new Publication(topic, datatype, md5sum, callerid, queue_size,
                      *std::move(listener)));
  if (intra_capable) {
    // Register before Start() and before the caller announces the endpoint
    // to the master, so a subscriber notified of (topic, port) always finds
    // the publication here.
    publication->intra_registered_ = true;
    intra_registry().Register(topic, publication->port_, publication);
  }
  publication->Start();
  return publication;
}

Publication::Publication(const std::string& topic, const std::string& datatype,
                         const std::string& md5sum,
                         const std::string& callerid, size_t queue_size,
                         rsf::net::TcpListener listener)
    : topic_(topic),
      datatype_(datatype),
      md5sum_(md5sum),
      callerid_(callerid),
      queue_size_(queue_size == 0 ? 1 : queue_size),
      listener_(std::move(listener)),
      port_(listener_.port()) {}

void Publication::Start() {
  loop_ = rsf::net::Reactor::Get().NextLoop();
  (void)listener_.SetNonBlocking(true);
  std::weak_ptr<Publication> weak = shared_from_this();
  const int fd = listener_.fd();
  loop_->RunInLoop([weak, fd, loop = loop_] {
    auto self = weak.lock();
    if (self == nullptr) return;
    loop->Add(fd, rsf::net::kEventReadable, [weak](uint32_t) {
      if (auto alive = weak.lock()) alive->OnAcceptReady();
    });
  });
}

Publication::~Publication() { Shutdown(); }

/// Decides a subscriber's fate from its connection-header bytes and
/// produces the reply frame.
bool Publication::EvaluateHandshake(const uint8_t* request, uint32_t length,
                                    std::vector<uint8_t>* reply_frame,
                                    ShmLinkState* shm) {
  auto header = DecodeConnectionHeader(request, length);
  rsf::Status valid = header.ok()
                          ? ValidateSubscriberHeader(*header, topic_,
                                                     datatype_, md5sum_)
                          : header.status();

  ConnectionHeader reply;
  if (valid.ok()) {
    reply = {{"type", datatype_}, {"md5sum", md5sum_}, {"callerid", callerid_}};
    // Shm-tier negotiation: granted only when the subscriber asked, the
    // tier is enabled here too, and a peer refcount column is free.  Every
    // refusal stays on plain TCP — by replying without the shm fields.
    const auto want = header->find("shm");
    const auto pid_field = header->find("shm_pid");
    if (shm != nullptr && want != header->end() && want->second == "1" &&
        pid_field != header->end()) {
      if (!sfm::shm::Enabled()) {
        RSF_INFO("subscriber asked for shm on %s but the tier is disabled "
                 "here; staying on TCP",
                 topic_.c_str());
      } else {
        const pid_t peer_pid =
            static_cast<pid_t>(std::strtol(pid_field->second.c_str(),
                                           nullptr, 10));
        const int slot = sfm::shm::AcquirePeerSlot(peer_pid);
        if (slot < 0) {
          RSF_WARN("no free shm peer slot for subscriber on %s "
                   "(all %zu busy); falling back to TCP",
                   topic_.c_str(), sfm::shm::kMaxPeers);
        } else {
          std::lock_guard<std::mutex> lock(shm->mutex);
          shm->negotiated = true;
          shm->slot = slot;
          shm->peer_pid = peer_pid;
          sfm::shm::NotePeerNegotiated();
          reply["shm"] = "1";
          reply["shm_ns"] = sfm::shm::Namespace();
          reply["shm_slot"] = std::to_string(slot);
        }
      }
    }
  } else {
    reply = {{"error", valid.ToString()}};
    RSF_WARN("rejecting subscriber on %s: %s", topic_.c_str(),
             valid.ToString().c_str());
  }
  *reply_frame = EncodeConnectionHeader(reply);
  return valid.ok();
}

void Publication::OnAcceptReady() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    rsf::net::TcpConnection conn;
    auto got = listener_.TryAccept(&conn);
    if (!got.ok()) {
      // Terminal listener failure (normally: Shutdown closed it).
      loop_->Remove(listener_.fd());
      return;
    }
    if (!*got) return;  // backlog drained

    std::weak_ptr<Publication> weak = weak_from_this();
    rsf::net::Link::Options options;
    options.max_pending_frames = queue_size_;
    // Data flows publisher→subscriber on this link, so it gets the full
    // egress treatment: the zerocopy tier for large frames (env-tuned,
    // resolved per link so benches can flip it between runs) and the
    // write-progress deadline that drops a peer that stopped reading.
    options.zerocopy_threshold = rsf::net::ZeroCopyThresholdBytes();
    options.zerocopy_copied_limit = rsf::net::ZeroCopyCopiedLimit();
    options.write_timeout_nanos = rsf::net::WriteTimeoutNanos();
    auto shm_state = std::make_shared<ShmLinkState>();
    rsf::net::Link::Callbacks callbacks;
    callbacks.on_handshake_request =
        [weak, shm_state](const uint8_t* data, uint32_t length,
                          std::vector<uint8_t>* reply) {
          auto self = weak.lock();
          return self != nullptr &&
                 self->EvaluateHandshake(data, length, reply,
                                         shm_state.get());
        };
    callbacks.on_established =
        [weak](const std::shared_ptr<rsf::net::Link>& link) {
          if (auto self = weak.lock()) self->OnLinkEstablished(link);
        };
    callbacks.on_closed = [weak](const std::shared_ptr<rsf::net::Link>& link) {
      if (auto self = weak.lock()) self->OnLinkClosed(link);
    };
    // The only thing a subscriber ever sends after the handshake is a
    // small tagged shm control frame (ack / disable); anything else —
    // including any data-tagged frame — is a protocol violation and closes
    // the link by way of a null allocation.
    callbacks.alloc = [shm_state](uint32_t raw) -> uint8_t* {
      if (rsf::net::FrameTag(raw) != rsf::net::kFrameTagShmControl) {
        return nullptr;
      }
      const uint32_t length = rsf::net::FrameLength(raw);
      if (length == 0 || length > kShmMaxControlFrame) return nullptr;
      shm_state->control_buf.resize(length);
      return shm_state->control_buf.data();
    };
    callbacks.on_frame = [weak, shm_state](uint32_t raw) {
      if (auto self = weak.lock()) self->OnShmControlFrame(shm_state, raw);
    };
    auto link = rsf::net::Link::Accepted(std::move(conn), loop_, options,
                                         std::move(callbacks));
    shm_state->link = link;
    std::lock_guard<std::mutex> lock(links_mutex_);
    shm_states_.emplace(link.get(), std::move(shm_state));
    pending_links_.push_back(std::move(link));
  }
}

void Publication::OnLinkEstablished(
    const std::shared_ptr<rsf::net::Link>& link) {
  if (shutdown_.load(std::memory_order_acquire)) {
    link->CloseNow();
    return;
  }
  std::lock_guard<std::mutex> lock(links_mutex_);
  std::erase(pending_links_, link);
  links_.push_back(link);
}

void Publication::OnLinkClosed(const std::shared_ptr<rsf::net::Link>& link) {
  std::shared_ptr<ShmLinkState> shm;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    std::erase(pending_links_, link);
    std::erase(links_, link);
    const auto it = shm_states_.find(link.get());
    if (it != shm_states_.end()) {
      shm = std::move(it->second);
      shm_states_.erase(it);
    }
  }
  if (shm != nullptr) ReleaseShmLink(shm);
  // Frames still queued behind the broken connection are lost.
  dropped_.fetch_add(link->stats().frames_stranded,
                     std::memory_order_relaxed);
}

void Publication::ReleaseShmLink(const std::shared_ptr<ShmLinkState>& shm) {
  int slot = -1;
  pid_t peer_pid = 0;
  {
    std::lock_guard<std::mutex> lock(shm->mutex);
    if (!shm->negotiated) return;
    shm->negotiated = false;
    slot = shm->slot;
    peer_pid = shm->peer_pid;
    // Dropping the ledger releases the pinned payload holders; blocks the
    // (possibly dead) peer never acked retire, and either its in-mapping
    // RefTokens drain them or the pid liveness sweep reclaims them.
    shm->ledger.clear();
  }
  sfm::shm::ReleasePeerSlot(slot, peer_pid);
}

void Publication::OnShmControlFrame(const std::shared_ptr<ShmLinkState>& shm,
                                    uint32_t raw) {
  ShmControlKind kind;
  uint64_t seq = 0;
  if (!DecodeShmControl(shm->control_buf.data(),
                        rsf::net::FrameLength(raw), &kind, &seq)) {
    RSF_WARN("malformed shm control frame on %s; ignoring", topic_.c_str());
    return;
  }
  std::vector<SerializedMessage> retransmit;
  {
    std::lock_guard<std::mutex> lock(shm->mutex);
    if (kind == ShmControlKind::kAck) {
      // Cumulative: every pin at or below the acked seq is consumed.
      while (!shm->ledger.empty() && shm->ledger.front().seq <= seq) {
        shm->ledger.pop_front();
      }
      return;
    }
    // Disable: the subscriber's side of the tier broke (attach failure,
    // out-of-range descriptor).  Everything unacked goes out inline, in
    // order, and the link stays inline for good.
    shm->inline_only = true;
    retransmit.reserve(shm->ledger.size());
    for (auto& pinned : shm->ledger) {
      retransmit.push_back(std::move(pinned.message));
    }
    shm->ledger.clear();
  }
  RSF_WARN("subscriber on %s left the shm tier; retransmitting %zu pinned "
           "messages inline",
           topic_.c_str(), retransmit.size());
  auto link = shm->link.lock();
  if (link == nullptr) return;
  for (const auto& message : retransmit) {
    // Not re-counted as enqueued (the descriptor delivery already was);
    // an eviction here is a real loss, though.
    if (link->EnqueueFrame(message.data,
                           static_cast<uint32_t>(message.size))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  link->FlushOnLoop();  // on_frame runs on the loop thread
}

void Publication::Publish(SerializedMessage message) {
  // Enqueue onto every established link's frame queue (aliased shared
  // buffer: one shared_ptr copy per link), then kick the loop once to
  // flush them all.
  std::vector<std::shared_ptr<rsf::net::Link>> snapshot;
  std::vector<std::shared_ptr<ShmLinkState>> shm_snapshot;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    snapshot = links_;
    shm_snapshot.reserve(snapshot.size());
    for (const auto& link : snapshot) {
      const auto it = shm_states_.find(link.get());
      shm_snapshot.push_back(it != shm_states_.end() ? it->second : nullptr);
    }
  }
  if (snapshot.empty()) return;

  // One descriptor for the whole fan-out: PreparePublish resolves the
  // payload to its shm block (nullopt when it is heap-backed — tier off,
  // below threshold, or a snapshot copy) and stamps it with this publish's
  // sequence number.
  std::shared_ptr<const uint8_t[]> descriptor_frame;
  uint32_t descriptor_raw = 0;
  uint64_t seq = 0;
  if (sfm::shm::PeersEverNegotiated()) {
    seq = shm_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (auto descriptor =
            sfm::shm::PreparePublish(message.data.get(), message.size, seq)) {
      descriptor_frame = EncodeShmDescriptorFrame(*descriptor);
      descriptor_raw = rsf::net::TaggedLength(
          rsf::net::kFrameTagShmDescriptor, kShmDescriptorSize);
    }
  }
  // Pin bound: generous enough that a subscriber acking every message
  // never hits it; a stalled one loses its oldest pins (drop-oldest — the
  // generation fence turns their stale descriptors into clean drops).
  const size_t max_pins = std::max<size_t>(2 * queue_size_, 64);

  for (size_t i = 0; i < snapshot.size(); ++i) {
    const auto& link = snapshot[i];
    const auto& shm = shm_snapshot[i];
    enqueued_.fetch_add(1, std::memory_order_relaxed);

    bool negotiated = false;
    bool via_shm = false;
    if (descriptor_frame != nullptr && shm != nullptr) {
      std::lock_guard<std::mutex> lock(shm->mutex);
      negotiated = shm->negotiated;
      if (negotiated && !shm->inline_only) {
        shm->ledger.push_back({seq, message});
        while (shm->ledger.size() > max_pins) shm->ledger.pop_front();
        via_shm = true;
      }
    } else if (shm != nullptr) {
      std::lock_guard<std::mutex> lock(shm->mutex);
      negotiated = shm->negotiated;
    }

    if (via_shm) {
      if (link->EnqueueFrame(descriptor_frame, descriptor_raw)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        shm_descriptors_.fetch_add(1, std::memory_order_relaxed);
        shim::shm_zero_copy_deliveries.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      continue;
    }
    if (link->EnqueueFrame(message.data,
                           static_cast<uint32_t>(message.size))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else if (negotiated) {
      // The link speaks shm but this payload went inline: below the
      // threshold, heap-backed, or the link fell back.
      shm_inline_.fetch_add(1, std::memory_order_relaxed);
      shim::shm_fallback_deliveries.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Coalesced wake-up: back-to-back publishes share one loop task.  The
  // flag resets BEFORE flushing so a publish racing with the flush always
  // either lands its frames in a writer the flush is about to drain, or
  // wins the exchange and schedules the next kick.
  if (!kick_pending_.exchange(true, std::memory_order_acq_rel)) {
    std::weak_ptr<Publication> weak = weak_from_this();
    loop_->RunInLoop([weak] {
      auto self = weak.lock();
      if (self == nullptr) return;
      self->kick_pending_.store(false, std::memory_order_release);
      std::vector<std::shared_ptr<rsf::net::Link>> links;
      {
        std::lock_guard<std::mutex> lock(self->links_mutex_);
        links = self->links_;
      }
      for (const auto& link : links) link->FlushOnLoop();
    });
  }
}

rsf::Status Publication::AddIntraLink(std::shared_ptr<IntraLinkBase> link) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return rsf::UnavailableError("publication for " + topic_ +
                                 " is shut down");
  }
  // The same negotiation the TCPROS handshake performs: the marked
  // transport checksum keeps SFM and regular variants of a type apart.
  if (link->transport_md5() != md5sum_) {
    return rsf::FailedPreconditionError(
        "md5sum mismatch on " + topic_ + ": publisher has " + md5sum_ +
        ", subscriber " + link->callerid() + " negotiated " +
        link->transport_md5());
  }
  // Mirror the TCP pending→established split: the link joins the fanout
  // only once the subscriber finishes filing it (ActivateIntraLink), so a
  // publish racing the connect can never deliver into a half-registered
  // link whose subscriber-side bookkeeping isn't ready to receive.
  std::lock_guard<std::mutex> lock(intra_mutex_);
  pending_intra_.push_back(std::move(link));
  return rsf::Status::Ok();
}

void Publication::ActivateIntraLink(const IntraLinkBase* link) {
  std::lock_guard<std::mutex> lock(intra_mutex_);
  auto it = std::find_if(pending_intra_.begin(), pending_intra_.end(),
                         [link](const std::shared_ptr<IntraLinkBase>& entry) {
                           return entry.get() == link;
                         });
  // Not pending: a concurrent Shutdown/Remove already culled it — a late
  // activation must not resurrect the link into the fanout.
  if (it == pending_intra_.end()) return;
  intra_links_.push_back(std::move(*it));
  pending_intra_.erase(it);
}

void Publication::RemoveIntraLink(const IntraLinkBase* link) {
  std::lock_guard<std::mutex> lock(intra_mutex_);
  const auto matches = [link](const std::shared_ptr<IntraLinkBase>& entry) {
    return entry.get() == link;
  };
  pending_intra_.erase(
      std::remove_if(pending_intra_.begin(), pending_intra_.end(), matches),
      pending_intra_.end());
  intra_links_.erase(
      std::remove_if(intra_links_.begin(), intra_links_.end(), matches),
      intra_links_.end());
}

size_t Publication::DeliverIntra(const std::shared_ptr<const void>& message,
                                 IntraTier tier) {
  // Snapshot under the lock, deliver outside it: Deliver() may run the
  // subscriber callback inline (on this thread), and that callback is free
  // to publish, subscribe, or shut down — none of which may deadlock here.
  std::vector<std::shared_ptr<IntraLinkBase>> snapshot;
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    snapshot = intra_links_;
  }
  size_t delivered = 0;
  std::vector<const IntraLinkBase*> dead;
  for (const auto& link : snapshot) {
    // Same accounting as a TCP frame: the attempt is enqueued; reaching a
    // dead link is a drop.  SentCount() then spans both transports.
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    if (link->Deliver(message, tier)) {
      ++delivered;
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      dead.push_back(link.get());
    }
  }
  if (!dead.empty()) {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    intra_links_.erase(
        std::remove_if(intra_links_.begin(), intra_links_.end(),
                       [&](const std::shared_ptr<IntraLinkBase>& entry) {
                         return std::find(dead.begin(), dead.end(),
                                          entry.get()) != dead.end();
                       }),
        intra_links_.end());
  }
  if (delivered > 0) {
    intra_delivered_.fetch_add(delivered, std::memory_order_relaxed);
    (tier == IntraTier::kZeroCopy ? intra_zero_copy_ : intra_whole_copy_)
        .fetch_add(delivered, std::memory_order_relaxed);
  }
  return delivered;
}

bool Publication::HasIntraLinks() const {
  std::lock_guard<std::mutex> lock(intra_mutex_);
  return !intra_links_.empty();
}

bool Publication::HasTcpLinks() const {
  std::lock_guard<std::mutex> lock(links_mutex_);
  return !links_.empty();
}

size_t Publication::NumSubscribers() const {
  size_t alive = 0;
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    alive += links_.size();
  }
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    for (const auto& link : intra_links_) {
      if (link->alive()) ++alive;
    }
  }
  return alive;
}

PublicationStats Publication::Stats() const {
  PublicationStats stats;
  stats.enqueued = enqueued_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.intra_delivered = intra_delivered_.load(std::memory_order_relaxed);
  stats.intra_zero_copy = intra_zero_copy_.load(std::memory_order_relaxed);
  stats.intra_whole_copy = intra_whole_copy_.load(std::memory_order_relaxed);
  stats.shm_descriptors = shm_descriptors_.load(std::memory_order_relaxed);
  stats.shm_inline = shm_inline_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(links_mutex_);
    stats.tcp_links = links_.size();
    for (const auto& link : links_) {
      const auto it = shm_states_.find(link.get());
      if (it == shm_states_.end()) continue;
      std::lock_guard<std::mutex> shm_lock(it->second->mutex);
      if (it->second->negotiated) ++stats.shm_links;
    }
  }
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    for (const auto& link : intra_links_) {
      if (link->alive()) ++stats.intra_links;
    }
  }
  return stats;
}

void Publication::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  if (intra_registered_) intra_registry().Unregister(topic_, port_);
  {
    std::lock_guard<std::mutex> lock(intra_mutex_);
    pending_intra_.clear();
    intra_links_.clear();
  }

  // All per-fd state lives on the loop thread: tear it down there and
  // wait, so no callback can touch this object once RunSync returns
  // (the destructor relies on exactly this).
  if (loop_ != nullptr) {
    loop_->RunSync([this] {
      loop_->Remove(listener_.fd());
      std::vector<std::shared_ptr<rsf::net::Link>> pending;
      std::vector<std::shared_ptr<rsf::net::Link>> established;
      std::map<const rsf::net::Link*, std::shared_ptr<ShmLinkState>> shm;
      {
        std::lock_guard<std::mutex> lock(links_mutex_);
        pending.swap(pending_links_);
        established.swap(links_);
        shm.swap(shm_states_);
      }
      for (const auto& [key, state] : shm) ReleaseShmLink(state);
      for (const auto& link : pending) link->CloseNow();
      for (const auto& link : established) {
        link->CloseNow();
        // Frames never flushed before shutdown are lost.
        dropped_.fetch_add(link->stats().frames_stranded,
                           std::memory_order_relaxed);
      }
    });
  }
  listener_.Close();
}

}  // namespace ros
