#include "idl/types.h"

namespace rsf::idl {

const char* PrimitiveName(Primitive p) noexcept {
  switch (p) {
    case Primitive::kBool: return "bool";
    case Primitive::kInt8: return "int8";
    case Primitive::kUint8: return "uint8";
    case Primitive::kInt16: return "int16";
    case Primitive::kUint16: return "uint16";
    case Primitive::kInt32: return "int32";
    case Primitive::kUint32: return "uint32";
    case Primitive::kInt64: return "int64";
    case Primitive::kUint64: return "uint64";
    case Primitive::kFloat32: return "float32";
    case Primitive::kFloat64: return "float64";
    case Primitive::kString: return "string";
    case Primitive::kTime: return "time";
    case Primitive::kDuration: return "duration";
  }
  return "?";
}

std::optional<Primitive> ParsePrimitive(const std::string& name) noexcept {
  if (name == "bool") return Primitive::kBool;
  if (name == "int8" || name == "byte") return Primitive::kInt8;
  if (name == "uint8" || name == "char") return Primitive::kUint8;
  if (name == "int16") return Primitive::kInt16;
  if (name == "uint16") return Primitive::kUint16;
  if (name == "int32") return Primitive::kInt32;
  if (name == "uint32") return Primitive::kUint32;
  if (name == "int64") return Primitive::kInt64;
  if (name == "uint64") return Primitive::kUint64;
  if (name == "float32") return Primitive::kFloat32;
  if (name == "float64") return Primitive::kFloat64;
  if (name == "string") return Primitive::kString;
  if (name == "time") return Primitive::kTime;
  if (name == "duration") return Primitive::kDuration;
  return std::nullopt;
}

size_t PrimitiveSize(Primitive p) noexcept {
  switch (p) {
    case Primitive::kBool:
    case Primitive::kInt8:
    case Primitive::kUint8:
      return 1;
    case Primitive::kInt16:
    case Primitive::kUint16:
      return 2;
    case Primitive::kInt32:
    case Primitive::kUint32:
    case Primitive::kFloat32:
      return 4;
    case Primitive::kInt64:
    case Primitive::kUint64:
    case Primitive::kFloat64:
    case Primitive::kTime:
    case Primitive::kDuration:
      return 8;
    case Primitive::kString:
      return 0;  // variable
  }
  return 0;
}

const char* PrimitiveCppType(Primitive p) noexcept {
  switch (p) {
    case Primitive::kBool: return "uint8_t";  // ROS1 stores bool as byte
    case Primitive::kInt8: return "int8_t";
    case Primitive::kUint8: return "uint8_t";
    case Primitive::kInt16: return "int16_t";
    case Primitive::kUint16: return "uint16_t";
    case Primitive::kInt32: return "int32_t";
    case Primitive::kUint32: return "uint32_t";
    case Primitive::kInt64: return "int64_t";
    case Primitive::kUint64: return "uint64_t";
    case Primitive::kFloat32: return "float";
    case Primitive::kFloat64: return "double";
    case Primitive::kString: return "std::string";
    case Primitive::kTime: return "::rsf::Time";
    case Primitive::kDuration: return "::rsf::Time";
  }
  return "?";
}

std::string FieldType::ToIdl() const {
  std::string base =
      is_primitive ? PrimitiveName(primitive) : MessageKey();
  switch (array) {
    case ArrayKind::kNone:
      return base;
    case ArrayKind::kDynamic:
      return base + "[]";
    case ArrayKind::kFixed:
      return base + "[" + std::to_string(fixed_size) + "]";
  }
  return base;
}

}  // namespace rsf::idl
