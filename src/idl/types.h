// Type model for the ROS1 `.msg` interface definition language, consumed by
// the SFM Generator (paper §4.3.1) and the ROS-SF Converter (§4.3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rsf::idl {

/// The fixed-size primitive types ROS1 supports, plus string.
enum class Primitive : int {
  kBool,
  kInt8,
  kUint8,
  kInt16,
  kUint16,
  kInt32,
  kUint32,
  kInt64,
  kUint64,
  kFloat32,
  kFloat64,
  kString,
  kTime,      // (sec, nsec) pair
  kDuration,  // (sec, nsec) pair
};

/// IDL spelling ("uint32") for a primitive.
const char* PrimitiveName(Primitive p) noexcept;

/// Parses an IDL type name ("uint32", "byte", "char", ...); nullopt if the
/// name is not primitive.  "byte" => int8, "char" => uint8 (ROS1 aliases).
std::optional<Primitive> ParsePrimitive(const std::string& name) noexcept;

/// Size in bytes of a fixed-size primitive (string has no fixed size).
size_t PrimitiveSize(Primitive p) noexcept;

/// C++ type spelling used in generated regular message structs.
const char* PrimitiveCppType(Primitive p) noexcept;

enum class ArrayKind {
  kNone,     // T
  kDynamic,  // T[]
  kFixed,    // T[N]
};

/// A field's type: either a primitive or a reference to another message
/// ("pkg/Name" or bare "Name" resolved within the same package, with the
/// ROS1 special case that bare "Header" means std_msgs/Header).
struct FieldType {
  bool is_primitive = true;
  Primitive primitive = Primitive::kUint8;
  std::string message_package;  // for message types
  std::string message_name;
  ArrayKind array = ArrayKind::kNone;
  uint32_t fixed_size = 0;  // for kFixed

  [[nodiscard]] bool IsMessage() const noexcept { return !is_primitive; }
  [[nodiscard]] std::string MessageKey() const {
    return message_package + "/" + message_name;
  }
  /// Canonical IDL spelling, e.g. "uint8[]", "geometry_msgs/Point32[4]".
  [[nodiscard]] std::string ToIdl() const;
};

struct FieldSpec {
  FieldType type;
  std::string name;
};

/// `int32 FOO=42` / `string BAR=hello world`.
struct ConstantSpec {
  Primitive type = Primitive::kInt32;
  std::string name;
  std::string value_text;  // verbatim, as ROS does for strings
};

struct MessageSpec {
  std::string package;
  std::string name;
  std::vector<FieldSpec> fields;
  std::vector<ConstantSpec> constants;
  std::string raw_text;  // original definition (for checksums)

  /// Arena capacity hint from the `# @arena_capacity: N` pragma; 0 if unset.
  size_t arena_capacity = 0;

  [[nodiscard]] std::string Key() const { return package + "/" + name; }
};

}  // namespace rsf::idl
