#include "idl/registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <functional>

#include "common/md5.h"
#include "common/string_util.h"
#include "idl/parser.h"

namespace rsf::idl {
namespace fs = std::filesystem;

Status SpecRegistry::Add(MessageSpec spec) {
  const std::string key = spec.Key();
  if (specs_.count(key) != 0) {
    return AlreadyExistsError("duplicate message spec: " + key);
  }
  specs_.emplace(key, std::move(spec));
  md5_cache_.clear();
  return Status::Ok();
}

Status SpecRegistry::LoadDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return NotFoundError("not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& pkg_entry : fs::directory_iterator(dir)) {
    if (!pkg_entry.is_directory()) continue;
    for (const auto& msg_entry : fs::directory_iterator(pkg_entry.path())) {
      if (msg_entry.path().extension() == ".msg") {
        files.push_back(msg_entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) return UnavailableError("cannot read " + path.string());
    std::ostringstream text;
    text << in.rdbuf();
    auto spec = ParseMessage(path.parent_path().filename().string(),
                             path.stem().string(), text.str());
    if (!spec.ok()) return spec.status();
    RSF_RETURN_IF_ERROR(Add(*std::move(spec)));
  }
  return Status::Ok();
}

const MessageSpec* SpecRegistry::Find(const std::string& key) const {
  const auto it = specs_.find(key);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<std::string> SpecRegistry::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(specs_.size());
  for (const auto& [key, spec] : specs_) keys.push_back(key);
  return keys;
}

Status SpecRegistry::ValidateReferences() const {
  for (const auto& [key, spec] : specs_) {
    for (const auto& field : spec.fields) {
      if (field.type.IsMessage() && !Contains(field.type.MessageKey())) {
        return NotFoundError(key + "." + field.name +
                             " references unknown type " +
                             field.type.MessageKey());
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<std::string>> SpecRegistry::TopologicalOrder() const {
  RSF_RETURN_IF_ERROR(ValidateReferences());

  std::vector<std::string> order;
  std::set<std::string> done;
  std::set<std::string> in_progress;

  // Depth-first post-order; iterative not needed at this scale.
  std::function<Status(const std::string&)> visit =
      [&](const std::string& key) -> Status {
    if (done.count(key) != 0) return Status::Ok();
    if (in_progress.count(key) != 0) {
      return FailedPreconditionError("message reference cycle at " + key);
    }
    in_progress.insert(key);
    for (const auto& field : Find(key)->fields) {
      if (field.type.IsMessage()) {
        RSF_RETURN_IF_ERROR(visit(field.type.MessageKey()));
      }
    }
    in_progress.erase(key);
    done.insert(key);
    order.push_back(key);
    return Status::Ok();
  };

  for (const auto& [key, spec] : specs_) {
    RSF_RETURN_IF_ERROR(visit(key));
  }
  return order;
}

Result<std::string> SpecRegistry::Md5For(const std::string& key) const {
  std::vector<std::string> stack;
  return Md5ForImpl(key, &stack);
}

Result<std::string> SpecRegistry::Md5ForImpl(
    const std::string& key, std::vector<std::string>* stack) const {
  if (const auto it = md5_cache_.find(key); it != md5_cache_.end()) {
    return it->second;
  }
  const MessageSpec* spec = Find(key);
  if (spec == nullptr) return NotFoundError("unknown message: " + key);
  if (std::find(stack->begin(), stack->end(), key) != stack->end()) {
    return FailedPreconditionError("message reference cycle at " + key);
  }
  stack->push_back(key);

  // Canonical text: constants first, then fields; message-typed fields use
  // the referenced type's MD5 as their type token (ROS1 algorithm).
  std::vector<std::string> lines;
  for (const auto& constant : spec->constants) {
    lines.push_back(std::string(PrimitiveName(constant.type)) + " " +
                    constant.name + "=" + constant.value_text);
  }
  for (const auto& field : spec->fields) {
    if (field.type.IsMessage()) {
      auto nested = Md5ForImpl(field.type.MessageKey(), stack);
      if (!nested.ok()) return nested.status();
      std::string suffix;
      if (field.type.array == ArrayKind::kDynamic) suffix = "[]";
      if (field.type.array == ArrayKind::kFixed) {
        suffix = "[" + std::to_string(field.type.fixed_size) + "]";
      }
      lines.push_back(*nested + suffix + " " + field.name);
    } else {
      lines.push_back(field.type.ToIdl() + " " + field.name);
    }
  }
  stack->pop_back();

  const std::string digest = Md5::HexDigest(Join(lines, "\n"));
  md5_cache_.emplace(key, digest);
  return digest;
}

size_t SpecRegistry::ArenaCapacityFor(const std::string& key,
                                      size_t fallback) const {
  const MessageSpec* spec = Find(key);
  if (spec == nullptr || spec->arena_capacity == 0) return fallback;
  return spec->arena_capacity;
}

}  // namespace rsf::idl
