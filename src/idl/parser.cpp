#include "idl/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace rsf::idl {
namespace {

constexpr char kArenaPragma[] = "@arena_capacity:";

/// Parses "<base>" / "<base>[]" / "<base>[N]" into a FieldType.
Result<FieldType> ParseFieldType(const std::string& package,
                                 std::string token) {
  FieldType type;
  const size_t bracket = token.find('[');
  if (bracket != std::string::npos) {
    if (token.back() != ']') {
      return InvalidArgumentError("malformed array suffix in: " + token);
    }
    const std::string inside =
        token.substr(bracket + 1, token.size() - bracket - 2);
    if (inside.empty()) {
      type.array = ArrayKind::kDynamic;
    } else {
      char* end = nullptr;
      const unsigned long n = std::strtoul(inside.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        return InvalidArgumentError("bad fixed array size in: " + token);
      }
      type.array = ArrayKind::kFixed;
      type.fixed_size = static_cast<uint32_t>(n);
    }
    token = token.substr(0, bracket);
  }

  if (const auto primitive = ParsePrimitive(token)) {
    type.is_primitive = true;
    type.primitive = *primitive;
    return type;
  }

  type.is_primitive = false;
  const size_t slash = token.find('/');
  if (slash != std::string::npos) {
    type.message_package = token.substr(0, slash);
    type.message_name = token.substr(slash + 1);
  } else if (token == "Header") {
    // ROS1 special case: a bare Header means std_msgs/Header.
    type.message_package = "std_msgs";
    type.message_name = "Header";
  } else {
    type.message_package = package;  // same-package reference
    type.message_name = token;
  }
  if (!IsIdentifier(type.message_package) || !IsIdentifier(type.message_name)) {
    return InvalidArgumentError("bad message type name: " + token);
  }
  return type;
}

}  // namespace

Result<size_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty byte size");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) {
    return InvalidArgumentError("bad byte size: " + text);
  }
  double multiplier = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': multiplier = 1024; break;
      case 'M': multiplier = 1024.0 * 1024; break;
      case 'G': multiplier = 1024.0 * 1024 * 1024; break;
      default:
        return InvalidArgumentError("bad byte-size suffix: " + text);
    }
    if (end[1] != '\0') {
      return InvalidArgumentError("trailing junk in byte size: " + text);
    }
  }
  return static_cast<size_t>(value * multiplier);
}

Result<MessageSpec> ParseMessage(const std::string& package,
                                 const std::string& name,
                                 const std::string& text) {
  if (!IsIdentifier(package) || !IsIdentifier(name)) {
    return InvalidArgumentError("bad message identity: " + package + "/" + name);
  }

  MessageSpec spec;
  spec.package = package;
  spec.name = name;
  spec.raw_text = text;

  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line(Strip(raw_line));

    // Pragmas live in comments so standard genmsg ignores them.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      const std::string comment(Strip(line.substr(hash + 1)));
      if (StartsWith(comment, kArenaPragma)) {
        auto bytes = ParseByteSize(
            std::string(Strip(comment.substr(sizeof(kArenaPragma) - 1))));
        if (!bytes.ok()) return bytes.status();
        spec.arena_capacity = *bytes;
      }
      line = std::string(Strip(line.substr(0, hash)));
    }
    if (line.empty()) continue;

    // Constant?  `<primitive> <NAME>=<value>` — for strings, everything
    // after '=' verbatim (ROS semantics).
    const auto tokens = SplitWhitespace(line);
    const size_t eq = line.find('=');
    if (eq != std::string::npos && tokens.size() >= 2) {
      const auto primitive = ParsePrimitive(tokens[0]);
      if (!primitive) {
        return InvalidArgumentError(package + "/" + name + ":" +
                                    std::to_string(line_number) +
                                    ": constants must have primitive type");
      }
      // Name is between the type token and '='.
      const size_t type_end = line.find(tokens[0]) + tokens[0].size();
      std::string const_name(Strip(line.substr(type_end, eq - type_end)));
      std::string value(Strip(line.substr(eq + 1)));
      if (!IsIdentifier(const_name)) {
        return InvalidArgumentError("bad constant name: " + const_name);
      }
      spec.constants.push_back(ConstantSpec{*primitive, const_name, value});
      continue;
    }

    if (tokens.size() != 2) {
      return InvalidArgumentError(package + "/" + name + ":" +
                                  std::to_string(line_number) +
                                  ": expected '<type> <name>': " + line);
    }
    auto type = ParseFieldType(package, tokens[0]);
    if (!type.ok()) return type.status();
    if (!IsIdentifier(tokens[1])) {
      return InvalidArgumentError("bad field name: " + tokens[1]);
    }
    spec.fields.push_back(FieldSpec{*type, tokens[1]});
  }
  return spec;
}

}  // namespace rsf::idl
