// Spec registry: the set of message definitions known to the generator and
// the converter, with dependency resolution, topological ordering for code
// emission, and ROS1-style MD5 type checksums.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "idl/types.h"

namespace rsf::idl {

class SpecRegistry {
 public:
  /// Adds one spec; kAlreadyExists if the key is taken.
  Status Add(MessageSpec spec);

  /// Loads every `<dir>/<package>/<Name>.msg` under `dir`.
  Status LoadDirectory(const std::string& dir);

  [[nodiscard]] const MessageSpec* Find(const std::string& key) const;
  [[nodiscard]] bool Contains(const std::string& key) const {
    return Find(key) != nullptr;
  }
  [[nodiscard]] size_t Size() const { return specs_.size(); }

  /// All keys, sorted.
  [[nodiscard]] std::vector<std::string> Keys() const;

  /// Verifies every message-type field refers to a known spec.
  [[nodiscard]] Status ValidateReferences() const;

  /// Keys in dependency order (referenced messages before referencing
  /// ones); kFailedPrecondition on reference cycles.
  [[nodiscard]] Result<std::vector<std::string>> TopologicalOrder() const;

  /// ROS1 message MD5: the digest of the canonical definition text in which
  /// (a) comments/blank lines are dropped, (b) constants come first, and
  /// (c) each message-typed field's type token is replaced by that type's
  /// own MD5.  Identical across machines for identical definitions, and
  /// changed by any semantic change — which is exactly what the transport's
  /// handshake check needs.
  [[nodiscard]] Result<std::string> Md5For(const std::string& key) const;

  /// Arena capacity for SFM codegen: the spec's pragma, or `fallback`.
  [[nodiscard]] size_t ArenaCapacityFor(const std::string& key,
                                        size_t fallback) const;

 private:
  Result<std::string> Md5ForImpl(const std::string& key,
                                 std::vector<std::string>* stack) const;

  std::map<std::string, MessageSpec> specs_;
  mutable std::map<std::string, std::string> md5_cache_;
};

}  // namespace rsf::idl
