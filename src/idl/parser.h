// Parser for ROS1 `.msg` files (the IDL the SFM Generator consumes).
//
// Grammar per line:
//   <type> <name>                 field
//   <type>[<N>] <name>            fixed-size array field
//   <type>[] <name>               dynamic array field
//   <primitive> <NAME>=<value>    constant
//   # comment                     (the pragma `# @arena_capacity: <bytes>`
//                                  sets the SFM arena size; suffixes K/M/G
//                                  are accepted)
#pragma once

#include <string>

#include "common/status.h"
#include "idl/types.h"

namespace rsf::idl {

/// Parses the text of one `.msg` file into a spec.  `package` and `name`
/// identify the message ("sensor_msgs", "Image").  Message-type field
/// references are recorded as written; resolution of bare names happens in
/// the registry.
Result<MessageSpec> ParseMessage(const std::string& package,
                                 const std::string& name,
                                 const std::string& text);

/// Parses "8M", "4096", "2G" into bytes; error on malformed input.
Result<size_t> ParseByteSize(const std::string& text);

}  // namespace rsf::idl
