// Deterministic corpus synthesizer for the applicability study (paper §5.4).
//
// The paper manually audited 125 official ROS packages (486 source files)
// and reported, per message class, how many files satisfy the three SFM
// assumptions (Table 1).  Those packages are not available offline, so this
// module regenerates an equivalent corpus: realistic usage files drawn from
// a set of hand-written pattern templates — publisher loops, subscriber
// callbacks, conversion helpers, and the paper's three failure-case shapes
// (Figs. 19-21) — expanded deterministically so the per-class marginals
// (Total / String-Reassignment / Vector-Multi-Resize / Other-Methods /
// Applicable) match Table 1 exactly.  See DESIGN.md, substitutions.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "converter/checker.h"

namespace rsf::conv {

/// One synthesized population group: `count` files using `message_class`,
/// each violating exactly the flagged assumptions (none flagged = clean).
struct GroupSpec {
  std::string message_class;
  int count = 0;
  bool string_reassign = false;
  bool vector_multi_resize = false;
  bool modifier = false;
};

/// The Table 1 population: per-class groups whose marginals reproduce the
/// paper's counts (e.g. sensor_msgs/Image: 49 files, 40 applicable,
/// 8 string, 6 vector, 0 other).
std::vector<GroupSpec> Table1Population();

/// The paper's Table 1 rows (expected values for verification).
std::vector<ClassRow> Table1Expected();

/// Renders the source text of one corpus file.
std::string SynthesizeFile(const GroupSpec& group, int index);

/// Writes the whole population under `out_dir` (one .cpp per file).
rsf::Status SynthesizeCorpus(const std::string& out_dir);

}  // namespace rsf::conv
