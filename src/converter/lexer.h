// A C++ tokenizer for the ROS-SF Converter (paper §4.3.2).
//
// The paper implements the converter on LLVM IR; LLVM is not available in
// this environment, so the converter works at the token level with enough
// C++ awareness (typedef/using resolution, namespace usings, scope braces,
// member paths) to reproduce the paper's observable behaviour: the Fig. 11
// rewrite and the Table 1 applicability verdicts (see DESIGN.md,
// substitutions).
#pragma once

#include <string>
#include <vector>

namespace rsf::conv {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,     // "..." or '...'
  kPunct,      // operators and punctuation, longest-match (e.g. "->", "::")
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;
  size_t offset = 0;  // byte offset of the first character
  int line = 1;       // 1-based

  [[nodiscard]] bool Is(const char* t) const { return text == t; }
  [[nodiscard]] bool IsIdent() const { return kind == TokenKind::kIdentifier; }
};

/// Tokenizes C++ source; comments and preprocessor lines are skipped.
/// Never fails: unknown bytes become single-character punct tokens.
std::vector<Token> Tokenize(const std::string& source);

}  // namespace rsf::conv
