#include "converter/type_table.h"

namespace rsf::conv {

TypeTable TypeTable::FromRegistry(const idl::SpecRegistry& registry) {
  TypeTable table;
  for (const std::string& key : registry.Keys()) {
    const idl::MessageSpec* spec = registry.Find(key);
    table.qualified_[spec->package + "::" + spec->name] = key;
    table.bare_by_namespace_[spec->package][spec->name] = key;

    auto& fields = table.fields_[key];
    for (const auto& field : spec->fields) {
      FieldInfo info;
      if (field.type.array == idl::ArrayKind::kDynamic) {
        info.category = FieldCategory::kVector;
        if (field.type.IsMessage()) info.message_key = field.type.MessageKey();
      } else if (field.type.array == idl::ArrayKind::kFixed) {
        info.category = FieldCategory::kFixedArray;
        if (field.type.IsMessage()) info.message_key = field.type.MessageKey();
      } else if (field.type.IsMessage()) {
        info.category = FieldCategory::kMessage;
        info.message_key = field.type.MessageKey();
      } else if (field.type.primitive == idl::Primitive::kString) {
        info.category = FieldCategory::kString;
      } else {
        info.category = FieldCategory::kScalar;
      }
      fields[field.name] = info;
    }
  }
  return table;
}

const FieldInfo* TypeTable::FieldOf(const std::string& key,
                                    const std::string& field) const {
  const auto message = fields_.find(key);
  if (message == fields_.end()) return nullptr;
  const auto info = message->second.find(field);
  return info == message->second.end() ? nullptr : &info->second;
}

std::optional<std::string> TypeTable::Resolve(
    const std::string& spelling,
    const std::set<std::string>& using_namespaces) const {
  // Strip a leading "::".
  std::string name = spelling;
  if (name.rfind("::", 0) == 0) name = name.substr(2);

  if (const auto it = qualified_.find(name); it != qualified_.end()) {
    return it->second;
  }
  for (const std::string& ns : using_namespaces) {
    const auto pkg = bare_by_namespace_.find(ns);
    if (pkg == bare_by_namespace_.end()) continue;
    if (const auto it = pkg->second.find(name); it != pkg->second.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

std::vector<std::string> TypeTable::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(fields_.size());
  for (const auto& [key, fields] : fields_) keys.push_back(key);
  return keys;
}

}  // namespace rsf::conv
