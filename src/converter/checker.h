// Applicability checker: runs the analyzer over a corpus of source files
// and aggregates the per-message-class verdicts into the paper's Table 1
// ("Total", "Applicable", "String Reassignment", "Vector Multi-Resize",
// "Other Methods" — file counts).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "converter/analyzer.h"

namespace rsf::conv {

struct NamedReport {
  std::string file;
  FileReport report;
};

struct ClassRow {
  std::string message_class;
  size_t total = 0;
  size_t applicable = 0;
  size_t string_reassignment = 0;
  size_t vector_multi_resize = 0;
  size_t other_methods = 0;
};

/// Analyzes every `.cpp`/`.cc`/`.h` file under `dir` (recursively).
rsf::Result<std::vector<NamedReport>> AnalyzeDirectory(const std::string& dir,
                                                       const TypeTable& types);

/// Aggregates reports into Table 1 rows for `classes` (in the given order).
std::vector<ClassRow> AggregateTable(const std::vector<NamedReport>& reports,
                                     const std::vector<std::string>& classes);

/// Renders rows in the paper's Table 1 format.
std::string RenderTable(const std::vector<ClassRow>& rows);

}  // namespace rsf::conv
