// The ROS-SF Converter's analysis core (paper §4.3.2 and §5.4): finds
// message objects in C++ source, tracks writes to their variable-size
// fields, and reports violations of the three SFM assumptions —
//
//   1. One-Shot String Assignment   (a string field assigned twice, or
//      assigned after the object was fully constructed by a helper call,
//      or written through a non-const reference parameter — the paper's
//      "possible violation", counted as a failure "for the sake of rigor")
//   2. One-Shot Vector Resizing     (resize twice / after full
//      construction / through a reference parameter; resize(0) as the
//      first call is exempt, matching the runtime semantics)
//   3. No Modifier                  (push_back / pop_back / insert /
//      erase / clear / reserve / emplace_back on a message vector field)
//
// It also records every stack declaration of a message type, which the
// rewriter (rewriter.h) converts to heap allocation per Fig. 11.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "converter/lexer.h"
#include "converter/type_table.h"

namespace rsf::conv {

enum class FindingKind {
  kStringReassignment,
  kVectorMultiResize,
  kModifierCall,
};

const char* FindingKindName(FindingKind kind) noexcept;

struct Finding {
  FindingKind kind = FindingKind::kStringReassignment;
  int line = 0;
  std::string path;           // e.g. "out_img.header.frame_id"
  std::string message_class;  // root object's class, e.g. "sensor_msgs/Image"
  std::string note;           // human-readable explanation
};

/// A message object declared as a local variable (rewriter input).
struct StackDecl {
  std::string type_spelling;  // as written, e.g. "sensor_msgs::Image"
  std::string message_class;
  std::string variable;
  int line = 0;
  size_t decl_begin = 0;  // offset of the type token
  size_t stmt_end = 0;    // offset one past the terminating ';'
  bool has_ctor_args = false;
  std::string ctor_args;  // text inside (...) when has_ctor_args
};

struct FileReport {
  std::vector<Finding> findings;
  std::vector<StackDecl> stack_decls;
  std::set<std::string> classes_used;

  [[nodiscard]] bool Uses(const std::string& message_class) const {
    return classes_used.count(message_class) != 0;
  }
  [[nodiscard]] bool Violates(const std::string& message_class,
                              FindingKind kind) const {
    for (const auto& finding : findings) {
      if (finding.message_class == message_class && finding.kind == kind) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] bool Applicable(const std::string& message_class) const {
    for (const auto& finding : findings) {
      if (finding.message_class == message_class) return false;
    }
    return true;
  }
};

/// Analyzes one translation unit.
FileReport AnalyzeSource(const std::string& source, const TypeTable& types);

}  // namespace rsf::conv
