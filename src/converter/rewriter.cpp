#include "converter/rewriter.h"

#include <algorithm>

namespace rsf::conv {

RewriteResult RewriteStackDeclarations(const std::string& source,
                                       const FileReport& report) {
  // Apply back-to-front so earlier offsets stay valid.
  std::vector<StackDecl> decls = report.stack_decls;
  std::sort(decls.begin(), decls.end(),
            [](const StackDecl& a, const StackDecl& b) {
              return a.decl_begin > b.decl_begin;
            });

  std::string out = source;
  for (const StackDecl& decl : decls) {
    // Indentation of the declaration's line, for the inserted second line.
    size_t line_start = decl.decl_begin;
    while (line_start > 0 && out[line_start - 1] != '\n') --line_start;
    const std::string indent =
        out.substr(line_start, decl.decl_begin - line_start);

    const std::string ctor_args =
        decl.has_ctor_args ? "(" + decl.ctor_args + ")" : "";
    const std::string replacement =
        "std::shared_ptr<" + decl.type_spelling + "> ptmp_" + decl.variable +
        "(new " + decl.type_spelling + ctor_args + ");\n" + indent +
        decl.type_spelling + " & " + decl.variable + " = *ptmp_" +
        decl.variable + ";";

    out.replace(decl.decl_begin, decl.stmt_end - decl.decl_begin, replacement);
  }
  return RewriteResult{std::move(out), decls.size()};
}

}  // namespace rsf::conv
