#include "converter/lexer.h"

#include <cctype>

namespace rsf::conv {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we must keep intact, longest first.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

}  // namespace

std::vector<Token> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  const auto peek = [&](size_t ahead) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of (possibly continued) line.
    if (c == '#') {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      Token token{TokenKind::kString, std::string(1, c), i, line};
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          token.text += source[i];
          token.text += source[i + 1];
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;
        token.text += source[i++];
      }
      if (i < n) {
        token.text += quote;
        ++i;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      Token token{TokenKind::kIdentifier, "", i, line};
      while (i < n && IsIdentChar(source[i])) token.text += source[i++];
      tokens.push_back(std::move(token));
      continue;
    }
    // Number (simplified: digits, dots, exponents, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token token{TokenKind::kNumber, "", i, line};
      while (i < n && (IsIdentChar(source[i]) || source[i] == '.' ||
                       ((source[i] == '+' || source[i] == '-') && i > 0 &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        token.text += source[i++];
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Punctuation: longest match first.
    bool matched = false;
    for (const char* punct : kPuncts) {
      const size_t len = std::char_traits<char>::length(punct);
      if (source.compare(i, len, punct) == 0) {
        tokens.push_back(Token{TokenKind::kPunct, punct, i, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), i, line});
    ++i;
  }

  tokens.push_back(Token{TokenKind::kEndOfFile, "", n, line});
  return tokens;
}

}  // namespace rsf::conv
