// Message-type knowledge for the converter, derived from the IDL registry:
// which C++ spellings denote message classes, and what category each field
// of each message has.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "idl/registry.h"

namespace rsf::conv {

enum class FieldCategory {
  kScalar,   // fixed-size primitive (or time)
  kString,   // one-shot-assignable
  kVector,   // one-shot-resizable
  kMessage,  // nested message (recurse)
  kFixedArray,
};

struct FieldInfo {
  FieldCategory category = FieldCategory::kScalar;
  /// For kMessage: the nested message key.  For kVector/kFixedArray whose
  /// elements are messages: the element message key (else empty).
  std::string message_key;
};

class TypeTable {
 public:
  static TypeTable FromRegistry(const idl::SpecRegistry& registry);

  /// Field lookup; nullptr if `key` or `field` is unknown.
  [[nodiscard]] const FieldInfo* FieldOf(const std::string& key,
                                         const std::string& field) const;

  /// Resolves a C++ type spelling ("sensor_msgs::Image", or bare "Image"
  /// under one of `using_namespaces`) to a message key; nullopt otherwise.
  [[nodiscard]] std::optional<std::string> Resolve(
      const std::string& spelling,
      const std::set<std::string>& using_namespaces) const;

  [[nodiscard]] std::vector<std::string> Keys() const;

 private:
  // message key -> (field name -> info)
  std::map<std::string, std::map<std::string, FieldInfo>> fields_;
  // "pkg::Name" -> key, and per-package bare names for using-namespace.
  std::map<std::string, std::string> qualified_;
  std::map<std::string, std::map<std::string, std::string>> bare_by_namespace_;
};

}  // namespace rsf::conv
