#include "converter/analyzer.h"

#include <map>

#include "common/string_util.h"

namespace rsf::conv {
namespace {

const std::set<std::string>& ModifierMethods() {
  static const std::set<std::string> methods = {
      "push_back", "pop_back", "insert",        "erase",
      "clear",     "reserve",  "emplace_back",  "shrink_to_fit",
  };
  return methods;
}

struct VarInfo {
  std::string message_class;
  std::string root_class;       // class of the outermost object (findings)
  bool is_pointer = false;
  bool fully_assigned = false;  // constructed/filled by a helper call
  bool ref_param = false;       // non-const reference parameter (output)
  std::string canonical;        // unique counting key root
  std::string display;          // human-readable path root
  int depth = 0;
};

struct TypeRef {
  std::string spelling;  // "sensor_msgs::Image"
  std::string key;       // resolved message key
  bool is_pointer = false;
  size_t next = 0;  // token index after the type
};

class Analyzer {
 public:
  Analyzer(const std::string& source, const TypeTable& types)
      : source_(source), types_(types), tokens_(Tokenize(source)) {}

  FileReport Run() {
    CollectUsingsAndAliases();
    Walk();
    return std::move(report_);
  }

 private:
  // ---------- small token helpers ----------
  const Token& Tok(size_t i) const {
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Is(size_t i, const char* text) const { return Tok(i).Is(text); }

  size_t MatchForward(size_t open, const char* open_text,
                      const char* close_text) const {
    int depth = 0;
    for (size_t i = open; i < tokens_.size(); ++i) {
      if (Tok(i).Is(open_text)) ++depth;
      if (Tok(i).Is(close_text)) {
        if (--depth == 0) return i;
      }
    }
    return tokens_.size() - 1;
  }

  size_t MatchBackward(size_t close) const {  // ')' -> its '('
    int depth = 0;
    for (size_t i = close + 1; i-- > 0;) {
      if (Tok(i).Is(")")) ++depth;
      if (Tok(i).Is("(")) {
        if (--depth == 0) return i;
      }
    }
    return 0;
  }

  // ---------- pass 1: using-directives and type aliases ----------
  void CollectUsingsAndAliases() {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (Tok(i).Is("using") && Tok(i + 1).Is("namespace")) {
        std::string ns;
        size_t j = i + 2;
        while (!Is(j, ";") && Tok(j).kind != TokenKind::kEndOfFile) {
          ns += Tok(j).text;
          ++j;
        }
        usings_.insert(ns);
        i = j;
      } else if (Tok(i).Is("typedef")) {
        // typedef <type...> <name> ;
        std::vector<std::string> parts;
        size_t j = i + 1;
        while (!Is(j, ";") && Tok(j).kind != TokenKind::kEndOfFile) {
          parts.push_back(Tok(j).text);
          ++j;
        }
        if (parts.size() >= 2) {
          const std::string name = parts.back();
          parts.pop_back();
          aliases_[name] = rsf::Join(parts, "");
        }
        i = j;
      } else if (Tok(i).Is("using") && Tok(i + 1).IsIdent() &&
                 Is(i + 2, "=")) {
        // using <name> = <type...> ;
        const std::string name = Tok(i + 1).text;
        std::vector<std::string> parts;
        size_t j = i + 3;
        while (!Is(j, ";") && Tok(j).kind != TokenKind::kEndOfFile) {
          parts.push_back(Tok(j).text);
          ++j;
        }
        aliases_[name] = rsf::Join(parts, "");
        i = j;
      }
    }
  }

  // ---------- type parsing ----------
  // Reads a (possibly qualified) type at `i`; resolves message classes,
  // `Type::Ptr` / `Type::ConstPtr` and `std::shared_ptr<Type>` spellings.
  std::optional<TypeRef> ParseType(size_t i) const {
    size_t j = i;
    std::string spelling;
    if (Is(j, "::")) ++j;
    if (!Tok(j).IsIdent()) return std::nullopt;
    spelling = Tok(j).text;
    ++j;
    while (Is(j, "::") && Tok(j + 1).IsIdent()) {
      // Stop before Ptr/ConstPtr so the base type resolves on its own.
      if (Tok(j + 1).Is("Ptr") || Tok(j + 1).Is("ConstPtr")) break;
      spelling += "::" + Tok(j + 1).text;
      j += 2;
    }

    // shared_ptr<Type> spelling.
    if ((spelling == "std::shared_ptr" || spelling == "boost::shared_ptr") &&
        Is(j, "<")) {
      const size_t close = MatchForward(j, "<", ">");
      std::string inner;
      for (size_t k = j + 1; k < close; ++k) {
        if (Tok(k).Is("const")) continue;
        inner += Tok(k).text;
      }
      if (const auto key = ResolveSpelling(inner)) {
        return TypeRef{inner, *key, true, close + 1};
      }
      return std::nullopt;
    }

    bool pointer = false;
    size_t next = j;
    if (Is(j, "::") && (Tok(j + 1).Is("Ptr") || Tok(j + 1).Is("ConstPtr"))) {
      pointer = true;
      next = j + 2;
    }
    if (const auto key = ResolveSpelling(spelling)) {
      return TypeRef{spelling, *key, pointer, next};
    }
    return std::nullopt;
  }

  std::optional<std::string> ResolveSpelling(const std::string& spelling) const {
    std::string name = spelling;
    if (const auto alias = aliases_.find(name); alias != aliases_.end()) {
      name = alias->second;
      // An alias can itself name the Ptr typedef; strip it.
      if (rsf::EndsWith(name, "::Ptr")) name = name.substr(0, name.size() - 5);
      if (rsf::EndsWith(name, "::ConstPtr")) {
        name = name.substr(0, name.size() - 10);
      }
    }
    return types_.Resolve(name, usings_);
  }

  // ---------- main walk ----------
  void Walk() {
    int depth = 0;
    for (size_t i = 0; i < tokens_.size(); ++i) {
      const Token& token = Tok(i);
      if (token.kind == TokenKind::kEndOfFile) break;

      if (token.Is("{")) {
        // Function body?  Parse the parameter list behind the ')' that
        // precedes this brace (skipping trailing qualifiers).
        size_t back = i;
        while (back > 0 && (Tok(back - 1).Is("const") ||
                            Tok(back - 1).Is("override") ||
                            Tok(back - 1).Is("noexcept"))) {
          --back;
        }
        if (back > 0 && Tok(back - 1).Is(")")) {
          ParseParams(MatchBackward(back - 1), back - 1, depth + 1);
        }
        ++depth;
        continue;
      }
      if (token.Is("}")) {
        --depth;
        // Scope exit: drop variables declared deeper.
        for (auto it = vars_.begin(); it != vars_.end();) {
          if (it->second.depth > depth) {
            it = vars_.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }

      // Member-path events on known variables.
      if (token.IsIdent() && vars_.count(token.text) != 0 &&
          (Is(i + 1, ".") || Is(i + 1, "->"))) {
        i = HandlePath(i);
        continue;
      }

      // Declarations at statement positions.
      if (token.IsIdent() && AtStatementStart(i)) {
        if (const auto consumed = TryDeclaration(i, depth)) {
          i = *consumed;
          continue;
        }
      }
    }
  }

  bool AtStatementStart(size_t i) const {
    if (i == 0) return true;
    const Token& prev = Tok(i - 1);
    return prev.Is(";") || prev.Is("{") || prev.Is("}") || prev.Is(")") ||
           prev.Is("const") || prev.Is("else");
  }

  // ---------- parameter lists ----------
  void ParseParams(size_t open, size_t close, int body_depth) {
    size_t i = open + 1;
    while (i < close) {
      bool is_const = false;
      while (Is(i, "const")) {
        is_const = true;
        ++i;
      }
      const auto type = ParseType(i);
      if (!type) {
        // Not a message param: skip to the next comma at this level.
        int nest = 0;
        while (i < close && !(nest == 0 && Is(i, ","))) {
          if (Is(i, "(") || Is(i, "<")) ++nest;
          if (Is(i, ")") || Is(i, ">")) --nest;
          ++i;
        }
        ++i;
        continue;
      }
      i = type->next;
      bool is_ref = false;
      while (Is(i, "&") || Is(i, "*")) {
        is_ref = Is(i, "&");
        ++i;
      }
      if (Tok(i).IsIdent()) {
        VarInfo var;
        var.message_class = type->key;
        var.root_class = type->key;
        var.is_pointer = type->is_pointer;
        // Non-const reference (or smart-pointer) parameters can carry
        // already-filled messages: writes through them are the paper's
        // "possible violations" (§5.4, failure case 2).
        var.ref_param = (is_ref && !is_const) || type->is_pointer;
        var.fully_assigned = is_const;  // const& inputs arrive filled
        var.canonical = Tok(i).text + "#" + std::to_string(next_serial_++);
        var.display = Tok(i).text;
        var.depth = body_depth;
        vars_[Tok(i).text] = var;
        report_.classes_used.insert(type->key);
        ++i;
      }
      while (i < close && !Is(i, ",")) ++i;
      ++i;
    }
  }

  // ---------- declarations ----------
  // Returns the index to resume at if a declaration was recognized.
  std::optional<size_t> TryDeclaration(size_t i, int depth) {
    bool leading_const = false;
    size_t at = i;
    if (Is(at, "const")) {  // only when called with prev == "const" skipped
      leading_const = true;
      ++at;
    }
    const auto type = ParseType(at);
    if (!type) return std::nullopt;
    at = type->next;

    bool is_ref = false;
    while (Is(at, "&")) {
      is_ref = true;
      ++at;
    }
    if (!Tok(at).IsIdent() || vars_.count(Tok(at).text) != 0) {
      // Unknown shape or shadowing; still record the class usage.
      report_.classes_used.insert(type->key);
      return std::nullopt;
    }
    const std::string name = Tok(at).text;
    const int decl_line = Tok(i).line;
    const size_t decl_begin = Tok(i).offset;
    size_t after_name = at + 1;

    report_.classes_used.insert(type->key);

    VarInfo var;
    var.message_class = type->key;
    var.root_class = type->key;
    var.is_pointer = type->is_pointer;
    var.canonical = name + "#" + std::to_string(next_serial_++);
    var.display = name;
    var.depth = depth;

    if (Is(after_name, ";")) {
      // Plain local declaration: the rewriter's Fig. 11 case.
      vars_[name] = var;
      if (!type->is_pointer && !is_ref && depth >= 1) {
        report_.stack_decls.push_back(
            StackDecl{type->spelling, type->key, name, decl_line, decl_begin,
                      Tok(after_name).offset + 1, false, ""});
      }
      return after_name;
    }
    if (Is(after_name, "(") && !type->is_pointer && !is_ref) {
      // Constructor-argument declaration.
      const size_t close = MatchForward(after_name, "(", ")");
      if (Is(close + 1, ";")) {
        vars_[name] = var;
        if (depth >= 1) {
          std::string args = SliceSource(Tok(after_name).offset + 1,
                                         Tok(close).offset);
          report_.stack_decls.push_back(
              StackDecl{type->spelling, type->key, name, decl_line, decl_begin,
                        Tok(close + 1).offset + 1, true, std::move(args)});
        }
        return close + 1;
      }
      return std::nullopt;
    }
    if (Is(after_name, "=")) {
      // Initialized declaration.  A reference bound to a field path
      // aliases that path (failure case 2's `dimage`); anything built by a
      // helper call arrives fully assigned (failure case 1's toImageMsg()).
      size_t expr_begin = after_name + 1;
      size_t expr_end = expr_begin;
      int nest = 0;
      while (Tok(expr_end).kind != TokenKind::kEndOfFile &&
             !(nest == 0 && Is(expr_end, ";"))) {
        if (Is(expr_end, "(")) ++nest;
        if (Is(expr_end, ")")) --nest;
        ++expr_end;
      }

      if (is_ref) {
        if (const auto target = ResolvePathExpr(expr_begin, expr_end)) {
          var.canonical = target->canonical;
          var.display = target->display;
          var.ref_param = target->ref_param;
          var.fully_assigned = target->fully_assigned;
          var.message_class = target->message_class;
          var.root_class = target->root_class;
        }
        vars_[name] = var;
        return expr_end;
      }

      bool has_call = false;
      bool fresh = false;
      for (size_t k = expr_begin; k < expr_end; ++k) {
        if (Is(k, "(")) has_call = true;
        if (Tok(k).Is("new") || Tok(k).Is("make_shared") ||
            Tok(k).Is("create")) {
          fresh = true;
        }
      }
      var.fully_assigned = has_call && !fresh;
      // `Image b = a;` copies a filled message.
      if (!has_call && Tok(expr_begin).IsIdent() &&
          vars_.count(Tok(expr_begin).text) != 0) {
        var.fully_assigned = true;
      }
      vars_[name] = var;
      (void)leading_const;
      return expr_end;
    }
    return std::nullopt;
  }

  // Resolves a pure member-path expression (var(.|->)field...) used as a
  // reference-binding initializer.  Returns the resulting pseudo-variable.
  std::optional<VarInfo> ResolvePathExpr(size_t begin, size_t end) const {
    if (!Tok(begin).IsIdent()) return std::nullopt;
    const auto root = vars_.find(Tok(begin).text);
    if (root == vars_.end()) return std::nullopt;

    VarInfo current = root->second;
    size_t i = begin + 1;
    while (i < end && (Is(i, ".") || Is(i, "->"))) {
      if (!Tok(i + 1).IsIdent()) return std::nullopt;
      const FieldInfo* field =
          types_.FieldOf(current.message_class, Tok(i + 1).text);
      if (field == nullptr) return std::nullopt;
      current.canonical += "." + Tok(i + 1).text;
      current.display += "." + Tok(i + 1).text;
      if (field->category == FieldCategory::kMessage) {
        current.message_class = field->message_key;
      } else {
        return std::nullopt;  // reference to a leaf field: not a message
      }
      i += 2;
    }
    return i == end ? std::optional<VarInfo>(current) : std::nullopt;
  }

  // ---------- member-path events ----------
  // `i` is at a known variable followed by '.'/'->'.  Returns resume index.
  size_t HandlePath(size_t i) {
    const VarInfo& root = vars_.at(Tok(i).text);
    VarInfo current = root;
    std::string path = root.canonical;      // unique counting key
    std::string display = root.display;     // shown in findings
    size_t j = i + 1;

    while (Is(j, ".") || Is(j, "->")) {
      if (!Tok(j + 1).IsIdent()) return j;
      const std::string member = Tok(j + 1).text;
      const FieldInfo* field = types_.FieldOf(current.message_class, member);

      if (field == nullptr) {
        // Not a field: a method call or unknown member; stop here.
        return j + 1;
      }
      path += "." + member;
      display += "." + member;
      j += 2;

      switch (field->category) {
        case FieldCategory::kMessage:
          current.message_class = field->message_key;
          if (Is(j, ".") || Is(j, "->")) continue;
          if (Is(j, "=") && !Is(j + 1, "=")) {
            // Whole-subtree assignment: later writes under it reassign.
            NoteAssignEvent(path, display, root,
                            FindingKind::kStringReassignment,
                            /*subtree=*/true, Tok(j).line);
          }
          return j;

        case FieldCategory::kVector: {
          if (Is(j, "[")) {
            j = MatchForward(j, "[", "]") + 1;
            if (!field->message_key.empty()) {
              current.message_class = field->message_key;
              if (Is(j, ".") || Is(j, "->")) continue;
            }
            return j;
          }
          if (Is(j, "=") && !Is(j + 1, "=")) {
            NoteAssignEvent(path, display, root,
                            FindingKind::kVectorMultiResize, false,
                            Tok(j).line);
            return j;
          }
          if (Is(j, ".") && Tok(j + 1).IsIdent()) {
            const std::string method = Tok(j + 1).text;
            if (method == "resize" && Is(j + 2, "(")) {
              // resize(0) as the first call never consumes the one-shot.
              const bool zero = Tok(j + 3).Is("0") && Is(j + 4, ")");
              if (!zero) {
                NoteAssignEvent(path, display, root,
                                FindingKind::kVectorMultiResize, false,
                                Tok(j + 1).line);
              }
              return j + 2;
            }
            if (ModifierMethods().count(method) != 0) {
              AddFinding(FindingKind::kModifierCall, Tok(j + 1).line,
                         display + "." + method + "()", root.root_class,
                         "modifier method not available on sfm::vector "
                         "(compile error under ROS-SF)");
              return j + 2;
            }
          }
          return j;
        }

        case FieldCategory::kString:
          if (Is(j, "=") && !Is(j + 1, "=")) {
            NoteAssignEvent(path, display, root,
                            FindingKind::kStringReassignment, false,
                            Tok(j).line);
          }
          return j;

        case FieldCategory::kScalar:
        case FieldCategory::kFixedArray:
          return j;
      }
    }
    return j;
  }

  void NoteAssignEvent(const std::string& path, const std::string& display,
                       const VarInfo& root, FindingKind kind, bool subtree,
                       int line) {
    const int count = ++assign_counts_[path];
    const bool after_subtree_assign = HasAssignedPrefix(path);

    if (subtree) {
      assigned_subtrees_.insert(path);
      if (count < 2 && !root.fully_assigned && !root.ref_param &&
          !after_subtree_assign) {
        return;
      }
    }

    std::string reason;
    if (count >= 2) {
      reason = "written more than once";
    } else if (root.fully_assigned) {
      reason = "object was already fully constructed (e.g. by a conversion "
               "helper) before this write";
    } else if (root.ref_param) {
      reason = "written through a reference parameter; callers may pass an "
               "already-filled message (possible violation)";
    } else if (after_subtree_assign) {
      reason = "an enclosing message field was assigned earlier";
    } else {
      return;  // first, clean write
    }
    AddFinding(kind, line, display, root.root_class, reason);
  }

  bool HasAssignedPrefix(const std::string& path) const {
    for (const std::string& prefix : assigned_subtrees_) {
      if (path.size() > prefix.size() && path[prefix.size()] == '.' &&
          path.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    return false;
  }

  void AddFinding(FindingKind kind, int line, const std::string& path,
                  const std::string& message_class, const std::string& note) {
    report_.findings.push_back(Finding{kind, line, path, message_class, note});
  }

  std::string SliceSource(size_t begin, size_t end) const {
    return source_.substr(begin, end - begin);
  }

  const std::string& source_;
  const TypeTable& types_;
  std::vector<Token> tokens_;

  std::set<std::string> usings_;
  std::map<std::string, std::string> aliases_;
  std::map<std::string, VarInfo> vars_;
  int next_serial_ = 0;
  std::map<std::string, int> assign_counts_;
  std::set<std::string> assigned_subtrees_;
  FileReport report_;
};

}  // namespace

const char* FindingKindName(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kStringReassignment:
      return "String Reassignment";
    case FindingKind::kVectorMultiResize:
      return "Vector Multi-Resize";
    case FindingKind::kModifierCall:
      return "Other Methods";
  }
  return "?";
}

FileReport AnalyzeSource(const std::string& source, const TypeTable& types) {
  Analyzer analyzer(source, types);
  return analyzer.Run();
}

}  // namespace rsf::conv
