#include "converter/checker.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rsf::conv {
namespace fs = std::filesystem;

rsf::Result<std::vector<NamedReport>> AnalyzeDirectory(
    const std::string& dir, const TypeTable& types) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return rsf::NotFoundError("not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<NamedReport> reports;
  reports.reserve(files.size());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) return rsf::UnavailableError("cannot read " + path.string());
    std::ostringstream text;
    text << in.rdbuf();
    reports.push_back(
        NamedReport{path.string(), AnalyzeSource(text.str(), types)});
  }
  return reports;
}

std::vector<ClassRow> AggregateTable(const std::vector<NamedReport>& reports,
                                     const std::vector<std::string>& classes) {
  std::vector<ClassRow> rows;
  for (const std::string& message_class : classes) {
    ClassRow row;
    row.message_class = message_class;
    for (const auto& [file, report] : reports) {
      if (!report.Uses(message_class)) continue;
      ++row.total;
      if (report.Applicable(message_class)) ++row.applicable;
      if (report.Violates(message_class, FindingKind::kStringReassignment)) {
        ++row.string_reassignment;
      }
      if (report.Violates(message_class, FindingKind::kVectorMultiResize)) {
        ++row.vector_multi_resize;
      }
      if (report.Violates(message_class, FindingKind::kModifierCall)) {
        ++row.other_methods;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

std::string RenderTable(const std::vector<ClassRow>& rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %6s %11s %10s %10s %8s\n",
                "Message Class", "Total", "Applicable", "StringRe", "VecResz",
                "OtherM");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-32s %6zu %11zu %10zu %10zu %8zu\n",
                  row.message_class.c_str(), row.total, row.applicable,
                  row.string_reassignment, row.vector_multi_resize,
                  row.other_methods);
    out += line;
  }
  return out;
}

}  // namespace rsf::conv
