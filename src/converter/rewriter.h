// Source rewriter: converts stack declarations of message types to heap
// allocation — the paper's Fig. 11 transformation.
//
//   Image img;                 std::shared_ptr<Image> ptmp_img(new Image);
//                       ==>    Image & img = *ptmp_img;
//
// The following statements need no change: C++ grammar for the variable and
// the reference is the same, and when the local reference goes out of scope
// the shared_ptr does too, so the semantics are consistent (paper §4.3.2).
#pragma once

#include <string>

#include "converter/analyzer.h"

namespace rsf::conv {

struct RewriteResult {
  std::string source;   // rewritten text
  size_t rewritten = 0; // number of declarations converted
};

/// Applies the heap-allocation rewrite for every stack declaration the
/// analyzer found.  Idempotent on already-converted source (the converted
/// form declares a shared_ptr, which is not a stack message declaration).
RewriteResult RewriteStackDeclarations(const std::string& source,
                                       const FileReport& report);

}  // namespace rsf::conv
