#include "converter/corpus_synth.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rsf::conv {
namespace {
namespace fs = std::filesystem;

/// Per-class vocabulary used by the templates.
struct ClassVocab {
  const char* key;        // "sensor_msgs/Image"
  const char* cpp;        // "sensor_msgs::Image"
  const char* short_name; // file-name stem
  const char* string_field;   // a directly assignable string field
  const char* vector_field;   // a resizable vector field
  const char* element_expr;   // an element value expression
};

const ClassVocab& VocabFor(const std::string& key) {
  static const ClassVocab kVocab[] = {
      {"sensor_msgs/Image", "sensor_msgs::Image", "image", "encoding", "data",
       "static_cast<uint8_t>(i)"},
      {"sensor_msgs/CompressedImage", "sensor_msgs::CompressedImage",
       "compressed", "format", "data", "static_cast<uint8_t>(i)"},
      {"sensor_msgs/PointCloud", "sensor_msgs::PointCloud", "cloud",
       "header.frame_id", "points", "geometry_msgs::Point32()"},
      {"sensor_msgs/PointCloud2", "sensor_msgs::PointCloud2", "cloud2",
       "header.frame_id", "data", "static_cast<uint8_t>(i)"},
      {"sensor_msgs/LaserScan", "sensor_msgs::LaserScan", "scan",
       "header.frame_id", "ranges", "0.5f * i"},
  };
  for (const auto& vocab : kVocab) {
    if (key == vocab.key) return vocab;
  }
  return kVocab[0];
}

// ---- clean templates (rotated by index) ----

std::string CleanPublisher(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "// Synthesized corpus file: steady-state publisher.\n"
      << "#include \"" << v.key << ".h\"\n\n"
      << "void publish_" << v.short_name << "_" << i
      << "(ros::Publisher& pub, int n) {\n"
      << "  " << v.cpp << " msg;\n"
      << "  msg." << v.string_field << " = \"frame_" << i << "\";\n"
      << "  msg." << v.vector_field << ".resize(n);\n"
      << "  for (int i = 0; i < n; ++i) msg." << v.vector_field
      << "[i] = " << v.element_expr << ";\n"
      << "  pub.publish(msg);\n"
      << "}\n";
  return out.str();
}

std::string CleanCallback(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "// Synthesized corpus file: read-only subscriber callback.\n"
      << "#include \"" << v.key << ".h\"\n\n"
      << "static long total_" << i << " = 0;\n\n"
      << "void on_" << v.short_name << "_" << i << "(const " << v.cpp
      << "::ConstPtr& msg) {\n"
      << "  total_" << i << " += static_cast<long>(msg->" << v.vector_field
      << ".size());\n"
      << "}\n";
  return out.str();
}

std::string CleanConverterNode(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "// Synthesized corpus file: transforms input into a fresh output\n"
      << "// message constructed locally (the paper's recommended shape).\n"
      << "#include \"" << v.key << ".h\"\n\n"
      << "void relay_" << v.short_name << "_" << i << "(const " << v.cpp
      << "::ConstPtr& in, ros::Publisher& pub) {\n"
      << "  " << v.cpp << " out;\n"
      << "  out." << v.string_field << " = \"relay_" << i << "\";\n"
      << "  out." << v.vector_field << ".resize(in->" << v.vector_field
      << ".size());\n"
      << "  pub.publish(out);\n"
      << "}\n";
  return out.str();
}

std::string CleanStampedSource(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "// Synthesized corpus file: timed source node.\n"
      << "#include \"" << v.key << ".h\"\n\n"
      << "void tick_" << v.short_name << "_" << i
      << "(ros::Publisher& pub, unsigned seq) {\n"
      << "  " << v.cpp << " msg;\n"
      << "  msg.header.seq = seq;\n"
      << "  msg." << v.vector_field << ".resize(64);\n"
      << "  pub.publish(msg);\n"
      << "}\n";
  return out.str();
}

// ---- violation snippets ----

/// Fig. 19 shape: a conversion helper returns a filled message, then one
/// more field is patched — the second write to an assigned string.
std::string StringViolationHelper(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "void patch_" << v.short_name << "_" << i << "(const " << v.cpp
      << "::ConstPtr& msg, ros::Publisher& pub, const Transform& tf) {\n"
      << "  " << v.cpp << "::Ptr out_msg = convert(msg).toMsg();\n"
      << "  out_msg->" << v.string_field << " = tf.child_frame_id;\n"
      << "  pub.publish(out_msg);\n"
      << "}\n";
  return out.str();
}

std::string StringViolationDouble(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "void retag_" << v.short_name << "_" << i
      << "(ros::Publisher& pub, bool compressed) {\n"
      << "  " << v.cpp << " msg;\n"
      << "  msg." << v.string_field << " = \"default_" << i << "\";\n"
      << "  if (compressed) msg." << v.string_field << " = \"zipped\";\n"
      << "  pub.publish(msg);\n"
      << "}\n";
  return out.str();
}

/// Fig. 20 shape: resize of a vector reachable through an output reference
/// parameter — callers may pass an already-sized message.
std::string VectorViolationOutParam(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "void fill_" << v.short_name << "_" << i << "(int n, " << v.cpp
      << "& out_ref) {\n"
      << "  out_ref." << v.vector_field << ".resize(n);\n"
      << "  (void)n;\n"
      << "}\n";
  return out.str();
}

std::string VectorViolationDouble(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "void grow_" << v.short_name << "_" << i
      << "(ros::Publisher& pub, int n) {\n"
      << "  " << v.cpp << " msg;\n"
      << "  msg." << v.vector_field << ".resize(n);\n"
      << "  msg." << v.vector_field << ".resize(2 * n);\n"
      << "  pub.publish(msg);\n"
      << "}\n";
  return out.str();
}

/// Fig. 21 shape: resize(0) then per-element push_back.
std::string ModifierViolation(const ClassVocab& v, int i) {
  std::ostringstream out;
  out << "void append_" << v.short_name << "_" << i << "(" << v.cpp
      << "& sink, int n) {\n"
      << "  sink." << v.vector_field << ".resize(0);\n"
      << "  for (int i = 0; i < n; ++i) {\n"
      << "    sink." << v.vector_field << ".push_back(" << v.element_expr
      << ");\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

}  // namespace

std::vector<GroupSpec> Table1Population() {
  // Per class, groups solving the Table 1 marginals:
  //   Image          49 total: 40 clean, 5 s+v, 3 s, 1 v  => s=8 v=6 o=0
  //   CompressedImage 7 total:  2 clean, 5 s+v             => s=5 v=5 o=0
  //   PointCloud     14 total: 10 s+v, 1 s+v+o, 1 s+o, 1 s, 1 v
  //                                                        => s=13 v=12 o=2
  //   PointCloud2    15 total:  1 clean, 5 s+v, 1 s+v+o, 1 s+o, 1 v, 6 o
  //                                                        => s=7 v=7 o=8
  //   LaserScan      18 total:  5 clean, 12 s+v, 1 s+o     => s=13 v=12 o=1
  return {
      {"sensor_msgs/Image", 40, false, false, false},
      {"sensor_msgs/Image", 5, true, true, false},
      {"sensor_msgs/Image", 3, true, false, false},
      {"sensor_msgs/Image", 1, false, true, false},

      {"sensor_msgs/CompressedImage", 2, false, false, false},
      {"sensor_msgs/CompressedImage", 5, true, true, false},

      {"sensor_msgs/PointCloud", 10, true, true, false},
      {"sensor_msgs/PointCloud", 1, true, true, true},
      {"sensor_msgs/PointCloud", 1, true, false, true},
      {"sensor_msgs/PointCloud", 1, true, false, false},
      {"sensor_msgs/PointCloud", 1, false, true, false},

      {"sensor_msgs/PointCloud2", 1, false, false, false},
      {"sensor_msgs/PointCloud2", 5, true, true, false},
      {"sensor_msgs/PointCloud2", 1, true, true, true},
      {"sensor_msgs/PointCloud2", 1, true, false, true},
      {"sensor_msgs/PointCloud2", 1, false, true, false},
      {"sensor_msgs/PointCloud2", 6, false, false, true},

      {"sensor_msgs/LaserScan", 5, false, false, false},
      {"sensor_msgs/LaserScan", 12, true, true, false},
      {"sensor_msgs/LaserScan", 1, true, false, true},
  };
}

std::vector<ClassRow> Table1Expected() {
  return {
      {"sensor_msgs/Image", 49, 40, 8, 6, 0},
      {"sensor_msgs/CompressedImage", 7, 2, 5, 5, 0},
      {"sensor_msgs/PointCloud", 14, 0, 13, 12, 2},
      {"sensor_msgs/PointCloud2", 15, 1, 7, 7, 8},
      {"sensor_msgs/LaserScan", 18, 5, 13, 12, 1},
  };
}

std::string SynthesizeFile(const GroupSpec& group, int index) {
  const ClassVocab& vocab = VocabFor(group.message_class);

  if (!group.string_reassign && !group.vector_multi_resize &&
      !group.modifier) {
    switch (index % 4) {
      case 0: return CleanPublisher(vocab, index);
      case 1: return CleanCallback(vocab, index);
      case 2: return CleanConverterNode(vocab, index);
      default: return CleanStampedSource(vocab, index);
    }
  }

  std::ostringstream out;
  out << "// Synthesized corpus file: violates "
      << (group.string_reassign ? "[string] " : "")
      << (group.vector_multi_resize ? "[vector] " : "")
      << (group.modifier ? "[modifier] " : "") << "\n"
      << "#include \"" << group.message_class << ".h\"\n\n";
  if (group.string_reassign) {
    out << (index % 2 == 0 ? StringViolationHelper(vocab, index)
                           : StringViolationDouble(vocab, index))
        << "\n";
  }
  if (group.vector_multi_resize) {
    out << (index % 2 == 0 ? VectorViolationOutParam(vocab, index)
                           : VectorViolationDouble(vocab, index))
        << "\n";
  }
  if (group.modifier) {
    out << ModifierViolation(vocab, index) << "\n";
  }
  return out.str();
}

rsf::Status SynthesizeCorpus(const std::string& out_dir) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) return rsf::InternalError("mkdir failed: " + out_dir);

  std::map<std::string, int> per_class_index;
  for (const GroupSpec& group : Table1Population()) {
    const ClassVocab& vocab = VocabFor(group.message_class);
    for (int i = 0; i < group.count; ++i) {
      const int index = per_class_index[group.message_class]++;
      const fs::path path = fs::path(out_dir) /
                            (std::string(vocab.short_name) + "_" +
                             std::to_string(index) + ".cpp");
      std::ofstream out(path);
      if (!out) return rsf::UnavailableError("cannot write " + path.string());
      out << SynthesizeFile(group, index);
    }
  }
  return rsf::Status::Ok();
}

}  // namespace rsf::conv
