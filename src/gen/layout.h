// Skeleton layout calculator for the SFM format.
//
// The defining property of SFM (paper §4.1) is that a message's skeleton is
// expressible as a plain C++ structure: every field has a fixed size and a
// fixed offset.  This module computes that layout — following the Itanium
// C++ ABI rules the generated structs obey (natural alignment, size rounded
// up to alignment) — so the generator can static_assert the generated struct
// matches, and so `bench/layouts` can print the paper's Fig. 7 table.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "idl/registry.h"

namespace rsf::gen {

struct FieldLayout {
  std::string name;      // field name, dotted for nested ("header.stamp")
  std::string idl_type;  // IDL spelling
  size_t offset = 0;     // byte offset within the skeleton
  size_t size = 0;       // bytes this field occupies in the skeleton
  bool variable = false; // true for string/vector skeletons (8-byte {len,off})
};

struct SfmLayout {
  size_t size = 0;   // sizeof the skeleton struct
  size_t align = 0;  // alignof the skeleton struct
  std::vector<FieldLayout> fields;  // flattened, nested fields dotted
};

/// Computes the SFM skeleton layout of `key`.  Nested message fields are
/// flattened into dotted entries; fixed arrays contribute one entry covering
/// the whole array.
Result<SfmLayout> ComputeSfmLayout(const idl::SpecRegistry& registry,
                                   const std::string& key);

/// Renders the layout as the paper's Fig. 7-style table (start address,
/// size, meaning).
std::string RenderLayoutTable(const SfmLayout& layout, const std::string& key);

}  // namespace rsf::gen
