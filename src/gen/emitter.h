// The SFM Generator's C++ emitters (paper §4.3.1, "based on the ROS message
// generator genmsg").
//
// For every message spec two headers are produced:
//   <out>/<pkg>/<Name>.h        the regular ROS-style struct
//                               (std::string / std::vector fields)
//   <out>/<pkg>/sfm/<Name>.h    the SFM skeleton struct (sfm::string /
//                               sfm::vector fields), deriving from
//                               sfm::ManagedMessage for the overloaded
//                               new/delete, with the paper's generated copy
//                               constructor and operator= (whole-message
//                               copy via the message manager)
//
// Both variants share the datatype string and MD5, expose the same field
// names, and carry a uniform `for_each_field` visitor that the generic
// serializers in src/serialization are written against.  The paper swaps
// the generated header underneath existing code; here the two variants
// coexist in parallel namespaces (<pkg> vs <pkg>::sfm) so that ROS and
// ROS-SF can be benchmarked in one binary (see DESIGN.md).
#pragma once

#include <string>

#include "common/status.h"
#include "idl/registry.h"

namespace rsf::gen {

/// Renders the regular (serialized) message header.
Result<std::string> EmitRegularHeader(const idl::SpecRegistry& registry,
                                      const std::string& key);

/// Renders the serialization-free message header.
Result<std::string> EmitSfmHeader(const idl::SpecRegistry& registry,
                                  const std::string& key);

/// Default arena capacity when a spec has no @arena_capacity pragma.
inline constexpr size_t kDefaultArenaCapacity = 256 * 1024;

/// Generates both headers for every registered message under `out_dir`,
/// creating directories as needed.  Files are only rewritten when content
/// changed (keeps ninja rebuilds minimal).
Status GenerateAll(const idl::SpecRegistry& registry,
                   const std::string& out_dir);

}  // namespace rsf::gen
