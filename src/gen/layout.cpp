#include "gen/layout.h"

#include <cstdio>

namespace rsf::gen {
namespace {

size_t AlignUp(size_t value, size_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

struct TypeExtent {
  size_t size = 0;
  size_t align = 0;
};

// Skeleton extent of one field element (no array applied).
Result<TypeExtent> ElementExtent(const idl::SpecRegistry& registry,
                                 const idl::FieldType& type);

// Skeleton extent of a whole message.
Result<TypeExtent> MessageExtent(const idl::SpecRegistry& registry,
                                 const std::string& key) {
  const idl::MessageSpec* spec = registry.Find(key);
  if (spec == nullptr) return NotFoundError("unknown message: " + key);
  size_t offset = 0;
  size_t align = 1;
  for (const auto& field : spec->fields) {
    idl::FieldType element = field.type;
    const idl::ArrayKind array = element.array;
    const uint32_t n = element.fixed_size;
    element.array = idl::ArrayKind::kNone;

    TypeExtent extent;
    if (array == idl::ArrayKind::kDynamic) {
      extent = TypeExtent{8, 4};  // {uint32 count, uint32 offset}
    } else {
      auto elem = ElementExtent(registry, element);
      if (!elem.ok()) return elem.status();
      extent = *elem;
      if (array == idl::ArrayKind::kFixed) extent.size *= n;
    }
    offset = AlignUp(offset, extent.align) + extent.size;
    if (extent.align > align) align = extent.align;
  }
  if (offset == 0) offset = 1;  // empty struct still has size 1
  return TypeExtent{AlignUp(offset, align), align};
}

Result<TypeExtent> ElementExtent(const idl::SpecRegistry& registry,
                                 const idl::FieldType& type) {
  if (!type.is_primitive) return MessageExtent(registry, type.MessageKey());
  if (type.primitive == idl::Primitive::kString) {
    return TypeExtent{8, 4};  // sfm::string skeleton
  }
  const size_t size = idl::PrimitiveSize(type.primitive);
  size_t align = size;
  if (type.primitive == idl::Primitive::kTime ||
      type.primitive == idl::Primitive::kDuration) {
    align = 4;  // rsf::Time is {uint32, uint32}
  }
  return TypeExtent{size, align};
}

Status AppendFields(const idl::SpecRegistry& registry, const std::string& key,
                    const std::string& prefix, size_t base, SfmLayout* out) {
  const idl::MessageSpec* spec = registry.Find(key);
  if (spec == nullptr) return NotFoundError("unknown message: " + key);
  size_t offset = 0;
  for (const auto& field : spec->fields) {
    idl::FieldType element = field.type;
    const idl::ArrayKind array = element.array;
    const uint32_t n = element.fixed_size;
    element.array = idl::ArrayKind::kNone;

    TypeExtent extent;
    bool variable = false;
    if (array == idl::ArrayKind::kDynamic) {
      extent = TypeExtent{8, 4};
      variable = true;
    } else {
      auto elem = ElementExtent(registry, element);
      if (!elem.ok()) return elem.status();
      extent = *elem;
      if (array == idl::ArrayKind::kFixed) extent.size *= n;
      variable = element.is_primitive &&
                 element.primitive == idl::Primitive::kString &&
                 array == idl::ArrayKind::kNone;
    }
    offset = AlignUp(offset, extent.align);

    const std::string path = prefix + field.name;
    if (!variable && !element.is_primitive && array == idl::ArrayKind::kNone) {
      // Inline nested message: recurse with a dotted prefix.
      RSF_RETURN_IF_ERROR(AppendFields(registry, element.MessageKey(),
                                       path + ".", base + offset, out));
    } else {
      out->fields.push_back(FieldLayout{path, field.type.ToIdl(),
                                        base + offset, extent.size, variable});
    }
    offset += extent.size;
  }
  return Status::Ok();
}

}  // namespace

Result<SfmLayout> ComputeSfmLayout(const idl::SpecRegistry& registry,
                                   const std::string& key) {
  auto extent = MessageExtent(registry, key);
  if (!extent.ok()) return extent.status();
  SfmLayout layout;
  layout.size = extent->size;
  layout.align = extent->align;
  RSF_RETURN_IF_ERROR(AppendFields(registry, key, "", 0, &layout));
  return layout;
}

std::string RenderLayoutTable(const SfmLayout& layout,
                              const std::string& key) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "SFM skeleton of %s (size %zu, align %zu)\n", key.c_str(),
                layout.size, layout.align);
  out += line;
  out += "  Start   Size  End     Field                      Type\n";
  for (const auto& field : layout.fields) {
    std::snprintf(line, sizeof(line), "  0x%04zx  %-4zu  0x%04zx  %-25s  %s%s\n",
                  field.offset, field.size, field.offset + field.size,
                  field.name.c_str(), field.idl_type.c_str(),
                  field.variable ? "  {length, offset}" : "");
    out += line;
  }
  return out;
}

}  // namespace rsf::gen
