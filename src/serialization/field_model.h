// Compile-time field model shared by every serializer in this module.
//
// Generated message classes (both regular and SFM variants) expose a
// uniform `for_each_field(visitor)` that visits `(name, field&)` pairs in
// declaration order.  The serializers below are written against that model,
// dispatching on the field category derived here — so one implementation of
// each wire format covers every message type.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "sfm/string.h"
#include "sfm/vector.h"

namespace rsf::ser {

/// A generated message type (regular or SFM variant).
template <typename T>
concept Message = requires(const T& t) {
  { T::DataType() } -> std::convertible_to<const char*>;
  { T::Md5Sum() } -> std::convertible_to<const char*>;
  t.for_each_field([](const char*, const auto&) {});
};

template <typename T>
inline constexpr bool is_std_vector_v = false;
template <typename T, typename A>
inline constexpr bool is_std_vector_v<std::vector<T, A>> = true;

template <typename T>
inline constexpr bool is_std_array_v = false;
template <typename T, size_t N>
inline constexpr bool is_std_array_v<std::array<T, N>> = true;

template <typename T>
inline constexpr bool is_string_like_v =
    std::is_same_v<T, std::string> || std::is_same_v<T, ::sfm::string>;

template <typename T>
inline constexpr bool is_vector_like_v =
    is_std_vector_v<T> || ::sfm::is_sfm_vector_v<T>;

template <typename T>
inline constexpr bool is_time_v = std::is_same_v<T, ::rsf::Time>;

/// Fixed-size scalar on the ROS wire (numbers and timestamps).
template <typename T>
inline constexpr bool is_scalar_v = std::is_arithmetic_v<T> || is_time_v<T>;

template <typename T>
struct element_of {
  using type = void;
};
template <typename T, typename A>
struct element_of<std::vector<T, A>> {
  using type = T;
};
template <typename T>
struct element_of<::sfm::vector<T>> {
  using type = T;
};
template <typename T, size_t N>
struct element_of<std::array<T, N>> {
  using type = T;
};
template <typename T>
using element_of_t = typename element_of<T>::type;

/// Number of fields a message visits (compile-time constant at run time).
template <Message M>
size_t FieldCount(const M& msg) {
  size_t count = 0;
  msg.for_each_field([&](const char*, const auto&) { ++count; });
  return count;
}

}  // namespace rsf::ser
