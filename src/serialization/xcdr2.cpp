#include "serialization/xcdr2.h"

namespace rsf::ser::xcdr2 {

void Builder::AddString(uint32_t index, std::string_view text) {
  Append32(MakeHeader(kVariable, index));
  // Fig. 5: the stored length covers content + NUL + padding ("rgb8" -> 8).
  const auto padded = static_cast<uint32_t>(((text.size() + 1 + 3) / 4) * 4);
  Append32(padded);
  const size_t at = buffer_.size();
  buffer_.resize(at + padded, 0);
  std::memcpy(buffer_.data() + at, text.data(), text.size());
}

size_t Builder::BeginNested(uint32_t index) {
  Append32(MakeHeader(kNested, index));
  const size_t mark = buffer_.size();
  Append32(0);  // DHEADER placeholder
  return mark;
}

void Builder::EndNested(size_t mark) {
  const auto bytes = static_cast<uint32_t>(buffer_.size() - mark - 4);
  StoreLE<uint32_t>(buffer_.data() + mark, bytes);
}

size_t Builder::BeginElement() {
  const size_t mark = buffer_.size();
  Append32(0);  // element DHEADER placeholder
  return mark;
}

void Builder::EndElement(size_t mark) { EndNested(mark); }

void Builder::Append32(uint32_t value) {
  const size_t at = buffer_.size();
  buffer_.resize(at + 4);
  StoreLE(buffer_.data() + at, value);
}

bool View::FindMember(uint32_t index, Member* out) const {
  size_t at = 0;
  while (at + 4 <= size_) {
    const auto header = LoadLE<uint32_t>(data_ + at);
    const Kind kind = HeaderKind(header);
    at += 4;

    size_t payload_bytes = 0;
    size_t advance = 0;
    switch (kind) {
      case kByte1:
        payload_bytes = 1;
        advance = 4;
        break;
      case kByte2:
        payload_bytes = 2;
        advance = 4;
        break;
      case kByte4:
        payload_bytes = 4;
        advance = 4;
        break;
      case kByte8:
        payload_bytes = 8;
        advance = 8;
        break;
      case kVariable:
      case kNested: {
        if (at + 4 > size_) return false;
        const auto length = LoadLE<uint32_t>(data_ + at);
        payload_bytes = length;
        advance = 4 + ((length + 3) / 4) * 4;
        break;
      }
      default:
        return false;
    }
    if (at + advance > size_) return false;

    if (HeaderIndex(header) == index) {
      out->kind = kind;
      out->payload = data_ + at;
      out->payload_bytes = payload_bytes;
      return true;
    }
    at += advance;
  }
  return false;
}

std::string_view View::GetString(uint32_t index) const {
  Member member;
  if (!FindMember(index, &member) || member.kind != kVariable) return {};
  const auto padded = LoadLE<uint32_t>(member.payload);
  const auto* content = reinterpret_cast<const char*>(member.payload + 4);
  // Trim NUL + padding back to the logical length.
  size_t length = padded;
  while (length > 0 && content[length - 1] == '\0') --length;
  return {content, length};
}

View View::GetNested(uint32_t index) const {
  Member member;
  if (!FindMember(index, &member) || member.kind != kNested) {
    return View(data_, 0);
  }
  return View(member.payload + 4, member.payload_bytes);
}

}  // namespace rsf::ser::xcdr2
