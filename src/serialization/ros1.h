// The ROS1 (roscpp) wire format, implemented generically over the field
// model: little-endian scalars in declaration order; strings as
// [uint32 length][bytes] with no terminator; dynamic arrays as
// [uint32 count][elements]; fixed arrays as bare elements; nested messages
// flattened in place.
//
// This is the serializer the unmodified middleware path uses — the cost
// that ROS-SF eliminates.  It intentionally mirrors roscpp's structure:
// one pass to compute the length, one pass to memcpy fields into a fresh
// contiguous buffer (serialization), and the inverse pass on receipt
// (de-serialization).
#pragma once

#include <cstring>
#include <vector>

#include "common/endian.h"
#include "common/status.h"
#include "serialization/field_model.h"

namespace rsf::ser::ros1 {

namespace internal {

template <typename T>
size_t FieldLength(const T& field);

template <Message M>
size_t MessageLength(const M& msg) {
  size_t total = 0;
  msg.for_each_field(
      [&](const char*, const auto& field) { total += FieldLength(field); });
  return total;
}

template <typename T>
size_t FieldLength(const T& field) {
  if constexpr (is_scalar_v<T>) {
    return sizeof(T);
  } else if constexpr (is_string_like_v<T>) {
    return 4 + field.size();
  } else if constexpr (is_vector_like_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      return 4 + field.size() * sizeof(E);
    } else {
      size_t total = 4;
      for (const auto& element : field) total += FieldLength(element);
      return total;
    }
  } else if constexpr (is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      return field.size() * sizeof(E);
    } else {
      size_t total = 0;
      for (const auto& element : field) total += FieldLength(element);
      return total;
    }
  } else {
    static_assert(Message<T>, "unsupported field type");
    return MessageLength(field);
  }
}

template <typename T>
void WriteField(uint8_t*& out, const T& field);

template <Message M>
void WriteMessage(uint8_t*& out, const M& msg) {
  msg.for_each_field(
      [&](const char*, const auto& field) { WriteField(out, field); });
}

template <typename T>
void WriteField(uint8_t*& out, const T& field) {
  if constexpr (is_scalar_v<T>) {
    StoreLE(out, field);
    out += sizeof(T);
  } else if constexpr (is_string_like_v<T>) {
    StoreLE<uint32_t>(out, static_cast<uint32_t>(field.size()));
    out += 4;
    std::memcpy(out, field.data(), field.size());
    out += field.size();
  } else if constexpr (is_vector_like_v<T>) {
    using E = element_of_t<T>;
    StoreLE<uint32_t>(out, static_cast<uint32_t>(field.size()));
    out += 4;
    if constexpr (is_scalar_v<E>) {
      std::memcpy(out, field.data(), field.size() * sizeof(E));
      out += field.size() * sizeof(E);
    } else {
      for (const auto& element : field) WriteField(out, element);
    }
  } else if constexpr (is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      std::memcpy(out, field.data(), field.size() * sizeof(E));
      out += field.size() * sizeof(E);
    } else {
      for (const auto& element : field) WriteField(out, element);
    }
  } else {
    WriteMessage(out, field);
  }
}

/// Bounds-checked reader.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : cursor_(data), end_(data + size) {}

  template <typename T>
  Status Pop(T* value) {
    if (Remaining() < sizeof(T)) return Truncated();
    *value = LoadLE<T>(cursor_);
    cursor_ += sizeof(T);
    return Status::Ok();
  }

  Status PopBytes(void* dst, size_t count) {
    if (Remaining() < count) return Truncated();
    std::memcpy(dst, cursor_, count);
    cursor_ += count;
    return Status::Ok();
  }

  [[nodiscard]] size_t Remaining() const noexcept {
    return static_cast<size_t>(end_ - cursor_);
  }

 private:
  static Status Truncated() {
    return OutOfRangeError("truncated ROS1 message buffer");
  }
  const uint8_t* cursor_;
  const uint8_t* end_;
};

template <typename T>
Status ReadField(Reader& in, T& field);

template <Message M>
Status ReadMessage(Reader& in, M& msg) {
  Status status;
  msg.for_each_field([&](const char*, auto& field) {
    if (status.ok()) status = ReadField(in, field);
  });
  return status;
}

template <typename T>
Status ReadField(Reader& in, T& field) {
  if constexpr (is_scalar_v<T>) {
    return in.Pop(&field);
  } else if constexpr (is_string_like_v<T>) {
    uint32_t length = 0;
    RSF_RETURN_IF_ERROR(in.Pop(&length));
    if (in.Remaining() < length) {
      return OutOfRangeError("truncated string field");
    }
    if constexpr (std::is_same_v<T, std::string>) {
      field.resize(length);
      return in.PopBytes(field.data(), length);
    } else {
      std::string scratch(length, '\0');
      RSF_RETURN_IF_ERROR(in.PopBytes(scratch.data(), length));
      field = scratch;
      return Status::Ok();
    }
  } else if constexpr (is_vector_like_v<T>) {
    using E = element_of_t<T>;
    uint32_t count = 0;
    RSF_RETURN_IF_ERROR(in.Pop(&count));
    if constexpr (is_scalar_v<E>) {
      if (in.Remaining() < static_cast<size_t>(count) * sizeof(E)) {
        return OutOfRangeError("truncated array field");
      }
      field.resize(count);
      return in.PopBytes(field.data(), static_cast<size_t>(count) * sizeof(E));
    } else {
      field.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        RSF_RETURN_IF_ERROR(ReadField(in, field[i]));
      }
      return Status::Ok();
    }
  } else if constexpr (is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      return in.PopBytes(field.data(), field.size() * sizeof(E));
    } else {
      for (auto& element : field) RSF_RETURN_IF_ERROR(ReadField(in, element));
      return Status::Ok();
    }
  } else {
    return ReadMessage(in, field);
  }
}

}  // namespace internal

/// Serialized length of `msg` on the ROS1 wire.
template <Message M>
size_t SerializedLength(const M& msg) {
  return internal::MessageLength(msg);
}

/// Serializes into `out` (must hold SerializedLength(msg) bytes); returns
/// the number of bytes written.
template <Message M>
size_t Serialize(const M& msg, uint8_t* out) {
  uint8_t* cursor = out;
  internal::WriteMessage(cursor, msg);
  return static_cast<size_t>(cursor - out);
}

/// Convenience: serialize into a fresh vector.
template <Message M>
std::vector<uint8_t> SerializeToVector(const M& msg) {
  std::vector<uint8_t> out(SerializedLength(msg));
  Serialize(msg, out.data());
  return out;
}

/// De-serializes `msg` from `data`; kOutOfRange on truncation, and
/// kInvalidArgument if trailing bytes remain.
template <Message M>
Status Deserialize(const uint8_t* data, size_t size, M& msg) {
  internal::Reader reader(data, size);
  RSF_RETURN_IF_ERROR(internal::ReadMessage(reader, msg));
  if (reader.Remaining() != 0) {
    return InvalidArgumentError("trailing bytes after ROS1 message");
  }
  return Status::Ok();
}

}  // namespace rsf::ser::ros1
