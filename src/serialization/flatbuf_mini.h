// flatbuf_mini — a miniature of Google FlatBuffers (the paper's second
// serialization-free comparator, §3.3 / Fig. 6), with the builder-and-
// accessor programming model the paper contrasts against SFM's
// transparency.
//
// Buffer layout (structurally matching Fig. 6):
//   [0,4)   uint32 position of the root table
//   ...     payloads: strings as [uint32 length][bytes][NUL][pad4],
//           vectors as [uint32 count][elements], sub-tables for nested
//           messages
//   table   int32 "offset to vtable" (table_pos - vtable_pos is stored, so
//           readers compute vtable_pos = table_pos - value, the "negative
//           offset" of Fig. 6), then one slot per present field: scalars
//           inline, reference fields as uint32 distance back to the payload
//   vtable  uint16 vtable size, uint16 table size,
//           uint16 slot offset per field (0 = absent)
//
// Deviation from stock FlatBuffers: we build front-to-back (payloads first,
// table, then vtable) instead of back-to-front, so reference offsets point
// backwards.  The indirection structure — and therefore the access cost the
// paper measures — is identical.  Field values can only be reached through
// vtable lookups, which is precisely the transparency failure of §3.3.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/endian.h"
#include "common/status.h"
#include "serialization/field_model.h"

namespace rsf::ser::fb {

/// Position of a finished payload or table within the buffer under
/// construction (used where stock FlatBuffers uses Offset<T>).
struct Ref {
  uint32_t pos = 0;
  [[nodiscard]] bool valid() const noexcept { return pos != 0; }
};

class Builder {
 public:
  Builder() { buffer_.resize(4, 0); }  // room for the root-position word

  /// Appends a string payload; returns its position.
  Ref CreateString(std::string_view text);

  /// Appends a vector of scalars; returns its position.
  template <typename T>
  Ref CreateVector(const T* data, size_t count) {
    static_assert(is_scalar_v<T>);
    AlignTo(4);
    const auto pos = static_cast<uint32_t>(buffer_.size());
    AppendScalar<uint32_t>(static_cast<uint32_t>(count));
    const size_t bytes = count * sizeof(T);
    const size_t at = buffer_.size();
    buffer_.resize(at + bytes);
    if (bytes > 0) std::memcpy(buffer_.data() + at, data, bytes);
    AlignTo(4);
    return Ref{pos};
  }

  /// Appends an uninitialized scalar vector and exposes its storage, so
  /// callers can generate content directly into the message (FlatBuffers'
  /// CreateUninitializedVector — the API its zero-copy construction needs).
  template <typename T>
  std::pair<Ref, T*> CreateUninitializedVector(size_t count) {
    static_assert(is_scalar_v<T>);
    AlignTo(4);
    const auto pos = static_cast<uint32_t>(buffer_.size());
    AppendScalar<uint32_t>(static_cast<uint32_t>(count));
    const size_t at = buffer_.size();
    buffer_.resize(at + count * sizeof(T));
    AlignTo(4);
    return {Ref{pos}, reinterpret_cast<T*>(buffer_.data() + at)};
  }

  /// Appends a vector of references (tables or strings).
  Ref CreateRefVector(const std::vector<Ref>& refs);

  /// Starts a table with `field_count` slots; add fields then FinishTable.
  void StartTable(size_t field_count);
  void AddScalarSlot(size_t slot, const void* value, size_t size,
                     size_t align);
  template <typename T>
  void AddScalar(size_t slot, T value) {
    static_assert(is_scalar_v<T>);
    AddScalarSlot(slot, &value, sizeof(T), alignof(T));
  }
  void AddRef(size_t slot, Ref ref);
  /// Writes table + vtable; returns the table position.
  Ref FinishTable();

  /// Stamps `root` into the header word and releases the buffer.
  std::vector<uint8_t> Finish(Ref root);

  [[nodiscard]] size_t size() const noexcept { return buffer_.size(); }

 private:
  struct PendingField {
    size_t slot = 0;
    bool is_ref = false;
    Ref ref;
    size_t size = 0;
    size_t align = 0;
    uint8_t inline_value[8] = {};
  };

  void AlignTo(size_t align);
  template <typename T>
  void AppendScalar(T value) {
    const size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    StoreLE(buffer_.data() + at, value);
  }

  std::vector<uint8_t> buffer_;
  std::vector<PendingField> pending_;
  size_t pending_field_count_ = 0;
  bool table_open_ = false;
};

/// Read-side accessors (stock FlatBuffers' generated accessors do exactly
/// these lookups).
class TableView {
 public:
  TableView() = default;
  TableView(const uint8_t* buffer, uint32_t table_pos)
      : buffer_(buffer), table_pos_(table_pos) {}

  [[nodiscard]] bool valid() const noexcept { return buffer_ != nullptr; }

  /// Slot offset within the table; 0 if the field is absent.
  [[nodiscard]] uint16_t SlotOffset(size_t slot) const;

  template <typename T>
  [[nodiscard]] T GetScalar(size_t slot, T fallback = T{}) const {
    const uint16_t off = SlotOffset(slot);
    if (off == 0) return fallback;
    return LoadLE<T>(buffer_ + table_pos_ + off);
  }

  [[nodiscard]] std::string_view GetString(size_t slot) const;

  template <typename T>
  [[nodiscard]] std::pair<const T*, size_t> GetVector(size_t slot) const {
    const uint32_t payload = RefTarget(slot);
    if (payload == 0) return {nullptr, 0};
    const auto count = LoadLE<uint32_t>(buffer_ + payload);
    return {reinterpret_cast<const T*>(buffer_ + payload + 4), count};
  }

  [[nodiscard]] TableView GetTable(size_t slot) const;
  [[nodiscard]] TableView GetTableElement(size_t slot, size_t index) const;
  [[nodiscard]] size_t GetRefVectorSize(size_t slot) const;

  [[nodiscard]] uint32_t table_pos() const noexcept { return table_pos_; }

 private:
  // Absolute position of the payload a reference slot points to; 0 = absent.
  [[nodiscard]] uint32_t RefTarget(size_t slot) const;

  const uint8_t* buffer_ = nullptr;
  uint32_t table_pos_ = 0;
};

/// Root table of a finished buffer.
TableView GetRoot(const uint8_t* buffer, size_t size);

// ---- generic bridges (tests + benches): struct <-> flatbuffer ----

namespace internal {

template <Message M>
Ref BuildTable(Builder& builder, const M& msg);

template <typename T>
Ref BuildPayload(Builder& builder, const T& field) {
  if constexpr (is_string_like_v<T>) {
    return builder.CreateString(std::string_view(field.data(), field.size()));
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      return builder.CreateVector(field.data(), field.size());
    } else {
      std::vector<Ref> refs;
      refs.reserve(field.size());
      for (const auto& element : field) {
        refs.push_back(BuildPayload(builder, element));
      }
      return builder.CreateRefVector(refs);
    }
  } else {
    return BuildTable(builder, field);
  }
}

template <Message M>
Ref BuildTable(Builder& builder, const M& msg) {
  // Reference payloads must be finished before the table that points at
  // them (same ordering constraint stock FlatBuffers imposes).
  std::vector<Ref> refs;
  msg.for_each_field([&](const char*, const auto& field) {
    using T = std::decay_t<decltype(field)>;
    if constexpr (!is_scalar_v<T>) {
      refs.push_back(BuildPayload(builder, field));
    }
  });

  builder.StartTable(FieldCount(msg));
  size_t slot = 0;
  size_t ref_index = 0;
  msg.for_each_field([&](const char*, const auto& field) {
    using T = std::decay_t<decltype(field)>;
    if constexpr (is_scalar_v<T>) {
      builder.AddScalar(slot, field);
    } else {
      builder.AddRef(slot, refs[ref_index++]);
    }
    ++slot;
  });
  return builder.FinishTable();
}

template <Message M>
Status ReadTable(const TableView& table, M& msg);

template <typename T>
Status ReadPayload(const TableView& table, size_t slot, T& field) {
  if constexpr (is_scalar_v<T>) {
    field = table.GetScalar<T>(slot);
    return Status::Ok();
  } else if constexpr (is_string_like_v<T>) {
    field = table.GetString(slot);
    return Status::Ok();
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      const auto [data, count] = table.GetVector<E>(slot);
      if constexpr (is_std_array_v<T>) {
        if (count != field.size()) {
          return InvalidArgumentError("fixed array count mismatch");
        }
        std::memcpy(field.data(), data, count * sizeof(E));
      } else {
        field.resize(count);
        if (count > 0) std::memcpy(field.data(), data, count * sizeof(E));
      }
      return Status::Ok();
    } else {
      const size_t count = table.GetRefVectorSize(slot);
      field.resize(count);
      for (size_t i = 0; i < count; ++i) {
        RSF_RETURN_IF_ERROR(
            ReadTable(table.GetTableElement(slot, i), field[i]));
      }
      return Status::Ok();
    }
  } else {
    return ReadTable(table.GetTable(slot), field);
  }
}

template <Message M>
Status ReadTable(const TableView& table, M& msg) {
  if (!table.valid()) return InvalidArgumentError("absent sub-table");
  Status status;
  size_t slot = 0;
  msg.for_each_field([&](const char*, auto& field) {
    if (status.ok()) status = ReadPayload(table, slot, field);
    ++slot;
  });
  return status;
}

}  // namespace internal

/// Builds a flatbuffer from any generated message struct.
template <Message M>
std::vector<uint8_t> BuildFromMessage(const M& msg) {
  Builder builder;
  const Ref root = internal::BuildTable(builder, msg);
  return builder.Finish(root);
}

/// Reconstructs a struct from a flatbuffer (round-trip testing; real
/// FlatBuffers consumers would stay on the accessor API instead).
template <Message M>
Status ReadIntoMessage(const uint8_t* buffer, size_t size, M& msg) {
  const TableView root = GetRoot(buffer, size);
  if (!root.valid()) return InvalidArgumentError("bad flatbuffer root");
  return internal::ReadTable(root, msg);
}

}  // namespace rsf::ser::fb
