// msgpack_mini — a miniature of the MessagePack wire format (related work
// the paper groups with ProtoBuf as prefix-encoded serialization, §2.2).
//
// Each message encodes as a MessagePack array of its field values in
// declaration order (the compact convention msgpack-rpc uses):
//   ints     fixint / uint8/16/32/64 / int8/16/32/64 (smallest that fits)
//   floats   float32 / float64
//   strings  fixstr / str8/16/32
//   uint8[]  bin8/16/32          (raw bytes)
//   other[]  array of elements
//   nested   array (recursive)
//   Time     uint64 of nanoseconds
#pragma once

#include <cstring>
#include <vector>

#include "common/endian.h"
#include "common/status.h"
#include "serialization/field_model.h"

namespace rsf::ser::mp {

namespace internal {

// MessagePack stores multi-byte values big-endian.
template <typename T>
void PushBE(std::vector<uint8_t>& out, T value) {
  using U = std::conditional_t<
      sizeof(T) == 1, uint8_t,
      std::conditional_t<sizeof(T) == 2, uint16_t,
                         std::conditional_t<sizeof(T) == 4, uint32_t,
                                            uint64_t>>>;
  U raw;
  std::memcpy(&raw, &value, sizeof(T));
  if constexpr (sizeof(T) > 1) raw = ByteSwap(raw);
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &raw, sizeof(T));
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size)
      : cursor_(data), end_(data + size) {}

  Status Byte(uint8_t* value) {
    if (cursor_ >= end_) return OutOfRangeError("truncated msgpack");
    *value = *cursor_++;
    return Status::Ok();
  }

  template <typename T>
  Status BE(T* value) {
    if (Remaining() < sizeof(T)) return OutOfRangeError("truncated msgpack");
    using U = std::conditional_t<
        sizeof(T) == 1, uint8_t,
        std::conditional_t<sizeof(T) == 2, uint16_t,
                           std::conditional_t<sizeof(T) == 4, uint32_t,
                                              uint64_t>>>;
    U raw;
    std::memcpy(&raw, cursor_, sizeof(T));
    if constexpr (sizeof(T) > 1) raw = ByteSwap(raw);
    std::memcpy(value, &raw, sizeof(T));
    cursor_ += sizeof(T);
    return Status::Ok();
  }

  Status Bytes(void* dst, size_t count) {
    if (Remaining() < count) return OutOfRangeError("truncated msgpack");
    std::memcpy(dst, cursor_, count);
    cursor_ += count;
    return Status::Ok();
  }

  [[nodiscard]] size_t Remaining() const noexcept {
    return static_cast<size_t>(end_ - cursor_);
  }

 private:
  const uint8_t* cursor_;
  const uint8_t* end_;
};

inline void WriteArrayHeader(std::vector<uint8_t>& out, size_t count) {
  if (count < 16) {
    out.push_back(static_cast<uint8_t>(0x90 | count));
  } else if (count <= 0xFFFF) {
    out.push_back(0xDC);
    PushBE<uint16_t>(out, static_cast<uint16_t>(count));
  } else {
    out.push_back(0xDD);
    PushBE<uint32_t>(out, static_cast<uint32_t>(count));
  }
}

inline Status ReadArrayHeader(Reader& in, size_t* count) {
  uint8_t tag = 0;
  RSF_RETURN_IF_ERROR(in.Byte(&tag));
  if ((tag & 0xF0) == 0x90) {
    *count = tag & 0x0F;
    return Status::Ok();
  }
  if (tag == 0xDC) {
    uint16_t n = 0;
    RSF_RETURN_IF_ERROR(in.BE(&n));
    *count = n;
    return Status::Ok();
  }
  if (tag == 0xDD) {
    uint32_t n = 0;
    RSF_RETURN_IF_ERROR(in.BE(&n));
    *count = n;
    return Status::Ok();
  }
  return InvalidArgumentError("expected msgpack array");
}

inline void WriteUint(std::vector<uint8_t>& out, uint64_t value) {
  if (value < 128) {
    out.push_back(static_cast<uint8_t>(value));
  } else if (value <= 0xFF) {
    out.push_back(0xCC);
    out.push_back(static_cast<uint8_t>(value));
  } else if (value <= 0xFFFF) {
    out.push_back(0xCD);
    PushBE<uint16_t>(out, static_cast<uint16_t>(value));
  } else if (value <= 0xFFFFFFFFull) {
    out.push_back(0xCE);
    PushBE<uint32_t>(out, static_cast<uint32_t>(value));
  } else {
    out.push_back(0xCF);
    PushBE<uint64_t>(out, value);
  }
}

inline void WriteInt(std::vector<uint8_t>& out, int64_t value) {
  if (value >= 0) {
    WriteUint(out, static_cast<uint64_t>(value));
    return;
  }
  if (value >= -32) {
    out.push_back(static_cast<uint8_t>(value));  // negative fixint
  } else if (value >= INT8_MIN) {
    out.push_back(0xD0);
    out.push_back(static_cast<uint8_t>(value));
  } else if (value >= INT16_MIN) {
    out.push_back(0xD1);
    PushBE<int16_t>(out, static_cast<int16_t>(value));
  } else if (value >= INT32_MIN) {
    out.push_back(0xD2);
    PushBE<int32_t>(out, static_cast<int32_t>(value));
  } else {
    out.push_back(0xD3);
    PushBE<int64_t>(out, value);
  }
}

inline Status ReadInt(Reader& in, int64_t* value) {
  uint8_t tag = 0;
  RSF_RETURN_IF_ERROR(in.Byte(&tag));
  if (tag < 0x80) {
    *value = tag;
    return Status::Ok();
  }
  if (tag >= 0xE0) {
    *value = static_cast<int8_t>(tag);
    return Status::Ok();
  }
  switch (tag) {
    case 0xCC: {
      uint8_t v;
      RSF_RETURN_IF_ERROR(in.Byte(&v));
      *value = v;
      return Status::Ok();
    }
    case 0xCD: {
      uint16_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = v;
      return Status::Ok();
    }
    case 0xCE: {
      uint32_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = v;
      return Status::Ok();
    }
    case 0xCF: {
      uint64_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = static_cast<int64_t>(v);
      return Status::Ok();
    }
    case 0xD0: {
      uint8_t v;
      RSF_RETURN_IF_ERROR(in.Byte(&v));
      *value = static_cast<int8_t>(v);
      return Status::Ok();
    }
    case 0xD1: {
      int16_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = v;
      return Status::Ok();
    }
    case 0xD2: {
      int32_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = v;
      return Status::Ok();
    }
    case 0xD3: {
      int64_t v;
      RSF_RETURN_IF_ERROR(in.BE(&v));
      *value = v;
      return Status::Ok();
    }
    default:
      return InvalidArgumentError("expected msgpack int");
  }
}

template <Message M>
void WriteMessage(std::vector<uint8_t>& out, const M& msg);

template <typename T>
void WriteValue(std::vector<uint8_t>& out, const T& value) {
  if constexpr (std::is_same_v<T, float>) {
    out.push_back(0xCA);
    PushBE(out, value);
  } else if constexpr (std::is_same_v<T, double>) {
    out.push_back(0xCB);
    PushBE(out, value);
  } else if constexpr (is_time_v<T>) {
    WriteUint(out, value.ToNanos());
  } else if constexpr (std::is_unsigned_v<T>) {
    WriteUint(out, value);
  } else if constexpr (std::is_integral_v<T>) {
    WriteInt(out, value);
  } else if constexpr (is_string_like_v<T>) {
    const size_t n = value.size();
    if (n < 32) {
      out.push_back(static_cast<uint8_t>(0xA0 | n));
    } else if (n <= 0xFF) {
      out.push_back(0xD9);
      out.push_back(static_cast<uint8_t>(n));
    } else {
      out.push_back(0xDA);
      PushBE<uint16_t>(out, static_cast<uint16_t>(n));
    }
    out.insert(out.end(), value.data(), value.data() + n);
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (std::is_same_v<E, uint8_t> || std::is_same_v<E, int8_t>) {
      const size_t n = value.size();
      if (n <= 0xFF) {
        out.push_back(0xC4);
        out.push_back(static_cast<uint8_t>(n));
      } else if (n <= 0xFFFF) {
        out.push_back(0xC5);
        PushBE<uint16_t>(out, static_cast<uint16_t>(n));
      } else {
        out.push_back(0xC6);
        PushBE<uint32_t>(out, static_cast<uint32_t>(n));
      }
      const auto* bytes = reinterpret_cast<const uint8_t*>(value.data());
      out.insert(out.end(), bytes, bytes + n);
    } else {
      WriteArrayHeader(out, value.size());
      for (const auto& element : value) WriteValue(out, element);
    }
  } else {
    WriteMessage(out, value);
  }
}

template <Message M>
void WriteMessage(std::vector<uint8_t>& out, const M& msg) {
  WriteArrayHeader(out, FieldCount(msg));
  msg.for_each_field(
      [&](const char*, const auto& field) { WriteValue(out, field); });
}

template <Message M>
Status ReadMessage(Reader& in, M& msg);

template <typename T>
Status ReadValue(Reader& in, T& value) {
  if constexpr (std::is_same_v<T, float>) {
    uint8_t tag;
    RSF_RETURN_IF_ERROR(in.Byte(&tag));
    if (tag != 0xCA) return InvalidArgumentError("expected float32");
    return in.BE(&value);
  } else if constexpr (std::is_same_v<T, double>) {
    uint8_t tag;
    RSF_RETURN_IF_ERROR(in.Byte(&tag));
    if (tag != 0xCB) return InvalidArgumentError("expected float64");
    return in.BE(&value);
  } else if constexpr (is_time_v<T>) {
    int64_t nanos = 0;
    RSF_RETURN_IF_ERROR(ReadInt(in, &nanos));
    value = ::rsf::Time::FromNanos(static_cast<uint64_t>(nanos));
    return Status::Ok();
  } else if constexpr (std::is_integral_v<T>) {
    int64_t raw = 0;
    RSF_RETURN_IF_ERROR(ReadInt(in, &raw));
    value = static_cast<T>(raw);
    return Status::Ok();
  } else if constexpr (is_string_like_v<T>) {
    uint8_t tag;
    RSF_RETURN_IF_ERROR(in.Byte(&tag));
    size_t length = 0;
    if ((tag & 0xE0) == 0xA0) {
      length = tag & 0x1F;
    } else if (tag == 0xD9) {
      uint8_t n;
      RSF_RETURN_IF_ERROR(in.Byte(&n));
      length = n;
    } else if (tag == 0xDA) {
      uint16_t n;
      RSF_RETURN_IF_ERROR(in.BE(&n));
      length = n;
    } else {
      return InvalidArgumentError("expected msgpack str");
    }
    std::string scratch(length, '\0');
    RSF_RETURN_IF_ERROR(in.Bytes(scratch.data(), length));
    value = scratch;
    return Status::Ok();
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (std::is_same_v<E, uint8_t> || std::is_same_v<E, int8_t>) {
      uint8_t tag;
      RSF_RETURN_IF_ERROR(in.Byte(&tag));
      size_t length = 0;
      if (tag == 0xC4) {
        uint8_t n;
        RSF_RETURN_IF_ERROR(in.Byte(&n));
        length = n;
      } else if (tag == 0xC5) {
        uint16_t n;
        RSF_RETURN_IF_ERROR(in.BE(&n));
        length = n;
      } else if (tag == 0xC6) {
        uint32_t n;
        RSF_RETURN_IF_ERROR(in.BE(&n));
        length = n;
      } else {
        return InvalidArgumentError("expected msgpack bin");
      }
      if constexpr (is_std_array_v<T>) {
        if (length != value.size()) {
          return InvalidArgumentError("fixed array count mismatch");
        }
      } else {
        value.resize(length);
      }
      return in.Bytes(value.data(), length);
    } else {
      size_t count = 0;
      RSF_RETURN_IF_ERROR(ReadArrayHeader(in, &count));
      if constexpr (is_std_array_v<T>) {
        if (count != value.size()) {
          return InvalidArgumentError("fixed array count mismatch");
        }
      } else {
        value.resize(count);
      }
      for (size_t i = 0; i < count; ++i) {
        if constexpr (is_scalar_v<E>) {
          E element{};
          RSF_RETURN_IF_ERROR(ReadValue(in, element));
          value[i] = element;
        } else {
          RSF_RETURN_IF_ERROR(ReadValue(in, value[i]));
        }
      }
      return Status::Ok();
    }
  } else {
    return ReadMessage(in, value);
  }
}

template <Message M>
Status ReadMessage(Reader& in, M& msg) {
  size_t count = 0;
  RSF_RETURN_IF_ERROR(ReadArrayHeader(in, &count));
  if (count != FieldCount(msg)) {
    return InvalidArgumentError("msgpack field count mismatch");
  }
  Status status;
  msg.for_each_field([&](const char*, auto& field) {
    if (status.ok()) status = ReadValue(in, field);
  });
  return status;
}

}  // namespace internal

/// Encodes `msg` as a MessagePack array.
template <Message M>
std::vector<uint8_t> Encode(const M& msg) {
  std::vector<uint8_t> out;
  internal::WriteMessage(out, msg);
  return out;
}

/// Decodes `msg` from MessagePack bytes.
template <Message M>
Status Decode(const uint8_t* data, size_t size, M& msg) {
  internal::Reader reader(data, size);
  return internal::ReadMessage(reader, msg);
}

}  // namespace rsf::ser::mp
