// xcdr2 — a miniature of the Extended CDR v2 "parameter list" encoding used
// by DDS, the format behind both of the paper's RTI comparators:
//
//   * "RTI" (Fig. 14): ordinary Connext — construct a regular struct, then
//     serialize to this format and de-serialize on receipt.
//   * "RTI-FlatData" (Fig. 14): the same bytes constructed *in place* with a
//     Builder (no serialize step) and read through accessors that must
//     traverse the member list to locate a field by index — the exact
//     access pattern the paper's Fig. 5 discussion criticizes.
//
// Per-member encoding (structurally matching Fig. 5):
//   EMHEADER   uint32 = (kind << 28) | member_index
//     kind 0   1-byte scalar   (value padded to 4)
//     kind 1   2-byte scalar   (value padded to 4)
//     kind 2   4-byte scalar
//     kind 3   8-byte scalar
//     kind 4   variable:  uint32 byte-length, bytes, pad to 4
//              (strings store content+NUL+padding, Fig. 5's "length 8"
//               for "rgb8"; scalar vectors store count*sizeof(elem))
//     kind 5   nested:    uint32 DHEADER byte-length, nested member list
//              (vectors of messages: uint32 count, then each element as
//               DHEADER + member list)
// Member indexes follow declaration order starting at 0.
#pragma once

#include <cstring>
#include <string_view>
#include <vector>

#include "common/endian.h"
#include "common/status.h"
#include "serialization/field_model.h"

namespace rsf::ser::xcdr2 {

enum Kind : uint32_t {
  kByte1 = 0,
  kByte2 = 1,
  kByte4 = 2,
  kByte8 = 3,
  kVariable = 4,
  kNested = 5,
};

inline uint32_t MakeHeader(Kind kind, uint32_t index) noexcept {
  return (static_cast<uint32_t>(kind) << 28) | (index & 0x0FFFFFFFu);
}
inline Kind HeaderKind(uint32_t header) noexcept {
  return static_cast<Kind>(header >> 28);
}
inline uint32_t HeaderIndex(uint32_t header) noexcept {
  return header & 0x0FFFFFFFu;
}

/// In-place writer for the parameter-list format.  Used both by the
/// serializer (via BuildFromMessage) and directly by "FlatData"-style
/// application code that constructs the message as if already serialized.
class Builder {
 public:
  Builder() = default;

  template <typename T>
  void AddScalar(uint32_t index, T value) {
    static_assert(is_scalar_v<T>);
    constexpr Kind kind = sizeof(T) == 1   ? kByte1
                          : sizeof(T) == 2 ? kByte2
                          : sizeof(T) == 4 ? kByte4
                                           : kByte8;
    Append32(MakeHeader(kind, index));
    const size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    StoreLE(buffer_.data() + at, value);
    Pad4();
  }

  /// String member: stores content + NUL, padded (Fig. 5 semantics).
  void AddString(uint32_t index, std::string_view text);

  /// Scalar-vector member: byte length then raw elements.
  template <typename T>
  void AddVector(uint32_t index, const T* data, size_t count) {
    static_assert(is_scalar_v<T>);
    Append32(MakeHeader(kVariable, index));
    const size_t bytes = count * sizeof(T);
    Append32(static_cast<uint32_t>(bytes));
    const size_t at = buffer_.size();
    buffer_.resize(at + bytes);
    if (bytes > 0) std::memcpy(buffer_.data() + at, data, bytes);
    Pad4();
  }

  /// Uninitialized scalar-vector member exposing its storage, so content
  /// can be produced directly in the serialized buffer (the FlatData idiom).
  template <typename T>
  T* AddUninitializedVector(uint32_t index, size_t count) {
    static_assert(is_scalar_v<T>);
    Append32(MakeHeader(kVariable, index));
    const size_t bytes = count * sizeof(T);
    Append32(static_cast<uint32_t>(bytes));
    const size_t at = buffer_.size();
    buffer_.resize(at + bytes);
    Pad4();
    return reinterpret_cast<T*>(buffer_.data() + at);
  }

  /// Nested member (kind 5).  Usage:
  ///   auto mark = b.BeginNested(index);
  ///   ...add nested members...
  ///   b.EndNested(mark);
  size_t BeginNested(uint32_t index);
  void EndNested(size_t mark);

  /// Vector-of-messages member: BeginNested, then Append32(count), then per
  /// element BeginElement/EndElement pairs, then EndNested.
  size_t BeginElement();
  void EndElement(size_t mark);
  void Append32(uint32_t value);

  [[nodiscard]] size_t size() const noexcept { return buffer_.size(); }
  std::vector<uint8_t> Finish() { return std::move(buffer_); }

 private:
  void Pad4() {
    while (buffer_.size() % 4 != 0) buffer_.push_back(0);
  }
  std::vector<uint8_t> buffer_;
};

/// Accessor over a parameter list.  Locating member `index` scans the
/// member headers from the front — the traversal cost of FlatData access.
class View {
 public:
  View(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  struct Member {
    Kind kind = kByte4;
    const uint8_t* payload = nullptr;  // points at value / length word
    size_t payload_bytes = 0;          // scalar size or variable byte length
  };

  /// Scans for member `index`; false if absent or malformed.
  bool FindMember(uint32_t index, Member* out) const;

  template <typename T>
  [[nodiscard]] T GetScalar(uint32_t index, T fallback = T{}) const {
    Member member;
    if (!FindMember(index, &member)) return fallback;
    return LoadLE<T>(member.payload);
  }

  /// String member content (without padding).
  [[nodiscard]] std::string_view GetString(uint32_t index) const;

  /// Scalar vector member: pointer + element count.
  template <typename T>
  [[nodiscard]] std::pair<const T*, size_t> GetVector(uint32_t index) const {
    Member member;
    if (!FindMember(index, &member) || member.kind != kVariable) {
      return {nullptr, 0};
    }
    return {reinterpret_cast<const T*>(member.payload + 4),
            LoadLE<uint32_t>(member.payload) / sizeof(T)};
  }

  /// Nested member as a sub-view (over the nested member list).
  [[nodiscard]] View GetNested(uint32_t index) const;

  [[nodiscard]] const uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] size_t size() const noexcept { return size_; }

 private:
  const uint8_t* data_;
  size_t size_;
};

// ---- generic bridges over the field model ----

namespace internal {

template <Message M>
void BuildMembers(Builder& builder, const M& msg);

template <typename T>
void BuildMember(Builder& builder, uint32_t index, const T& field) {
  if constexpr (is_scalar_v<T>) {
    builder.AddScalar(index, field);
  } else if constexpr (is_string_like_v<T>) {
    builder.AddString(index, std::string_view(field.data(), field.size()));
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      builder.AddVector(index, field.data(), field.size());
    } else {
      const size_t mark = builder.BeginNested(index);
      builder.Append32(static_cast<uint32_t>(field.size()));
      for (const auto& element : field) {
        const size_t element_mark = builder.BeginElement();
        BuildMembers(builder, element);
        builder.EndElement(element_mark);
      }
      builder.EndNested(mark);
    }
  } else {
    const size_t mark = builder.BeginNested(index);
    BuildMembers(builder, field);
    builder.EndNested(mark);
  }
}

template <Message M>
void BuildMembers(Builder& builder, const M& msg) {
  uint32_t index = 0;
  msg.for_each_field([&](const char*, const auto& field) {
    BuildMember(builder, index++, field);
  });
}

template <Message M>
Status ReadMembers(const View& view, M& msg);

template <typename T>
Status ReadMember(const View& view, uint32_t index, T& field) {
  if constexpr (is_scalar_v<T>) {
    View::Member member;
    if (!view.FindMember(index, &member)) {
      return NotFoundError("missing member " + std::to_string(index));
    }
    std::memcpy(&field, member.payload, sizeof(T));
    return Status::Ok();
  } else if constexpr (is_string_like_v<T>) {
    field = view.GetString(index);
    return Status::Ok();
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (is_scalar_v<E>) {
      const auto [data, count] = view.GetVector<E>(index);
      if constexpr (is_std_array_v<T>) {
        if (count != field.size()) {
          return InvalidArgumentError("fixed array count mismatch");
        }
        std::memcpy(field.data(), data, count * sizeof(E));
      } else {
        field.resize(count);
        if (count > 0) std::memcpy(field.data(), data, count * sizeof(E));
      }
      return Status::Ok();
    } else {
      const View nested = view.GetNested(index);
      if (nested.size() < 4) return OutOfRangeError("bad nested vector");
      const auto count = LoadLE<uint32_t>(nested.data());
      field.resize(count);
      size_t at = 4;
      for (uint32_t i = 0; i < count; ++i) {
        if (at + 4 > nested.size()) return OutOfRangeError("bad element");
        const auto element_bytes = LoadLE<uint32_t>(nested.data() + at);
        at += 4;
        RSF_RETURN_IF_ERROR(ReadMembers(
            View(nested.data() + at, element_bytes), field[i]));
        at += element_bytes;
      }
      return Status::Ok();
    }
  } else {
    return ReadMembers(view.GetNested(index), field);
  }
}

template <Message M>
Status ReadMembers(const View& view, M& msg) {
  Status status;
  uint32_t index = 0;
  msg.for_each_field([&](const char*, auto& field) {
    if (status.ok()) status = ReadMember(view, index, field);
    ++index;
  });
  return status;
}

}  // namespace internal

/// "RTI" serialize: regular struct -> XCDR2 buffer.
template <Message M>
std::vector<uint8_t> Serialize(const M& msg) {
  Builder builder;
  internal::BuildMembers(builder, msg);
  return builder.Finish();
}

/// "RTI" de-serialize: XCDR2 buffer -> regular struct.
template <Message M>
Status Deserialize(const uint8_t* data, size_t size, M& msg) {
  return internal::ReadMembers(View(data, size), msg);
}

/// "RTI-FlatData" construct: build the wire bytes directly (no separate
/// serialization step; application code uses Builder natively).
template <Message M>
std::vector<uint8_t> BuildFromMessage(const M& msg) {
  return Serialize(msg);
}

}  // namespace rsf::ser::xcdr2
