#include "serialization/flatbuf_mini.h"

#include <cstring>

#include "common/status.h"

namespace rsf::ser::fb {

void Builder::AlignTo(size_t align) {
  while (buffer_.size() % align != 0) buffer_.push_back(0);
}

Ref Builder::CreateString(std::string_view text) {
  AlignTo(4);
  const auto pos = static_cast<uint32_t>(buffer_.size());
  AppendScalar<uint32_t>(static_cast<uint32_t>(text.size()));
  buffer_.insert(buffer_.end(), text.begin(), text.end());
  buffer_.push_back(0);  // FlatBuffers null-terminates strings
  AlignTo(4);
  return Ref{pos};
}

Ref Builder::CreateRefVector(const std::vector<Ref>& refs) {
  AlignTo(4);
  const auto pos = static_cast<uint32_t>(buffer_.size());
  AppendScalar<uint32_t>(static_cast<uint32_t>(refs.size()));
  for (const Ref& ref : refs) {
    // Element stores the distance back from its own position to the target.
    const auto at = static_cast<uint32_t>(buffer_.size());
    AppendScalar<uint32_t>(at - ref.pos);
  }
  return Ref{pos};
}

void Builder::StartTable(size_t field_count) {
  SFM_CHECK_MSG(!table_open_, "nested StartTable without FinishTable");
  table_open_ = true;
  pending_field_count_ = field_count;
  pending_.clear();
}

void Builder::AddScalarSlot(size_t slot, const void* value, size_t size,
                            size_t align) {
  SFM_CHECK_MSG(table_open_, "AddScalar outside a table");
  PendingField field;
  field.slot = slot;
  field.is_ref = false;
  field.size = size;
  field.align = align;
  std::memcpy(field.inline_value, value, size);
  pending_.push_back(field);
}

void Builder::AddRef(size_t slot, Ref ref) {
  SFM_CHECK_MSG(table_open_, "AddRef outside a table");
  PendingField field;
  field.slot = slot;
  field.is_ref = true;
  field.ref = ref;
  field.size = 4;
  field.align = 4;
  pending_.push_back(field);
}

Ref Builder::FinishTable() {
  SFM_CHECK_MSG(table_open_, "FinishTable without StartTable");
  table_open_ = false;

  AlignTo(4);
  const auto table_pos = static_cast<uint32_t>(buffer_.size());

  // Slot 0 of the table is the int32 vtable offset (patched below).
  AppendScalar<int32_t>(0);

  std::vector<uint16_t> slot_offsets(pending_field_count_, 0);
  for (const PendingField& field : pending_) {
    AlignTo(field.align);
    const auto at = static_cast<uint32_t>(buffer_.size());
    slot_offsets.at(field.slot) = static_cast<uint16_t>(at - table_pos);
    if (field.is_ref) {
      AppendScalar<uint32_t>(field.ref.valid() ? at - field.ref.pos : 0);
    } else {
      const size_t end = buffer_.size();
      buffer_.resize(end + field.size);
      std::memcpy(buffer_.data() + end, field.inline_value, field.size);
    }
  }
  AlignTo(4);
  const auto table_size = static_cast<uint16_t>(buffer_.size() - table_pos);

  // vtable follows the table; the table's first word holds the distance.
  const auto vtable_pos = static_cast<uint32_t>(buffer_.size());
  AppendScalar<uint16_t>(
      static_cast<uint16_t>(4 + 2 * pending_field_count_));  // vtable size
  AppendScalar<uint16_t>(table_size);
  for (const uint16_t offset : slot_offsets) AppendScalar<uint16_t>(offset);
  AlignTo(4);

  StoreLE<int32_t>(buffer_.data() + table_pos,
                   static_cast<int32_t>(vtable_pos) -
                       static_cast<int32_t>(table_pos));
  return Ref{table_pos};
}

std::vector<uint8_t> Builder::Finish(Ref root) {
  SFM_CHECK_MSG(!table_open_, "Finish with an open table");
  StoreLE<uint32_t>(buffer_.data(), root.pos);
  return std::move(buffer_);
}

uint16_t TableView::SlotOffset(size_t slot) const {
  const auto vtable_delta = LoadLE<int32_t>(buffer_ + table_pos_);
  const uint32_t vtable_pos =
      static_cast<uint32_t>(static_cast<int32_t>(table_pos_) + vtable_delta);
  const auto vtable_size = LoadLE<uint16_t>(buffer_ + vtable_pos);
  const size_t entry = 4 + 2 * slot;
  if (entry + 2 > vtable_size) return 0;
  return LoadLE<uint16_t>(buffer_ + vtable_pos + entry);
}

uint32_t TableView::RefTarget(size_t slot) const {
  const uint16_t off = SlotOffset(slot);
  if (off == 0) return 0;
  const uint32_t at = table_pos_ + off;
  const auto back = LoadLE<uint32_t>(buffer_ + at);
  if (back == 0) return 0;
  return at - back;
}

std::string_view TableView::GetString(size_t slot) const {
  const uint32_t payload = RefTarget(slot);
  if (payload == 0) return {};
  const auto length = LoadLE<uint32_t>(buffer_ + payload);
  return {reinterpret_cast<const char*>(buffer_ + payload + 4), length};
}

TableView TableView::GetTable(size_t slot) const {
  const uint32_t payload = RefTarget(slot);
  if (payload == 0) return {};
  return TableView(buffer_, payload);
}

size_t TableView::GetRefVectorSize(size_t slot) const {
  const uint32_t payload = RefTarget(slot);
  if (payload == 0) return 0;
  return LoadLE<uint32_t>(buffer_ + payload);
}

TableView TableView::GetTableElement(size_t slot, size_t index) const {
  const uint32_t payload = RefTarget(slot);
  if (payload == 0) return {};
  const uint32_t element_at = payload + 4 + static_cast<uint32_t>(index) * 4;
  const auto back = LoadLE<uint32_t>(buffer_ + element_at);
  return TableView(buffer_, element_at - back);
}

TableView GetRoot(const uint8_t* buffer, size_t size) {
  if (size < 8) return {};
  return TableView(buffer, LoadLE<uint32_t>(buffer));
}

}  // namespace rsf::ser::fb
