// protobuf_mini — a faithful miniature of the Protocol Buffers wire format
// (one of the paper's Fig. 14 comparators), generic over the field model.
//
// Encoding rules (matching protobuf's encoding spec):
//   field tag      varint  (field_number << 3) | wire_type
//   bool/ints      wire type 0: 64-bit varint (two's complement)
//   float          wire type 5: fixed32 LE
//   double/Time    wire type 1: fixed64 LE
//   string/bytes   wire type 2: varint length + raw bytes
//   uint8 vector   wire type 2 ("bytes"): raw
//   other vectors  wire type 2, packed: elements use their scalar encoding
//   nested message wire type 2: varint length + encoded submessage
//
// Field numbers are assigned by declaration order (1-based).  The prefix
// (varint) encoding is what gives ProtoBuf its size advantage on small
// values — and its extra ser/deser time on large ones, the effect Fig. 14
// isolates.
#pragma once

#include <cstring>
#include <vector>

#include "common/endian.h"
#include "common/status.h"
#include "serialization/field_model.h"

namespace rsf::ser::pb {

namespace internal {

enum WireType : uint32_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

inline size_t VarintSize(uint64_t value) noexcept {
  size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

inline void WriteVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size)
      : cursor_(data), end_(data + size) {}

  Status ReadVarint(uint64_t* value) {
    *value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (cursor_ >= end_) return OutOfRangeError("truncated varint");
      const uint8_t byte = *cursor_++;
      *value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return Status::Ok();
    }
    return InvalidArgumentError("varint longer than 10 bytes");
  }

  Status ReadBytes(void* dst, size_t count) {
    if (Remaining() < count) return OutOfRangeError("truncated field");
    std::memcpy(dst, cursor_, count);
    cursor_ += count;
    return Status::Ok();
  }

  Status Skip(size_t count) {
    if (Remaining() < count) return OutOfRangeError("truncated skip");
    cursor_ += count;
    return Status::Ok();
  }

  [[nodiscard]] const uint8_t* cursor() const noexcept { return cursor_; }
  [[nodiscard]] size_t Remaining() const noexcept {
    return static_cast<size_t>(end_ - cursor_);
  }

 private:
  const uint8_t* cursor_;
  const uint8_t* end_;
};

// ---- scalar encoding ----

template <typename T>
constexpr WireType ScalarWire() {
  if constexpr (std::is_same_v<T, float>) {
    return kFixed32;
  } else if constexpr (std::is_same_v<T, double> || is_time_v<T>) {
    return kFixed64;
  } else {
    return kVarint;
  }
}

template <typename T>
size_t ScalarSize(const T& value) {
  if constexpr (std::is_same_v<T, float>) {
    return 4;
  } else if constexpr (std::is_same_v<T, double> || is_time_v<T>) {
    return 8;
  } else {
    return VarintSize(static_cast<uint64_t>(
        static_cast<int64_t>(value)));  // sign-extend like proto int32/64
  }
}

template <typename T>
void WriteScalar(std::vector<uint8_t>& out, const T& value) {
  if constexpr (std::is_same_v<T, float>) {
    uint8_t bytes[4];
    StoreLE(bytes, value);
    out.insert(out.end(), bytes, bytes + 4);
  } else if constexpr (std::is_same_v<T, double> || is_time_v<T>) {
    uint8_t bytes[8];
    StoreLE(bytes, value);
    out.insert(out.end(), bytes, bytes + 8);
  } else {
    WriteVarint(out, static_cast<uint64_t>(static_cast<int64_t>(value)));
  }
}

template <typename T>
Status ReadScalar(Reader& in, T& value) {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double> ||
                is_time_v<T>) {
    return in.ReadBytes(&value, sizeof(T));
  } else {
    uint64_t raw = 0;
    RSF_RETURN_IF_ERROR(in.ReadVarint(&raw));
    value = static_cast<T>(raw);
    return Status::Ok();
  }
}

// ---- field encoding ----

template <Message M>
size_t MessageSize(const M& msg);

template <typename T>
size_t PayloadSize(const T& field) {
  if constexpr (is_scalar_v<T>) {
    return ScalarSize(field);
  } else if constexpr (is_string_like_v<T>) {
    return VarintSize(field.size()) + field.size();
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    size_t body = 0;
    if constexpr (std::is_same_v<E, uint8_t> || std::is_same_v<E, int8_t>) {
      body = field.size();
    } else if constexpr (is_scalar_v<E>) {
      for (const auto& element : field) body += ScalarSize(element);
    } else {
      for (const auto& element : field) {
        const size_t sub = MessageSize(element);
        body += VarintSize(sub) + sub;
      }
    }
    return VarintSize(body) + body;
  } else {
    const size_t sub = MessageSize(field);
    return VarintSize(sub) + sub;
  }
}

template <Message M>
size_t MessageSize(const M& msg) {
  size_t total = 0;
  uint32_t number = 0;
  msg.for_each_field([&](const char*, const auto& field) {
    ++number;
    total += VarintSize(number << 3) + PayloadSize(field);
  });
  return total;
}

template <typename T>
void WriteFieldBody(std::vector<uint8_t>& out, const T& field);

template <Message M>
void WriteMessageBody(std::vector<uint8_t>& out, const M& msg) {
  uint32_t number = 0;
  msg.for_each_field([&](const char*, const auto& field) {
    ++number;
    uint32_t wire;
    using T = std::decay_t<decltype(field)>;
    if constexpr (is_scalar_v<T>) {
      wire = ScalarWire<T>();
    } else {
      wire = kLengthDelimited;
    }
    WriteVarint(out, (static_cast<uint64_t>(number) << 3) | wire);
    WriteFieldBody(out, field);
  });
}

template <typename T>
void WriteFieldBody(std::vector<uint8_t>& out, const T& field) {
  if constexpr (is_scalar_v<T>) {
    WriteScalar(out, field);
  } else if constexpr (is_string_like_v<T>) {
    WriteVarint(out, field.size());
    out.insert(out.end(), field.data(), field.data() + field.size());
  } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
    using E = element_of_t<T>;
    if constexpr (std::is_same_v<E, uint8_t> || std::is_same_v<E, int8_t>) {
      WriteVarint(out, field.size());
      const auto* bytes = reinterpret_cast<const uint8_t*>(field.data());
      out.insert(out.end(), bytes, bytes + field.size());
    } else if constexpr (is_scalar_v<E>) {
      size_t body = 0;
      for (const auto& element : field) body += ScalarSize(element);
      WriteVarint(out, body);
      for (const auto& element : field) WriteScalar(out, element);
    } else {
      size_t body = 0;
      for (const auto& element : field) {
        const size_t sub = MessageSize(element);
        body += VarintSize(sub) + sub;
      }
      WriteVarint(out, body);
      for (const auto& element : field) {
        WriteVarint(out, MessageSize(element));
        WriteMessageBody(out, element);
      }
    }
  } else {
    WriteVarint(out, MessageSize(field));
    WriteMessageBody(out, field);
  }
}

// ---- decoding ----

template <Message M>
Status ReadMessageBody(Reader& in, size_t length, M& msg);

template <typename T>
Status ReadFieldBody(Reader& in, uint32_t wire, T& field) {
  if constexpr (is_scalar_v<T>) {
    if (wire != ScalarWire<T>()) {
      return InvalidArgumentError("wire type mismatch on scalar field");
    }
    return ReadScalar(in, field);
  } else {
    if (wire != kLengthDelimited) {
      return InvalidArgumentError("wire type mismatch on delimited field");
    }
    uint64_t length = 0;
    RSF_RETURN_IF_ERROR(in.ReadVarint(&length));
    if (in.Remaining() < length) return OutOfRangeError("truncated payload");

    if constexpr (is_string_like_v<T>) {
      std::string scratch(static_cast<size_t>(length), '\0');
      RSF_RETURN_IF_ERROR(in.ReadBytes(scratch.data(), scratch.size()));
      field = scratch;
      return Status::Ok();
    } else if constexpr (is_vector_like_v<T> || is_std_array_v<T>) {
      using E = element_of_t<T>;
      if constexpr (std::is_same_v<E, uint8_t> || std::is_same_v<E, int8_t>) {
        if constexpr (!is_std_array_v<T>) field.resize(length);
        return in.ReadBytes(field.data(), static_cast<size_t>(length));
      } else if constexpr (is_scalar_v<E>) {
        // Packed: element count is only known for fixed-width types; for
        // varints we must parse to the end of the payload.
        const uint8_t* payload_end = in.cursor() + length;
        std::vector<E> scratch;
        while (in.cursor() < payload_end) {
          E value{};
          RSF_RETURN_IF_ERROR(ReadScalar(in, value));
          scratch.push_back(value);
        }
        if constexpr (is_std_array_v<T>) {
          if (scratch.size() != field.size()) {
            return InvalidArgumentError("fixed array count mismatch");
          }
          std::copy(scratch.begin(), scratch.end(), field.begin());
        } else {
          field.resize(scratch.size());
          for (size_t i = 0; i < scratch.size(); ++i) field[i] = scratch[i];
        }
        return Status::Ok();
      } else {
        const uint8_t* payload_end = in.cursor() + length;
        size_t count = 0;
        {
          // First pass over the payload to count elements (repeated
          // messages carry per-element length prefixes).
          Reader probe(in.cursor(), static_cast<size_t>(length));
          while (probe.cursor() < payload_end) {
            uint64_t sub = 0;
            RSF_RETURN_IF_ERROR(probe.ReadVarint(&sub));
            RSF_RETURN_IF_ERROR(probe.Skip(static_cast<size_t>(sub)));
            ++count;
          }
        }
        field.resize(count);
        for (size_t i = 0; i < count; ++i) {
          uint64_t sub = 0;
          RSF_RETURN_IF_ERROR(in.ReadVarint(&sub));
          RSF_RETURN_IF_ERROR(
              ReadMessageBody(in, static_cast<size_t>(sub), field[i]));
        }
        return Status::Ok();
      }
    } else {
      return ReadMessageBody(in, static_cast<size_t>(length), field);
    }
  }
}

template <Message M>
Status ReadMessageBody(Reader& in, size_t length, M& msg) {
  const uint8_t* end = in.cursor() + length;
  while (in.cursor() < end) {
    uint64_t tag = 0;
    RSF_RETURN_IF_ERROR(in.ReadVarint(&tag));
    const auto number = static_cast<uint32_t>(tag >> 3);
    const auto wire = static_cast<uint32_t>(tag & 7);

    Status status;
    bool matched = false;
    uint32_t index = 0;
    msg.for_each_field([&](const char*, auto& field) {
      ++index;
      if (index == number && !matched) {
        matched = true;
        status = ReadFieldBody(in, wire, field);
      }
    });
    if (!matched) {
      return InvalidArgumentError("unknown field number " +
                                  std::to_string(number));
    }
    RSF_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

}  // namespace internal

/// Encoded size of `msg`.
template <Message M>
size_t EncodedSize(const M& msg) {
  return internal::MessageSize(msg);
}

/// Encodes `msg` into a fresh buffer.
template <Message M>
std::vector<uint8_t> Encode(const M& msg) {
  std::vector<uint8_t> out;
  out.reserve(internal::MessageSize(msg));
  internal::WriteMessageBody(out, msg);
  return out;
}

/// Decodes `msg` from `data`.
template <Message M>
Status Decode(const uint8_t* data, size_t size, M& msg) {
  internal::Reader reader(data, size);
  return internal::ReadMessageBody(reader, size, msg);
}

}  // namespace rsf::ser::pb
