// Shared pieces for the figure/table reproduction benches: argument
// parsing, image-message construction, and the middleware latency pipeline
// used by Figs. 13/14/16.
//
// Defaults are sized so `for b in build/bench/*; do $b; done` finishes in a
// few minutes; `--full` restores the paper's counts (2000 messages at
// 10 Hz).
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"
#include "ros/ros.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/sfm/Image.h"
#include "slam/nodes.h"  // NewMessage

namespace bench {

struct Options {
  int iterations = 100;
  double hz = 100.0;
  int warmup = 5;  // unrecorded leading messages (connection setup, faults)
  bool full = false;

  static Options Parse(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        options.full = true;
        options.iterations = 2000;  // the paper's counts (§5.1)
        options.hz = 10.0;
      } else if (arg == "--iters" && i + 1 < argc) {
        options.iterations = std::atoi(argv[++i]);
      } else if (arg == "--hz" && i + 1 < argc) {
        options.hz = std::atof(argv[++i]);
      }
    }
    return options;
  }
};

/// The paper's three image sizes (§5.1): ~200KB, ~1MB, ~6MB.
struct ImageSize {
  const char* label;
  uint32_t width;
  uint32_t height;
};
inline constexpr ImageSize kPaperSizes[] = {
    {"~200KB (256x256x24b)", 256, 256},
    {"~1MB (800x600x24b)", 800, 600},
    {"~6MB (1920x1080x24b)", 1920, 1080},
};

/// Fills an image message (either variant) the way the paper's pub node
/// does: stamp first (so construction is inside the measured latency), then
/// the pixel payload.
template <typename ImageT>
void FillImage(ImageT& msg, uint32_t width, uint32_t height, uint32_t seq) {
  msg.header.stamp = rsf::Time::Now();
  msg.header.seq = seq;
  msg.header.frame_id = "cam";
  msg.height = height;
  msg.width = width;
  msg.encoding = "rgb8";
  msg.step = width * 3;
  const size_t bytes = static_cast<size_t>(width) * height * 3;
  msg.data.resize(bytes);
  uint8_t* out = msg.data.data();
  for (size_t i = 0; i < bytes; i += 4096) {
    out[i] = static_cast<uint8_t>(i >> 12);  // touch every page
  }
  out[bytes - 1] = 0x5A;
}

/// Blocks until `predicate` or timeout; returns the predicate's value.
template <typename F>
bool WaitFor(F&& predicate, uint64_t timeout_nanos = 30'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(500'000);
  }
  return predicate();
}

/// Which transport a RunPubSub cell measures.  The TCP default keeps the
/// paper-reproduction figures (13/14/16) on wire semantics even though both
/// nodes share this process; the intra tiers exercise the in-process
/// transport negotiated at connect time.
enum class Transport {
  kTcp,            // loopback TCPROS: serialize, frame, send, receive
  kIntraWholeCopy, // in-process, publish(const M&): one clone per publish
  kIntraZeroCopy,  // in-process, publish(shared_ptr): alias, no copy
};

inline const char* TransportLabel(Transport transport) {
  switch (transport) {
    case Transport::kTcp: return "tcp";
    case Transport::kIntraWholeCopy: return "intra-whole-copy";
    case Transport::kIntraZeroCopy: return "intra-zero-copy";
  }
  return "?";
}

/// One pub -> sub latency run over the middleware (Fig. 12 topology).
/// The subscription can be shaped with a SimLink config (Fig. 16 uses it).
///
/// The returned recorder follows the paper's convention (§5.1): the stamp
/// goes into the message BEFORE the payload is written, so construction
/// (arena zeroing, pixel fill) is inside the measured latency.  When
/// `transport_latency` is non-null it additionally records publish-call to
/// callback time — the transport cost alone, which is what stays flat on
/// the zero-copy tier while the stamped number keeps the constant
/// construction floor every transport shares.
template <typename ImageT>
rsf::LatencyRecorder RunPubSub(uint32_t width, uint32_t height,
                               const Options& options,
                               rsf::net::LinkConfig link = {},
                               Transport transport = Transport::kTcp,
                               rsf::LatencyRecorder* transport_latency = nullptr) {
  ros::master().Reset();
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::mutex mutex;
  rsf::LatencyRecorder recorder;
  rsf::LatencyRecorder transport_recorder;
  std::vector<uint64_t> publish_nanos(
      static_cast<size_t>(options.iterations + options.warmup), 0);
  uint64_t seen = 0;
  const uint64_t skip = static_cast<uint64_t>(options.warmup);
  ros::SubscribeOptions sub_options;
  sub_options.inline_dispatch = true;
  sub_options.link = link;
  sub_options.allow_intra_process = transport != Transport::kTcp;
  auto sub = sub_node.subscribe<ImageT>(
      "/image", 10,
      [&](const std::shared_ptr<const ImageT>& msg) {
        const uint64_t now = rsf::MonotonicNanos();
        const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
        // Touch the payload the way a consumer would.
        const volatile uint8_t probe = msg->data[msg->data.size() - 1];
        (void)probe;
        std::lock_guard<std::mutex> lock(mutex);
        if (++seen > skip) {
          recorder.AddNanos(nanos);
          if (msg->header.seq < publish_nanos.size() &&
              publish_nanos[msg->header.seq] != 0) {
            transport_recorder.AddNanos(now - publish_nanos[msg->header.seq]);
          }
        }
      },
      sub_options);
  auto pub = pub_node.advertise<ImageT>("/image", 10);
  WaitFor([&] { return pub.getNumSubscribers() == 1; });

  const auto received = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    return seen;
  };
  rsf::Rate rate(options.hz);
  const int total = options.iterations + options.warmup;
  for (int i = 0; i < total; ++i) {
    auto msg = rsf::slam::NewMessage<ImageT>();
    FillImage(*msg, width, height, static_cast<uint32_t>(i));
    {
      // The publish-side half of the transport-only measurement; written
      // under the callback mutex so an async (TCP) delivery reads it safely.
      std::lock_guard<std::mutex> lock(mutex);
      publish_nanos[static_cast<size_t>(i)] = rsf::MonotonicNanos();
    }
    if (transport == Transport::kIntraZeroCopy) {
      // Hand ownership over: co-located subscribers alias this message.
      pub.publish(std::shared_ptr<const ImageT>(std::move(msg)));
    } else {
      pub.publish(*msg);
    }
    rate.Sleep();
    // Flow control: cap the in-flight window so a slow consumer (one core
    // moving 6MB frames) never overflows the drop-oldest queues — the
    // paper's 10 Hz pacing had the same no-drop property.
    WaitFor([&] { return received() + 4 >= static_cast<uint64_t>(i + 1); },
            10'000'000'000ull);
  }
  WaitFor([&] { return received() >= static_cast<uint64_t>(total); },
          10'000'000'000ull);

  std::lock_guard<std::mutex> lock(mutex);
  if (transport_latency != nullptr) *transport_latency = transport_recorder;
  return recorder;
}

inline void PrintRow(const char* system, const char* size_label,
                     const rsf::LatencyRecorder& recorder) {
  std::printf("  %-8s %-22s mean %8.3f ms   sd %7.3f   p50 %8.3f   n=%llu\n",
              system, size_label, recorder.mean_ms(), recorder.stddev_ms(),
              recorder.Percentile(0.5),
              static_cast<unsigned long long>(recorder.count()));
}

inline void PrintReduction(double ros_ms, double rossf_ms) {
  std::printf("  => ROS-SF reduces mean latency by %.1f%%\n",
              (1.0 - rossf_ms / ros_ms) * 100.0);
}

}  // namespace bench
