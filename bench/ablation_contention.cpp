// Ablation: message-manager contention scaling (the hot-path cost the paper
// says must stay below serialization, §4.2).  N publisher threads each cycle
// their own messages through ONE shared manager — Allocate, many Expands
// (sfm::string / sfm::vector payload grants), Publish, Release — which is
// exactly the multi-publisher fan-out shape of Fig. 14 / the SLAM pipeline
// (Fig. 18).
//
// Two managers run the identical workload:
//   seed_mutex : a faithful replica of the seed's manager — one global
//                std::mutex, std::map binary search per Expand, memset
//                inside the critical section.
//   rossf      : the current sfm::MessageManager — shared_mutex index,
//                thread-local record cache, CAS size bump, memset outside
//                the lock.
//
// Prints a table and writes BENCH_contention.json into the working
// directory.
#include <algorithm>
#include <barrier>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "sfm/message_manager.h"

namespace {

// ---- the seed's manager, replicated for the baseline ----
class SeedMutexManager {
 public:
  void* Allocate(const char* datatype, size_t capacity, size_t skeleton) {
    sfm::PooledBlock pooled = sfm::AcquireArenaBlock(capacity);
    auto block = std::shared_ptr<uint8_t[]>(pooled.release(),
                                            sfm::PooledDeleter{capacity});
    uint8_t* start = block.get();
    std::memset(start, 0, skeleton);
    Record record;
    record.start = start;
    record.capacity = capacity;
    record.size = skeleton;
    record.buffer = std::move(block);
    record.datatype = datatype;
    std::lock_guard<std::mutex> lock(mutex_);
    records_.emplace(reinterpret_cast<uintptr_t>(start), std::move(record));
    return start;
  }

  void* Expand(const void* field_addr, size_t bytes, size_t align) {
    if (align == 0 || (align & (align - 1)) != 0) return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto key = reinterpret_cast<uintptr_t>(field_addr);
    auto it = records_.upper_bound(key);
    if (it == records_.begin()) return nullptr;
    --it;
    Record& record = it->second;
    if (key >= it->first + record.capacity) return nullptr;
    const size_t aligned_end = (record.size + align - 1) & ~(align - 1);
    if (aligned_end + bytes > record.capacity) return nullptr;
    uint8_t* out = record.start + aligned_end;
    std::memset(out, 0, bytes);  // seed zeroed inside the lock
    record.size = aligned_end + bytes;
    ++expansions_;  // seed kept stats under the same lock
    return out;
  }

  sfm::BufferRef Publish(const void* start) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(reinterpret_cast<uintptr_t>(start));
    it->second.state = 1;
    ++publishes_;
    return {std::shared_ptr<const uint8_t[]>(it->second.buffer),
            it->second.size};
  }

  bool Release(void* start) {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.erase(reinterpret_cast<uintptr_t>(start)) > 0;
  }

 private:
  struct Record {
    uint8_t* start = nullptr;
    size_t capacity = 0;
    size_t size = 0;
    int state = 0;
    std::shared_ptr<uint8_t[]> buffer;
    const char* datatype = "";
  };
  std::mutex mutex_;
  std::map<uintptr_t, Record> records_;
  uint64_t expansions_ = 0;  // the seed's ManagerStats lived under the lock
  uint64_t publishes_ = 0;
};

// Thin adapter so both managers run the template below.
struct RossfManager {
  sfm::MessageManager mm;
  void* Allocate(const char* d, size_t c, size_t s) {
    return mm.Allocate(d, c, s);
  }
  void* Expand(const void* a, size_t b, size_t al) {
    return mm.Expand(a, b, al);
  }
  sfm::BufferRef Publish(const void* s) { return *mm.Publish(s); }
  bool Release(void* s) { return mm.Release(s); }
};

struct Workload {
  // Long enough that the 1-thread timed region spans many scheduler ticks;
  // millisecond-scale runs are dominated by where the tick happens to land.
  int messages_per_thread = 3000;
  int expands_per_message = 64;
  // Small grants: the bench isolates the MANAGER's bookkeeping cost (the
  // paper's §4.2 concern), not memset bandwidth, which both variants pay
  // identically.  Think header stamps, frame ids, small strings.
  size_t grant_bytes = 32;
  size_t skeleton = 64;
  // Messages held live for the whole run, emulating in-flight transport
  // references and other topics' arenas (the paper quotes its lookup cost
  // at 512 live messages).  Depth for the seed's per-Expand binary search;
  // the rossf thread cache skips the search entirely.
  int standing_live = 512;

  [[nodiscard]] size_t capacity() const {
    return skeleton + expands_per_message * grant_bytes + 64;
  }
  [[nodiscard]] uint64_t OpsPerThread() const {
    // The metric the paper cares about: manager touches per message — every
    // Expand plus the Publish (Allocate/Release ride along uncounted).
    return static_cast<uint64_t>(messages_per_thread) *
           (expands_per_message + 1);
  }
};

/// Runs the workload on `threads` publisher threads sharing one `manager`;
/// returns aggregate Expand+Publish operations per second.
template <typename Manager>
double RunContended(Manager& manager, int threads, const Workload& load) {
  std::barrier start_line(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      start_line.arrive_and_wait();
      for (int m = 0; m < load.messages_per_thread; ++m) {
        void* msg =
            manager.Allocate("bench/Contention", load.capacity(), load.skeleton);
        for (int e = 0; e < load.expands_per_message; ++e) {
          void* granted = manager.Expand(msg, load.grant_bytes, 8);
          static_cast<uint8_t*>(granted)[0] = 1;  // touch the grant
        }
        auto buffer = manager.Publish(msg);
        (void)buffer;
        manager.Release(msg);
      }
    });
  }
  // Start the clock BEFORE releasing the barrier: on a loaded (or one-core)
  // host the workers can run to completion before this thread is
  // rescheduled, which would undercount the elapsed time to ~zero.
  const rsf::Stopwatch watch;
  start_line.arrive_and_wait();
  for (auto& worker : workers) worker.join();
  const double seconds = watch.ElapsedNanos() * 1e-9;
  return static_cast<double>(load.OpsPerThread()) * threads / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Workload load;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      load.messages_per_thread = 4000;
    } else if (arg == "--msgs" && i + 1 < argc) {
      load.messages_per_thread = std::atoi(argv[++i]);
    } else if (arg == "--expands" && i + 1 < argc) {
      load.expands_per_message = std::atoi(argv[++i]);
    } else if (arg == "--standing" && i + 1 < argc) {
      load.standing_live = std::atoi(argv[++i]);
    }
  }
  // Zero or negative values would divide by zero (NaN speedups, malformed
  // JSON); clamp instead of crashing on a typo.
  load.messages_per_thread = std::max(load.messages_per_thread, 1);
  load.expands_per_message = std::max(load.expands_per_message, 1);
  load.standing_live = std::max(load.standing_live, 0);

  std::printf(
      "=== Ablation: manager contention, %d msgs/thread x %d expands "
      "(grant %zuB, %d standing live) ===\n\n",
      load.messages_per_thread, load.expands_per_message, load.grant_bytes,
      load.standing_live);
  std::printf("  %-8s %18s %18s %10s\n", "threads", "seed-mutex ops/s",
              "ros-sf ops/s", "speedup");

  struct Row {
    int threads;
    double seed_ops;
    double rossf_ops;
    double speedup;
  };
  // Pin the CPU at its working frequency before any timed region; otherwise
  // governor ramp-up flatters whichever variant happens to run later.
  {
    const rsf::Stopwatch spin;
    volatile uint64_t sink = 0;
    while (spin.ElapsedNanos() < 300'000'000) sink += 1;
  }

  // Seeds a standing population of live arenas (in-flight transport
  // references, other topics' messages) so the per-Expand index search has
  // realistic depth, then runs one warmup pass.
  const auto prepare = [&load](auto& manager, std::vector<void*>& standing) {
    standing.reserve(load.standing_live);
    for (int i = 0; i < load.standing_live; ++i) {
      standing.push_back(
          manager.Allocate("bench/Standing", load.capacity(), load.skeleton));
    }
    Workload warmup = load;
    warmup.messages_per_thread = 64;
    (void)RunContended(manager, 1, warmup);
  };

  std::vector<Row> rows;
  for (const int threads : {1, 2, 4, 8}) {
    // Fresh managers per cell so record counts start identical.
    SeedMutexManager seed;
    RossfManager rossf;
    std::vector<void*> seed_standing, rossf_standing;
    prepare(seed, seed_standing);
    prepare(rossf, rossf_standing);
    // Interleave the timed reps (seed, rossf, seed, rossf, ...).  The two
    // runs of a pair execute back to back, so they see the same ambient
    // load; the MEDIAN of the per-pair ratios cancels the machine-level
    // drift that makes absolute ops/s jitter by ±30% on a shared host.
    double seed_ops = 0.0;
    double rossf_ops = 0.0;
    std::vector<double> ratios;
    for (int rep = 0; rep < 5; ++rep) {
      const double seed_run = RunContended(seed, threads, load);
      const double rossf_run = RunContended(rossf, threads, load);
      seed_ops = std::max(seed_ops, seed_run);
      rossf_ops = std::max(rossf_ops, rossf_run);
      ratios.push_back(rossf_run / seed_run);
    }
    std::sort(ratios.begin(), ratios.end());
    const double speedup = ratios[ratios.size() / 2];
    for (void* msg : seed_standing) seed.Release(msg);
    for (void* msg : rossf_standing) rossf.Release(msg);
    rows.push_back({threads, seed_ops, rossf_ops, speedup});
    std::printf("  %-8d %18.0f %18.0f %9.2fx\n", threads, seed_ops, rossf_ops,
                speedup);
  }

  FILE* json = std::fopen("BENCH_contention.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ablation_contention\",\n"
                 "  \"unit\": \"expand+publish ops/sec, aggregate\",\n"
                 "  \"speedup\": \"median of paired-run ratios\",\n"
                 "  \"messages_per_thread\": %d,\n"
                 "  \"expands_per_message\": %d,\n"
                 "  \"grant_bytes\": %zu,\n  \"standing_live\": %d,\n"
                 "  \"results\": [\n",
                 load.messages_per_thread, load.expands_per_message,
                 load.grant_bytes, load.standing_live);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %d, \"seed_mutex_ops_per_sec\": %.0f, "
                   "\"rossf_ops_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                   rows[i].threads, rows[i].seed_ops, rows[i].rossf_ops,
                   rows[i].speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\n  wrote BENCH_contention.json\n");
  }
  return 0;
}
