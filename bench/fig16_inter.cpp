// Reproduces paper Fig. 16: inter-machine ping-pong latency of ROS vs
// ROS-SF for three image sizes.
//
// Topology (paper Fig. 15): pub and sub live on "machine A", trans on
// "machine B".  The two hops A->B and B->A cross a simulated Intel-82599
// 10 GbE link (net::SimLink; see DESIGN.md substitutions).  The recorded
// time spans two constructions, two (de)serializations under plain ROS, and
// two wire crossings; halve it for one-way latency.
//
// Expected shape (§5.2): ROS-SF cuts the ping-pong latency at every size,
// by roughly 70% at 6MB.
#include <cstdlib>

#include "bench/bench_util.h"
#include "sfm/shm_pool.h"

namespace {

/// `same_host_shm` swaps the simulated 10 GbE hops for unshaped loopback
/// with the shared-memory tier negotiated (RSF_TRANSPORT_SHM=1, set by the
/// caller): the extra row fig16 gains in this repo.  Shared memory cannot
/// model a remote machine, so this row answers a different question — what
/// the two hops cost when "machine B" is another process on the same host.
template <typename ImageT>
rsf::LatencyRecorder RunPingPong(uint32_t width, uint32_t height,
                                 const bench::Options& options,
                                 bool same_host_shm = false) {
  ros::master().Reset();
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle trans_node("trans");
  ros::NodeHandle sub_node("sub");

  const auto hop_link = same_host_shm ? rsf::net::LinkConfig::Loopback()
                                      : rsf::net::LinkConfig::TenGigE();

  // trans (machine B): re-publishes each image with the original stamp.
  ros::Publisher trans_pub = trans_node.advertise<ImageT>("/pong", 10);
  ros::SubscribeOptions hop_a_to_b;
  hop_a_to_b.inline_dispatch = true;
  hop_a_to_b.link = hop_link;
  hop_a_to_b.allow_intra_process = !same_host_shm;  // unshaped: force wire
  auto trans_sub = trans_node.subscribe<ImageT>(
      "/ping", 10,
      [&](const std::shared_ptr<const ImageT>& in) {
        auto out = rsf::slam::NewMessage<ImageT>();
        out->header.stamp = in->header.stamp;  // carry the A-side clock
        out->header.seq = in->header.seq;
        out->header.frame_id = "pong";
        out->height = in->height;
        out->width = in->width;
        out->encoding = "rgb8";
        out->step = in->step;
        out->data.resize(in->data.size());
        std::memcpy(out->data.data(), in->data.data(), in->data.size());
        trans_pub.publish(*out);
      },
      hop_a_to_b);

  // sub (machine A): records now - stamp; both clocks are machine A's.
  std::mutex mutex;
  rsf::LatencyRecorder recorder;
  ros::SubscribeOptions hop_b_to_a;
  hop_b_to_a.inline_dispatch = true;
  hop_b_to_a.link = hop_link;
  hop_b_to_a.allow_intra_process = !same_host_shm;
  auto sub = sub_node.subscribe<ImageT>(
      "/pong", 10,
      [&](const std::shared_ptr<const ImageT>& msg) {
        const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
        std::lock_guard<std::mutex> lock(mutex);
        recorder.AddNanos(nanos);
      },
      hop_b_to_a);

  ros::Publisher pub = pub_node.advertise<ImageT>("/ping", 10);
  bench::WaitFor([&] {
    return pub.getNumSubscribers() == 1 && trans_pub.getNumSubscribers() == 1;
  });

  const auto received = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    return recorder.count();
  };
  rsf::Rate rate(options.hz);
  for (int i = 0; i < options.iterations; ++i) {
    auto msg = rsf::slam::NewMessage<ImageT>();
    bench::FillImage(*msg, width, height, static_cast<uint32_t>(i));
    pub.publish(*msg);
    rate.Sleep();
    // Flow control: bound the in-flight window (see bench_util.h).
    bench::WaitFor(
        [&] { return received() + 2 >= static_cast<uint64_t>(i + 1); },
        10'000'000'000ull);
  }
  bench::WaitFor([&] {
    return received() >= static_cast<uint64_t>(options.iterations);
  }, 10'000'000'000ull);

  std::lock_guard<std::mutex> lock(mutex);
  return recorder;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  if (!options.full && options.iterations > 60) {
    options.iterations = 60;  // two 6MB hops per iteration: keep it brisk
    options.hz = 20.0;
  }
  rsf::SetLogLevel(rsf::LogLevel::kError);

  std::printf(
      "=== Fig. 16: inter-machine ping-pong latency, ROS vs ROS-SF ===\n");
  std::printf("(pub/sub on machine A, trans on machine B; simulated 10 GbE "
              "link; %d pings per cell)\n\n",
              options.iterations);

  for (const auto& size : bench::kPaperSizes) {
    const auto ros = RunPingPong<sensor_msgs::Image>(size.width, size.height,
                                                     options);
    const auto rossf = RunPingPong<sensor_msgs::sfm::Image>(
        size.width, size.height, options);
    ::setenv("RSF_TRANSPORT_SHM", "1", 1);
    sfm::shm::ResetPoolForTest();
    const auto rossf_shm = RunPingPong<sensor_msgs::sfm::Image>(
        size.width, size.height, options, /*same_host_shm=*/true);
    ::unsetenv("RSF_TRANSPORT_SHM");
    sfm::shm::ResetPoolForTest();
    bench::PrintRow("ROS", size.label, ros);
    bench::PrintRow("ROS-SF", size.label, rossf);
    bench::PrintRow("SF/shm", size.label, rossf_shm);
    bench::PrintReduction(ros.mean_ms(), rossf.mean_ms());
    std::printf("  (one-way latency ~ ping-pong / 2; the SF/shm row is "
                "same-host, no 10 GbE model)\n\n");
  }
  return 0;
}
