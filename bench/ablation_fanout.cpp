// Ablation: publisher fan-out scaling.  ROS serializes once per publish but
// the middleware shares the serialized buffer across subscriber links, so
// BOTH variants fan out without per-subscriber copies — the difference
// stays the single serialize/de-serialize pair per delivery.  This bench
// shows per-delivery latency as the subscriber count grows (1, 2, 4), for
// ROS and ROS-SF at 1MB, plus the endianness-conversion cost of §4.4.1
// (what a mixed-endianness deployment would add back).
//
// It also measures the TransportLane fan-out curve (DESIGN.md §13): the
// publish-call cost and per-delivery latency at 1..1024 subscribers per
// lane mix (all-intra, all-TCP, half/half), at a small payload so the
// numbers isolate the fan-out machinery — one PublishContext build, N
// lane Offers — instead of memcpy bandwidth.  `--json-out <path>` writes
// the curve as JSON (BENCH_fanout.json in the repo root is a snapshot).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "sfm/endian_convert.h"

namespace {

template <typename ImageT>
rsf::LatencyRecorder RunFanout(size_t subscribers, uint32_t width,
                               uint32_t height, const bench::Options& options) {
  ros::master().Reset();
  ros::NodeHandle pub_node("pub");

  std::mutex mutex;
  rsf::LatencyRecorder recorder;
  uint64_t seen = 0;
  const uint64_t skip = static_cast<uint64_t>(options.warmup) * subscribers;

  std::vector<std::unique_ptr<ros::NodeHandle>> sub_nodes;
  std::vector<ros::Subscriber> subs;
  ros::SubscribeOptions sub_options;
  sub_options.inline_dispatch = true;
  for (size_t i = 0; i < subscribers; ++i) {
    sub_nodes.push_back(
        std::make_unique<ros::NodeHandle>("sub" + std::to_string(i)));
    subs.push_back(sub_nodes.back()->template subscribe<ImageT>(
        "/fan", 10,
        [&](const std::shared_ptr<const ImageT>& msg) {
          const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
          std::lock_guard<std::mutex> lock(mutex);
          if (++seen > skip) recorder.AddNanos(nanos);
        },
        sub_options));
  }

  auto pub = pub_node.advertise<ImageT>("/fan", 10);
  bench::WaitFor([&] { return pub.getNumSubscribers() == subscribers; });

  const auto received = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    return seen;
  };
  rsf::Rate rate(options.hz);
  const int total = options.iterations + options.warmup;
  for (int i = 0; i < total; ++i) {
    auto msg = rsf::slam::NewMessage<ImageT>();
    bench::FillImage(*msg, width, height, static_cast<uint32_t>(i));
    pub.publish(*msg);
    rate.Sleep();
    bench::WaitFor(
        [&] {
          return received() + 4 * subscribers >=
                 static_cast<uint64_t>(i + 1) * subscribers;
        },
        10'000'000'000ull);
  }
  bench::WaitFor(
      [&] { return received() >= static_cast<uint64_t>(total) * subscribers; },
      10'000'000'000ull);
  std::lock_guard<std::mutex> lock(mutex);
  return recorder;
}

// ---- TransportLane fan-out curve (DESIGN.md §13) ----

struct MixCell {
  std::string mix;
  size_t subscribers = 0;
  int iterations = 0;
  rsf::LatencyRecorder publish;   // pub.publish() call duration
  rsf::LatencyRecorder delivery;  // stamp-to-callback latency
  uint64_t dropped = 0;
};

/// One curve cell: `subscribers` co-located subscribers in the requested
/// lane mix, publishes paced by a full delivery barrier (every subscriber
/// saw message i before i+1 goes out), so queue drops never pollute the
/// latency numbers.
MixCell RunLaneMix(const std::string& mix, size_t subscribers, int iterations,
                   int warmup) {
  using ImageT = sensor_msgs::sfm::Image;
  constexpr size_t kPayloadBytes = 4096;

  ros::master().Reset();
  ros::NodeHandle pub_node("pub");

  MixCell cell;
  cell.mix = mix;
  cell.subscribers = subscribers;
  cell.iterations = iterations;

  std::mutex mutex;
  uint64_t seen = 0;
  const uint64_t skip = static_cast<uint64_t>(warmup) * subscribers;

  std::vector<std::unique_ptr<ros::NodeHandle>> sub_nodes;
  std::vector<ros::Subscriber> subs;
  sub_nodes.reserve(subscribers);
  subs.reserve(subscribers);
  for (size_t i = 0; i < subscribers; ++i) {
    const bool wire = mix == "tcp" || (mix == "mixed" && i % 2 == 1);
    ros::SubscribeOptions sub_options;
    sub_options.inline_dispatch = true;
    sub_options.allow_intra_process = !wire;
    sub_options.allow_shm = false;  // the shm tier has its own bench
    sub_nodes.push_back(
        std::make_unique<ros::NodeHandle>("sub" + std::to_string(i)));
    subs.push_back(sub_nodes.back()->subscribe<ImageT>(
        "/fan_curve", 16,
        [&](const std::shared_ptr<const ImageT>& msg) {
          const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
          std::lock_guard<std::mutex> lock(mutex);
          if (++seen > skip) cell.delivery.AddNanos(nanos);
        },
        sub_options));
  }

  auto pub = pub_node.advertise<ImageT>("/fan_curve", 16);
  // 1024 nonblocking dials funnel through the reactor; give them time.
  bench::WaitFor([&] { return pub.getNumSubscribers() == subscribers; },
                 60'000'000'000ull);

  const auto received = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    return seen;
  };
  const int total = iterations + warmup;
  for (int i = 0; i < total; ++i) {
    auto msg = rsf::slam::NewMessage<ImageT>();
    msg->header.stamp = rsf::Time::Now();
    msg->header.seq = static_cast<uint32_t>(i);
    msg->data.resize(kPayloadBytes);
    msg->data[kPayloadBytes - 1] = 0x5A;
    const uint64_t start = rsf::MonotonicNanos();
    pub.publish(*msg);
    const uint64_t end = rsf::MonotonicNanos();
    if (i >= warmup) cell.publish.AddNanos(end - start);
    bench::WaitFor(
        [&] {
          return received() >= static_cast<uint64_t>(i + 1) * subscribers;
        },
        30'000'000'000ull);
  }
  cell.dropped = pub.getStats().dropped;
  return cell;
}

void PrintCurveCell(const MixCell& cell) {
  std::printf("  %-6s %5zu subs:  publish p50 %8.2f us  p99 %8.2f us   "
              "delivery p50 %8.1f us  p99 %8.1f us%s\n",
              cell.mix.c_str(), cell.subscribers,
              cell.publish.Percentile(0.5) * 1000.0,
              cell.publish.Percentile(0.99) * 1000.0,
              cell.delivery.Percentile(0.5) * 1000.0,
              cell.delivery.Percentile(0.99) * 1000.0,
              cell.dropped != 0 ? "  [DROPS]" : "");
}

void WriteCurveJson(const std::vector<MixCell>& cells, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"ablation_fanout\",\n"
               "  \"unit\": \"microseconds\",\n"
               "  \"payload_bytes\": 4096,\n"
               "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const MixCell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"mix\": \"%s\", \"subscribers\": %zu, \"iterations\": %d, "
        "\"publish_mean_us\": %.2f, \"publish_p50_us\": %.2f, "
        "\"publish_p99_us\": %.2f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"dropped\": %llu}%s\n",
        cell.mix.c_str(), cell.subscribers, cell.iterations,
        cell.publish.mean_ms() * 1000.0, cell.publish.Percentile(0.5) * 1000.0,
        cell.publish.Percentile(0.99) * 1000.0,
        cell.delivery.Percentile(0.5) * 1000.0,
        cell.delivery.Percentile(0.99) * 1000.0,
        static_cast<unsigned long long>(cell.dropped),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("  curve written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_out = argv[i + 1];
    }
  }
  if (!options.full && options.iterations > 40) {
    options.iterations = 40;
    options.hz = 40.0;
  }
  rsf::SetLogLevel(rsf::LogLevel::kError);

  constexpr uint32_t kWidth = 800;
  constexpr uint32_t kHeight = 600;  // ~1MB

  std::printf("=== Ablation: fan-out scaling at ~1MB (%d msgs/cell) ===\n\n",
              options.iterations);
  for (const size_t subscribers : {1u, 2u, 4u}) {
    const auto ros_rec =
        RunFanout<sensor_msgs::Image>(subscribers, kWidth, kHeight, options);
    const auto sf_rec = RunFanout<sensor_msgs::sfm::Image>(
        subscribers, kWidth, kHeight, options);
    std::printf("  %zu sub(s):  ROS mean %7.3f ms   ROS-SF mean %7.3f ms   "
                "(-%.1f%%)\n",
                subscribers, ros_rec.mean_ms(), sf_rec.mean_ms(),
                (1.0 - sf_rec.mean_ms() / ros_rec.mean_ms()) * 100.0);
  }

  // TransportLane fan-out curve: publish-call cost and delivery latency
  // per lane mix as the subscriber count grows to 1024.
  std::printf("\n=== TransportLane fan-out curve at 4KB (DESIGN.md §13) "
              "===\n\n");
  std::vector<MixCell> cells;
  for (const char* mix : {"intra", "tcp", "mixed"}) {
    for (const size_t subscribers : {1u, 8u, 64u, 256u, 512u, 1024u}) {
      const int iterations =
          std::min(options.iterations, subscribers >= 256 ? 30 : 40);
      cells.push_back(RunLaneMix(mix, subscribers, iterations, /*warmup=*/5));
      PrintCurveCell(cells.back());
    }
  }
  if (json_out != nullptr) WriteCurveJson(cells, json_out);

  // §4.4.1: what a receiver-side endianness conversion would add back.
  std::printf("\n=== Ablation: endianness-conversion cost (§4.4.1) ===\n");
  for (const size_t bytes : {size_t{200} * 1024, size_t{1} << 20,
                             size_t{6} * 1024 * 1024}) {
    auto img = sfm::make_message<sensor_msgs::sfm::Image>();
    img->encoding = "rgb8";
    img->data.resize(bytes);
    rsf::Stopwatch watch;
    constexpr int kReps = 20;
    for (int i = 0; i < kReps; ++i) {
      sfm::ConvertEndianness(*img, sfm::SwapDirection::kToForeign);
      sfm::ConvertEndianness(*img, sfm::SwapDirection::kFromForeign);
    }
    std::printf("  %-8s: %7.3f ms per conversion\n",
                rsf::HumanBytes(bytes).c_str(),
                watch.ElapsedMillis() / (2 * kReps));
  }
  std::printf("  (uint8 payloads swap-free; the loop cost is the per-element "
              "walk)\n");
  return 0;
}
