// Ablation: publisher fan-out scaling.  ROS serializes once per publish but
// the middleware shares the serialized buffer across subscriber links, so
// BOTH variants fan out without per-subscriber copies — the difference
// stays the single serialize/de-serialize pair per delivery.  This bench
// shows per-delivery latency as the subscriber count grows (1, 2, 4), for
// ROS and ROS-SF at 1MB, plus the endianness-conversion cost of §4.4.1
// (what a mixed-endianness deployment would add back).
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "sfm/endian_convert.h"

namespace {

template <typename ImageT>
rsf::LatencyRecorder RunFanout(size_t subscribers, uint32_t width,
                               uint32_t height, const bench::Options& options) {
  ros::master().Reset();
  ros::NodeHandle pub_node("pub");

  std::mutex mutex;
  rsf::LatencyRecorder recorder;
  uint64_t seen = 0;
  const uint64_t skip = static_cast<uint64_t>(options.warmup) * subscribers;

  std::vector<std::unique_ptr<ros::NodeHandle>> sub_nodes;
  std::vector<ros::Subscriber> subs;
  ros::SubscribeOptions sub_options;
  sub_options.inline_dispatch = true;
  for (size_t i = 0; i < subscribers; ++i) {
    sub_nodes.push_back(
        std::make_unique<ros::NodeHandle>("sub" + std::to_string(i)));
    subs.push_back(sub_nodes.back()->template subscribe<ImageT>(
        "/fan", 10,
        [&](const std::shared_ptr<const ImageT>& msg) {
          const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
          std::lock_guard<std::mutex> lock(mutex);
          if (++seen > skip) recorder.AddNanos(nanos);
        },
        sub_options));
  }

  auto pub = pub_node.advertise<ImageT>("/fan", 10);
  bench::WaitFor([&] { return pub.getNumSubscribers() == subscribers; });

  const auto received = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    return seen;
  };
  rsf::Rate rate(options.hz);
  const int total = options.iterations + options.warmup;
  for (int i = 0; i < total; ++i) {
    auto msg = rsf::slam::NewMessage<ImageT>();
    bench::FillImage(*msg, width, height, static_cast<uint32_t>(i));
    pub.publish(*msg);
    rate.Sleep();
    bench::WaitFor(
        [&] {
          return received() + 4 * subscribers >=
                 static_cast<uint64_t>(i + 1) * subscribers;
        },
        10'000'000'000ull);
  }
  bench::WaitFor(
      [&] { return received() >= static_cast<uint64_t>(total) * subscribers; },
      10'000'000'000ull);
  std::lock_guard<std::mutex> lock(mutex);
  return recorder;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  if (!options.full && options.iterations > 40) {
    options.iterations = 40;
    options.hz = 40.0;
  }
  rsf::SetLogLevel(rsf::LogLevel::kError);

  constexpr uint32_t kWidth = 800;
  constexpr uint32_t kHeight = 600;  // ~1MB

  std::printf("=== Ablation: fan-out scaling at ~1MB (%d msgs/cell) ===\n\n",
              options.iterations);
  for (const size_t subscribers : {1u, 2u, 4u}) {
    const auto ros_rec =
        RunFanout<sensor_msgs::Image>(subscribers, kWidth, kHeight, options);
    const auto sf_rec = RunFanout<sensor_msgs::sfm::Image>(
        subscribers, kWidth, kHeight, options);
    std::printf("  %zu sub(s):  ROS mean %7.3f ms   ROS-SF mean %7.3f ms   "
                "(-%.1f%%)\n",
                subscribers, ros_rec.mean_ms(), sf_rec.mean_ms(),
                (1.0 - sf_rec.mean_ms() / ros_rec.mean_ms()) * 100.0);
  }

  // §4.4.1: what a receiver-side endianness conversion would add back.
  std::printf("\n=== Ablation: endianness-conversion cost (§4.4.1) ===\n");
  for (const size_t bytes : {size_t{200} * 1024, size_t{1} << 20,
                             size_t{6} * 1024 * 1024}) {
    auto img = sfm::make_message<sensor_msgs::sfm::Image>();
    img->encoding = "rgb8";
    img->data.resize(bytes);
    rsf::Stopwatch watch;
    constexpr int kReps = 20;
    for (int i = 0; i < kReps; ++i) {
      sfm::ConvertEndianness(*img, sfm::SwapDirection::kToForeign);
      sfm::ConvertEndianness(*img, sfm::SwapDirection::kFromForeign);
    }
    std::printf("  %-8s: %7.3f ms per conversion\n",
                rsf::HumanBytes(bytes).c_str(),
                watch.ElapsedMillis() / (2 * kReps));
  }
  std::printf("  (uint8 payloads swap-free; the loop cost is the per-element "
              "walk)\n");
  return 0;
}
