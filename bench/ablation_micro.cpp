// Micro-ablations (google-benchmark): isolates the costs the figure-level
// benches aggregate, so each design choice in DESIGN.md can be attributed:
//
//   * serialization / de-serialization per format and size (what ROS-SF
//     eliminates)
//   * SFM construction vs regular construction (what ROS-SF adds: arena
//     registration + manager expansions)
//   * message-manager operations (interior-address lookup, expansion)
//   * whole-message copy (the generated copy constructor)
//   * FlatData member-scan access vs SFM direct field access
#include <benchmark/benchmark.h>

#include "paper_msgs/Image.h"
#include "paper_msgs/sfm/Image.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/sfm/Image.h"
#include "serialization/flatbuf_mini.h"
#include "serialization/msgpack_mini.h"
#include "serialization/protobuf_mini.h"
#include "serialization/ros1.h"
#include "serialization/xcdr2.h"
#include "sfm/sfm.h"

namespace {

sensor_msgs::Image MakeImage(size_t bytes) {
  sensor_msgs::Image img;
  img.header.frame_id = "cam";
  img.encoding = "rgb8";
  img.height = 1;
  img.width = static_cast<uint32_t>(bytes / 3);
  img.data.resize(bytes);
  return img;
}

void BM_Ros1Serialize(benchmark::State& state) {
  const auto img = MakeImage(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> out(rsf::ser::ros1::SerializedLength(img));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsf::ser::ros1::Serialize(img, out.data()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Ros1Serialize)->Arg(200 * 1024)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_Ros1Deserialize(benchmark::State& state) {
  const auto img = MakeImage(static_cast<size_t>(state.range(0)));
  const auto wire = rsf::ser::ros1::SerializeToVector(img);
  sensor_msgs::Image out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsf::ser::ros1::Deserialize(wire.data(), wire.size(), out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Ros1Deserialize)->Arg(200 * 1024)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_ProtobufEncode(benchmark::State& state) {
  const auto img = MakeImage(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsf::ser::pb::Encode(img));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProtobufEncode)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_MsgpackEncode(benchmark::State& state) {
  const auto img = MakeImage(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsf::ser::mp::Encode(img));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MsgpackEncode)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_Xcdr2Serialize(benchmark::State& state) {
  const auto img = MakeImage(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsf::ser::xcdr2::Serialize(img));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Xcdr2Serialize)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

// SFM "serialization" is the aliased buffer-pointer copy: O(1).
void BM_SfmPublishAlias(benchmark::State& state) {
  auto img = sfm::make_message<sensor_msgs::sfm::Image>();
  img->data.resize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfm::gmm().Publish(img.get()));
  }
}
BENCHMARK(BM_SfmPublishAlias)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_ConstructRegular(benchmark::State& state) {
  const auto bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sensor_msgs::Image img;
    img.encoding = "rgb8";
    img.data.resize(bytes);
    benchmark::DoNotOptimize(img.data.data());
  }
}
BENCHMARK(BM_ConstructRegular)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_ConstructSfm(benchmark::State& state) {
  const auto bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto img = sfm::make_message<sensor_msgs::sfm::Image>();
    img->encoding = "rgb8";
    img->data.resize(bytes);
    benchmark::DoNotOptimize(img->data.data());
  }
}
BENCHMARK(BM_ConstructSfm)->Arg(1024 * 1024)->Arg(6 * 1024 * 1024);

void BM_ManagerLookupByInteriorAddress(benchmark::State& state) {
  // Populate the manager with `range` live arenas, then probe one.
  const int live = static_cast<int>(state.range(0));
  std::vector<std::shared_ptr<paper_msgs::sfm::Image>> arenas;
  arenas.reserve(live);
  for (int i = 0; i < live; ++i) {
    arenas.push_back(sfm::make_message<paper_msgs::sfm::Image>());
  }
  const auto* probe =
      reinterpret_cast<const uint8_t*>(arenas[live / 2].get()) + 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfm::gmm().Find(probe));
  }
}
BENCHMARK(BM_ManagerLookupByInteriorAddress)->Arg(8)->Arg(64)->Arg(512);

void BM_ManagerExpand(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto img = sfm::make_message<paper_msgs::sfm::Image>();
    state.ResumeTiming();
    img->data.resize(256);
    benchmark::DoNotOptimize(img->data.data());
  }
}
BENCHMARK(BM_ManagerExpand);

void BM_WholeMessageCopy(benchmark::State& state) {
  auto src = sfm::make_message<sensor_msgs::sfm::Image>();
  src->encoding = "rgb8";
  src->data.resize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto dst = sfm::make_message<sensor_msgs::sfm::Image>(*src);
    benchmark::DoNotOptimize(dst.get());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WholeMessageCopy)->Arg(1024 * 1024);

void BM_AccessSfmField(benchmark::State& state) {
  auto img = sfm::make_message<paper_msgs::sfm::Image>();
  img->encoding = "rgb8";
  img->data.resize(300);
  for (auto _ : state) {
    // Direct struct-field access: the transparency win of §4.1.
    benchmark::DoNotOptimize(img->height);
    benchmark::DoNotOptimize(img->data[150]);
    benchmark::DoNotOptimize(img->encoding.c_str());
  }
}
BENCHMARK(BM_AccessSfmField);

void BM_AccessFlatDataScan(benchmark::State& state) {
  rsf::ser::xcdr2::Builder builder;
  builder.AddString(2, "rgb8");
  builder.AddScalar<uint32_t>(0, 10);
  builder.AddScalar<uint32_t>(1, 10);
  std::vector<uint8_t> pixels(300, 1);
  builder.AddVector(3, pixels.data(), pixels.size());
  const auto buffer = builder.Finish();
  const rsf::ser::xcdr2::View view(buffer.data(), buffer.size());
  for (auto _ : state) {
    // Member-scan access: must traverse headers to find each index (§3.2).
    benchmark::DoNotOptimize(view.GetScalar<uint32_t>(1));
    benchmark::DoNotOptimize(view.GetVector<uint8_t>(3));
    benchmark::DoNotOptimize(view.GetString(2));
  }
}
BENCHMARK(BM_AccessFlatDataScan);

}  // namespace

BENCHMARK_MAIN();
