// Reproduces paper Fig. 14: intra-machine latency at the 6MB image size
// across six middleware/serialization regimes:
//
//   ROS           construct struct -> ROS1 serialize -> TCP -> de-serialize
//   ROS-SF        construct in arena -> TCP -> access in place
//   ProtoBuf      construct struct -> varint encode -> TCP -> decode
//   FlatBuf       builder-construct (no serialize) -> TCP -> vtable access
//   RTI           construct struct -> XCDR2 serialize -> TCP -> de-serialize
//   RTI-FlatData  XCDR2 builder-construct -> TCP -> member-scan access
//
// ROS and ROS-SF run over the full middleware; the four comparators run
// over the same loopback-TCP framing without a broker, mirroring how the
// paper benchmarks each system with its own stack.
//
// Expected shape (§5.1): the serialization-free variant of each pair beats
// its serializing sibling; the FlatBuf-ProtoBuf gap is the smallest of the
// three pairs; RTI-FlatData has the lowest absolute latency; ROS-SF lands
// in the same scale as FlatData/FlatBuf.
#include <thread>

#include "bench/bench_util.h"
#include "net/framing.h"
#include "net/socket.h"
#include "serialization/flatbuf_mini.h"
#include "serialization/protobuf_mini.h"
#include "serialization/xcdr2.h"

namespace {

using bench::Options;

void FillPixels(uint8_t* out, size_t bytes) {
  for (size_t i = 0; i < bytes; i += 4096) {
    out[i] = static_cast<uint8_t>(i >> 12);
  }
  out[bytes - 1] = 0x5A;
}

sensor_msgs::Image MakeStampedImage(uint32_t width, uint32_t height,
                                    uint32_t seq) {
  sensor_msgs::Image img;
  bench::FillImage(img, width, height, seq);
  return img;
}

// ---- the four raw-channel adapters ----

struct ProtoAdapter {
  static constexpr const char* kName = "ProtoBuf";
  static std::vector<uint8_t> MakeWire(uint32_t w, uint32_t h, uint32_t seq) {
    const auto img = MakeStampedImage(w, h, seq);  // construct
    return rsf::ser::pb::Encode(img);              // serialize
  }
  static uint64_t Access(const uint8_t* data, size_t size) {
    sensor_msgs::Image out;
    SFM_CHECK(rsf::ser::pb::Decode(data, size, out).ok());  // de-serialize
    const volatile uint8_t probe = out.data[out.data.size() - 1];
    (void)probe;
    return rsf::ElapsedSince(out.header.stamp);
  }
};

struct RtiAdapter {
  static constexpr const char* kName = "RTI";
  static std::vector<uint8_t> MakeWire(uint32_t w, uint32_t h, uint32_t seq) {
    const auto img = MakeStampedImage(w, h, seq);
    return rsf::ser::xcdr2::Serialize(img);
  }
  static uint64_t Access(const uint8_t* data, size_t size) {
    sensor_msgs::Image out;
    SFM_CHECK(rsf::ser::xcdr2::Deserialize(data, size, out).ok());
    const volatile uint8_t probe = out.data[out.data.size() - 1];
    (void)probe;
    return rsf::ElapsedSince(out.header.stamp);
  }
};

// Image member indexes shared by the two builder-constructed adapters:
// 0 header{0 seq, 1 stamp, 2 frame_id}, 1 height, 2 width, 3 encoding,
// 4 is_bigendian, 5 step, 6 data.
struct FlatDataAdapter {
  static constexpr const char* kName = "RTI-FlatData";
  static std::vector<uint8_t> MakeWire(uint32_t w, uint32_t h, uint32_t seq) {
    namespace xc = rsf::ser::xcdr2;
    xc::Builder builder;  // construct AS the serialized bytes (Fig. 4 style)
    const size_t header_mark = builder.BeginNested(0);
    builder.AddScalar<uint32_t>(0, seq);
    builder.AddScalar(1, rsf::Time::Now());
    builder.AddString(2, "cam");
    builder.EndNested(header_mark);
    builder.AddScalar<uint32_t>(1, h);
    builder.AddScalar<uint32_t>(2, w);
    builder.AddString(3, "rgb8");
    builder.AddScalar<uint8_t>(4, 0);
    builder.AddScalar<uint32_t>(5, w * 3);
    const size_t bytes = static_cast<size_t>(w) * h * 3;
    uint8_t* pixels = builder.AddUninitializedVector<uint8_t>(6, bytes);
    FillPixels(pixels, bytes);
    return builder.Finish();
  }
  static uint64_t Access(const uint8_t* data, size_t size) {
    const rsf::ser::xcdr2::View view(data, size);  // member-scan accessors
    const auto stamp = view.GetNested(0).GetScalar<rsf::Time>(1);
    const auto [pixels, count] = view.GetVector<uint8_t>(6);
    const volatile uint8_t probe = pixels[count - 1];
    (void)probe;
    return rsf::ElapsedSince(stamp);
  }
};

struct FlatBufAdapter {
  static constexpr const char* kName = "FlatBuf";
  static std::vector<uint8_t> MakeWire(uint32_t w, uint32_t h, uint32_t seq) {
    namespace fb = rsf::ser::fb;
    fb::Builder builder;

    // header sub-table first (payloads precede the tables referencing them).
    const auto frame = builder.CreateString("cam");
    builder.StartTable(3);
    builder.AddScalar<uint32_t>(0, seq);
    builder.AddScalar(1, rsf::Time::Now());
    builder.AddRef(2, frame);
    const auto header = builder.FinishTable();

    const auto encoding = builder.CreateString("rgb8");
    const size_t bytes = static_cast<size_t>(w) * h * 3;
    auto [data_ref, pixels] = builder.CreateUninitializedVector<uint8_t>(bytes);
    FillPixels(pixels, bytes);

    builder.StartTable(7);
    builder.AddRef(0, header);
    builder.AddScalar<uint32_t>(1, h);
    builder.AddScalar<uint32_t>(2, w);
    builder.AddRef(3, encoding);
    builder.AddScalar<uint8_t>(4, 0);
    builder.AddScalar<uint32_t>(5, w * 3);
    builder.AddRef(6, data_ref);
    return builder.Finish(builder.FinishTable());
  }
  static uint64_t Access(const uint8_t* data, size_t size) {
    const auto root = rsf::ser::fb::GetRoot(data, size);  // vtable accessors
    const auto stamp = root.GetTable(0).GetScalar<rsf::Time>(1);
    const auto [pixels, count] = root.GetVector<uint8_t>(6);
    const volatile uint8_t probe = pixels[count - 1];
    (void)probe;
    return rsf::ElapsedSince(stamp);
  }
};

/// Runs one adapter over a dedicated loopback TCP channel.
template <typename Adapter>
rsf::LatencyRecorder RunRaw(uint32_t width, uint32_t height,
                            const Options& options) {
  auto listener = rsf::net::TcpListener::Listen(0);
  SFM_CHECK(listener.ok());

  std::mutex mutex;
  rsf::LatencyRecorder recorder;
  std::thread receiver([&] {
    auto conn = listener->Accept();
    SFM_CHECK(conn.ok());
    (void)conn->SetNoDelay(true);
    std::vector<uint8_t> buffer;
    for (int i = 0; i < options.iterations; ++i) {
      uint32_t length = 0;
      const auto status = rsf::net::ReadFrame(
          *conn,
          [&](uint32_t len) {
            buffer.resize(len);
            return buffer.data();
          },
          &length);
      if (!status.ok()) return;
      const uint64_t nanos = Adapter::Access(buffer.data(), length);
      std::lock_guard<std::mutex> lock(mutex);
      recorder.AddNanos(nanos);
    }
  });

  auto conn = rsf::net::TcpConnection::Connect("127.0.0.1", listener->port());
  SFM_CHECK(conn.ok());
  (void)conn->SetNoDelay(true);
  rsf::Rate rate(options.hz);
  for (int i = 0; i < options.iterations; ++i) {
    const auto wire =
        Adapter::MakeWire(width, height, static_cast<uint32_t>(i));
    SFM_CHECK(rsf::net::WriteFrame(*conn, wire).ok());
    rate.Sleep();
  }
  receiver.join();
  std::lock_guard<std::mutex> lock(mutex);
  return recorder;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  if (!options.full && options.iterations > 60) {
    options.iterations = 60;
    options.hz = 30.0;
  }
  rsf::SetLogLevel(rsf::LogLevel::kError);

  constexpr uint32_t kWidth = 1920;
  constexpr uint32_t kHeight = 1080;  // the paper's 6MB configuration

  std::printf("=== Fig. 14: intra-machine latency at 6MB across middleware "
              "===\n(%d messages per system)\n\n",
              options.iterations);

  const auto ros =
      bench::RunPubSub<sensor_msgs::Image>(kWidth, kHeight, options);
  const auto rossf =
      bench::RunPubSub<sensor_msgs::sfm::Image>(kWidth, kHeight, options);
  const auto proto = RunRaw<ProtoAdapter>(kWidth, kHeight, options);
  const auto flatbuf = RunRaw<FlatBufAdapter>(kWidth, kHeight, options);
  const auto rti = RunRaw<RtiAdapter>(kWidth, kHeight, options);
  const auto flatdata = RunRaw<FlatDataAdapter>(kWidth, kHeight, options);

  struct Row {
    const char* name;
    const rsf::LatencyRecorder* recorder;
  };
  const Row rows[] = {
      {"ROS", &ros},         {"ROS-SF", &rossf},
      {"ProtoBuf", &proto},  {"FlatBuf", &flatbuf},
      {"RTI", &rti},         {"RTI-FlatData", &flatdata},
  };
  for (const auto& row : rows) {
    std::printf("  %-14s mean %8.3f ms   sd %7.3f   p50 %8.3f\n", row.name,
                row.recorder->mean_ms(), row.recorder->stddev_ms(),
                row.recorder->Percentile(0.5));
  }

  std::printf("\n  pair gaps (serializing - serialization-free):\n");
  std::printf("    ROS      - ROS-SF       : %8.3f ms\n",
              ros.mean_ms() - rossf.mean_ms());
  std::printf("    ProtoBuf - FlatBuf      : %8.3f ms\n",
              proto.mean_ms() - flatbuf.mean_ms());
  std::printf("    RTI      - RTI-FlatData : %8.3f ms\n",
              rti.mean_ms() - flatdata.mean_ms());
  return 0;
}
