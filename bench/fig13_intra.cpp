// Reproduces paper Fig. 13: intra-machine transmission latency of ROS vs
// ROS-SF over loopback TCP for three image sizes (~200KB / ~1MB / ~6MB).
//
// Expected shape (paper §5.1): ROS-SF is faster at every size, the gap
// grows with message size (serialization + de-serialization are O(bytes)),
// reaching roughly a 76% reduction at 6MB.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const auto options = bench::Options::Parse(argc, argv);
  rsf::SetLogLevel(rsf::LogLevel::kError);

  std::printf("=== Fig. 13: intra-machine latency, ROS vs ROS-SF ===\n");
  std::printf("(%d messages per cell at %.0f Hz%s)\n\n", options.iterations,
              options.hz, options.full ? ", paper-scale" : "");

  for (const auto& size : bench::kPaperSizes) {
    const auto ros = bench::RunPubSub<sensor_msgs::Image>(
        size.width, size.height, options);
    const auto rossf = bench::RunPubSub<sensor_msgs::sfm::Image>(
        size.width, size.height, options);
    bench::PrintRow("ROS", size.label, ros);
    bench::PrintRow("ROS-SF", size.label, rossf);
    bench::PrintReduction(ros.mean_ms(), rossf.mean_ms());
    std::printf("\n");
  }
  return 0;
}
