// Reproduces paper Fig. 13: intra-machine transmission latency of ROS vs
// ROS-SF for four image sizes (~200KB / ~1MB / ~4MB / ~6MB), and extends it
// with the in-process transport the paper motivates: when publisher and
// subscriber share a process, connect-time negotiation replaces loopback
// TCP with a direct link — a whole-copy tier (one clone per publish) and a
// zero-copy tier (subscribers alias the published message).
//
// Expected shape (paper §5.1): ROS-SF beats ROS at every size and the gap
// grows with message size (serialization is O(bytes)); the in-process tiers
// then beat loopback TCP by >=10x at 4MB, with zero-copy staying near-flat
// across sizes (latency no longer scales with the payload).
//
// Prints a table and writes BENCH_fig13.json into the working directory.
#include <vector>

#include "bench/bench_util.h"

namespace {

struct Cell {
  const char* system;
  const char* transport;
  rsf::LatencyRecorder recorder;   // stamp-to-callback (incl. construction)
  rsf::LatencyRecorder transport_only;  // publish-call-to-callback
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::Options::Parse(argc, argv);
  rsf::SetLogLevel(rsf::LogLevel::kError);

  // The paper's three sizes plus ~4MB, where the in-process speedup target
  // (>=10x over loopback TCP) is asserted.
  constexpr bench::ImageSize kSizes[] = {
      {"~200KB (256x256x24b)", 256, 256},
      {"~1MB (800x600x24b)", 800, 600},
      {"~4MB (1344x1024x24b)", 1344, 1024},
      {"~6MB (1920x1080x24b)", 1920, 1080},
  };

  std::printf("=== Fig. 13: intra-machine latency, ROS vs ROS-SF ===\n");
  std::printf("(%d messages per cell at %.0f Hz%s)\n\n", options.iterations,
              options.hz, options.full ? ", paper-scale" : "");

  FILE* json = std::fopen("BENCH_fig13.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig13_intra\",\n"
                 "  \"unit\": \"publish-to-callback latency, ms\",\n"
                 "  \"iterations\": %d,\n"
                 "  \"hz\": %.1f,\n"
                 "  \"results\": [",
                 options.iterations, options.hz);
  }

  bool first_row = true;
  for (const auto& size : kSizes) {
    using bench::Transport;
    std::vector<Cell> cells;
    const auto run = [&](const char* system, const char* label, auto tag,
                         Transport transport) {
      using ImageT = typename decltype(tag)::type;
      Cell cell{system, label, {}, {}};
      cell.recorder = bench::RunPubSub<ImageT>(
          size.width, size.height, options, {}, transport,
          &cell.transport_only);
      cells.push_back(cell);
    };
    struct RegularTag { using type = sensor_msgs::Image; };
    struct SfmTag { using type = sensor_msgs::sfm::Image; };
    run("ROS", "tcp", RegularTag{}, Transport::kTcp);
    run("ROS-SF", "tcp", SfmTag{}, Transport::kTcp);
    run("ROS-SF", "intra-whole-copy", SfmTag{}, Transport::kIntraWholeCopy);
    run("ROS-SF", "intra-zero-copy", SfmTag{}, Transport::kIntraZeroCopy);

    const double ros_tcp = cells[0].recorder.mean_ms();
    const double rossf_tcp = cells[1].recorder.mean_ms();
    const double zero_copy = cells[3].recorder.mean_ms();
    const size_t bytes = static_cast<size_t>(size.width) * size.height * 3;

    std::printf("%s (%zu bytes)\n", size.label, bytes);
    for (const auto& cell : cells) {
      char label[48];
      std::snprintf(label, sizeof(label), "%s/%s", cell.system,
                    cell.transport);
      bench::PrintRow(cell.system, label, cell.recorder);
      std::printf("           %-22s transport-only mean %8.3f ms\n", "",
                  cell.transport_only.mean_ms());
      if (json != nullptr) {
        std::fprintf(
            json,
            "%s\n    {\"size\": \"%s\", \"bytes\": %zu, \"system\": \"%s\", "
            "\"transport\": \"%s\", \"mean_ms\": %.4f, \"stddev_ms\": %.4f, "
            "\"p50_ms\": %.4f, \"transport_mean_ms\": %.4f, "
            "\"transport_p50_ms\": %.4f, \"n\": %llu}",
            first_row ? "" : ",", size.label, bytes, cell.system,
            cell.transport, cell.recorder.mean_ms(),
            cell.recorder.stddev_ms(), cell.recorder.Percentile(0.5),
            cell.transport_only.mean_ms(),
            cell.transport_only.Percentile(0.5),
            static_cast<unsigned long long>(cell.recorder.count()));
        first_row = false;
      }
    }
    bench::PrintReduction(ros_tcp, rossf_tcp);
    std::printf(
        "  => in-process zero-copy is %.1fx faster than ROS-SF/tcp "
        "(%.1fx vs ROS/tcp); transport-only %.1fx vs ROS-SF/tcp\n\n",
        rossf_tcp / zero_copy, ros_tcp / zero_copy,
        cells[1].transport_only.mean_ms() /
            cells[3].transport_only.mean_ms());
  }

  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("  wrote BENCH_fig13.json\n");
  }
  return 0;
}
