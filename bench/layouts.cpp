// Reproduces the paper's memory-layout figures on the running example (the
// simplified Image of Fig. 1 with encoding="rgb8", height=width=10, and 300
// data bytes):
//
//   Fig. 5  XCDR2 / FlatData parameter-list layout
//   Fig. 6  FlatBuffer vtable + root-table layout
//   Fig. 7  SFM skeleton layout (printed from the actual live arena)
//
// The byte values printed here are asserted in the unit tests; this binary
// exists so the tables can be eyeballed against the paper.
#include <cstdio>
#include <filesystem>

#include "common/endian.h"
#include "gen/layout.h"
#include "idl/registry.h"
#include "paper_msgs/sfm/Image.h"
#include "serialization/flatbuf_mini.h"
#include "serialization/xcdr2.h"
#include "sfm/sfm.h"

namespace {

std::string FindDir(const char* name) {
  namespace fs = std::filesystem;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    const std::string candidate = std::string(prefix) + name;
    std::error_code ec;
    if (fs::is_directory(candidate, ec)) return candidate;
  }
  return name;
}

void DumpWords(const uint8_t* data, size_t begin, size_t end,
               const char* note_at_begin) {
  std::printf("    %s\n", note_at_begin);
  for (size_t at = begin; at + 4 <= end; at += 4) {
    std::printf("    0x%04zx  %02x %02x %02x %02x   (u32 %u)\n", at, data[at],
                data[at + 1], data[at + 2], data[at + 3],
                rsf::LoadLE<uint32_t>(data + at));
  }
}

}  // namespace

int main() {
  // ---- Fig. 5: XCDR2 (member indexes as in the figure) ----
  std::printf("=== Fig. 5: XCDR2 / FlatData layout of the Image example "
              "===\n");
  {
    rsf::ser::xcdr2::Builder builder;
    builder.AddString(2, "rgb8");
    builder.AddScalar<uint32_t>(0, 10);
    builder.AddScalar<uint32_t>(1, 10);
    std::vector<uint8_t> pixels(300, 0);
    builder.AddVector(3, pixels.data(), pixels.size());
    const auto buffer = builder.Finish();
    std::printf("  total size: 0x%04zx (%zu) bytes — paper: 0x0154\n",
                buffer.size(), buffer.size());
    DumpWords(buffer.data(), 0x0000, 0x0010,
              "encoding: EMHEADER 0x40000002, length 8, \"rgb8\\0...\"");
    DumpWords(buffer.data(), 0x0010, 0x0020,
              "height/width: EMHEADER 0x2000000x, value 10");
    DumpWords(buffer.data(), 0x0020, 0x0028,
              "data: EMHEADER 0x40000003, length 300, then 300 bytes");
  }

  // ---- Fig. 6: FlatBuffer ----
  std::printf("\n=== Fig. 6: FlatBuffer layout of the Image example ===\n");
  {
    namespace fb = rsf::ser::fb;
    fb::Builder builder;
    const auto encoding = builder.CreateString("rgb8");
    std::vector<uint8_t> pixels(300, 0);
    const auto data = builder.CreateVector(pixels.data(), pixels.size());
    builder.StartTable(4);
    builder.AddRef(0, encoding);
    builder.AddScalar<uint32_t>(1, 10);
    builder.AddScalar<uint32_t>(2, 10);
    builder.AddRef(3, data);
    const auto root = builder.FinishTable();
    const auto buffer = builder.Finish(root);

    const auto root_pos = rsf::LoadLE<uint32_t>(buffer.data());
    const auto vtable_pos =
        root_pos + rsf::LoadLE<int32_t>(buffer.data() + root_pos);
    std::printf("  total size: %zu bytes; root table at 0x%04x, vtable at "
                "0x%04x\n",
                buffer.size(), root_pos, vtable_pos);
    std::printf("  vtable: size %u, table size %u, slot offsets:",
                rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos),
                rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos + 2));
    for (int slot = 0; slot < 4; ++slot) {
      std::printf(" %u",
                  rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos + 4 +
                                        2 * slot));
    }
    std::printf("\n");
    DumpWords(buffer.data(), root_pos, root_pos + 20,
              "root table: vtable offset, then field slots");
    std::printf("  (fields reachable only through the vtable indirection — "
                "the transparency failure of §3.3)\n");
  }

  // ---- Fig. 7: SFM, from a real arena ----
  std::printf("\n=== Fig. 7: SFM layout of the Image example (live arena) "
              "===\n");
  {
    auto img = sfm::make_message<paper_msgs::sfm::Image>();
    img->encoding = "rgb8";
    img->height = 10;
    img->width = 10;
    img->data.resize(300);
    const auto info = sfm::gmm().Find(img.get());
    SFM_CHECK(info.has_value());
    std::printf("  whole message: %zu bytes (paper: 0x014c = 332)\n",
                info->size);
    const auto* bytes = info->start;
    DumpWords(bytes, 0x0000, 0x0008,
              "encoding skeleton: length 8, offset 20 (content at 0x0018)");
    DumpWords(bytes, 0x0008, 0x0010, "height 10, width 10");
    DumpWords(bytes, 0x0010, 0x0018,
              "data skeleton: length 300, offset 12 (content at 0x0020)");
    std::printf("    0x0018  '%c%c%c%c'        encoding content\n", bytes[0x18],
                bytes[0x19], bytes[0x1a], bytes[0x1b]);
  }

  // ---- the generator's static layout table ----
  rsf::idl::SpecRegistry registry;
  if (registry.LoadDirectory(FindDir("msgs")).ok()) {
    const auto layout =
        rsf::gen::ComputeSfmLayout(registry, "paper_msgs/Image");
    if (layout.ok()) {
      std::printf("\n%s",
                  rsf::gen::RenderLayoutTable(*layout, "paper_msgs/Image")
                      .c_str());
    }
  }
  return 0;
}
