// Reproduces paper Table 1: the applicability study.  Synthesizes the
// corpus population (103 files mirroring the official-ROS-package usage
// patterns; see src/converter/corpus_synth.h), runs the ROS-SF Converter's
// assumption checker over it, and prints the per-class verdict counts next
// to the paper's values.  Also analyzes the hand-written corpus/ directory,
// which contains the paper's three failure cases verbatim.
#include <cstdio>
#include <filesystem>

#include "converter/checker.h"
#include "converter/corpus_synth.h"
#include "idl/registry.h"

namespace {

std::string FindDir(const char* name) {
  namespace fs = std::filesystem;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    const std::string candidate = std::string(prefix) + name;
    std::error_code ec;
    if (fs::is_directory(candidate, ec)) return candidate;
  }
  return name;
}

}  // namespace

int main() {
  using namespace rsf::conv;

  rsf::idl::SpecRegistry registry;
  const auto status = registry.LoadDirectory(FindDir("msgs"));
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load message IDL: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const TypeTable types = TypeTable::FromRegistry(registry);

  std::printf("=== Table 1: applicability study ===\n\n");

  const std::string corpus_dir = "table1_corpus";
  SFM_CHECK(SynthesizeCorpus(corpus_dir).ok());
  auto reports = AnalyzeDirectory(corpus_dir, types);
  SFM_CHECK(reports.ok());

  const std::vector<std::string> classes = {
      "sensor_msgs/Image", "sensor_msgs/CompressedImage",
      "sensor_msgs/PointCloud", "sensor_msgs/PointCloud2",
      "sensor_msgs/LaserScan"};
  const auto rows = AggregateTable(*reports, classes);

  std::printf("measured over the synthesized corpus (%zu files):\n%s\n",
              reports->size(), RenderTable(rows).c_str());

  std::printf("paper Table 1 (expected):\n%s\n",
              RenderTable(Table1Expected()).c_str());

  bool match = true;
  const auto expected = Table1Expected();
  for (size_t i = 0; i < rows.size(); ++i) {
    match = match && rows[i].total == expected[i].total &&
            rows[i].applicable == expected[i].applicable &&
            rows[i].string_reassignment == expected[i].string_reassignment &&
            rows[i].vector_multi_resize == expected[i].vector_multi_resize &&
            rows[i].other_methods == expected[i].other_methods;
  }
  std::printf("reproduction: %s\n\n", match ? "EXACT MATCH" : "MISMATCH");
  std::filesystem::remove_all(corpus_dir);

  // Hand-written corpus: the paper's Figs. 19-21 failure cases.
  auto hand = AnalyzeDirectory(FindDir("corpus"), types);
  if (hand.ok()) {
    std::printf("hand-written corpus (paper failure cases):\n");
    for (const auto& [file, report] : *hand) {
      std::printf("  %-55s %s\n", file.c_str(),
                  report.findings.empty() ? "applicable" : "violations:");
      for (const auto& finding : report.findings) {
        std::printf("      line %3d  %-22s %s\n", finding.line,
                    FindingKindName(finding.kind), finding.path.c_str());
      }
    }
  }
  return 0;
}
