// Reproduces paper Fig. 18: the ORB-SLAM application case study — overall
// latency from input-image creation to the arrival of each output (pose,
// point cloud, debug image), for ROS vs ROS-SF.
//
// Topology (paper Fig. 17): pub_tum -> orb_slam -> {pose, cloud, debug}
// sinks.  The SLAM compute (tuned to the paper's reported 30-40 ms via the
// pipeline's work_factor) dominates, so the expected improvement is modest:
// the paper reports ~5%.
#include "bench/bench_util.h"
#include <algorithm>

#include "slam/nodes.h"

namespace {

struct CaseResult {
  rsf::LatencyRecorder pose;
  rsf::LatencyRecorder cloud;
  rsf::LatencyRecorder debug;
  double compute_ms = 0;
};

template <typename Msgs>
void RunRound(int frames, double hz, int work_factor, CaseResult* result) {
  ros::master().Reset();
  {
    typename rsf::slam::SlamNode<Msgs>::Config config;
    config.slam.work_factor = work_factor;
    rsf::slam::SlamNode<Msgs> slam(config);
    rsf::slam::LatencySinkNode<typename Msgs::PoseStamped> pose_sink(
        "pose_sink", "/pose");
    rsf::slam::LatencySinkNode<typename Msgs::PointCloud2> cloud_sink(
        "cloud_sink", "/pointcloud");
    rsf::slam::LatencySinkNode<typename Msgs::Image> debug_sink(
        "debug_sink", "/debug_image");
    rsf::slam::TumPublisherNode<Msgs> source(640, 480);

    bench::WaitFor([&] { return source.NumSubscribers() == 1; });

    rsf::Rate rate(hz);
    double compute_total = 0;
    for (int i = 0; i < frames; ++i) {
      source.PublishOne();
      bench::WaitFor([&] {
        return debug_sink.count() >= static_cast<uint64_t>(i + 1) &&
               cloud_sink.count() >= static_cast<uint64_t>(i + 1) &&
               pose_sink.count() >= static_cast<uint64_t>(i + 1);
      });
      compute_total += slam.last_compute_millis();
      rate.Sleep();
    }
    const auto pose_snap = pose_sink.snapshot();
    const auto cloud_snap = cloud_sink.snapshot();
    const auto debug_snap = debug_sink.snapshot();
    for (const double ms : pose_snap.samples()) result->pose.AddMillis(ms);
    for (const double ms : cloud_snap.samples()) result->cloud.AddMillis(ms);
    for (const double ms : debug_snap.samples()) result->debug.AddMillis(ms);
    result->compute_ms += compute_total / frames;
  }
  ros::master().Reset();
}

void PrintCase(const char* name, const CaseResult& result) {
  std::printf("  %-7s pose        mean %7.3f ms  sd %6.3f\n", name,
              result.pose.mean_ms(), result.pose.stddev_ms());
  std::printf("  %-7s point cloud mean %7.3f ms  sd %6.3f\n", name,
              result.cloud.mean_ms(), result.cloud.stddev_ms());
  std::printf("  %-7s debug image mean %7.3f ms  sd %6.3f\n", name,
              result.debug.mean_ms(), result.debug.stddev_ms());
  std::printf("  %-7s (SLAM compute per frame: %.1f ms)\n\n", name,
              result.compute_ms);
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::Options::Parse(argc, argv);
  const int frames = options.full ? 400 : 80;
  rsf::SetLogLevel(rsf::LogLevel::kError);

  // Calibrate work_factor so SLAM compute lands in the paper's 30-40 ms.
  int work_factor = 1;
  {
    // Probe steady-state frames (the first has no previous frame to match
    // against, so it under-reports); take the median of a few.
    rsf::slam::FrameGenerator gen(640, 480);
    rsf::slam::OrbSlamLite::Config probe_config;
    probe_config.work_factor = 1;
    rsf::slam::OrbSlamLite probe(probe_config);
    std::vector<double> costs;
    for (int i = 0; i < 5; ++i) {
      const auto frame = gen.Next();
      costs.push_back(
          probe.ProcessFrame(frame.gray.data(), 640, 480).compute_millis);
    }
    std::sort(costs.begin(), costs.end());
    const double one_pass = costs[costs.size() / 2];
    // Extra passes add detection only (~60% of a full pass); solve
    // one_pass * (1 + 0.6*(wf-1)) ~= 35ms.
    work_factor =
        one_pass > 0.1
            ? std::max(1, static_cast<int>((35.0 / one_pass - 1.0) / 0.6) + 1)
            : 8;
  }

  std::printf("=== Fig. 18: ORB-SLAM case study, overall latency ===\n"
              "(%d frames at 10 Hz, 640x480 RGB, work_factor=%d)\n\n",
              frames, work_factor);

  // Interleave the two variants in rounds so slow machine-state drift
  // (thermal / background load) hits both equally.
  constexpr int kRounds = 4;
  CaseResult ros;
  CaseResult rossf;
  for (int round = 0; round < kRounds; ++round) {
    RunRound<rsf::slam::RegularMsgs>(frames / kRounds, 10.0, work_factor,
                                     &ros);
    RunRound<rsf::slam::SfmMsgs>(frames / kRounds, 10.0, work_factor, &rossf);
  }
  ros.compute_ms /= kRounds;
  rossf.compute_ms /= kRounds;

  PrintCase("ROS", ros);
  PrintCase("ROS-SF", rossf);

  const auto reduce = [](double a, double b) { return (1.0 - b / a) * 100.0; };
  std::printf("  overall latency reduction by ROS-SF: pose %.1f%%, "
              "cloud %.1f%%, debug %.1f%%\n",
              reduce(ros.pose.mean_ms(), rossf.pose.mean_ms()),
              reduce(ros.cloud.mean_ms(), rossf.cloud.mean_ms()),
              reduce(ros.debug.mean_ms(), rossf.debug.mean_ms()));
  return 0;
}
