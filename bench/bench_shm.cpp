// Shared-memory transport tier bench (DESIGN.md §12): TRUE cross-process
// publish-to-callback latency, shm descriptors vs inline loopback TCP, with
// the in-process intra zero-copy tier as the floor reference.
//
// Topology: this process publishes sensor_msgs/sfm/Image; a fork+exec'd
// copy of this binary subscribes (its own master registry is seeded with
// the parent's listener endpoint).  The stamp is written immediately before
// publish, so the recorded number is the transport alone: descriptor
// encode, socket hop, map + fence + adopt on the shm tier; serialize-free
// but full-payload write/read/copy on the TCP tier.
//
// Expected shape: shm latency is near-flat in payload size (a 48-byte
// descriptor crosses the socket regardless of the image), while loopback
// TCP grows with the payload; at 4MB the shm row should sit well under
// 0.5 ms and within ~5x of the in-process zero-copy floor.
//
// Prints a table and writes BENCH_shm.json.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sfm/shm_pool.h"

namespace {

using Image = sensor_msgs::sfm::Image;

constexpr const char* kChildFlag = "--shm-sub-child";
constexpr const char* kTopic = "/shm_bench";

struct SizeSpec {
  const char* label;
  uint32_t width;
  uint32_t height;
};
// The acceptance sweep: threshold edge, the paper's 200KB point, mid, and
// the "flat in size" witnesses at 4MB / 6MB.
inline constexpr SizeSpec kSizes[] = {
    {"64KB", 148, 148},    {"200KB", 256, 256},   {"512KB", 418, 418},
    {"4MB", 1183, 1183},   {"6MB", 1920, 1080},
};

struct Row {
  std::string transport;
  std::string size_label;
  size_t payload_bytes = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t samples = 0;
  uint64_t shm_zero_copy = 0;  // deliveries that rode a descriptor
};

/// Child mode: subscribe through the wire to the parent's publisher,
/// record stamp-to-callback latency for `iterations` messages, print one
/// machine-readable ROW line, exit.  RSF_TRANSPORT_SHM is inherited from
/// the parent and decides the tier.
int RunSubChild(uint16_t parent_port, int iterations) {
  const auto status = ros::master().RegisterPublisher(
      kTopic, Image::DataType(), ros::TransportChecksum<Image>(),
      ros::TopicEndpoint{"127.0.0.1", parent_port, "parent"});
  if (!status.ok()) return 2;

  static std::mutex mutex;
  static rsf::LatencyRecorder recorder;
  static std::atomic<uint64_t> got{0};

  ros::NodeHandle node("shm_bench_sub");
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto sub = node.subscribe<Image>(
      kTopic, 32,
      std::function<void(const Image::ConstPtr&)>(
          [](const Image::ConstPtr& msg) {
            const uint64_t nanos = rsf::ElapsedSince(msg->header.stamp);
            // Touch the payload the way a consumer would.
            const volatile uint8_t probe = msg->data[msg->data.size() - 1];
            (void)probe;
            std::lock_guard<std::mutex> lock(mutex);
            recorder.AddNanos(nanos);
            got.fetch_add(1, std::memory_order_relaxed);
          }),
      options);

  const uint64_t deadline = rsf::MonotonicNanos() + 60'000'000'000ull;
  while (got.load() < static_cast<uint64_t>(iterations) &&
         rsf::MonotonicNanos() < deadline) {
    rsf::SleepForNanos(1'000'000);
  }

  std::lock_guard<std::mutex> lock(mutex);
  std::printf("ROW %llu %.6f %.6f %.6f %llu\n",
              static_cast<unsigned long long>(recorder.count()),
              recorder.mean_ms(), recorder.Percentile(0.5),
              recorder.Percentile(0.99),
              static_cast<unsigned long long>(sub.shmZeroCopyCount()));
  std::fflush(stdout);
  return recorder.count() > 0 ? 0 : 3;
}

/// Parent side of one cross-process cell: fork+exec the subscriber child
/// with RSF_TRANSPORT_SHM already set to `shm_env`, stream stamped images
/// at it until it has its samples, and collect its ROW.
bool RunCrossProcessCell(const char* self_exe, const char* transport,
                         const char* shm_env, const SizeSpec& size,
                         const bench::Options& options, Row* out) {
  ::setenv("RSF_TRANSPORT_SHM", shm_env, 1);
  ros::master().Reset();
  sfm::shm::ResetPoolForTest();  // fresh pool + negotiation flag per cell

  ros::NodeHandle node("shm_bench_pub");
  auto pub = node.advertise<Image>(kTopic, 32);
  const auto endpoints = ros::master().PublishersOf(kTopic);
  if (endpoints.size() != 1) return false;

  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const std::string port = std::to_string(endpoints[0].port);
    const std::string iters = std::to_string(options.iterations);
    ::execl(self_exe, self_exe, kChildFlag, port.c_str(), iters.c_str(),
            (char*)nullptr);
    std::perror("execl");
    _exit(127);
  }
  ::close(fds[1]);

  // Publish paced messages until the child has its samples and exits; the
  // +25% margin absorbs warmup and any drop-oldest evictions.
  bench::WaitFor([&] { return pub.getNumSubscribers() == 1; });
  rsf::Rate rate(options.hz);
  const int max_publishes = options.iterations + options.iterations / 4 + 64;
  int child_status = 0;
  bool child_done = false;
  for (int i = 0; i < max_publishes && !child_done; ++i) {
    auto msg = rsf::slam::NewMessage<Image>();
    bench::FillImage(*msg, size.width, size.height,
                     static_cast<uint32_t>(i));
    msg->header.stamp = rsf::Time::Now();  // transport-only stamp
    pub.publish(*msg);
    rate.Sleep();
    child_done = ::waitpid(pid, &child_status, WNOHANG) == pid;
  }

  FILE* stream = ::fdopen(fds[0], "r");
  char line[256];
  bool parsed = false;
  while (stream != nullptr && std::fgets(line, sizeof(line), stream)) {
    unsigned long long samples = 0;
    unsigned long long zero_copy = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    if (std::sscanf(line, "ROW %llu %lf %lf %lf %llu", &samples, &mean, &p50,
                    &p99, &zero_copy) == 5) {
      *out = {transport, size.label,
              static_cast<size_t>(size.width) * size.height * 3,
              mean,      p50,
              p99,       samples,
              zero_copy};
      parsed = true;
    } else {
      std::fputs(line, stderr);  // forward child diagnostics
    }
  }
  if (stream != nullptr) std::fclose(stream);
  if (!child_done) ::waitpid(pid, &child_status, 0);

  // The child unlinks nothing (it only attaches); drop our own segments so
  // the next cell starts clean and /dev/shm ends empty.
  sfm::shm::ResetPoolForTest();
  return parsed && WIFEXITED(child_status) && WEXITSTATUS(child_status) == 0;
}

/// In-process zero-copy floor for the same payload (publish-to-callback).
Row RunIntraReference(const SizeSpec& size, const bench::Options& options) {
  ::setenv("RSF_TRANSPORT_SHM", "0", 1);
  rsf::LatencyRecorder transport;
  bench::RunPubSub<Image>(size.width, size.height, options, {},
                          bench::Transport::kIntraZeroCopy, &transport);
  return {"intra-zero-copy",
          size.label,
          static_cast<size_t>(size.width) * size.height * 3,
          transport.mean_ms(),
          transport.Percentile(0.5),
          transport.Percentile(0.99),
          transport.count(),
          0};
}

void PrintRow(const Row& row) {
  std::printf("  %-16s %-7s %12zu %10.3f %10.3f %10.3f %8llu %10llu\n",
              row.transport.c_str(), row.size_label.c_str(),
              row.payload_bytes, row.mean_ms, row.p50_ms, row.p99_ms,
              static_cast<unsigned long long>(row.samples),
              static_cast<unsigned long long>(row.shm_zero_copy));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], kChildFlag) == 0) {
    return RunSubChild(static_cast<uint16_t>(std::atoi(argv[2])),
                       std::atoi(argv[3]));
  }

  bench::Options options = bench::Options::Parse(argc, argv);
  if (!options.full) {
    options.iterations = 120;
    options.hz = 200.0;
  }
  rsf::SetLogLevel(rsf::LogLevel::kError);

  char self_exe[4096] = {0};
  if (::readlink("/proc/self/exe", self_exe, sizeof(self_exe) - 1) <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 1;
  }

  std::printf(
      "=== Shm tier: cross-process publish-to-callback latency, "
      "%d samples per cell ===\n"
      "    (subscriber is a separate exec'd process; 'shm' crosses a "
      "48-byte descriptor, 'tcp' the full payload)\n\n",
      options.iterations);
  std::printf("  %-16s %-7s %12s %10s %10s %10s %8s %10s\n", "transport",
              "size", "bytes", "mean (ms)", "p50 (ms)", "p99 (ms)", "n",
              "shm deliv");

  std::vector<Row> rows;
  bool ok = true;
  for (const auto& size : kSizes) {
    Row shm_row;
    Row tcp_row;
    if (!RunCrossProcessCell(self_exe, "shm", "1", size, options, &shm_row) ||
        !RunCrossProcessCell(self_exe, "tcp", "0", size, options, &tcp_row)) {
      std::fprintf(stderr, "cell %s failed\n", size.label);
      ok = false;
      continue;
    }
    const Row intra_row = RunIntraReference(size, options);
    rows.push_back(shm_row);
    rows.push_back(tcp_row);
    rows.push_back(intra_row);
    PrintRow(shm_row);
    PrintRow(tcp_row);
    PrintRow(intra_row);
    if (shm_row.mean_ms > 0) {
      std::printf(
          "  => tcp/shm mean ratio %.2fx, shm over intra floor %.2fx\n\n",
          tcp_row.mean_ms / shm_row.mean_ms,
          intra_row.mean_ms > 0 ? shm_row.mean_ms / intra_row.mean_ms : 0.0);
    }
  }
  ::unsetenv("RSF_TRANSPORT_SHM");

  FILE* json = std::fopen("BENCH_shm.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"bench_shm\",\n"
        "  \"unit\": \"cross-process publish-to-callback latency, "
        "milliseconds (stamp written immediately before publish)\",\n"
        "  \"topology\": \"publisher in this process, subscriber fork+exec'd; "
        "intra-zero-copy rows are the in-process floor for comparison\",\n"
        "  \"iterations\": %d,\n  \"results\": [\n",
        options.iterations);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"transport\": \"%s\", \"size\": \"%s\", "
                   "\"payload_bytes\": %zu, \"mean_ms\": %.6f, "
                   "\"p50_ms\": %.6f, \"p99_ms\": %.6f, \"samples\": %llu, "
                   "\"shm_zero_copy_deliveries\": %llu}%s\n",
                   row.transport.c_str(), row.size_label.c_str(),
                   row.payload_bytes, row.mean_ms, row.p50_ms, row.p99_ms,
                   static_cast<unsigned long long>(row.samples),
                   static_cast<unsigned long long>(row.shm_zero_copy),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_shm.json\n");
  }
  return ok ? 0 : 1;
}
