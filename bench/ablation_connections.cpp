// Ablation: connection scaling on the reactor transport (src/net/poller.h,
// src/net/link.h).  One publisher fans a message out to N TCP subscriber
// links (in-process transport disabled, so every delivery crosses a real
// loopback socket) for N in {1, 8, 64, 256}; each configuration records
// the process thread count at steady state and the p50/p99
// publish-to-last-delivery latency.
//
// The claim under test: transport threads stay O(cores) no matter how many
// links exist, without regressing latency at small link counts.  The
// thread-per-connection transport this used to ablate against was removed
// in PR 4 (it paid one sender on the publisher plus one reader on the
// subscriber PER LINK); its historical rows are preserved in
// EXPERIMENTS.md.
//
// Prints a table and writes BENCH_connections.json.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/poller.h"
#include "ros/ros.h"
#include "std_msgs/String.h"

namespace {

size_t CountProcessThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 20'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(200'000);
  }
  return predicate();
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      fraction * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct Row {
  const char* mode;
  size_t links;
  size_t threads_total;
  double p50_us;
  double p99_us;
};

struct Config {
  size_t payload_bytes = 4096;
  int iterations = 200;
  int warmup = 10;
};

/// One configuration: N wire subscribers on one topic, `iterations`
/// stop-and-wait fan-outs.  Latency per iteration = publish() to the LAST
/// subscriber's callback.
Row RunConfig(const char* mode, size_t links, const Config& config) {
  ros::NodeHandle pub_node("bench_pub");
  ros::NodeHandle sub_node("bench_sub");
  const std::string topic =
      "/conn_scaling_" + std::string(mode) + "_" + std::to_string(links);
  auto pub = pub_node.advertise<std_msgs::String>(topic, 10);

  std::atomic<uint64_t> delivered{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;        // latency measured at the callback
  options.allow_intra_process = false;   // force the wire
  std::vector<ros::Subscriber> subs;
  subs.reserve(links);
  for (size_t i = 0; i < links; ++i) {
    subs.push_back(sub_node.subscribe<std_msgs::String>(
        topic, 10,
        [&](const std_msgs::String::ConstPtr&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        },
        options));
  }
  if (!WaitFor([&] { return pub.getNumSubscribers() == links; })) {
    std::fprintf(stderr, "FATAL: %s/%zu links never all connected\n", mode,
                 links);
    std::exit(1);
  }

  std_msgs::String msg;
  msg.data.assign(config.payload_bytes, 'x');

  std::vector<double> latencies_us;
  latencies_us.reserve(config.iterations);
  uint64_t expected = 0;
  size_t threads_at_steady_state = 0;
  for (int i = -config.warmup; i < config.iterations; ++i) {
    expected += links;
    const rsf::Stopwatch watch;
    pub.publish(msg);
    if (!WaitFor([&] {
          return delivered.load(std::memory_order_relaxed) >= expected;
        })) {
      std::fprintf(stderr, "FATAL: %s/%zu links stalled at iteration %d\n",
                   mode, links, i);
      std::exit(1);
    }
    if (i == 0) threads_at_steady_state = CountProcessThreads();
    if (i >= 0) latencies_us.push_back(watch.ElapsedNanos() * 1e-3);
  }

  return {mode, links, threads_at_steady_state,
          Percentile(latencies_us, 0.50), Percentile(latencies_us, 0.99)};
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      config.iterations = 1000;
    } else if (arg == "--iters" && i + 1 < argc) {
      config.iterations = std::atoi(argv[++i]);
    } else if (arg == "--bytes" && i + 1 < argc) {
      config.payload_bytes = static_cast<size_t>(std::atol(argv[++i]));
    }
  }
  config.iterations = std::max(config.iterations, 1);
  config.payload_bytes = std::max(config.payload_bytes, size_t{1});

  const std::vector<size_t> link_counts = {1, 8, 64, 256};
  std::printf(
      "=== Ablation: connection scaling, %zu-byte payload, %d iterations "
      "===\n\n",
      config.payload_bytes, config.iterations);
  std::printf("  %-10s %-8s %14s %12s %12s\n", "mode", "links",
              "threads total", "p50 (us)", "p99 (us)");

  std::vector<Row> rows;
  for (const size_t links : link_counts) {
    rows.push_back(RunConfig("reactor", links, config));
    const Row& row = rows.back();
    std::printf("  %-10s %-8zu %14zu %12.1f %12.1f\n", row.mode, row.links,
                row.threads_total, row.p50_us, row.p99_us);
    ros::master().Reset();
  }

  FILE* json = std::fopen("BENCH_connections.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ablation_connections\",\n"
                 "  \"unit\": \"publish-to-last-delivery latency, "
                 "microseconds\",\n"
                 "  \"payload_bytes\": %zu,\n  \"iterations\": %d,\n"
                 "  \"results\": [\n",
                 config.payload_bytes, config.iterations);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(json,
                   "    {\"mode\": \"%s\", \"links\": %zu, "
                   "\"threads_total\": %zu, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f}%s\n",
                   rows[i].mode, rows[i].links, rows[i].threads_total,
                   rows[i].p50_us, rows[i].p99_us,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\n  wrote BENCH_connections.json\n");
  }
  return 0;
}
