// Ablation: connection scaling on the reactor transport (src/net/poller.h,
// src/net/link.h), per io backend (src/net/io_backend.h).  One publisher
// fans a message out to N TCP subscriber links (in-process transport
// disabled, so every delivery crosses a real loopback socket) for N in
// {1, 64, 256, 1024}; each configuration records the process thread count
// at steady state, the p50/p99 publish-to-last-delivery latency, and —
// from the backend syscall shim counters — transport syscalls per
// delivered message.
//
// The claims under test: transport threads stay O(cores) no matter how
// many links exist, and the uring backend's batched submission cuts
// syscalls per delivery by >=4x at 256 links without regressing p50 at a
// single link.  The thread-per-connection transport this used to ablate
// against was removed in PR 4; its historical rows are preserved in
// EXPERIMENTS.md.
//
// The Reactor binds its io backend once per process, so each backend runs
// in a re-exec'd child (/proc/self/exe with RSF_IO_BACKEND set); the
// parent collects rows over a pipe.  Uring rows are skipped with a printed
// reason when the host refuses io_uring_setup.
//
// Prints a table and writes BENCH_connections.json.
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/io_backend.h"
#include "net/poller.h"
#include "ros/ros.h"
#include "std_msgs/String.h"

namespace {

size_t CountProcessThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 60'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(200'000);
  }
  return predicate();
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      fraction * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct Row {
  std::string backend;
  size_t links = 0;
  size_t threads_total = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double syscalls_per_delivery = 0.0;
};

struct Config {
  size_t payload_bytes = 4096;
  int iterations = 200;
  int warmup = 10;
  size_t only_links = 0;  // 0 = all cells
};

/// One configuration: N wire subscribers on one topic, `iterations`
/// stop-and-wait fan-outs.  Latency per iteration = publish() to the LAST
/// subscriber's callback; syscalls differenced across the measured
/// iterations via the backend shim counters.
Row RunConfig(const std::string& backend, size_t links, const Config& config) {
  ros::NodeHandle pub_node("bench_pub");
  ros::NodeHandle sub_node("bench_sub");
  const std::string topic =
      "/conn_scaling_" + backend + "_" + std::to_string(links);
  auto pub = pub_node.advertise<std_msgs::String>(topic, 10);

  std::atomic<uint64_t> delivered{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;        // latency measured at the callback
  options.allow_intra_process = false;   // force the wire
  std::vector<ros::Subscriber> subs;
  subs.reserve(links);
  for (size_t i = 0; i < links; ++i) {
    subs.push_back(sub_node.subscribe<std_msgs::String>(
        topic, 10,
        [&](const std_msgs::String::ConstPtr&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        },
        options));
  }
  if (!WaitFor([&] { return pub.getNumSubscribers() == links; })) {
    std::fprintf(stderr, "FATAL: %s/%zu links never all connected\n",
                 backend.c_str(), links);
    std::exit(1);
  }

  std_msgs::String msg;
  msg.data.assign(config.payload_bytes, 'x');

  std::vector<double> latencies_us;
  latencies_us.reserve(config.iterations);
  uint64_t expected = 0;
  size_t threads_at_steady_state = 0;
  rsf::net::IoSyscallCounters counters_before{};
  for (int i = -config.warmup; i < config.iterations; ++i) {
    expected += links;
    const rsf::Stopwatch watch;
    pub.publish(msg);
    if (!WaitFor([&] {
          return delivered.load(std::memory_order_relaxed) >= expected;
        })) {
      std::fprintf(stderr, "FATAL: %s/%zu links stalled at iteration %d\n",
                   backend.c_str(), links, i);
      std::exit(1);
    }
    if (i == 0) {
      threads_at_steady_state = CountProcessThreads();
      counters_before = rsf::net::GlobalIoCounters();
    }
    if (i >= 0) latencies_us.push_back(watch.ElapsedNanos() * 1e-3);
  }
  const rsf::net::IoSyscallCounters counters_after =
      rsf::net::GlobalIoCounters();

  const double deliveries =
      static_cast<double>(links) * static_cast<double>(config.iterations);
  const double syscalls = static_cast<double>(
      counters_after.TotalSyscalls() - counters_before.TotalSyscalls());
  return {backend,
          links,
          threads_at_steady_state,
          Percentile(latencies_us, 0.50),
          Percentile(latencies_us, 0.99),
          deliveries > 0.0 ? syscalls / deliveries : 0.0};
}

constexpr const char* kChildFlag = "--backend-child";

/// Child mode: run every link count on the backend the parent selected via
/// RSF_IO_BACKEND, print machine-readable ROW lines on stdout.
int RunChild(const std::string& backend, const std::vector<size_t>& link_counts,
             const Config& config) {
  for (const size_t links : link_counts) {
    if (config.only_links != 0 && links != config.only_links) continue;
    const Row row = RunConfig(backend, links, config);
    std::printf("ROW %s %zu %zu %.1f %.1f %.4f\n", row.backend.c_str(),
                row.links, row.threads_total, row.p50_us, row.p99_us,
                row.syscalls_per_delivery);
    std::fflush(stdout);
    ros::master().Reset();
  }
  return 0;
}

/// Parent side: re-exec ourselves with RSF_IO_BACKEND=<backend> and collect
/// the child's ROW lines.  Returns false if the child failed.
bool RunBackend(const char* self_exe, const std::string& backend,
                const Config& config, std::vector<Row>* rows) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    ::setenv("RSF_IO_BACKEND", backend.c_str(), 1);
    const std::string iters = std::to_string(config.iterations);
    const std::string bytes = std::to_string(config.payload_bytes);
    ::execl(self_exe, self_exe, kChildFlag, backend.c_str(), "--iters",
            iters.c_str(), "--bytes", bytes.c_str(), (char*)nullptr);
    std::perror("execl");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  FILE* stream = ::fdopen(pipe_fds[0], "r");
  char line[256];
  while (stream != nullptr && std::fgets(line, sizeof(line), stream)) {
    Row row;
    char name[32] = {0};
    if (std::sscanf(line, "ROW %31s %zu %zu %lf %lf %lf", name, &row.links,
                    &row.threads_total, &row.p50_us, &row.p99_us,
                    &row.syscalls_per_delivery) == 6) {
      row.backend = name;
      rows->push_back(row);
      std::printf("  %-8s %-8zu %14zu %12.1f %12.1f %18.2f\n",
                  row.backend.c_str(), row.links, row.threads_total,
                  row.p50_us, row.p99_us, row.syscalls_per_delivery);
      std::fflush(stdout);
    } else {
      std::fputs(line, stderr);  // forward child diagnostics
    }
  }
  if (stream != nullptr) std::fclose(stream);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  std::string child_backend;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      config.iterations = 1000;
    } else if (arg == "--iters" && i + 1 < argc) {
      config.iterations = std::atoi(argv[++i]);
    } else if (arg == "--bytes" && i + 1 < argc) {
      config.payload_bytes = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--links" && i + 1 < argc) {
      config.only_links = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == kChildFlag && i + 1 < argc) {
      child_backend = argv[++i];
    }
  }
  config.iterations = std::max(config.iterations, 1);
  config.payload_bytes = std::max(config.payload_bytes, size_t{1});

  const std::vector<size_t> link_counts = {1, 64, 256, 1024};
  if (!child_backend.empty()) {
    return RunChild(child_backend, link_counts, config);
  }

  std::printf(
      "=== Ablation: connection scaling x io backend, %zu-byte payload, "
      "%d iterations ===\n\n",
      config.payload_bytes, config.iterations);
  std::printf("  %-8s %-8s %14s %12s %12s %18s\n", "backend", "links",
              "threads total", "p50 (us)", "p99 (us)", "syscalls/delivery");

  std::vector<Row> rows;
  for (const char* backend : {"epoll", "uring"}) {
    if (std::strcmp(backend, "uring") == 0 && !rsf::net::UringAvailable()) {
      std::printf(
          "  uring    --       io_uring unavailable on this host "
          "(setup probe failed); rows skipped\n");
      continue;
    }
    if (!RunBackend("/proc/self/exe", backend, config, &rows)) {
      std::fprintf(stderr, "FATAL: %s child run failed\n", backend);
      return 1;
    }
  }

  FILE* json = std::fopen("BENCH_connections.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ablation_connections\",\n"
                 "  \"unit\": \"publish-to-last-delivery latency, "
                 "microseconds\",\n"
                 "  \"payload_bytes\": %zu,\n  \"iterations\": %d,\n"
                 "  \"results\": [\n",
                 config.payload_bytes, config.iterations);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(json,
                   "    {\"mode\": \"reactor\", \"backend\": \"%s\", "
                   "\"links\": %zu, \"threads_total\": %zu, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                   "\"syscalls_per_delivery\": %.2f}%s\n",
                   rows[i].backend.c_str(), rows[i].links,
                   rows[i].threads_total, rows[i].p50_us, rows[i].p99_us,
                   rows[i].syscalls_per_delivery,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\n  wrote BENCH_connections.json\n");
  }
  return 0;
}
