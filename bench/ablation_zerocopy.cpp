// Ablation: MSG_ZEROCOPY egress (src/net/socket.h, src/net/framing.h) and
// adaptive send batching (FrameWriter::GatherBudget).
//
// Part 1 — egress tier: SFM image pub/sub over real loopback TCP links at
// three payload sizes (64KB / 512KB / 4MB), three tier policies per cell:
// "copy" (RSF_ZEROCOPY_THRESHOLD=0: classic copying sendmsg), "zerocopy"
// (threshold 64KB, copied-completion auto-park disabled so the pinned path
// stays engaged), and "auto" (the production defaults: threshold 64KB,
// park after 8 copied completions — on loopback this probes briefly, then
// reverts to copy), each over a pure loopback link and a SimLink-shaped
// 10GbE model.  The env knobs are re-read at link creation, so flipping
// them between runs retargets every fresh link.
//
// CAVEAT (also in EXPERIMENTS.md): loopback has no NIC, so the kernel
// completes every MSG_ZEROCOPY send with SO_EE_CODE_ZEROCOPY_COPIED — it
// deferred the copy, it did not elide it.  Numbers here bound the
// bookkeeping overhead of the pinned path; the copy elision itself only
// materializes on hardware with real DMA.  That is exactly why production
// defaults auto-park the tier after repeated copied completions.
//
// Part 2 — batching sweep: a 1024-message burst of small frames down one
// link for RSF_SEND_BATCH_MAX in {8, 16, 64}; reports burst throughput and
// write syscalls per burst (the adaptive gather budget can only grow to the
// configured cap, so the cap IS the ablation knob).
//
// Prints tables and writes BENCH_zerocopy.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/sim_link.h"
#include "sfm/shm_pool.h"
#include "net/socket.h"
#include "std_msgs/String.h"

namespace {

struct EgressRow {
  const char* tier;    // "copy" or "zerocopy"
  const char* shaping; // "loopback" or "10gbe-sim"
  const char* size_label;
  size_t payload_bytes;
  double p50_ms;     // transport-only publish-to-callback latency
  double mean_ms;
  uint64_t zc_sends; // MSG_ZEROCOPY sendmsg calls during the run
  uint64_t zc_bytes; // payload bytes pinned instead of copied
  uint64_t shm_deliveries = 0;  // deliveries that rode a shm descriptor
};

struct BatchRow {
  size_t batch_max;
  size_t messages;
  double msgs_per_sec;
  uint64_t write_syscalls;
};

/// Image dimensions whose rgb8 payload is at least `bytes`.
uint32_t SideFor(size_t bytes) {
  uint32_t side = 1;
  while (static_cast<size_t>(side) * side * 3 < bytes) ++side;
  return side;
}

struct Tier {
  const char* label;
  const char* threshold;     // RSF_ZEROCOPY_THRESHOLD
  const char* copied_limit;  // RSF_ZEROCOPY_COPIED_LIMIT
};
inline constexpr Tier kTiers[] = {
    {"copy", "0", "8"},       // tier off: every frame copies
    {"zerocopy", "65536", "0"},  // pinned on: never auto-park
    {"auto", "65536", "8"},   // production defaults: probe, then park
};

EgressRow RunEgressCell(const Tier& tier, const char* shaping,
                        rsf::net::LinkConfig link, const char* size_label,
                        size_t payload_bytes, const bench::Options& options) {
  // Re-read at link creation (publisher accept path), so set before
  // RunPubSub dials the fresh links for this cell.
  ::setenv("RSF_ZEROCOPY_THRESHOLD", tier.threshold, 1);
  ::setenv("RSF_ZEROCOPY_COPIED_LIMIT", tier.copied_limit, 1);

  const uint32_t side = SideFor(payload_bytes);
  const uint64_t zc_sends_before = rsf::net::ZeroCopySendCount();
  const uint64_t zc_bytes_before = rsf::net::ZeroCopySendBytes();
  rsf::LatencyRecorder transport;
  bench::RunPubSub<sensor_msgs::sfm::Image>(side, side, options, link,
                                            bench::Transport::kTcp,
                                            &transport);
  return {tier.label,
          shaping,
          size_label,
          static_cast<size_t>(side) * side * 3,
          transport.Percentile(0.5),
          transport.mean_ms(),
          rsf::net::ZeroCopySendCount() - zc_sends_before,
          rsf::net::ZeroCopySendBytes() - zc_bytes_before};
}

/// One shm-tier cell (loopback only: shared memory is same-host by
/// definition).  The payload crosses as a 48-byte descriptor, so the zc
/// egress counters stay flat and the latency decouples from payload size.
EgressRow RunShmCell(const char* size_label, size_t payload_bytes,
                     const bench::Options& options) {
  ::setenv("RSF_ZEROCOPY_THRESHOLD", "65536", 1);
  ::setenv("RSF_ZEROCOPY_COPIED_LIMIT", "8", 1);
  ::setenv("RSF_TRANSPORT_SHM", "1", 1);
  sfm::shm::ResetPoolForTest();

  const uint32_t side = SideFor(payload_bytes);
  const uint64_t shm_before =
      ros::shim::shm_zero_copy_deliveries.load(std::memory_order_relaxed);
  rsf::LatencyRecorder transport;
  bench::RunPubSub<sensor_msgs::sfm::Image>(
      side, side, options, rsf::net::LinkConfig::Loopback(),
      bench::Transport::kTcp, &transport);
  const uint64_t deliveries =
      ros::shim::shm_zero_copy_deliveries.load(std::memory_order_relaxed) -
      shm_before;
  ::unsetenv("RSF_TRANSPORT_SHM");
  sfm::shm::ResetPoolForTest();
  return {"shm",
          "loopback",
          size_label,
          static_cast<size_t>(side) * side * 3,
          transport.Percentile(0.5),
          transport.mean_ms(),
          0,
          0,
          deliveries};
}

BatchRow RunBatchCell(size_t batch_max, size_t messages) {
  ::setenv("RSF_ZEROCOPY_THRESHOLD", "0", 1);  // small frames: copy tier
  ::setenv("RSF_SEND_BATCH_MAX", std::to_string(batch_max).c_str(), 1);

  ros::master().Reset();
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  const int queue = static_cast<int>(messages) + 64;  // burst without drops

  std::atomic<uint64_t> got{0};
  ros::SubscribeOptions sub_options;
  sub_options.inline_dispatch = true;
  sub_options.allow_intra_process = false;  // force the wire
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/zc_batch", queue,
      [&](const std_msgs::String::ConstPtr&) {
        got.fetch_add(1, std::memory_order_relaxed);
      },
      sub_options);
  auto pub = pub_node.advertise<std_msgs::String>("/zc_batch", queue);
  bench::WaitFor([&] { return pub.getNumSubscribers() == 1; });

  std_msgs::String msg;
  msg.data.assign(1024, 'x');
  // Warm the link (handshake, first syscalls) outside the measurement.
  pub.publish(msg);
  bench::WaitFor([&] { return got.load() == 1; });

  const uint64_t syscalls_before = rsf::net::WriteSyscallCount();
  const rsf::Stopwatch watch;
  for (size_t i = 0; i < messages; ++i) pub.publish(msg);
  bench::WaitFor([&] { return got.load() == messages + 1; });
  const double seconds = watch.ElapsedNanos() * 1e-9;
  const uint64_t syscalls = rsf::net::WriteSyscallCount() - syscalls_before;

  ros::master().Reset();
  return {batch_max, messages,
          seconds > 0 ? static_cast<double>(messages) / seconds : 0.0,
          syscalls};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options options = bench::Options::Parse(argc, argv);
  if (!options.full) {
    options.iterations = 40;  // 4MB cells on one core: keep the default short
    options.hz = 200.0;
  }

  struct Size {
    const char* label;
    size_t bytes;
  };
  const Size sizes[] = {
      {"64KB", 64 * 1024}, {"512KB", 512 * 1024}, {"4MB", 4 * 1024 * 1024}};
  struct Shape {
    const char* label;
    rsf::net::LinkConfig link;
  };
  const Shape shapes[] = {{"loopback", rsf::net::LinkConfig::Loopback()},
                          {"10gbe-sim", rsf::net::LinkConfig::TenGigE()}};

  std::printf(
      "=== Ablation: MSG_ZEROCOPY egress, SFM images over TCP, %d iterations "
      "===\n"
      "    (loopback completions are 'copied' — see the caveat in the "
      "header)\n\n",
      options.iterations);
  std::printf("  %-9s %-10s %-7s %12s %12s %10s %14s\n", "tier", "shaping",
              "size", "p50 (ms)", "mean (ms)", "zc sends", "zc bytes");

  std::vector<EgressRow> egress;
  for (const auto& shape : shapes) {
    for (const auto& size : sizes) {
      for (const Tier& tier : kTiers) {
        egress.push_back(RunEgressCell(tier, shape.label, shape.link,
                                       size.label, size.bytes, options));
        const EgressRow& row = egress.back();
        std::printf("  %-9s %-10s %-7s %12.3f %12.3f %10llu %14llu\n",
                    row.tier, row.shaping, row.size_label, row.p50_ms,
                    row.mean_ms,
                    static_cast<unsigned long long>(row.zc_sends),
                    static_cast<unsigned long long>(row.zc_bytes));
      }
    }
  }

  std::printf(
      "\n=== Shm tier rows (same-host only; the payload crosses as a "
      "48-byte descriptor) ===\n\n");
  std::printf("  %-9s %-10s %-7s %12s %12s %14s\n", "tier", "shaping",
              "size", "p50 (ms)", "mean (ms)", "shm deliveries");
  for (const auto& size : sizes) {
    egress.push_back(RunShmCell(size.label, size.bytes, options));
    const EgressRow& row = egress.back();
    std::printf("  %-9s %-10s %-7s %12.3f %12.3f %14llu\n", row.tier,
                row.shaping, row.size_label, row.p50_ms, row.mean_ms,
                static_cast<unsigned long long>(row.shm_deliveries));
  }

  const size_t burst = options.full ? 4096 : 1024;
  std::printf(
      "\n=== Ablation: send batching, 1KB frames, %zu-message burst ===\n\n",
      burst);
  std::printf("  %-10s %14s %16s\n", "batch max", "msgs/sec", "write syscalls");
  std::vector<BatchRow> batching;
  for (const size_t batch_max : {size_t{8}, size_t{16}, size_t{64}}) {
    batching.push_back(RunBatchCell(batch_max, burst));
    const BatchRow& row = batching.back();
    std::printf("  %-10zu %14.0f %16llu\n", row.batch_max, row.msgs_per_sec,
                static_cast<unsigned long long>(row.write_syscalls));
  }
  ::unsetenv("RSF_SEND_BATCH_MAX");
  ::unsetenv("RSF_ZEROCOPY_THRESHOLD");
  ::unsetenv("RSF_ZEROCOPY_COPIED_LIMIT");

  FILE* json = std::fopen("BENCH_zerocopy.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ablation_zerocopy\",\n"
                 "  \"unit\": \"transport-only publish-to-callback latency, "
                 "milliseconds\",\n"
                 "  \"caveat\": \"loopback MSG_ZEROCOPY completions report "
                 "SO_EE_CODE_ZEROCOPY_COPIED: the kernel defers the copy "
                 "rather than eliding it, so these rows bound bookkeeping "
                 "overhead, not DMA savings\",\n"
                 "  \"iterations\": %d,\n  \"results\": [\n",
                 options.iterations);
    for (size_t i = 0; i < egress.size(); ++i) {
      const EgressRow& row = egress[i];
      std::fprintf(json,
                   "    {\"tier\": \"%s\", \"shaping\": \"%s\", "
                   "\"size\": \"%s\", \"payload_bytes\": %zu, "
                   "\"p50_ms\": %.3f, \"mean_ms\": %.3f, "
                   "\"zerocopy_sends\": %llu, \"zerocopy_bytes\": %llu, \"shm_deliveries\": %llu}%s\n",
                   row.tier, row.shaping, row.size_label, row.payload_bytes,
                   row.p50_ms, row.mean_ms,
                   static_cast<unsigned long long>(row.zc_sends),
                   static_cast<unsigned long long>(row.zc_bytes),
                   static_cast<unsigned long long>(row.shm_deliveries),
                   i + 1 < egress.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"batching\": [\n");
    for (size_t i = 0; i < batching.size(); ++i) {
      const BatchRow& row = batching[i];
      std::fprintf(json,
                   "    {\"batch_max\": %zu, \"messages\": %zu, "
                   "\"msgs_per_sec\": %.0f, \"write_syscalls\": %llu}%s\n",
                   row.batch_max, row.messages, row.msgs_per_sec,
                   static_cast<unsigned long long>(row.write_syscalls),
                   i + 1 < batching.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\n  wrote BENCH_zerocopy.json\n");
  }
  return 0;
}
