// Tests for the TransportLane seam (DESIGN.md §13): the LanePolicy
// negotiation table (every §12.4 matrix cell as a pure-function row), the
// mixed-lane fan-out (intra + TCP + shm subscribers on one topic, stats
// reconciling across tiers), the serialize-once guarantee (shim counters
// prove one frame build and one descriptor encode per publish at any
// fan-out), and the shm pin ledger's drop-oldest accounting against a
// stalled subscriber that never acks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/framing.h"
#include "net/link.h"
#include "net/poller.h"
#include "paper_msgs/sfm/Image.h"
#include "ros/ros.h"
#include "ros/shm_transport.h"
#include "ros/transport_lane.h"
#include "sfm/shm_pool.h"

namespace {

using Image = paper_msgs::sfm::Image;
using ros::LanePolicy;

bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 5'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(1'000'000);
  }
  return predicate();
}

/// Scoped setenv/unsetenv (the CI shm job exports RSF_TRANSPORT_SHM=1 for
/// the whole suite — tests that need the tier OFF must override it).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ---- LanePolicy: the §12.4 matrix, one cell per assertion ----

LanePolicy::SubscriberSide IntraEligible() {
  LanePolicy::SubscriberSide side;
  side.co_located = true;
  side.allow_intra = true;
  side.shaped = false;
  return side;
}

LanePolicy::SubscriberSide ShmEligible() {
  LanePolicy::SubscriberSide side;
  side.co_located = false;
  side.serialization_free = true;
  side.allow_shm = true;
  side.shaped = false;
  side.shm_enabled = true;
  side.loopback = true;
  return side;
}

TEST(LanePolicyTest, CoLocatedPrefersIntraOverEveryWireTier) {
  // §7 preference: in-process beats the wire even when the shm tier would
  // also be available.
  auto side = IntraEligible();
  side.serialization_free = true;
  side.allow_shm = true;
  side.shm_enabled = true;
  side.loopback = true;
  EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kIntra);
}

TEST(LanePolicyTest, IntraVetoesFallThroughToWire) {
  {
    auto side = IntraEligible();
    side.allow_intra = false;  // SubscribeOptions opt-out
    EXPECT_NE(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kIntra);
  }
  {
    auto side = IntraEligible();
    side.shaped = true;  // a shaped link models a remote machine
    EXPECT_NE(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kIntra);
  }
  {
    auto side = IntraEligible();
    side.co_located = false;
    EXPECT_NE(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kIntra);
  }
}

TEST(LanePolicyTest, ShmRequestNeedsEveryCondition) {
  // The happy row: SFM type, allow_shm, unshaped, env on, same host.
  EXPECT_EQ(LanePolicy::PlanSubscriber(ShmEligible()),
            LanePolicy::Plan::kTcpRequestShm);

  // §12.4 row (a): each negated condition degrades to plain TCP — the
  // link never negotiates the tier at all.
  {
    auto side = ShmEligible();
    side.serialization_free = false;  // type is not SF
    EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kTcp);
  }
  {
    auto side = ShmEligible();
    side.allow_shm = false;  // SubscribeOptions opt-out
    EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kTcp);
  }
  {
    auto side = ShmEligible();
    side.shaped = true;  // shaped link
    EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kTcp);
  }
  {
    auto side = ShmEligible();
    side.shm_enabled = false;  // RSF_TRANSPORT_SHM off
    EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kTcp);
  }
  {
    auto side = ShmEligible();
    side.loopback = false;  // non-loopback endpoint
    EXPECT_EQ(LanePolicy::PlanSubscriber(side), LanePolicy::Plan::kTcp);
  }
}

TEST(LanePolicyTest, GrantWireTierMatrix) {
  LanePolicy::PublisherSide side;
  // Subscriber never asked: silent plain TCP.
  EXPECT_EQ(LanePolicy::GrantWireTier(side),
            LanePolicy::Grant::kTcpNotRequested);

  // Asked, but the header carried no parseable pid: same cell.
  side.shm_requested = true;
  EXPECT_EQ(LanePolicy::GrantWireTier(side),
            LanePolicy::Grant::kTcpNotRequested);

  // Asked with a pid, tier off on the publisher: logged, plain TCP.
  side.peer_pid_known = true;
  EXPECT_EQ(LanePolicy::GrantWireTier(side),
            LanePolicy::Grant::kTcpTierDisabled);

  // §12.4 row (b): all peer slots busy — warn, fall back to TCP.
  side.shm_enabled = true;
  EXPECT_EQ(LanePolicy::GrantWireTier(side), LanePolicy::Grant::kTcpNoSlot);

  // Everything lined up: the link becomes a ShmLane.
  side.slot_acquired = true;
  EXPECT_EQ(LanePolicy::GrantWireTier(side), LanePolicy::Grant::kShm);
}

TEST(LanePolicyTest, SlotAcquisitionGatedOnRequestPidAndEnv) {
  // AcquirePeerSlot is the only side-effecting negotiation step; it must
  // not run unless the request is complete and the tier is on.
  LanePolicy::PublisherSide side;
  side.shm_requested = true;
  side.peer_pid_known = true;
  side.shm_enabled = true;
  EXPECT_TRUE(LanePolicy::ShouldAttemptShm(side));
  side.shm_enabled = false;
  EXPECT_FALSE(LanePolicy::ShouldAttemptShm(side));
  side.shm_enabled = true;
  side.peer_pid_known = false;
  EXPECT_FALSE(LanePolicy::ShouldAttemptShm(side));
  side.peer_pid_known = true;
  side.shm_requested = false;
  EXPECT_FALSE(LanePolicy::ShouldAttemptShm(side));
}

TEST(LanePolicyTest, EstablishedLinkBecomesTheNegotiatedLane) {
  EXPECT_EQ(LanePolicy::WireLaneKind(true), ros::LaneKind::kShm);
  EXPECT_EQ(LanePolicy::WireLaneKind(false), ros::LaneKind::kTcp);
}

// ---- middleware-level lane behaviour ----

class TransportLaneTest : public ::testing::Test {
 protected:
  void SetUp() override { sfm::shm::ResetPoolForTest(); }
  void TearDown() override {
    ros::master().Reset();
    sfm::shm::ResetPoolForTest();
  }
};

void ExpectNoLeakedBlocks() {
  EXPECT_TRUE(WaitFor([] {
    sfm::shm::RecycleRetired();
    const auto stats = sfm::shm::GetPoolStats();
    return stats.live_blocks == 0 && stats.retired_blocks == 0;
  })) << "shm blocks leaked: live=" << sfm::shm::GetPoolStats().live_blocks
      << " retired=" << sfm::shm::GetPoolStats().retired_blocks;
}

/// One topic, three tiers at once: an in-process subscriber, a forced-TCP
/// subscriber, and a shm-negotiated subscriber.  Every publish must reach
/// all three, and the per-tier stats must reconcile exactly.
TEST_F(TransportLaneTest, MixedLaneFanoutReconcilesAcrossTiers) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  constexpr size_t kBytes = 48 * 1024;
  constexpr int kMessages = 8;

  ros::NodeHandle pub_node("mixed_pub");
  ros::NodeHandle sub_node("mixed_sub");
  auto pub = pub_node.advertise<Image>("/mixed_lanes", 16);

  std::atomic<int> intra_received{0};
  std::atomic<int> tcp_received{0};
  std::atomic<int> shm_received{0};

  ros::SubscribeOptions intra_options;
  intra_options.inline_dispatch = true;
  auto intra_sub = sub_node.subscribe<Image>(
      "/mixed_lanes", 16,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr&) { intra_received.fetch_add(1); }),
      intra_options);

  ros::SubscribeOptions tcp_options;
  tcp_options.inline_dispatch = true;
  tcp_options.allow_intra_process = false;
  tcp_options.allow_shm = false;  // pinned to inline TCP frames
  auto tcp_sub = sub_node.subscribe<Image>(
      "/mixed_lanes", 16,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr&) { tcp_received.fetch_add(1); }),
      tcp_options);

  ros::SubscribeOptions shm_options;
  shm_options.inline_dispatch = true;
  shm_options.allow_intra_process = false;  // force the wire, negotiate shm
  auto shm_sub = sub_node.subscribe<Image>(
      "/mixed_lanes", 16,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr&) { shm_received.fetch_add(1); }),
      shm_options);

  // All three lanes live before the first publish: one intra link and two
  // wire links, one of which negotiated the shm tier.
  ASSERT_TRUE(WaitFor([&] {
    const auto stats = pub.getStats();
    return stats.intra_links == 1 && stats.tcp_links == 2 &&
           stats.shm_links == 1;
  }));

  const uint64_t frames_before =
      ros::shim::frame_builds.load(std::memory_order_relaxed);
  const uint64_t descriptors_before =
      ros::shim::descriptor_builds.load(std::memory_order_relaxed);

  for (int i = 0; i < kMessages; ++i) {
    auto img = Image::create();
    img->data.resize(kBytes);
    img->data[0] = 0x5A;
    pub.publish(*img);
    ASSERT_TRUE(WaitFor([&] {
      return intra_received.load() > i && tcp_received.load() > i &&
             shm_received.load() > i;
    })) << "message " << i << " missing on some tier";
  }

  EXPECT_EQ(intra_sub.intraWholeCopyCount(),
            static_cast<uint64_t>(kMessages));
  EXPECT_EQ(shm_sub.shmZeroCopyCount(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(tcp_sub.shmZeroCopyCount(), 0u);

  // Publisher-side reconciliation: one intra + two wire attempts per
  // publish, nothing dropped, every shm-lane delivery via descriptor.
  const auto stats = pub.getStats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(3 * kMessages));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.intra_delivered, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.intra_whole_copy, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_descriptors, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_inline, 0u);

  // Serialize-once proof: three lanes, but exactly ONE wire frame build
  // and ONE descriptor encode per publish.
  EXPECT_EQ(ros::shim::frame_builds.load(std::memory_order_relaxed) -
                frames_before,
            static_cast<uint64_t>(kMessages));
  EXPECT_EQ(ros::shim::descriptor_builds.load(std::memory_order_relaxed) -
                descriptors_before,
            static_cast<uint64_t>(kMessages));

  intra_sub.shutdown();
  tcp_sub.shutdown();
  shm_sub.shutdown();
  ExpectNoLeakedBlocks();
}

/// Serialize-once at wide fan-out: six TCP subscribers, the frame is built
/// exactly once per publish and shared by every lane.
TEST_F(TransportLaneTest, SerializeOnceAtWideFanout) {
  ScopedEnv off("RSF_TRANSPORT_SHM", "0");
  constexpr int kSubscribers = 6;
  constexpr int kMessages = 5;

  ros::NodeHandle pub_node("fanout_pub");
  ros::NodeHandle sub_node("fanout_sub");
  auto pub = pub_node.advertise<Image>("/fanout_once", 8);

  std::atomic<int> received{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  options.allow_shm = false;
  std::vector<ros::Subscriber> subs;
  subs.reserve(kSubscribers);
  for (int i = 0; i < kSubscribers; ++i) {
    subs.push_back(sub_node.subscribe<Image>(
        "/fanout_once", 8,
        std::function<void(const Image::ConstPtr&)>(
            [&](const Image::ConstPtr&) { received.fetch_add(1); }),
        options));
  }
  ASSERT_TRUE(
      WaitFor([&] { return pub.getStats().tcp_links == kSubscribers; }));

  const uint64_t frames_before =
      ros::shim::frame_builds.load(std::memory_order_relaxed);
  const uint64_t descriptors_before =
      ros::shim::descriptor_builds.load(std::memory_order_relaxed);

  for (int i = 0; i < kMessages; ++i) {
    auto img = Image::create();
    img->data.resize(4096);
    pub.publish(*img);
  }
  ASSERT_TRUE(
      WaitFor([&] { return received.load() == kSubscribers * kMessages; }));

  EXPECT_EQ(ros::shim::frame_builds.load(std::memory_order_relaxed) -
                frames_before,
            static_cast<uint64_t>(kMessages));
  // No shm lane: the descriptor path must not even be attempted.
  EXPECT_EQ(ros::shim::descriptor_builds.load(std::memory_order_relaxed) -
                descriptors_before,
            0u);

  const auto stats = pub.getStats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kSubscribers * kMessages));
  EXPECT_EQ(stats.dropped, 0u);
}

/// A subscriber callback publishing on its own topic (inline intra
/// dispatch runs it on the publisher's thread, inside the fan-out loop):
/// the reused publish scratch is held, so the reentrant publish must take
/// the local-vector fallback instead of deadlocking or corrupting the
/// snapshot.
TEST_F(TransportLaneTest, ReentrantPublishFromInlineCallback) {
  ros::NodeHandle node("reentrant");
  auto pub = node.advertise<Image>("/reentrant", 8);

  std::atomic<int> received{0};
  ros::Publisher* pub_ptr = &pub;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = node.subscribe<Image>(
      "/reentrant", 8,
      std::function<void(const Image::ConstPtr&)>(
          [&, pub_ptr](const Image::ConstPtr&) {
            if (received.fetch_add(1) == 0) {
              auto again = Image::create();
              pub_ptr->publish(*again);  // reentrant: same publication
            }
          }),
      options);
  ASSERT_TRUE(WaitFor([&] { return pub.getStats().intra_links == 1; }));

  auto img = Image::create();
  pub.publish(*img);

  ASSERT_TRUE(WaitFor([&] { return received.load() == 2; }));
  EXPECT_EQ(pub.getStats().dropped, 0u);
}

/// A stalled shm subscriber (never acks) overflows the pin ledger: the
/// oldest pins are evicted drop-oldest, each eviction counted as a
/// publisher drop and in shim::shm_pin_evictions.
TEST_F(TransportLaneTest, PinLedgerEvictionCountsAsDrops) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  constexpr size_t kBytes = 48 * 1024;
  // queue_size 8 → max_pins = max(2*8, 64) = 64; 9 publishes past the
  // bound must evict exactly 9 pins.
  constexpr size_t kQueue = 8;
  constexpr size_t kMaxPins = 64;
  constexpr size_t kOverflow = 9;
  constexpr size_t kMessages = kMaxPins + kOverflow;

  auto publication = ros::Publication::Create(
      "/pin_evict", Image::DataType(), ros::TransportChecksum<Image>(),
      "pin_pub", kQueue, /*intra_capable=*/false);
  ASSERT_TRUE(publication.ok());
  auto pub = *publication;

  // A raw dialing client that completes the TCPROS handshake with an shm
  // request, drains descriptor frames off the socket, and never acks —
  // the stalled-subscriber half of DESIGN.md §12.4 row (f) without the
  // process kill.
  std::atomic<bool> granted{false};
  std::atomic<size_t> descriptors_received{0};
  auto ctrl_buf = std::make_shared<std::vector<uint8_t>>();

  rsf::net::Link::Callbacks callbacks;
  callbacks.make_handshake_request = [] {
    auto header = ros::MakeSubscriberHeader(
        "/pin_evict", Image::DataType(), ros::TransportChecksum<Image>(),
        "stalled_sub");
    ros::AddShmRequestFields(&header, ::getpid());
    return ros::EncodeConnectionHeader(header);
  };
  callbacks.on_handshake_reply = [&granted](const uint8_t* data,
                                            uint32_t length) {
    auto header = ros::DecodeConnectionHeader(data, length);
    if (!header.ok() || header->count("error") != 0) return false;
    const ros::ShmGrant grant =
        ros::ParseShmGrant(*header, sfm::shm::kMaxPeers);
    granted.store(grant.granted);
    return true;
  };
  callbacks.alloc = [ctrl_buf](uint32_t raw) -> uint8_t* {
    if (rsf::net::FrameTag(raw) != rsf::net::kFrameTagShmDescriptor) {
      return nullptr;  // only descriptors expected; anything else is a bug
    }
    ctrl_buf->resize(rsf::net::FrameLength(raw));
    return ctrl_buf->data();
  };
  callbacks.on_frame = [&descriptors_received](uint32_t) {
    descriptors_received.fetch_add(1);  // read, discard, NEVER ack
  };

  auto link = rsf::net::Link::Dial("127.0.0.1", pub->port(),
                                   rsf::net::Reactor::Get().NextLoop(),
                                   rsf::net::Link::Options{},
                                   std::move(callbacks));
  ASSERT_TRUE(WaitFor(
      [&] { return granted.load() && pub->Stats().shm_links == 1; }));

  const uint64_t evictions_before =
      ros::shim::shm_pin_evictions.load(std::memory_order_relaxed);

  for (size_t i = 0; i < kMessages; ++i) {
    auto img = Image::create();
    img->data.resize(kBytes);
    pub->Publish(ros::Serializer<Image>::ToWire(*img));
    // Pace against the client so the link queue never evicts — every drop
    // below must come from the pin ledger alone.
    ASSERT_TRUE(WaitFor([&] { return descriptors_received.load() > i; }));
  }

  const auto stats = pub->Stats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_descriptors, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.dropped, static_cast<uint64_t>(kOverflow));
  EXPECT_EQ(ros::shim::shm_pin_evictions.load(std::memory_order_relaxed) -
                evictions_before,
            static_cast<uint64_t>(kOverflow));
  EXPECT_EQ(pub->SentCount(), static_cast<uint64_t>(kMaxPins));

  link->CloseSync();
  pub->Shutdown();
  ExpectNoLeakedBlocks();
}

}  // namespace
