// Tests for the shared-memory transport tier (DESIGN.md §12): the pool
// allocator and its gating, the descriptor/control codecs, the generation
// fence and descriptor validation, crash reclamation (SIGKILLed peers,
// stale /dev/shm files), and the full middleware path — both the in-process
// forced-wire loop and a real cross-process subscriber killed mid-delivery.
//
// This binary has a custom main: re-exec'd with --shm-kill-child it becomes
// the victim subscriber for the cross-process chaos test.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "paper_msgs/sfm/Image.h"
#include "ros/ros.h"
#include "ros/shm_transport.h"
#include "sfm/shm_pool.h"

namespace {

using Image = paper_msgs::sfm::Image;
// paper_msgs/Image arenas are exactly the default shm threshold class.
constexpr size_t kCls = Image::kArenaCapacity;
static_assert(kCls == 64 * 1024);

/// Waits until `predicate` holds or the deadline passes; returns its value.
bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 5'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(1'000'000);
  }
  return predicate();
}

/// Scoped setenv/unsetenv (tests must not leak env into each other, and the
/// CI shm job exports RSF_TRANSPORT_SHM=1 for the whole suite — tests that
/// need the tier OFF must override, not assume).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ---- codecs ----

TEST(ShmCodec, DescriptorRoundTrip) {
  sfm::shm::Descriptor in;
  in.pool_id = 0x1122334455667788ull;
  in.block_index = 7;
  in.gen = 42;
  in.offset = 0x9000;
  in.length = 48 * 1024;
  in.seq = 0xA1B2C3D4E5F60718ull;

  const auto frame = ros::EncodeShmDescriptorFrame(in);
  ASSERT_NE(frame, nullptr);
  sfm::shm::Descriptor out;
  ASSERT_TRUE(
      ros::DecodeShmDescriptor(frame.get(), ros::kShmDescriptorSize, &out));
  EXPECT_EQ(out.pool_id, in.pool_id);
  EXPECT_EQ(out.block_index, in.block_index);
  EXPECT_EQ(out.gen, in.gen);
  EXPECT_EQ(out.offset, in.offset);
  EXPECT_EQ(out.length, in.length);
  EXPECT_EQ(out.seq, in.seq);
}

TEST(ShmCodec, DescriptorRejectsBadSizeAndMagic) {
  sfm::shm::Descriptor in;
  const auto frame = ros::EncodeShmDescriptorFrame(in);
  sfm::shm::Descriptor out;
  EXPECT_FALSE(
      ros::DecodeShmDescriptor(frame.get(), ros::kShmDescriptorSize - 1, &out));
  uint8_t corrupt[ros::kShmDescriptorSize];
  std::memcpy(corrupt, frame.get(), sizeof(corrupt));
  corrupt[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(ros::DecodeShmDescriptor(corrupt, sizeof(corrupt), &out));
}

TEST(ShmCodec, ControlRoundTrip) {
  for (const auto kind :
       {ros::ShmControlKind::kAck, ros::ShmControlKind::kDisable}) {
    const auto frame = ros::EncodeShmControlFrame(kind, 987654321ull);
    ASSERT_NE(frame, nullptr);
    ros::ShmControlKind got_kind{};
    uint64_t got_seq = 0;
    ASSERT_TRUE(ros::DecodeShmControl(frame.get(), ros::kShmControlSize,
                                      &got_kind, &got_seq));
    EXPECT_EQ(got_kind, kind);
    EXPECT_EQ(got_seq, 987654321ull);
    EXPECT_FALSE(ros::DecodeShmControl(frame.get(), ros::kShmControlSize - 1,
                                       &got_kind, &got_seq));
  }
}

// ---- pool ----

class ShmPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { sfm::shm::ResetPoolForTest(); }
  void TearDown() override { sfm::shm::ResetPoolForTest(); }
};

TEST_F(ShmPoolTest, TierGatedByEnvPeerThresholdAndClass) {
  {
    ScopedEnv on("RSF_TRANSPORT_SHM", "1");
    // No peer ever negotiated: allocation stays on the heap even with the
    // env set (the CI shm job must not change tier-1 allocation behaviour).
    EXPECT_EQ(sfm::shm::TryAcquire(kCls), nullptr);
  }
  {
    ScopedEnv off("RSF_TRANSPORT_SHM", "0");
    sfm::shm::NotePeerNegotiated();
    EXPECT_EQ(sfm::shm::TryAcquire(kCls), nullptr);
  }
  {
    ScopedEnv on("RSF_TRANSPORT_SHM", "1");
    sfm::shm::NotePeerNegotiated();
    EXPECT_EQ(sfm::shm::TryAcquire(1024), nullptr);  // below threshold
    EXPECT_EQ(sfm::shm::TryAcquire(kCls + 4096), nullptr);  // not a pow2 class
    uint8_t* block = sfm::shm::TryAcquire(kCls);
    ASSERT_NE(block, nullptr);
    EXPECT_TRUE(sfm::shm::ReleaseIfOwned(block));

    std::unique_ptr<uint8_t[]> heap(new uint8_t[kCls]);
    EXPECT_FALSE(sfm::shm::ReleaseIfOwned(heap.get()));
  }
  {
    ScopedEnv on("RSF_TRANSPORT_SHM", "1");
    ScopedEnv threshold("RSF_SHM_THRESHOLD", "32768");
    EXPECT_EQ(sfm::shm::ThresholdBytes(), 32768u);
    sfm::shm::NotePeerNegotiated();
    uint8_t* block = sfm::shm::TryAcquire(32768);
    ASSERT_NE(block, nullptr);
    EXPECT_TRUE(sfm::shm::ReleaseIfOwned(block));
  }
}

TEST_F(ShmPoolTest, PreparePublishDescribesTheBlock) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  sfm::shm::NotePeerNegotiated();

  uint8_t heap_byte = 0;
  EXPECT_FALSE(sfm::shm::PreparePublish(&heap_byte, 1, 1).has_value());

  uint8_t* block = sfm::shm::TryAcquire(kCls);
  ASSERT_NE(block, nullptr);
  auto stats = sfm::shm::GetPoolStats();
  EXPECT_EQ(stats.live_blocks, 1u);
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_GE(stats.free_blocks, 1u);

  const auto desc = sfm::shm::PreparePublish(block, 4096, 17);
  ASSERT_TRUE(desc.has_value());
  EXPECT_EQ(desc->length, 4096u);
  EXPECT_EQ(desc->seq, 17u);

  // The descriptor round-trips through a fresh mapping to the same bytes.
  std::memset(block, 0xC3, 256);
  auto view = sfm::shm::AttachSegment(sfm::shm::Namespace(), desc->pool_id);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const uint8_t* mapped = (*view)->block(desc->block_index);
  EXPECT_NE(mapped, block);  // distinct mapping, same pages
  EXPECT_EQ(std::memcmp(mapped, block, 256), 0);
  EXPECT_EQ((*view)->header().data_offset +
                desc->block_index * (*view)->header().block_class,
            desc->offset);

  EXPECT_TRUE(sfm::shm::ReleaseIfOwned(block));
  stats = sfm::shm::GetPoolStats();
  EXPECT_EQ(stats.live_blocks, 0u);
  EXPECT_EQ(stats.retired_blocks, 0u);  // no peer refs: recycled immediately
}

TEST_F(ShmPoolTest, DescriptorValidationAndGenerationFence) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  sfm::shm::NotePeerNegotiated();
  uint8_t* block = sfm::shm::TryAcquire(kCls);
  ASSERT_NE(block, nullptr);
  std::memset(block, 0x7E, 512);
  const auto desc = sfm::shm::PreparePublish(block, 4096, 5);
  ASSERT_TRUE(desc.has_value());

  const int slot = sfm::shm::AcquirePeerSlot(::getpid());
  ASSERT_GE(slot, 0);
  ros::ShmSubState state;
  state.negotiated = true;
  state.slot = slot;
  state.ns = sfm::shm::Namespace();

  // Corrupted geometry must be rejected with a tier-fatal code, never
  // kUnavailable (which means "just this message is gone").
  const auto expect_fatal = [&](sfm::shm::Descriptor d) {
    auto result = ros::ShmMapDescriptor(state, d, 64);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().code(), rsf::StatusCode::kUnavailable);
  };
  {
    auto d = *desc;
    d.block_index = 9999;
    expect_fatal(d);
  }
  {
    auto d = *desc;
    d.offset += 64;  // not a block boundary
    expect_fatal(d);
  }
  {
    auto d = *desc;
    d.length = 0;
    expect_fatal(d);
  }
  {
    auto d = *desc;
    d.length = kCls + 1;  // larger than the block class
    expect_fatal(d);
  }
  {
    auto d = *desc;
    d.length = 8;  // smaller than the caller's skeleton
    expect_fatal(d);
  }
  {
    // A stale generation or a not-yet-stamped sequence is the drop-oldest
    // race: kUnavailable, the link stays in the tier.
    auto d = *desc;
    d.gen += 1;
    auto result = ros::ShmMapDescriptor(state, d, 64);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), rsf::StatusCode::kUnavailable);
  }
  {
    auto d = *desc;
    d.seq += 1;  // descriptor from the future: stamp not visible yet
    auto result = ros::ShmMapDescriptor(state, d, 64);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), rsf::StatusCode::kUnavailable);
  }
  {
    auto d = *desc;
    d.pool_id = 424242;  // no such segment file
    auto result = ros::ShmMapDescriptor(state, d, 64);
    ASSERT_FALSE(result.ok());
  }

  // The real descriptor maps, reads the publisher's bytes, and holds a
  // cross-process reference that parks the block in `retired` on release.
  {
    auto result = ros::ShmMapDescriptor(state, *desc, 64);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::shared_ptr<uint8_t[]> buffer = *std::move(result);
    EXPECT_EQ(std::memcmp(buffer.get(), block, 512), 0);

    EXPECT_TRUE(sfm::shm::ReleaseIfOwned(block));
    auto stats = sfm::shm::GetPoolStats();
    EXPECT_EQ(stats.retired_blocks, 1u);  // our reference pins it
    EXPECT_EQ(sfm::shm::RecycleRetired(), 0u);
  }
  // Reference dropped: the block recycles and its generation moves on.
  EXPECT_EQ(sfm::shm::RecycleRetired(), 1u);
  auto stats = sfm::shm::GetPoolStats();
  EXPECT_EQ(stats.retired_blocks, 0u);
  {
    // The old descriptor now fails the generation fence.
    auto result = ros::ShmMapDescriptor(state, *desc, 64);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), rsf::StatusCode::kUnavailable);
  }
  sfm::shm::ReleasePeerSlot(slot, ::getpid());
}

TEST_F(ShmPoolTest, StaleSegmentSweepUnlinksDeadOwnersOnly) {
  // A reaped child pid is guaranteed dead; files under its pid are stale.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);

  const std::string stale =
      "/rsf." + std::to_string(dead) + ".deadbeef.0";
  const std::string own =
      "/rsf." + std::to_string(::getpid()) + ".deadbeef.0";
  for (const auto& name : {stale, own}) {
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 4096), 0);
    ::close(fd);
  }

  EXPECT_GE(sfm::shm::SweepStaleSegments(), 1u);
  // The dead owner's file is gone; our own pid's file survived the sweep
  // (a restarted publisher must never unlink a live process's pool).
  EXPECT_LT(::shm_open(stale.c_str(), O_RDWR, 0), 0);
  const int still = ::shm_open(own.c_str(), O_RDWR, 0);
  EXPECT_GE(still, 0);
  if (still >= 0) ::close(still);
  ::shm_unlink(own.c_str());
}

// The chaos core: a peer takes a cross-process reference, dies by SIGKILL
// without releasing it, and the publisher's liveness sweep force-reclaims
// the block.  Plain fork (no exec) is safe here because the child only
// touches inherited shared pages and async-signal-safe syscalls.
TEST_F(ShmPoolTest, SigkilledPeerReferencesAreReclaimed) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  sfm::shm::NotePeerNegotiated();
  uint8_t* block = sfm::shm::TryAcquire(kCls);
  ASSERT_NE(block, nullptr);
  const auto desc = sfm::shm::PreparePublish(block, 4096, 1);
  ASSERT_TRUE(desc.has_value());
  auto view = sfm::shm::AttachSegment(sfm::shm::Namespace(), desc->pool_id);
  ASSERT_TRUE(view.ok());
  sfm::shm::BlockCtl* ctl = (*view)->ctl(desc->block_index);

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: wait for its slot, take the reference, report, die hard.
    char slot_byte = 0;
    if (::read(to_child[0], &slot_byte, 1) != 1) _exit(10);
    ctl->refs[static_cast<size_t>(slot_byte)].fetch_add(
        1, std::memory_order_seq_cst);
    const char ready = 1;
    if (::write(from_child[1], &ready, 1) != 1) _exit(11);
    ::raise(SIGKILL);
    _exit(12);  // unreachable
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  const int slot = sfm::shm::AcquirePeerSlot(pid);
  ASSERT_GE(slot, 0);
  const char slot_byte = static_cast<char>(slot);
  ASSERT_EQ(::write(to_child[1], &slot_byte, 1), 1);
  char ready = 0;
  ASSERT_EQ(::read(from_child[0], &ready, 1), 1);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);  // reap: zombies look alive
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ::close(to_child[1]);
  ::close(from_child[0]);

  // Retiring the block parks it: the dead peer's reference pins it.
  ASSERT_TRUE(sfm::shm::ReleaseIfOwned(block));
  auto stats = sfm::shm::GetPoolStats();
  EXPECT_EQ(stats.retired_blocks, 1u);
  EXPECT_EQ(sfm::shm::RecycleRetired(), 0u);

  // The liveness sweep clears the dead peer's column and reclaims.
  EXPECT_GE(sfm::shm::SweepDeadPeers(), 1u);
  stats = sfm::shm::GetPoolStats();
  EXPECT_EQ(stats.retired_blocks, 0u);
  EXPECT_EQ(stats.live_blocks, 0u);
  EXPECT_GE(stats.blocks_reclaimed, 1u);
  EXPECT_GE(ros::shim::shm_blocks_reclaimed(), 1u);

  // The pool keeps serving after the crash.
  uint8_t* again = sfm::shm::TryAcquire(kCls);
  EXPECT_NE(again, nullptr);
  EXPECT_TRUE(sfm::shm::ReleaseIfOwned(again));
}

// ---- middleware (in-process, forced wire) ----

class ShmMiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override { sfm::shm::ResetPoolForTest(); }
  void TearDown() override {
    ros::master().Reset();
    sfm::shm::ResetPoolForTest();
  }
};

/// Drains the shm pool and the arena pool to zero live blocks, proving
/// nothing leaked once messages and links are gone.
void ExpectNoLeakedBlocks() {
  EXPECT_TRUE(WaitFor([] {
    sfm::shm::RecycleRetired();
    const auto stats = sfm::shm::GetPoolStats();
    return stats.live_blocks == 0 && stats.retired_blocks == 0;
  })) << "shm blocks leaked: live="
      << sfm::shm::GetPoolStats().live_blocks
      << " retired=" << sfm::shm::GetPoolStats().retired_blocks;
  EXPECT_TRUE(WaitFor([] {
    for (const auto& cls : sfm::ArenaPoolSnapshot()) {
      if (cls.live != 0) return false;
    }
    return true;
  })) << "arena-pool blocks leaked";
}

TEST_F(ShmMiddlewareTest, DescriptorDeliveryIsZeroCopyWithStatsParity) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  constexpr size_t kBytes = 48 * 1024;
  constexpr int kMessages = 6;
  const uint64_t shm_before =
      ros::shim::shm_zero_copy_deliveries.load(std::memory_order_relaxed);

  ros::NodeHandle pub_node("shm_pub");
  ros::NodeHandle sub_node("shm_sub");
  auto pub = pub_node.advertise<Image>("/shm_img", 8);

  std::atomic<int> received{0};
  std::atomic<bool> payload_ok{true};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;  // force the wire path
  auto sub = sub_node.subscribe<Image>(
      "/shm_img", 8,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr& msg) {
            if (msg->width != 640 || msg->height != 480 ||
                msg->data.size() != kBytes || msg->data[0] != 0x11 ||
                msg->data[kBytes - 1] != 0x99) {
              payload_ok = false;
            }
            received.fetch_add(1);
          }),
      options);

  // The handshake negotiates the tier before any message is allocated, so
  // every publish below rides a shared block.
  ASSERT_TRUE(WaitFor([&] { return pub.getStats().shm_links == 1; }));

  for (int i = 0; i < kMessages; ++i) {
    auto img = Image::create();
    img->width = 640;
    img->height = 480;
    img->data.resize(kBytes);
    img->data[0] = 0x11;
    img->data[kBytes - 1] = 0x99;
    pub.publish(*img);
    ASSERT_TRUE(WaitFor([&] { return received.load() > i; }))
        << "message " << i << " never arrived";
  }

  EXPECT_TRUE(payload_ok.load());
  EXPECT_EQ(sub.shmZeroCopyCount(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(sub.receivedCount(), static_cast<uint64_t>(kMessages));

  const auto stats = pub.getStats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.shm_descriptors, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_inline, 0u);
  EXPECT_EQ(stats.shm_links, 1u);
  EXPECT_EQ(
      ros::shim::shm_zero_copy_deliveries.load(std::memory_order_relaxed) -
          shm_before,
      static_cast<uint64_t>(kMessages));

  sub.shutdown();
  ExpectNoLeakedBlocks();
}

TEST_F(ShmMiddlewareTest, BelowThresholdNegotiatedLinkFallsBackInline) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  // Push the threshold above this type's 64 KiB class: blocks stay on the
  // heap, and a negotiated link must deliver inline, correctly.
  ScopedEnv threshold("RSF_SHM_THRESHOLD", "131072");
  constexpr size_t kBytes = 48 * 1024;
  constexpr int kMessages = 3;
  const uint64_t fallback_before =
      ros::shim::shm_fallback_deliveries.load(std::memory_order_relaxed);

  ros::NodeHandle pub_node("shm_pub");
  ros::NodeHandle sub_node("shm_sub");
  auto pub = pub_node.advertise<Image>("/shm_small", 8);

  std::atomic<int> received{0};
  std::atomic<bool> payload_ok{true};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto sub = sub_node.subscribe<Image>(
      "/shm_small", 8,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr& msg) {
            if (msg->data.size() != kBytes || msg->data[7] != 0x42) {
              payload_ok = false;
            }
            received.fetch_add(1);
          }),
      options);
  ASSERT_TRUE(WaitFor([&] { return pub.getStats().shm_links == 1; }));

  for (int i = 0; i < kMessages; ++i) {
    auto img = Image::create();
    img->data.resize(kBytes);
    img->data[7] = 0x42;
    pub.publish(*img);
    ASSERT_TRUE(WaitFor([&] { return received.load() > i; }));
  }

  EXPECT_TRUE(payload_ok.load());
  EXPECT_EQ(sub.shmZeroCopyCount(), 0u);
  const auto stats = pub.getStats();
  EXPECT_EQ(stats.enqueued, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_descriptors, 0u);
  EXPECT_EQ(stats.shm_inline, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.shm_links, 1u);
  EXPECT_EQ(
      ros::shim::shm_fallback_deliveries.load(std::memory_order_relaxed) -
          fallback_before,
      static_cast<uint64_t>(kMessages));

  sub.shutdown();
  ExpectNoLeakedBlocks();
}

TEST_F(ShmMiddlewareTest, SubscriberOptOutNeverNegotiates) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");

  ros::NodeHandle pub_node("shm_pub");
  ros::NodeHandle sub_node("shm_sub");
  auto pub = pub_node.advertise<Image>("/shm_optout", 8);

  std::atomic<int> received{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  options.allow_shm = false;
  auto sub = sub_node.subscribe<Image>(
      "/shm_optout", 8,
      std::function<void(const Image::ConstPtr&)>(
          [&](const Image::ConstPtr&) { received.fetch_add(1); }),
      options);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  auto img = Image::create();
  img->data.resize(4096);
  pub.publish(*img);
  ASSERT_TRUE(WaitFor([&] { return received.load() == 1; }));

  const auto stats = pub.getStats();
  EXPECT_EQ(stats.shm_links, 0u);
  EXPECT_EQ(stats.shm_descriptors, 0u);
  EXPECT_EQ(stats.shm_inline, 0u);
  EXPECT_EQ(sub.shmZeroCopyCount(), 0u);
}

// ---- middleware (cross-process, SIGKILL mid-delivery) ----

constexpr const char* kShmKillChildFlag = "--shm-kill-child";
constexpr const char* kChaosTopic = "/shm_chaos";

/// Child mode for CrossProcessSubscriberKill: subscribe to the parent's
/// publisher through the shm tier, HOLD every received message (so the
/// cross-process refcounts stay up), report, then die by SIGKILL with the
/// references still taken.
int RunShmKillChild(uint16_t parent_port) {
  const auto status = ros::master().RegisterPublisher(
      kChaosTopic, Image::DataType(), ros::TransportChecksum<Image>(),
      ros::TopicEndpoint{"127.0.0.1", parent_port, "parent"});
  if (!status.ok()) return 2;

  static std::mutex held_mutex;
  static std::vector<Image::ConstPtr> held;
  static std::atomic<int> got{0};

  ros::NodeHandle node("chaos_sub");
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto sub = node.subscribe<Image>(
      kChaosTopic, 16,
      std::function<void(const Image::ConstPtr&)>(
          [](const Image::ConstPtr& msg) {
            std::lock_guard<std::mutex> lock(held_mutex);
            held.push_back(msg);  // never released: die holding the blocks
            got.fetch_add(1);
          }),
      options);

  const uint64_t deadline = rsf::MonotonicNanos() + 20'000'000'000ull;
  while (got.load() < 2 && rsf::MonotonicNanos() < deadline) {
    rsf::SleepForNanos(1'000'000);
  }
  if (got.load() < 2) return 3;
  if (sub.shmZeroCopyCount() < 2) return 4;  // tier never engaged
  std::printf("HOLDING %d\n", got.load());
  std::fflush(stdout);
  ::raise(SIGKILL);
  return 5;  // unreachable
}

TEST_F(ShmMiddlewareTest, CrossProcessSubscriberKillReclaimsBlocks) {
  ScopedEnv on("RSF_TRANSPORT_SHM", "1");
  constexpr size_t kBytes = 48 * 1024;

  ros::NodeHandle node("chaos_pub");
  auto pub = node.advertise<Image>(kChaosTopic, 16);
  const auto endpoints = ros::master().PublishersOf(kChaosTopic);
  ASSERT_EQ(endpoints.size(), 1u);

  char self_exe[4096] = {0};
  const ssize_t exe_len =
      ::readlink("/proc/self/exe", self_exe, sizeof(self_exe) - 1);
  ASSERT_GT(exe_len, 0);

  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const std::string port = std::to_string(endpoints[0].port);
    ::execl(self_exe, self_exe, kShmKillChildFlag, port.c_str(),
            (char*)nullptr);
    _exit(127);
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

  // The child connects and negotiates the tier; then feed it held messages
  // until it reports, SIGKILLs itself, and leaves its references behind.
  ASSERT_TRUE(WaitFor([&] { return pub.getStats().shm_links == 1; },
                      15'000'000'000ull));
  std::string pipe_text;
  const uint64_t deadline = rsf::MonotonicNanos() + 15'000'000'000ull;
  while (pipe_text.find("HOLDING") == std::string::npos &&
         rsf::MonotonicNanos() < deadline) {
    auto img = Image::create();
    img->width = 640;
    img->data.resize(kBytes);
    pub.publish(*img);
    for (int i = 0; i < 10; ++i) {
      rsf::SleepForNanos(10'000'000);
      char buf[64];
      const ssize_t r = ::read(fds[0], buf, sizeof(buf));
      if (r > 0) pipe_text.append(buf, static_cast<size_t>(r));
      if (pipe_text.find("HOLDING") != std::string::npos) break;
    }
  }
  ASSERT_NE(pipe_text.find("HOLDING"), std::string::npos)
      << "child never reached the holding state: '" << pipe_text << "'";

  // The publisher must keep publishing without stalling while the peer is
  // dying / dead.
  const uint64_t publish_start = rsf::MonotonicNanos();
  for (int i = 0; i < 10; ++i) {
    auto img = Image::create();
    img->data.resize(kBytes);
    pub.publish(*img);
  }
  EXPECT_LT(rsf::MonotonicNanos() - publish_start, 2'000'000'000ull);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ::close(fds[0]);

  // Link teardown + liveness sweep reclaim every block the dead subscriber
  // still referenced; nothing stays live or parked.
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 0; },
                      10'000'000'000ull));
  EXPECT_TRUE(WaitFor([] {
    sfm::shm::SweepDeadPeers();
    sfm::shm::RecycleRetired();
    const auto stats = sfm::shm::GetPoolStats();
    return stats.live_blocks == 0 && stats.retired_blocks == 0;
  })) << "blocks still referenced by the SIGKILLed subscriber";
  EXPECT_GE(sfm::shm::GetPoolStats().blocks_reclaimed, 1u);
  EXPECT_GE(ros::shim::shm_blocks_reclaimed(), 1u);
  EXPECT_EQ(sfm::shm::GetPoolStats().active_peer_slots, 0u);

  // The tier survives the crash: the pool still serves blocks.
  uint8_t* block = sfm::shm::TryAcquire(kCls);
  EXPECT_NE(block, nullptr);
  if (block != nullptr) EXPECT_TRUE(sfm::shm::ReleaseIfOwned(block));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], kShmKillChildFlag) == 0) {
    return RunShmKillChild(static_cast<uint16_t>(std::atoi(argv[2])));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
