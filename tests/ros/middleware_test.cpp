// Integration tests for the mini-ROS middleware: the full roscpp-style
// pub/sub path over loopback TCP, for both regular and serialization-free
// message variants, plus connection-header and master unit coverage.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "net/poller.h"
#include "net/socket.h"
#include "ros/ros.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/sfm/Image.h"
#include "std_msgs/Int32.h"
#include "std_msgs/String.h"
#include "std_msgs/sfm/String.h"

namespace {

/// Waits until `predicate` holds or the deadline passes; returns its value.
bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 5'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(1'000'000);
  }
  return predicate();
}

size_t CountProcessThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

class MiddlewareTest : public ::testing::Test {
 protected:
  void TearDown() override { ros::master().Reset(); }
};

TEST_F(MiddlewareTest, ConnectionHeaderRoundTrip) {
  const ros::ConnectionHeader header = {
      {"topic", "/image"}, {"type", "sensor_msgs/Image"}, {"md5sum", "abc"}};
  const auto encoded = ros::EncodeConnectionHeader(header);
  const auto decoded =
      ros::DecodeConnectionHeader(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, header);
}

TEST_F(MiddlewareTest, ConnectionHeaderRejectsGarbage) {
  const uint8_t bogus[] = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2};
  EXPECT_FALSE(ros::DecodeConnectionHeader(bogus, sizeof(bogus)).ok());
  const uint8_t no_equals[] = {3, 0, 0, 0, 'a', 'b', 'c'};
  EXPECT_FALSE(ros::DecodeConnectionHeader(no_equals, sizeof(no_equals)).ok());
}

TEST_F(MiddlewareTest, MasterNotifiesExistingAndNewPublishers) {
  std::vector<uint16_t> seen;
  std::mutex mutex;

  ASSERT_TRUE(ros::master()
                  .RegisterPublisher("/t", "std_msgs/String", "m",
                                     {"127.0.0.1", 1000, "p1"})
                  .ok());
  auto id = ros::master().RegisterSubscriber(
      "/t", "std_msgs/String", "m", [&](const ros::TopicEndpoint& e) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(e.port);
      });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(ros::master()
                  .RegisterPublisher("/t", "std_msgs/String", "m",
                                     {"127.0.0.1", 1001, "p2"})
                  .ok());
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1000);
  EXPECT_EQ(seen[1], 1001);
}

TEST_F(MiddlewareTest, MasterRejectsTypeConflicts) {
  ASSERT_TRUE(ros::master()
                  .RegisterPublisher("/t", "std_msgs/String", "m1",
                                     {"127.0.0.1", 1, "p"})
                  .ok());
  EXPECT_FALSE(ros::master()
                   .RegisterPublisher("/t", "std_msgs/Int32", "m2",
                                      {"127.0.0.1", 2, "q"})
                   .ok());
  EXPECT_FALSE(
      ros::master()
          .RegisterSubscriber("/t", "std_msgs/String", "other-md5", [](auto&) {})
          .ok());
}

TEST_F(MiddlewareTest, RegularStringPubSub) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::atomic<int> count{0};
  std::string last;
  std::mutex mutex;

  auto sub = sub_node.subscribe<std_msgs::String>(
      "/chatter", 10, [&](const std_msgs::String::ConstPtr& msg) {
        std::lock_guard<std::mutex> lock(mutex);
        last = msg->data;
        count.fetch_add(1);
      });
  auto pub = pub_node.advertise<std_msgs::String>("/chatter", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  std_msgs::String msg;
  msg.data = "hello ros-sf";
  pub.publish(msg);

  ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 1; }));
  ASSERT_TRUE(sub_node.spinOnceFor(1'000'000'000ull));
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(last, "hello ros-sf");
  EXPECT_EQ(count.load(), 1);
}

TEST_F(MiddlewareTest, RegularImagePubSubPreservesPayload) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  sensor_msgs::Image::ConstPtr received;
  auto sub = sub_node.subscribe<sensor_msgs::Image>(
      "/image", 10,
      [&](const sensor_msgs::Image::ConstPtr& msg) { received = msg; });
  auto pub = pub_node.advertise<sensor_msgs::Image>("/image", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  sensor_msgs::Image img;
  img.header.frame_id = "cam";
  img.height = 4;
  img.width = 4;
  img.encoding = "rgb8";
  img.data.resize(48);
  img.data[47] = 0x42;
  pub.publish(img);

  ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 1; }));
  ASSERT_TRUE(sub_node.spinOnceFor(1'000'000'000ull));
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->header.frame_id, "cam");
  EXPECT_EQ(received->encoding, "rgb8");
  ASSERT_EQ(received->data.size(), 48u);
  EXPECT_EQ(received->data[47], 0x42);
}

TEST_F(MiddlewareTest, SfmImagePubSubIsSerializationFree) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  using Image = sensor_msgs::sfm::Image;

  Image::ConstPtr received;
  auto sub = sub_node.subscribe<Image>(
      "/image_sf", 10, [&](const Image::ConstPtr& msg) { received = msg; });
  auto pub = pub_node.advertise<Image>("/image_sf", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  auto img = sfm::make_message<Image>();
  img->header.frame_id = "cam";
  img->header.stamp = rsf::Time::Now();
  img->height = 2;
  img->width = 2;
  img->encoding = "rgb8";
  img->data.resize(12);
  img->data[11] = 0x99;
  pub.publish(*img);

  ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 1; }));
  ASSERT_TRUE(sub_node.spinOnceFor(1'000'000'000ull));
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->header.frame_id, "cam");
  EXPECT_EQ(received->encoding, "rgb8");
  ASSERT_EQ(received->data.size(), 12u);
  EXPECT_EQ(received->data[11], 0x99);

  // Publisher-side message can die first; the received arena is its own.
  img.reset();
  EXPECT_EQ(received->data[11], 0x99);
  received.reset();
}

TEST_F(MiddlewareTest, SfmAndRegularVariantsCannotMix) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  auto pub = pub_node.advertise<sensor_msgs::Image>("/mixed", 10);
  // The SFM variant negotiates a marked checksum; the master refuses it.
  EXPECT_THROW(sub_node.subscribe<sensor_msgs::sfm::Image>(
                   "/mixed", 10,
                   [](const sensor_msgs::sfm::Image::ConstPtr&) {}),
               std::runtime_error);
}

TEST_F(MiddlewareTest, MultipleSubscribersEachGetEveryMessage) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node_a("sub_a");
  ros::NodeHandle sub_node_b("sub_b");

  std::atomic<int> got_a{0};
  std::atomic<int> got_b{0};
  auto sub_a = sub_node_a.subscribe<std_msgs::String>(
      "/fan", 10, [&](const std_msgs::String::ConstPtr&) { got_a++; });
  auto sub_b = sub_node_b.subscribe<std_msgs::String>(
      "/fan", 10, [&](const std_msgs::String::ConstPtr&) { got_b++; });
  auto pub = pub_node.advertise<std_msgs::String>("/fan", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 2; }));

  std_msgs::String msg;
  msg.data = "x";
  for (int i = 0; i < 5; ++i) pub.publish(msg);

  ASSERT_TRUE(WaitFor([&] {
    return sub_a.receivedCount() >= 5 && sub_b.receivedCount() >= 5;
  }));
  while (sub_node_a.spinOnce()) {}
  while (sub_node_b.spinOnce()) {}
  EXPECT_EQ(got_a.load(), 5);
  EXPECT_EQ(got_b.load(), 5);
}

TEST_F(MiddlewareTest, LateSubscriberConnectsToExistingPublisher) {
  ros::NodeHandle pub_node("pub");
  auto pub = pub_node.advertise<std_msgs::String>("/late", 10);

  ros::NodeHandle sub_node("sub");
  std::atomic<int> got{0};
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/late", 10, [&](const std_msgs::String::ConstPtr&) { got++; });
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  std_msgs::String msg;
  msg.data = "late";
  pub.publish(msg);
  ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 1; }));
}

TEST_F(MiddlewareTest, QueueOverflowDropsOldest) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::vector<int> seen;
  auto sub = sub_node.subscribe<std_msgs::Int32>(
      "/burst", 2,
      [&](const std_msgs::Int32::ConstPtr& m) { seen.push_back(m->data); });
  auto pub = pub_node.advertise<std_msgs::Int32>("/burst", 100);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  // Burst without spinning: the 2-deep pending queue keeps only the tail.
  for (int i = 0; i < 50; ++i) {
    std_msgs::Int32 msg;
    msg.data = i;
    pub.publish(msg);
  }
  ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 50; }));
  while (sub_node.spinOnce()) {}
  ASSERT_LE(seen.size(), 2u);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), 49);  // newest survives
  EXPECT_GT(sub.getTopic(), "");
}

TEST_F(MiddlewareTest, InlineDispatchSkipsTheCallbackQueue) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::atomic<int> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/inline", 10, [&](const std_msgs::String::ConstPtr&) { got++; },
      options);
  auto pub = pub_node.advertise<std_msgs::String>("/inline", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  std_msgs::String msg;
  msg.data = "no spin needed";
  pub.publish(msg);
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
}

TEST_F(MiddlewareTest, SimulatedLinkAddsWireDelay) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  using Image = sensor_msgs::Image;

  std::atomic<uint64_t> latency_nanos{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.link = rsf::net::LinkConfig{8e6, 0};  // 8 Mbit/s: 1 ms per KB
  auto sub = sub_node.subscribe<Image>(
      "/slow", 10,
      [&](const Image::ConstPtr& msg) {
        latency_nanos.store(rsf::ElapsedSince(msg->header.stamp));
      },
      options);
  auto pub = pub_node.advertise<Image>("/slow", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  Image img;
  img.data.resize(10 * 1024);  // 10 KB -> ~10 ms of simulated wire time
  img.header.stamp = rsf::Time::Now();
  pub.publish(img);

  ASSERT_TRUE(WaitFor([&] { return latency_nanos.load() > 0; }));
  EXPECT_GE(latency_nanos.load(), 9'000'000ull);
}

TEST_F(MiddlewareTest, PublisherSurvivesSubscriberDisappearing) {
  ros::NodeHandle pub_node("pub");
  auto pub = pub_node.advertise<std_msgs::String>("/flaky", 10);
  {
    ros::NodeHandle sub_node("sub");
    auto sub = sub_node.subscribe<std_msgs::String>(
        "/flaky", 10, [](const std_msgs::String::ConstPtr&) {});
    ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));
    sub.shutdown();
  }
  // Publishing into the dead link must cull it, not crash.
  std_msgs::String msg;
  msg.data = "anyone there?";
  for (int i = 0; i < 3; ++i) {
    pub.publish(msg);
    rsf::SleepForNanos(10'000'000);
  }
  EXPECT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 0; }));
}

TEST_F(MiddlewareTest, SfmArenaIsReclaimedAfterDelivery) {
  const size_t live_before = sfm::gmm().LiveCount();
  {
    ros::NodeHandle pub_node("pub");
    ros::NodeHandle sub_node("sub");
    using Image = sensor_msgs::sfm::Image;

    std::atomic<int> got{0};
    ros::SubscribeOptions options;
    options.inline_dispatch = true;
    auto sub = sub_node.subscribe<Image>(
        "/leakcheck", 10, [&](const Image::ConstPtr&) { got++; }, options);
    auto pub = pub_node.advertise<Image>("/leakcheck", 10);
    ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

    for (int i = 0; i < 10; ++i) {
      auto img = sfm::make_message<Image>();
      img->data.resize(1024);
      pub.publish(*img);
    }
    ASSERT_TRUE(WaitFor([&] { return got.load() == 10; }));
  }
  // All publisher arenas and receiver arenas must be gone.
  EXPECT_TRUE(WaitFor([&] { return sfm::gmm().LiveCount() == live_before; }));
}

// ---- receive-path copy budget (shim counters, see message_traits.h) ----
//
// These tests force the wire transport (allow_intra_process = false) so
// every message crosses a real loopback TCP link, then assert how the
// payload bytes reached the delivered message.

TEST_F(MiddlewareTest, SfmTcpReceiveIsArenaDirect) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  using Image = sensor_msgs::sfm::Image;

  std::atomic<int> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;  // force TCP
  options.allow_shm = false;  // counters below assert the BYTE path (the
                              // CI shm job forces RSF_TRANSPORT_SHM=1)
  auto sub = sub_node.subscribe<Image>(
      "/onecopy_sf", 10, [&](const Image::ConstPtr&) { got++; }, options);
  auto pub = pub_node.advertise<Image>("/onecopy_sf", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const uint64_t direct_before = ros::shim::arena_direct.load();
  const uint64_t scratch_before = ros::shim::scratch_allocations.load();
  const uint64_t copies_before = ros::shim::deserialize_copies.load();

  constexpr int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) {
    auto img = sfm::make_message<Image>();
    img->encoding = "mono8";
    img->data.resize(4096);
    img->data[0] = static_cast<uint8_t>(i);
    pub.publish(*img);
  }
  ASSERT_TRUE(WaitFor([&] { return got.load() == kMessages; }));

  // Exactly one copy per message — kernel straight into the arena block.
  // No staging buffer is touched and the generated de-serializer never
  // runs: the arena bytes ARE the message.
  EXPECT_EQ(ros::shim::arena_direct.load() - direct_before,
            static_cast<uint64_t>(kMessages));
  EXPECT_EQ(ros::shim::scratch_allocations.load() - scratch_before, 0u);
  EXPECT_EQ(ros::shim::deserialize_copies.load() - copies_before, 0u);
}

TEST_F(MiddlewareTest, SfmTcpPublishAboveThresholdIsCopyFreeEgress) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  using Image = sensor_msgs::sfm::Image;

  std::atomic<int> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;  // force TCP
  options.allow_shm = false;  // counters below assert the BYTE path (the
                              // CI shm job forces RSF_TRANSPORT_SHM=1)
  auto sub = sub_node.subscribe<Image>(
      "/zc_egress", 10, [&](const Image::ConstPtr&) { got++; }, options);
  auto pub = pub_node.advertise<Image>("/zc_egress", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const uint64_t serialize_before = ros::shim::wire_serialize_copies.load();
  const uint64_t snapshot_before = ros::shim::wire_snapshot_copies.load();
  const uint64_t zc_bytes_before = rsf::net::ZeroCopySendBytes();
  const uint64_t zc_sends_before = rsf::net::ZeroCopySendCount();

  // Twice the default MSG_ZEROCOPY threshold (64 KiB), so the frame payload
  // is eligible for the pinned send tier.
  constexpr size_t kPayload = 128 * 1024;
  constexpr int kMessages = 4;
  for (int i = 0; i < kMessages; ++i) {
    auto img = sfm::make_message<Image>();
    img->encoding = "mono8";
    img->data.resize(kPayload);
    img->data[0] = static_cast<uint8_t>(i);
    pub.publish(*img);
  }
  ASSERT_TRUE(WaitFor([&] { return got.load() == kMessages; }));

  // Copy-free egress, end to end: the generated serializer never ran, the
  // stack-snapshot fallback never ran (the arena's aliased buffer pointer
  // IS the wire payload), and at least the first above-threshold frame
  // crossed into the kernel as pinned pages rather than a copy.  (Loopback
  // completions report "copied", which may auto-park the tier mid-test —
  // that changes only the kernel crossing, never these user-space counts.)
  EXPECT_EQ(ros::shim::wire_serialize_copies.load() - serialize_before, 0u);
  EXPECT_EQ(ros::shim::wire_snapshot_copies.load() - snapshot_before, 0u);
  EXPECT_GE(rsf::net::ZeroCopySendBytes() - zc_bytes_before,
            static_cast<uint64_t>(kPayload));
  EXPECT_GT(rsf::net::ZeroCopySendCount(), zc_sends_before);
}

TEST_F(MiddlewareTest, RegularTcpReceiveReusesScratchAcrossFrames) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");
  using Image = sensor_msgs::Image;

  std::atomic<int> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;  // force TCP
  auto sub = sub_node.subscribe<Image>(
      "/scratch_reuse", 10, [&](const Image::ConstPtr&) { got++; }, options);
  auto pub = pub_node.advertise<Image>("/scratch_reuse", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const uint64_t allocs_before = ros::shim::scratch_allocations.load();
  const uint64_t reuses_before = ros::shim::scratch_reuses.load();
  const uint64_t copies_before = ros::shim::deserialize_copies.load();

  constexpr int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) {
    Image img;
    img.data.resize(4096);  // constant size: after one growth, all reuse
    pub.publish(img);
  }
  ASSERT_TRUE(WaitFor([&] { return got.load() == kMessages; }));

  // The per-link scratch grows at most once at this size, every later
  // frame stages in it for free, and each frame is de-serialized exactly
  // once (the regular path's one unavoidable copy).
  EXPECT_LE(ros::shim::scratch_allocations.load() - allocs_before, 1u);
  EXPECT_GE(ros::shim::scratch_reuses.load() - reuses_before,
            static_cast<uint64_t>(kMessages - 1));
  EXPECT_EQ(ros::shim::deserialize_copies.load() - copies_before,
            static_cast<uint64_t>(kMessages));
}

TEST_F(MiddlewareTest, TransportThreadCountIndependentOfLinkCount) {
  ros::NodeHandle pub_node("pub");
  auto pub = pub_node.advertise<std_msgs::String>("/manylinks", 10);

  // Warm the reactor pool so its lazy threads exist before the baseline.
  ros::NodeHandle warm_node("warm");
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto warm = warm_node.subscribe<std_msgs::String>(
      "/manylinks", 10, [](const std_msgs::String::ConstPtr&) {}, options);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const size_t threads_before = CountProcessThreads();
  const uint64_t blocking_before = rsf::net::BlockingConnectCount();
  constexpr size_t kLinks = 16;
  std::vector<ros::Subscriber> subs;
  for (size_t i = 0; i < kLinks; ++i) {
    subs.push_back(warm_node.subscribe<std_msgs::String>(
        "/manylinks", 10, [](const std_msgs::String::ConstPtr&) {}, options));
  }
  // Shaped links pace delivery with loop timers, not a reader thread.
  ros::SubscribeOptions shaped = options;
  shaped.link = rsf::net::LinkConfig{1e9, 0};  // 1 Gbit/s, negligible delay
  constexpr size_t kShapedLinks = 4;
  for (size_t i = 0; i < kShapedLinks; ++i) {
    subs.push_back(warm_node.subscribe<std_msgs::String>(
        "/manylinks", 10, [](const std_msgs::String::ConstPtr&) {}, shaped));
  }
  ASSERT_TRUE(WaitFor([&] {
    return pub.getNumSubscribers() == 1 + kLinks + kShapedLinks;
  }));

  // Thread-per-connection would add one reader thread per link here (and
  // another per shaped link); the reactor adds none — every link, shaped
  // or plain, rides the existing loop pool.
  EXPECT_EQ(CountProcessThreads(), threads_before);

  // And none of those connects blocked the master-notify thread: every
  // dial was a nonblocking Link::Dial completed on a reactor loop.
  EXPECT_EQ(rsf::net::BlockingConnectCount(), blocking_before);

  std_msgs::String msg;
  msg.data = "fanout";
  pub.publish(msg);
  for (auto& sub : subs) {
    ASSERT_TRUE(WaitFor([&] { return sub.receivedCount() >= 1; }));
  }
}

}  // namespace
