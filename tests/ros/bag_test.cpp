// Tests for the bag record/replay subsystem: file format round trips,
// corruption handling, live recording from regular and SFM topics, and
// playback into live subscribers.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "common/clock.h"
#include "ros/bag.h"
#include "ros/ros.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/sfm/Image.h"
#include "std_msgs/String.h"

namespace {

std::string TempBag(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 5'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(1'000'000);
  }
  return predicate();
}

size_t CountProcessThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

class BagTest : public ::testing::Test {
 protected:
  void TearDown() override { ros::master().Reset(); }
};

TEST_F(BagTest, WriteReadRoundTrip) {
  const std::string path = TempBag("roundtrip.bag");
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    const uint8_t payload_a[] = {1, 2, 3};
    const uint8_t payload_b[] = {9};
    ASSERT_TRUE(writer->Write("/a", "std_msgs/String", "md5a", 100,
                              payload_a, sizeof(payload_a))
                    .ok());
    ASSERT_TRUE(
        writer->Write("/b", "std_msgs/Int32", "md5b", 200, payload_b, 1)
            .ok());
    EXPECT_EQ(writer->record_count(), 2u);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = ros::BagReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto records = reader->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].topic, "/a");
  EXPECT_EQ((*records)[0].datatype, "std_msgs/String");
  EXPECT_EQ((*records)[0].stamp_nanos, 100u);
  EXPECT_EQ((*records)[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ((*records)[1].topic, "/b");
  EXPECT_EQ((*records)[1].payload, (std::vector<uint8_t>{9}));
  std::filesystem::remove(path);
}

TEST_F(BagTest, EmptyBagReadsCleanly) {
  const std::string path = TempBag("empty.bag");
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = ros::BagReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto records = reader->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  std::filesystem::remove(path);
}

TEST_F(BagTest, BadMagicRejected) {
  const std::string path = TempBag("bogus.bag");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTABAG!";
  }
  EXPECT_FALSE(ros::BagReader::Open(path).ok());
  std::filesystem::remove(path);
}

TEST_F(BagTest, TruncatedRecordReported) {
  const std::string path = TempBag("truncated.bag");
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    const uint8_t payload[64] = {};
    ASSERT_TRUE(writer->Write("/t", "x/Y", "m", 1, payload, 64).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  // Chop the tail off.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 10);

  auto reader = ros::BagReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const auto record = reader->Next();
  EXPECT_FALSE(record.ok());
  EXPECT_NE(record.status().code(), rsf::StatusCode::kNotFound);
  std::filesystem::remove(path);
}

TEST_F(BagTest, RecordsLiveRegularTopic) {
  const std::string path = TempBag("live_regular.bag");
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ros::TopicRecorder recorder("/chat", &*writer);

    ros::NodeHandle pub_node("pub");
    auto pub = pub_node.advertise<std_msgs::String>("/chat", 10);
    ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

    std_msgs::String msg;
    for (int i = 0; i < 5; ++i) {
      msg.data = "utterance " + std::to_string(i);
      pub.publish(msg);
    }
    ASSERT_TRUE(WaitFor([&] { return recorder.recorded() == 5; }));
    recorder.Shutdown();
    ASSERT_TRUE(writer->Close().ok());
  }

  auto reader = ros::BagReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto records = reader->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].datatype, "std_msgs/String");

  // The payload is the ROS1 wire form; decode the last one.
  std_msgs::String decoded;
  ASSERT_TRUE(rsf::ser::ros1::Deserialize((*records)[4].payload.data(),
                                          (*records)[4].payload.size(),
                                          decoded)
                  .ok());
  EXPECT_EQ(decoded.data, "utterance 4");
  std::filesystem::remove(path);
}

TEST_F(BagTest, RecordsSfmTopicVerbatim) {
  const std::string path = TempBag("live_sfm.bag");
  using Image = sensor_msgs::sfm::Image;
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ros::TopicRecorder recorder("/image_sf", &*writer);

    ros::NodeHandle pub_node("pub");
    auto pub = pub_node.advertise<Image>("/image_sf", 10);
    ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

    auto img = sfm::make_message<Image>();
    img->encoding = "rgb8";
    img->height = 3;
    img->width = 3;
    img->data.resize(27);
    img->data[26] = 0x42;
    pub.publish(*img);
    ASSERT_TRUE(WaitFor([&] { return recorder.recorded() == 1; }));
    recorder.Shutdown();
    ASSERT_TRUE(writer->Close().ok());
  }

  auto reader = ros::BagReader::Open(path);
  auto records = reader->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);

  // The record IS the arena bytes: adopt and read in place.
  const auto& payload = (*records)[0].payload;
  auto block = std::make_unique<uint8_t[]>(payload.size());
  std::memcpy(block.get(), payload.data(), payload.size());
  const uint8_t* start = sfm::gmm().AdoptReceived(
      "sensor_msgs/Image", std::move(block), payload.size(), payload.size());
  auto replayed = sfm::WrapReceived<Image>(start);
  EXPECT_EQ(replayed->encoding, "rgb8");
  ASSERT_EQ(replayed->data.size(), 27u);
  EXPECT_EQ(replayed->data[26], 0x42);
  std::filesystem::remove(path);
}

TEST_F(BagTest, PlaybackFeedsLiveSubscribers) {
  const std::string path = TempBag("playback.bag");
  // Write a bag by hand with ROS1-serialized Strings.
  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      std_msgs::String msg;
      msg.data = "replay " + std::to_string(i);
      const auto wire = rsf::ser::ros1::SerializeToVector(msg);
      ASSERT_TRUE(writer->Write("/replayed", "std_msgs/String",
                                std_msgs::String::Md5Sum(),
                                static_cast<uint64_t>(i) * 1000000, wire.data(),
                                wire.size())
                      .ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }

  ros::NodeHandle sub_node("listener");
  std::atomic<int> got{0};
  std::string last;
  std::mutex mutex;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/replayed", 10,
      [&](const std_msgs::String::ConstPtr& msg) {
        std::lock_guard<std::mutex> lock(mutex);
        last = msg->data;
        got++;
      },
      options);

  const auto published = ros::PlayBag(path);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 3u);
  ASSERT_TRUE(WaitFor([&] { return got.load() == 3; }));
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(last, "replay 2");
  std::filesystem::remove(path);
}

TEST_F(BagTest, PlaybackOfMissingFileFails) {
  EXPECT_FALSE(ros::PlayBag("/nonexistent/zzz.bag").ok());
}

TEST_F(BagTest, RecordAndReplaySpawnNoTransportThreads) {
  // Record five messages, then replay the bag into a live subscriber —
  // with the whole round trip riding the reactor: neither the recorder's
  // subscriber links nor replay's publications may add a single thread.
  const std::string path = TempBag("reactor_roundtrip.bag");

  // Warm the reactor pool (lazily started) before taking the baseline.
  {
    ros::NodeHandle warm_node("warm");
    auto warm = warm_node.advertise<std_msgs::String>("/bag/warm", 1);
  }
  ros::master().Reset();
  const size_t threads_before = CountProcessThreads();

  {
    auto writer = ros::BagWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ros::TopicRecorder recorder("/bag/reactor", &*writer);

    ros::NodeHandle pub_node("pub");
    auto pub = pub_node.advertise<std_msgs::String>("/bag/reactor", 10);
    ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));
    EXPECT_EQ(CountProcessThreads(), threads_before)
        << "recorder link must ride the reactor, not a reader thread";

    std_msgs::String msg;
    for (int i = 0; i < 5; ++i) {
      msg.data = "pass " + std::to_string(i);
      pub.publish(msg);
    }
    ASSERT_TRUE(WaitFor([&] { return recorder.recorded() == 5; }));
    recorder.Shutdown();
    ASSERT_TRUE(writer->Close().ok());
  }
  ros::master().Reset();

  ros::NodeHandle sub_node("listener");
  std::atomic<int> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/bag/reactor", 10,
      [&](const std_msgs::String::ConstPtr&) { got++; }, options);

  const auto published = ros::PlayBag(path);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 5u);
  ASSERT_TRUE(WaitFor([&] { return got.load() == 5; }));
  // Replay publishes pre-framed buffers into reactor writer queues: no
  // per-replay thread either.
  EXPECT_EQ(CountProcessThreads(), threads_before);
  std::filesystem::remove(path);
}

}  // namespace
