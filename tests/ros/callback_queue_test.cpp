// Unit tests for the callback queue and publication bookkeeping that the
// integration tests only exercise indirectly.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "ros/callback_queue.h"
#include "ros/publication.h"

namespace {

TEST(CallbackQueue, SpinOnceRunsInOrder) {
  ros::CallbackQueue queue;
  std::vector<int> ran;
  queue.Enqueue([&] { ran.push_back(1); });
  queue.Enqueue([&] { ran.push_back(2); });
  EXPECT_EQ(queue.Pending(), 2u);
  EXPECT_TRUE(queue.SpinOnce());
  EXPECT_TRUE(queue.SpinOnce());
  EXPECT_FALSE(queue.SpinOnce());
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(CallbackQueue, SpinExitsOnShutdown) {
  ros::CallbackQueue queue;
  std::atomic<int> ran{0};
  std::thread spinner([&] { queue.Spin(); });
  queue.Enqueue([&] { ran++; });
  const uint64_t deadline = rsf::MonotonicNanos() + 2'000'000'000ull;
  while (ran.load() == 0 && rsf::MonotonicNanos() < deadline) {
    rsf::SleepForNanos(100'000);
  }
  queue.Shutdown();
  spinner.join();
  EXPECT_EQ(ran.load(), 1);
}

TEST(CallbackQueue, SpinOnceForTimesOut) {
  ros::CallbackQueue queue;
  const rsf::Stopwatch watch;
  EXPECT_FALSE(queue.SpinOnceFor(20'000'000));
  EXPECT_GE(watch.ElapsedNanos(), 15'000'000ull);
}

TEST(CallbackQueue, CallbacksEnqueuedDuringSpinRun) {
  ros::CallbackQueue queue;
  std::vector<int> ran;
  queue.Enqueue([&] {
    ran.push_back(1);
    queue.Enqueue([&] { ran.push_back(2); });
  });
  EXPECT_TRUE(queue.SpinOnce());
  EXPECT_TRUE(queue.SpinOnce());
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(Publication, CreateBindsEphemeralPortAndShutsDownCleanly) {
  auto publication =
      ros::Publication::Create("/t", "x/Y", "md5", "unit", 4);
  ASSERT_TRUE(publication.ok());
  EXPECT_GT((*publication)->port(), 0);
  EXPECT_EQ((*publication)->NumSubscribers(), 0u);
  EXPECT_EQ((*publication)->topic(), "/t");
  EXPECT_EQ((*publication)->datatype(), "x/Y");

  // Publishing with no links is a no-op, not an error.
  auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[4]);
  (*publication)->Publish(ros::SerializedMessage{std::move(buffer), 4});
  EXPECT_EQ((*publication)->SentCount(), 0u);

  (*publication)->Shutdown();
  (*publication)->Shutdown();  // idempotent
}

}  // namespace
