// Tests for the in-process transport: connect-time negotiation, the
// whole-copy and zero-copy delivery tiers, the borrowed-arena life-cycle,
// publisher/subscriber delivery accounting, TCPROS handshake rejection, and
// a mixed-transport concurrency stress (run under the tsan preset too).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/concurrent_queue.h"
#include "net/socket.h"
#include "ros/ros.h"
#include "sensor_msgs/sfm/Image.h"
#include "std_msgs/String.h"
#include "std_msgs/sfm/String.h"

namespace {

using SfmString = std_msgs::sfm::String;

/// Waits until `predicate` holds or the deadline passes; returns its value.
bool WaitFor(const std::function<bool()>& predicate,
             uint64_t timeout_nanos = 5'000'000'000ull) {
  const uint64_t deadline = rsf::MonotonicNanos() + timeout_nanos;
  while (rsf::MonotonicNanos() < deadline) {
    if (predicate()) return true;
    rsf::SleepForNanos(1'000'000);
  }
  return predicate();
}

class IntraProcessTest : public ::testing::Test {
 protected:
  void TearDown() override { ros::master().Reset(); }
};

// ---- transport negotiation ----

TEST_F(IntraProcessTest, ColocatedSubscriberNegotiatesIntraLink) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::atomic<uint64_t> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/hello", 10,
      [&](const SfmString::ConstPtr&) { got.fetch_add(1); }, options);
  auto pub = pub_node.advertise<SfmString>("/intra/hello", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  // The link is in-process: no TCP connection was dialed.
  const auto stats = pub.getStats();
  EXPECT_EQ(stats.intra_links, 1u);
  EXPECT_EQ(stats.tcp_links, 0u);

  auto msg = SfmString::create();
  msg->data = "over the intra link";
  pub.publish(*msg);
  EXPECT_EQ(got.load(), 1u);  // inline dispatch: delivered synchronously
  EXPECT_EQ(sub.intraWholeCopyCount(), 1u);
  EXPECT_EQ(sub.intraZeroCopyCount(), 0u);
}

TEST_F(IntraProcessTest, OptOutForcesTcpTransport) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::atomic<uint64_t> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/tcp_only", 10,
      [&](const SfmString::ConstPtr&) { got.fetch_add(1); }, options);
  auto pub = pub_node.advertise<SfmString>("/intra/tcp_only", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const auto stats = pub.getStats();
  EXPECT_EQ(stats.intra_links, 0u);
  EXPECT_EQ(stats.tcp_links, 1u);

  auto msg = SfmString::create();
  msg->data = "over the wire";
  pub.publish(*msg);
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  EXPECT_EQ(sub.intraWholeCopyCount(), 0u);
  EXPECT_EQ(sub.intraZeroCopyCount(), 0u);
  EXPECT_EQ(pub.getStats().enqueued, 1u);
}

TEST_F(IntraProcessTest, IntraDeliveriesFlowThroughUnifiedPublisherStats) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  // One in-process subscriber and one forced onto the wire: every publish
  // is TWO delivery attempts through the same enqueued/dropped counters.
  std::atomic<uint64_t> got_intra{0};
  std::atomic<uint64_t> got_tcp{0};
  ros::SubscribeOptions intra_options;
  intra_options.inline_dispatch = true;
  auto intra_sub = sub_node.subscribe<SfmString>(
      "/intra/unified", 10,
      [&](const SfmString::ConstPtr&) { got_intra.fetch_add(1); },
      intra_options);
  ros::SubscribeOptions tcp_options = intra_options;
  tcp_options.allow_intra_process = false;
  auto tcp_sub = sub_node.subscribe<SfmString>(
      "/intra/unified", 10,
      [&](const SfmString::ConstPtr&) { got_tcp.fetch_add(1); }, tcp_options);
  auto pub = pub_node.advertise<SfmString>("/intra/unified", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 2; }));

  constexpr uint64_t kMessages = 5;
  for (uint64_t i = 0; i < kMessages; ++i) {
    auto msg = SfmString::create();
    msg->data = "both transports";
    pub.publish(*msg);
  }
  ASSERT_TRUE(WaitFor([&] {
    return got_intra.load() == kMessages && got_tcp.load() == kMessages;
  }));

  const auto stats = pub.getStats();
  EXPECT_EQ(stats.intra_links, 1u);
  EXPECT_EQ(stats.tcp_links, 1u);
  EXPECT_EQ(stats.intra_delivered, kMessages);
  // Unified accounting: intra deliveries are not a side channel — they flow
  // through the same attempt counters as TCP frames, so the topic-level
  // sent count (enqueued - dropped) covers both transports.
  EXPECT_EQ(stats.enqueued, 2 * kMessages);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(IntraProcessTest, RegistryDropsEntryOnPublisherShutdown) {
  const size_t before = ros::intra_registry().Size();
  {
    ros::NodeHandle pub_node("pub");
    auto pub = pub_node.advertise<SfmString>("/intra/registry", 10);
    EXPECT_EQ(ros::intra_registry().Size(), before + 1);
  }
  EXPECT_EQ(ros::intra_registry().Size(), before);
}

// ---- whole-copy tier ----

TEST_F(IntraProcessTest, WholeCopyTierDeliversIndependentClone) {
  using SfmImage = sensor_msgs::sfm::Image;
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  SfmImage::ConstPtr received;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<SfmImage>(
      "/intra/whole_copy", 10,
      [&](const SfmImage::ConstPtr& msg) { received = msg; }, options);
  auto pub = pub_node.advertise<SfmImage>("/intra/whole_copy", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  auto msg = SfmImage::create();
  msg->width = 4;
  msg->height = 1;
  msg->data.resize(12);
  msg->data[0] = 0x11;
  pub.publish(*msg);  // const-ref: caller keeps mutation rights

  ASSERT_NE(received, nullptr);
  EXPECT_NE(received.get(), msg.get());  // it is a clone
  // The publisher mutating its message does not reach the subscriber.
  msg->data[0] = 0x22;
  EXPECT_EQ(received->data[0], 0x11);
  EXPECT_EQ(received->width, 4u);
}

// ---- zero-copy tier ----

TEST_F(IntraProcessTest, ZeroCopyTierAliasesPublishedMessage) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  SfmString::ConstPtr received;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/zero_copy", 10,
      [&](const SfmString::ConstPtr& msg) { received = msg; }, options);
  auto pub = pub_node.advertise<SfmString>("/intra/zero_copy", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  const auto borrows_before = ::sfm::gmm().Stats().borrows;
  auto msg = SfmString::create();
  msg->data = "shared, not copied";
  pub.publish(msg);  // shared_ptr: relinquishes mutation rights

  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received.get(), msg.get());  // the very same message
  EXPECT_EQ(sub.intraZeroCopyCount(), 1u);
  EXPECT_EQ(::sfm::gmm().Stats().borrows, borrows_before + 1);
}

TEST_F(IntraProcessTest, BorrowedArenaOutlivesPublisherRelease) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  SfmString::ConstPtr received;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/borrowed", 10,
      [&](const SfmString::ConstPtr& msg) { received = msg; }, options);
  auto pub = pub_node.advertise<SfmString>("/intra/borrowed", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  auto msg = SfmString::create();
  msg->data = "borrowed beyond release";
  const void* start = msg.get();
  pub.publish(msg);
  ASSERT_NE(received, nullptr);
  ASSERT_EQ(received.get(), msg.get());

  // Publisher drops its handle: the manager record is released...
  msg.reset();
  EXPECT_FALSE(::sfm::gmm().Find(start).has_value());
  // ...but the subscriber's borrow pins the arena block, so the payload
  // (stored behind the skeleton, reached via relative offsets) still reads.
  EXPECT_EQ(received->data, "borrowed beyond release");
}

TEST_F(IntraProcessTest, RvaluePublishRidesZeroCopyTier) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std_msgs::String::ConstPtr received;
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<std_msgs::String>(
      "/intra/rvalue", 10,
      [&](const std_msgs::String::ConstPtr& msg) { received = msg; },
      options);
  auto pub = pub_node.advertise<std_msgs::String>("/intra/rvalue", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  std_msgs::String msg;
  msg.data = "moved in";
  pub.publish(std::move(msg));
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->data, "moved in");
  EXPECT_EQ(sub.intraZeroCopyCount(), 1u);
}

// ---- delivery accounting ----

TEST_F(IntraProcessTest, SubscriberQueueOverflowIsCountedAsDropped) {
  ros::NodeHandle pub_node("pub");
  ros::NodeHandle sub_node("sub");

  std::atomic<uint64_t> ran{0};
  // Queued dispatch with a depth-3 pending queue, never spun while
  // publishing: every publish beyond the depth must evict the oldest.
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/overflow", 3,
      [&](const SfmString::ConstPtr&) { ran.fetch_add(1); });
  auto pub = pub_node.advertise<SfmString>("/intra/overflow", 10);
  ASSERT_TRUE(WaitFor([&] { return pub.getNumSubscribers() == 1; }));

  constexpr uint64_t kPublished = 10;
  for (uint64_t i = 0; i < kPublished; ++i) {
    auto msg = SfmString::create();
    msg->data = "overflow";
    pub.publish(*msg);  // intra: delivered into the pending queue inline
  }
  EXPECT_EQ(sub.receivedCount(), kPublished);
  EXPECT_EQ(sub.droppedCount(), kPublished - 3);  // exactly the overflow

  while (sub_node.spinOnce()) {
  }
  EXPECT_EQ(ran.load(), 3u);  // the queue depth survives
}

TEST_F(IntraProcessTest, EvictedTcpFramesCountAsDroppedNotSent) {
  rsf::ConcurrentQueue<int> queue(2, rsf::QueueFullPolicy::kDropOldest);
  EXPECT_EQ(queue.Offer(1), rsf::PushOutcome::kAccepted);
  EXPECT_EQ(queue.Offer(2), rsf::PushOutcome::kAccepted);
  EXPECT_EQ(queue.Offer(3), rsf::PushOutcome::kAcceptedEvictedOldest);
  queue.Shutdown();
  EXPECT_EQ(queue.Offer(4), rsf::PushOutcome::kRejected);

  // End to end: a publication whose subscriber never drains evicts frames,
  // and those evictions show up as drops, never as sent.
  auto publication =
      ros::Publication::Create("/intra/evict", "std_msgs/String", "md5", "pub",
                               /*queue_size=*/2);
  ASSERT_TRUE(publication.ok());
  auto make_frame = [] {
    auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[8]());
    return ros::SerializedMessage{std::move(buffer), 8};
  };
  // No connected links: nothing is enqueued, nothing is dropped.
  (*publication)->Publish(make_frame());
  EXPECT_EQ((*publication)->Stats().enqueued, 0u);
  EXPECT_EQ((*publication)->SentCount(), 0u);
  (*publication)->Shutdown();
}

// ---- handshake rejection ----

TEST_F(IntraProcessTest, IntraLinkRejectedOnChecksumMismatch) {
  // A publication advertised under a different transport checksum (e.g. the
  // regular variant of the type) must refuse the in-process link the same
  // way the TCPROS handshake would.
  auto publication = ros::Publication::Create(
      "/intra/md5", SfmString::DataType(), "some-other-md5", "pub",
      /*queue_size=*/10, /*intra_capable=*/true);
  ASSERT_TRUE(publication.ok());

  ros::NodeHandle sub_node("sub");
  std::atomic<uint64_t> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/md5", 10, [&](const SfmString::ConstPtr&) { got.fetch_add(1); },
      options);
  // Announce the endpoint with wildcards (type-agnostic registration, so the
  // master's type check does not mask the handshake-level rejection).
  ASSERT_TRUE(ros::master()
                  .RegisterPublisher("/intra/md5", "*", "*",
                                     {"127.0.0.1", (*publication)->port(),
                                      "pub"})
                  .ok());

  // The link must be refused, with no TCP fallback (TCPROS would reject the
  // same checksum).
  rsf::SleepForNanos(100'000'000);
  EXPECT_EQ((*publication)->NumSubscribers(), 0u);
  EXPECT_EQ(sub.getNumPublishers(), 0u);
  EXPECT_EQ(got.load(), 0u);
  (*publication)->Shutdown();
}

TEST_F(IntraProcessTest, TcpHandshakeRejectionDropsTheLink) {
  // Same mismatch, forced onto the wire: the publisher answers the
  // handshake with an error header and the subscriber drops the link.
  auto publication = ros::Publication::Create(
      "/intra/tcp_md5", SfmString::DataType(), "some-other-md5", "pub",
      /*queue_size=*/10);
  ASSERT_TRUE(publication.ok());

  ros::NodeHandle sub_node("sub");
  std::atomic<uint64_t> got{0};
  ros::SubscribeOptions options;
  options.inline_dispatch = true;
  options.allow_intra_process = false;
  auto sub = sub_node.subscribe<SfmString>(
      "/intra/tcp_md5", 10,
      [&](const SfmString::ConstPtr&) { got.fetch_add(1); }, options);
  ASSERT_TRUE(ros::master()
                  .RegisterPublisher("/intra/tcp_md5", "*", "*",
                                     {"127.0.0.1", (*publication)->port(),
                                      "pub"})
                  .ok());

  // The connection is dialed, rejected in the header exchange, and closed.
  rsf::SleepForNanos(100'000'000);
  EXPECT_EQ((*publication)->NumSubscribers(), 0u);
  EXPECT_EQ(sub.getNumPublishers(), 0u);
  EXPECT_EQ(got.load(), 0u);
  (*publication)->Shutdown();
}

// ---- accept robustness ----

TEST_F(IntraProcessTest, TransientAcceptErrnosAreClassified) {
  EXPECT_TRUE(rsf::net::IsTransientAcceptErrno(ECONNABORTED));
  EXPECT_TRUE(rsf::net::IsTransientAcceptErrno(EINTR));
  EXPECT_TRUE(rsf::net::IsTransientAcceptErrno(EMFILE));
  EXPECT_TRUE(rsf::net::IsTransientAcceptErrno(ENFILE));
  EXPECT_TRUE(rsf::net::IsTransientAcceptErrno(ENOBUFS));
  EXPECT_FALSE(rsf::net::IsTransientAcceptErrno(EBADF));
  EXPECT_FALSE(rsf::net::IsTransientAcceptErrno(EINVAL));
}

// ---- mixed-transport stress (the tsan target) ----

TEST_F(IntraProcessTest, ConcurrentMixedTransportStress) {
  constexpr int kPublishers = 2;
  constexpr int kMessagesPerPublisher = 150;

  ros::NodeHandle sub_node("subs");
  std::atomic<uint64_t> intra_got{0};
  std::atomic<uint64_t> tcp_got{0};
  std::atomic<uint64_t> doomed_got{0};

  ros::SubscribeOptions inline_opts;
  inline_opts.inline_dispatch = true;
  auto intra_sub = sub_node.subscribe<SfmString>(
      "/stress", 50, [&](const SfmString::ConstPtr&) { intra_got.fetch_add(1); },
      inline_opts);
  ros::SubscribeOptions tcp_opts = inline_opts;
  tcp_opts.allow_intra_process = false;
  auto tcp_sub = sub_node.subscribe<SfmString>(
      "/stress", 50, [&](const SfmString::ConstPtr&) { tcp_got.fetch_add(1); },
      tcp_opts);
  // This one shuts down mid-stream while publishers are firing.
  auto doomed_sub = sub_node.subscribe<SfmString>(
      "/stress", 50,
      [&](const SfmString::ConstPtr&) { doomed_got.fetch_add(1); },
      inline_opts);

  std::vector<std::thread> publishers;
  std::atomic<int> ready{0};
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      ros::NodeHandle pub_node("pub" + std::to_string(p));
      auto pub = pub_node.advertise<SfmString>("/stress", 50);
      // All three subscribers (two intra, one TCP) must be linked before
      // anyone publishes, or the exact-count assertion below cannot hold.
      WaitFor([&] { return pub.getNumSubscribers() >= 3; });
      ready.fetch_add(1);
      WaitFor([&] { return ready.load() == kPublishers; });
      for (int i = 0; i < kMessagesPerPublisher; ++i) {
        auto msg = SfmString::create();
        msg->data = "stress payload";
        if (i % 2 == 0) {
          pub.publish(*msg);  // whole-copy tier + TCP
        } else {
          pub.publish(msg);  // zero-copy tier + TCP
        }
        if (i % 16 == 0) rsf::SleepForNanos(100'000);
      }
    });
  }

  // Kill one subscriber while traffic is in flight.
  WaitFor([&] { return doomed_got.load() > 0; });
  doomed_sub.shutdown();

  for (auto& thread : publishers) thread.join();
  // The survivors saw traffic from both publishers on both transports; the
  // inline intra subscriber missed nothing.
  EXPECT_EQ(intra_got.load(),
            static_cast<uint64_t>(kPublishers * kMessagesPerPublisher));
  EXPECT_GT(tcp_got.load(), 0u);
  EXPECT_GT(doomed_got.load(), 0u);
  EXPECT_EQ(intra_sub.intraZeroCopyCount() + intra_sub.intraWholeCopyCount(),
            intra_got.load());
}

}  // namespace
