// Tests for the synthetic ORB-SLAM substrate: frame generation determinism,
// FAST/BRIEF behaviour, matching, motion estimation accuracy against the
// generator's ground truth, and the end-to-end node graph on both message
// variants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "slam/image_gen.h"
#include "slam/nodes.h"
#include "slam/pipeline.h"

namespace {

using namespace rsf::slam;

TEST(FrameGenerator, DeterministicForSameSeed) {
  FrameGenerator a(160, 120, 7);
  FrameGenerator b(160, 120, 7);
  const Frame fa = a.Next();
  const Frame fb = b.Next();
  EXPECT_EQ(fa.gray, fb.gray);
  EXPECT_EQ(fa.rgb, fb.rgb);
}

TEST(FrameGenerator, DifferentSeedsDiffer) {
  FrameGenerator a(160, 120, 7);
  FrameGenerator b(160, 120, 8);
  EXPECT_NE(a.Next().gray, b.Next().gray);
}

TEST(FrameGenerator, FramesMoveAlongTrajectory) {
  FrameGenerator gen(160, 120, 7);
  const Frame f0 = gen.Next();
  const Frame f1 = gen.Next();
  EXPECT_NE(f0.gray, f1.gray);
  EXPECT_GT(f1.truth.x, f0.truth.x);
}

TEST(FrameGenerator, RgbAndGrayAreConsistentSizes) {
  FrameGenerator gen(64, 48, 1);
  const Frame frame = gen.Next();
  EXPECT_EQ(frame.gray.size(), 64u * 48u);
  EXPECT_EQ(frame.rgb.size(), 64u * 48u * 3u);
}

TEST(FastDetector, FindsCornersOnSyntheticScene) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();
  const auto keypoints = DetectFast(frame.gray.data(), 320, 240, FastConfig{});
  EXPECT_GE(keypoints.size(), 50u) << "textured scene must yield corners";
  for (const auto& kp : keypoints) {
    EXPECT_GE(kp.x, 3);
    EXPECT_GE(kp.y, 3);
    EXPECT_LT(kp.x, 317);
    EXPECT_LT(kp.y, 237);
  }
}

TEST(FastDetector, FlatImageHasNoCorners) {
  std::vector<uint8_t> flat(320 * 240, 128);
  const auto keypoints = DetectFast(flat.data(), 320, 240, FastConfig{});
  EXPECT_TRUE(keypoints.empty());
}

TEST(FastDetector, SingleBrightDotIsDetected) {
  std::vector<uint8_t> image(100 * 100, 10);
  // A 3x3 bright blob: its center passes the segment test.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      image[(50 + dy) * 100 + (50 + dx)] = 250;
    }
  }
  const auto keypoints = DetectFast(image.data(), 100, 100, FastConfig{});
  ASSERT_FALSE(keypoints.empty());
  bool found = false;
  for (const auto& kp : keypoints) {
    if (std::abs(kp.x - 50) <= 2 && std::abs(kp.y - 50) <= 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FastDetector, RespectsMaxKeypoints) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();
  FastConfig config;
  config.max_keypoints = 10;
  const auto keypoints =
      DetectFast(frame.gray.data(), 320, 240, config);
  EXPECT_LE(keypoints.size(), 10u);
}

TEST(Brief, IdenticalPatchesMatchExactly) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();
  const auto keypoints = DetectFast(frame.gray.data(), 320, 240, FastConfig{});
  ASSERT_FALSE(keypoints.empty());
  const auto a = ComputeBrief(frame.gray.data(), 320, 240, keypoints);
  const auto b = ComputeBrief(frame.gray.data(), 320, 240, keypoints);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].HammingDistance(b[i]), 0);
  }
}

TEST(Brief, DistinctPatchesDiffer) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();
  auto keypoints = DetectFast(frame.gray.data(), 320, 240, FastConfig{});
  ASSERT_GE(keypoints.size(), 2u);
  const auto descriptors =
      ComputeBrief(frame.gray.data(), 320, 240, keypoints);
  EXPECT_GT(descriptors[0].HammingDistance(descriptors[1]), 10);
}

TEST(Matcher, MatchesFrameToItself) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();
  const auto keypoints = DetectFast(frame.gray.data(), 320, 240, FastConfig{});
  const auto descriptors =
      ComputeBrief(frame.gray.data(), 320, 240, keypoints);
  const auto matches = MatchDescriptors(descriptors, descriptors, 0.8);
  EXPECT_GE(matches.size(), keypoints.size() / 2);
  for (const auto& match : matches) {
    EXPECT_EQ(match.query, match.train);
    EXPECT_EQ(match.distance, 0);
  }
}

TEST(Pipeline, TracksCameraPanDirection) {
  // The generator pans the camera in +x; the integrated pose must follow
  // with roughly the right magnitude (3 px/frame).
  FrameGenerator gen(320, 240, 42);
  OrbSlamLite::Config config;
  config.work_factor = 1;
  OrbSlamLite slam(config);
  SlamResult result;
  for (int i = 0; i < 8; ++i) {
    const Frame frame = gen.Next();
    result = slam.ProcessFrame(frame.gray.data(), 320, 240);
  }
  EXPECT_GE(result.matches.size(), 20u);
  EXPECT_GT(result.pose.x, 8.0);   // 7 tracked steps * 3 px, with slack
  EXPECT_LT(result.pose.x, 40.0);
}

TEST(Pipeline, WorkFactorScalesCompute) {
  FrameGenerator gen(320, 240, 42);
  const Frame frame = gen.Next();

  OrbSlamLite::Config light;
  light.work_factor = 1;
  OrbSlamLite slam_light(light);

  OrbSlamLite::Config heavy;
  heavy.work_factor = 8;
  OrbSlamLite slam_heavy(heavy);

  double light_ms = 0;
  double heavy_ms = 0;
  for (int i = 0; i < 3; ++i) {
    light_ms += slam_light.ProcessFrame(frame.gray.data(), 320, 240)
                    .compute_millis;
    heavy_ms += slam_heavy.ProcessFrame(frame.gray.data(), 320, 240)
                    .compute_millis;
  }
  EXPECT_GT(heavy_ms, light_ms * 2);
}

template <typename Msgs>
void RunGraphOnce() {
  ros::master().Reset();
  {
    SlamNode<Msgs> slam;
    LatencySinkNode<typename Msgs::PoseStamped> pose_sink("pose_sink",
                                                          "/pose");
    LatencySinkNode<typename Msgs::PointCloud2> cloud_sink("cloud_sink",
                                                           "/pointcloud");
    LatencySinkNode<typename Msgs::Image> debug_sink("debug_sink",
                                                     "/debug_image");
    TumPublisherNode<Msgs> source(320, 240);

    const uint64_t deadline = rsf::MonotonicNanos() + 10'000'000'000ull;
    while (source.NumSubscribers() == 0 && rsf::MonotonicNanos() < deadline) {
      rsf::SleepForNanos(1'000'000);
    }
    ASSERT_EQ(source.NumSubscribers(), 1u);

    for (int i = 0; i < 3; ++i) {
      source.PublishOne();
      const uint64_t frame_deadline = rsf::MonotonicNanos() + 10'000'000'000ull;
      while ((pose_sink.count() < static_cast<uint64_t>(i + 1) ||
              cloud_sink.count() < static_cast<uint64_t>(i + 1) ||
              debug_sink.count() < static_cast<uint64_t>(i + 1)) &&
             rsf::MonotonicNanos() < frame_deadline) {
        rsf::SleepForNanos(1'000'000);
      }
    }
    EXPECT_EQ(pose_sink.count(), 3u);
    EXPECT_EQ(cloud_sink.count(), 3u);
    EXPECT_EQ(debug_sink.count(), 3u);
    EXPECT_EQ(slam.frames(), 3u);
    EXPECT_GT(pose_sink.snapshot().mean_ms(), 0.0);
  }
  ros::master().Reset();
}

TEST(SlamGraph, EndToEndRegularVariant) { RunGraphOnce<RegularMsgs>(); }

TEST(SlamGraph, EndToEndSfmVariant) {
  const size_t live_before = sfm::gmm().LiveCount();
  RunGraphOnce<SfmMsgs>();
  // All arenas created by the graph must be reclaimed.
  const uint64_t deadline = rsf::MonotonicNanos() + 5'000'000'000ull;
  while (sfm::gmm().LiveCount() != live_before &&
         rsf::MonotonicNanos() < deadline) {
    rsf::SleepForNanos(1'000'000);
  }
  EXPECT_EQ(sfm::gmm().LiveCount(), live_before);
}

}  // namespace
